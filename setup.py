"""Setuptools shim.

This shim exists so that ``python setup.py develop`` works in offline
environments where the ``wheel`` package (required by PEP 517 editable
installs) is unavailable.  The long description is the root ``README.md``.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="repro-dias",
    version="0.1.0",
    description=(
        "Reproduction of DiAS (Middleware 2019): differentiated approximation "
        "and sprinting for multi-priority big-data engines, with a "
        "multi-cluster fleet simulator"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
