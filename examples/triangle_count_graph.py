#!/usr/bin/env python3
"""Graph analytics: approximate triangle counting under task dropping (Fig. 10).

This example exercises the graph side of the paper's evaluation:

1. generate a synthetic power-law web graph,
2. run the *real* multi-stage MapReduce triangle count through the
   mini-MapReduce runtime at several per-stage drop ratios and report the
   relative error of the approximate counts,
3. simulate the cluster-level effect: a stream of high- and low-priority
   graph jobs scheduled with P, NP and DA(0,θ) with per-stage dropping of the
   low-priority jobs.

Run with::

    python examples/triangle_count_graph.py
"""

from __future__ import annotations

from repro import HIGH, LOW, SchedulingPolicy, run_policies
from repro.experiments.reporting import format_comparison, format_rows
from repro.mapreduce.triangle_count import exact_triangle_count, triangle_count_job
from repro.workloads.graph import graph_statistics, synthetic_web_graph
from repro.workloads.scenarios import triangle_count_scenario

STAGE_DROP_RATIOS = (0.01, 0.02, 0.05, 0.10, 0.20)


def accuracy_section() -> None:
    edges = synthetic_web_graph(num_nodes=500, edges_per_node=4,
                                triangle_probability=0.4, seed=3)
    stats = graph_statistics(edges)
    exact = exact_triangle_count(edges)
    print(f"Synthetic web graph: {stats['nodes']} nodes, {stats['edges']} edges, "
          f"{exact} triangles (max degree {stats['max_degree']}).")
    rows = []
    for theta in STAGE_DROP_RATIOS:
        estimate, runtime = triangle_count_job(edges, num_partitions=20,
                                               stage_drop_ratio=theta)
        rows.append(
            {
                "stage_drop_ratio": theta,
                "estimate": estimate,
                "relative_error_pct": 100.0 * abs(estimate - exact) / exact,
                "tasks_dropped": runtime.total_tasks_dropped,
            }
        )
    print(format_rows(rows))
    print()


def latency_section() -> None:
    scenario = triangle_count_scenario(num_jobs=300)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
    ]
    for theta in STAGE_DROP_RATIOS:
        policies.append(
            SchedulingPolicy.differential_approximation(
                {HIGH: 0.0, LOW: theta}, name=f"DA(0/{round(100 * theta):g})")
        )
    comparison = run_policies(scenario, policies, baseline="P", seed=5)
    print(format_comparison(comparison,
                            "Triangle-count job stream: per-stage dropping of low-priority jobs"))


def main() -> None:
    accuracy_section()
    latency_section()


if __name__ == "__main__":
    main()
