#!/usr/bin/env python3
"""Online adaptive deflation — the paper's workload-change extension.

The published DiAS prototype picks its drop ratios once, offline, for a known
workload; the paper notes the search must be re-run whenever the workload
changes.  This example demonstrates the online extension shipped with this
library: an :class:`~repro.core.adaptive.AdaptiveDeflationController` watches
the observed high-priority latency and walks the low-priority drop ratio up or
down a candidate ladder, never exceeding the class's accuracy tolerance.

The workload deliberately changes halfway through: the second half of the
trace arrives twice as fast, so a static no-drop configuration violates the
latency target while the adaptive controller reacts.

Run with::

    python examples/adaptive_deflation.py
"""

from __future__ import annotations

from repro import HIGH, LOW, SchedulingPolicy
from repro.core.adaptive import AdaptiveDeflationController
from repro.core.dias import DiASSimulation
from repro.engine.cluster import Cluster
from repro.experiments.reporting import format_rows
from repro.workloads.scenarios import reference_two_priority_scenario


def build_bursty_trace(scenario, num_jobs: int, seed: int):
    """First half at the calibrated 80 % load, second half at double the rate."""
    first = scenario.generate_trace(seed=seed, num_jobs=num_jobs // 2)
    second = scenario.generate_trace(seed=seed + 1, num_jobs=num_jobs // 2)
    offset = max(job.arrival_time for job in first)
    bursty = list(first)
    for job in second:
        job.arrival_time = offset + job.arrival_time / 2.0  # double the arrival rate
        bursty.append(job)
    return sorted(bursty, key=lambda job: job.arrival_time)


def run(label: str, provider, scenario, trace):
    simulation = DiASSimulation(
        SchedulingPolicy.non_preemptive_priority(),
        trace,
        cluster=Cluster(scenario.cluster.config),
        drop_ratio_provider=provider,
    )
    result = simulation.run()
    return {
        "configuration": label,
        "high_mean_s": result.mean_response_time(HIGH),
        "low_mean_s": result.mean_response_time(LOW),
        "low_p95_s": result.tail_response_time(LOW),
        "mean_accuracy_loss_pct": 100 * result.mean_accuracy_loss(LOW),
    }


def main() -> None:
    scenario = reference_two_priority_scenario(num_jobs=400)
    trace = build_bursty_trace(scenario, num_jobs=400, seed=9)

    controller = AdaptiveDeflationController(
        profiles=scenario.profiles,
        latency_target=80.0,            # seconds, on the high-priority mean
        candidates=(0.0, 0.1, 0.2, 0.4),
        window=8,
        reevaluation_interval=300.0,
    )

    rows = [
        run("static (no dropping)", None, scenario, trace),
        run("adaptive deflation", controller, scenario, trace),
    ]
    print(format_rows(rows))
    print()
    print(f"The controller adapted {controller.adaptations} times; final drop ratios: "
          f"{controller.current_drop_ratios()}")
    if controller.events:
        print("Adaptation history:")
        print(format_rows([
            {
                "time_s": event.time,
                "observed_high_mean_s": event.observed_latency,
                "direction": event.direction,
                "low_drop_ratio": event.drop_ratios[LOW],
            }
            for event in controller.events
        ]))


if __name__ == "__main__":
    main()
