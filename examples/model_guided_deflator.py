#!/usr/bin/env python3
"""Model-guided deflation: let the stochastic models pick the drop ratios.

This example reproduces the §5.2.1 use case: "tolerate a 30 % accuracy loss
for low-priority jobs while keeping high-priority latency bounded, with no
accuracy loss for high-priority jobs".  The task deflator

1. inverts the accuracy-loss curve to bound each class's drop ratio,
2. predicts mean response times for every candidate assignment with the
   wave-level PH model plugged into the priority-queue model (Section 4), and
3. picks the assignment that best improves the low-priority latency within
   the constraints.

The chosen assignment is then validated against the discrete-event simulation.

Run with::

    python examples/model_guided_deflator.py
"""

from __future__ import annotations

from repro import (
    HIGH,
    LOW,
    SchedulingPolicy,
    TaskDeflator,
    reference_two_priority_scenario,
    run_policies,
)
from repro.experiments.reporting import format_rows


def main() -> None:
    scenario = reference_two_priority_scenario(num_jobs=400)
    deflator = TaskDeflator(
        profiles=scenario.profiles,
        arrival_rates=scenario.arrival_rates,
        slots=scenario.cluster.slots,
        model="wave",
    )

    # Step 1: what does the model predict for each candidate drop ratio?
    candidates = (0.0, 0.1, 0.2, 0.4)
    rows = []
    for theta in candidates:
        predicted = deflator.predict_response_times({HIGH: 0.0, LOW: theta})
        rows.append(
            {
                "low_drop_ratio": theta,
                "predicted_high_s": predicted[HIGH],
                "predicted_low_s": predicted[LOW],
                "predicted_accuracy_loss_pct": 100 * deflator.accuracy_model.error(theta),
            }
        )
    print("Model predictions (wave-level PH model + priority queue):")
    print(format_rows(rows))
    print()

    # Step 2: let the deflator choose, bounding the high-priority degradation.
    decision = deflator.choose(candidates=candidates, max_high_priority_degradation=0.75)
    print(f"Deflator decision: drop ratios {decision.drop_ratios}, "
          f"feasible={decision.feasible}")
    print(f"Predicted responses: { {k: round(v, 1) for k, v in decision.predicted_response_times.items()} }")
    print()

    # Step 3: validate the decision in the simulator against P and NP.
    chosen = SchedulingPolicy.differential_approximation(decision.drop_ratios,
                                                         name="DA(deflator)")
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
        chosen,
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=3)
    result_rows = []
    for name in ("P", "NP", "DA(deflator)"):
        result = comparison.result(name)
        result_rows.append(
            {
                "policy": name,
                "high_mean_s": result.mean_response_time(HIGH),
                "low_mean_s": result.mean_response_time(LOW),
                "low_p95_s": result.tail_response_time(LOW),
                "low_diff_pct": comparison.relative_difference(name, LOW),
                "waste_pct": 100 * result.resource_waste,
            }
        )
    print("Simulated validation:")
    print(format_rows(result_rows))


if __name__ == "__main__":
    main()
