#!/usr/bin/env python3
"""Fleet example: four DiAS clusters behind different dispatchers.

The paper's prototype is one 10-worker Spark cluster; a production deployment
of differentiated approximation runs many such clusters behind a dispatcher.
This example:

1. builds the three-priority fleet scenario (the Fig. 9 workload scaled to a
   4-cluster fleet, ~80 % load per cluster when traffic is balanced),
2. routes the *same* fleet-wide job trace with random, round-robin, JSQ,
   least-work-left and priority-partitioned dispatchers,
3. prints, for each router, the fleet-wide high-priority latency, the overall
   mean, and the load-imbalance factor (peak-to-mean cluster utilisation).

Run with::

    python examples/fleet_routing.py
"""

from __future__ import annotations

from repro import HIGH, SchedulingPolicy
from repro.experiments.reporting import format_rows
from repro.fleet import FleetSimulation
from repro.workloads.scenarios import fleet_three_priority_scenario

ROUTERS = ["random", "round_robin", "jsq", "least_work_left", "priority_partitioned"]


def main() -> None:
    scenario = fleet_three_priority_scenario(num_clusters=4, num_jobs_per_cluster=200)
    print(f"Scenario: {scenario.description}")
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 1: 0.1, 0: 0.2})
    trace = scenario.generate_trace(seed=0)
    print(f"Policy:   {policy.name} on every cluster, {len(trace)} jobs fleet-wide")
    print()

    rows = []
    for router in ROUTERS:
        simulation = FleetSimulation(
            policy=policy,
            jobs=trace,
            clusters=scenario.make_clusters(),
            dispatcher=router,
            seed=0,
        )
        result = simulation.run()
        rows.append(
            {
                "router": result.dispatcher_name,
                "high_mean_s": result.mean_response_time(HIGH),
                "high_p95_s": result.tail_response_time(HIGH),
                "fleet_mean_s": result.mean_response_time(),
                "load_imbalance": result.load_imbalance,
                "energy_kj": result.total_energy_kilojoules,
            }
        )
    print(format_rows(rows))
    print()
    print(
        "Load-aware routing (jsq, least_work_left) trims the high-priority tail\n"
        "versus blind random routing; priority_partitioned isolates the high\n"
        "class on its own sub-fleet, trading total throughput headroom for the\n"
        "best high-priority latency."
    )


if __name__ == "__main__":
    main()
