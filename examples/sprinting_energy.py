#!/usr/bin/env python3
"""Full DiAS: differential approximation plus sprinting, with energy accounting.

Reproduces the §5.3 experiment shape on the graph-analytics workload
(high:low = 3:7, equal job sizes):

* the preemptive baseline P,
* sprinted non-preemptive scheduling NPS (no approximation),
* DiAS(0,10) and DiAS(0,20) under the *limited* budget (22 kJ, sprint after
  65 s, replenished at 6 sprint-minutes/hour) and under the *unlimited*
  budget (sprint from dispatch),

and reports per-class latencies, the queueing/execution decomposition
(Table 2) and the energy consumption relative to P (Fig. 11c).

Run with::

    python examples/sprinting_energy.py
"""

from __future__ import annotations

from repro import HIGH, LOW, SchedulingPolicy, SprintConfig, run_policies
from repro.experiments.figures import limited_sprint_config, unlimited_sprint_config
from repro.experiments.reporting import format_rows
from repro.workloads.scenarios import triangle_count_scenario


def run_budget(budget_name: str, sprint: SprintConfig) -> None:
    scenario = triangle_count_scenario(num_jobs=300)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.sprinted_non_preemptive(sprint),
        SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.1}, sprint=sprint),
        SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.2}, sprint=sprint),
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=17)

    print(f"--- {budget_name} sprinting budget ---")
    latency_rows = []
    decomposition_rows = []
    for name in ("P", "NPS", "DiAS(0/10)", "DiAS(0/20)"):
        result = comparison.result(name)
        latency_rows.append(
            {
                "policy": name,
                "high_diff_pct": comparison.relative_difference(name, HIGH),
                "low_diff_pct": comparison.relative_difference(name, LOW),
                "high_tail_diff_pct": comparison.relative_difference(name, HIGH, "tail"),
                "low_tail_diff_pct": comparison.relative_difference(name, LOW, "tail"),
                "sprinted_s": result.sprinted_seconds,
                "energy_kj": result.total_energy_kilojoules,
                "active_energy_kj": result.active_energy_kilojoules,
            }
        )
        for priority, label in ((HIGH, "High"), (LOW, "Low")):
            decomposition_rows.append(
                {
                    "policy": name,
                    "class": label,
                    "queue_s": result.mean_queueing_time(priority),
                    "exec_s": result.mean_execution_time(priority),
                }
            )
    print(format_rows(latency_rows))
    print()
    print("Queueing/execution decomposition (Table 2 analogue):")
    print(format_rows(decomposition_rows))
    print()


def main() -> None:
    run_budget("limited", limited_sprint_config())
    run_budget("unlimited", unlimited_sprint_config())


if __name__ == "__main__":
    main()
