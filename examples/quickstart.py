#!/usr/bin/env python3
"""Quickstart: compare preemptive priority scheduling against DiAS.

This is the smallest end-to-end use of the library:

1. build the paper's reference two-priority scenario (text analytics,
   low:high arrivals 9:1, 80 % cluster load),
2. run the preemptive baseline (P), plain non-preemptive priority (NP) and
   differential approximation DA(0,20) on the *same* job trace,
3. print the per-class mean/tail latencies, the relative differences against
   P, the resource waste and the accuracy loss.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import HIGH, LOW, SchedulingPolicy, reference_two_priority_scenario, run_policies
from repro.experiments.reporting import format_comparison


def main() -> None:
    scenario = reference_two_priority_scenario(num_jobs=400)
    print(f"Scenario: {scenario.description}")
    print(f"Cluster slots: {scenario.cluster.slots}, "
          f"arrival rates: { {p: round(r, 5) for p, r in scenario.arrival_rates.items()} }")
    print()

    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=42)

    print(format_comparison(comparison, "Preemptive priority vs DiAS-style approximation"))
    print()

    da = comparison.result("DA(0/20)")
    print(
        "DA(0,20) improves the low-priority mean latency by "
        f"{-comparison.relative_difference('DA(0/20)', LOW, 'mean'):.0f}% "
        f"and the 95th percentile by "
        f"{-comparison.relative_difference('DA(0/20)', LOW, 'tail'):.0f}% versus P,\n"
        f"at an accuracy loss of {100 * da.mean_accuracy_loss(LOW):.1f}% for low-priority jobs "
        f"and zero resource waste (P wastes "
        f"{100 * comparison.result('P').resource_waste:.1f}% of machine time on evictions)."
    )


if __name__ == "__main__":
    main()
