#!/usr/bin/env python3
"""DAG example: stage-dependency jobs under four stage schedulers.

The paper's DiAS engine executes jobs as linear chains of map/reduce stages;
real query plans and ML pipelines are stage *DAGs* whose independent branches
compete for the cluster's slots.  This example:

1. builds the layered-DAG scenario (random 4-layer query plans, two priority
   classes, ~80 % sequential load on the paper's 20-slot cluster),
2. runs the *same* job trace (common random numbers) under every stage
   scheduler — fifo, critical_path_first, shortest_remaining_work and
   widest_first,
3. prints per-scheduler mean makespan, the critical-path stretch (makespan
   over the per-job lower bound; 1.0 is optimal) and response times,
4. shows slack-biased dropping: the low-priority class's 20 % drop ratio is
   reweighted per stage so off-critical-path stages absorb more of the
   dropping.

Run with::

    python examples/dag_scheduling.py
"""

from __future__ import annotations

from repro import SchedulingPolicy
from repro.dag import STAGE_SCHEDULERS, DagSimulation
from repro.experiments.reporting import format_rows
from repro.workloads.scenarios import HIGH, LOW, dag_layered_scenario


def main() -> None:
    scenario = dag_layered_scenario(num_jobs=100)
    print(f"Scenario: {scenario.description}")
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})
    trace = scenario.generate_trace(seed=0)
    stages = sum(job.num_stages for job in trace)
    print(f"Policy:   {policy.name}, {len(trace)} jobs, {stages} stages total")
    print()

    rows = []
    for scheduler in STAGE_SCHEDULERS:
        result = DagSimulation(
            policy=policy,
            jobs=scenario.generate_trace(seed=0),
            scheduler=scheduler,
            cluster=scenario.cluster,
            seed=0,
        ).run()
        rows.append(
            {
                "scheduler": result.scheduler_name,
                "mean_makespan_s": result.mean_makespan(),
                "cp_stretch": result.mean_critical_path_stretch(),
                "mean_response_s": result.mean_response_time(),
                "high_p95_s": result.tail_response_time(HIGH),
            }
        )
    print(format_rows(rows))
    print()

    biased = DagSimulation(
        policy=policy,
        jobs=scenario.generate_trace(seed=0),
        scheduler="critical_path_first",
        cluster=scenario.cluster,
        seed=0,
        slack_biased=True,
    ).run()
    print(
        "Slack-biased dropping (critical_path_first): "
        f"mean makespan {biased.mean_makespan():.1f} s, "
        f"low-priority accuracy loss {100 * biased.mean_accuracy_loss(LOW):.1f} %"
    )
    print()
    print(
        "critical_path_first keeps the longest dependency chain supplied with\n"
        "slots, so its makespan sits closest to the per-job lower bound;\n"
        "widest_first maximises instantaneous occupancy but starves the\n"
        "critical path and pays for it at the join points."
    )


if __name__ == "__main__":
    main()
