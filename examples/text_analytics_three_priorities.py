#!/usr/bin/env python3
"""Three-priority text analytics with differential approximation (Fig. 9).

The paper's motivating workload is a stream of text-analysis jobs (parsing
StackExchange dumps and computing word popularity) arriving in several
priority classes.  This example:

1. builds the three-priority scenario (high-medium-low arrival ratio 1-4-5,
   ~80 % load, as in §5.2.3),
2. measures the accuracy loss of the word-count analysis on a synthetic corpus
   under the candidate drop ratios by *really running* the analysis through
   the mini-MapReduce runtime with task dropping,
3. uses the measured accuracy curve to bound the per-class drop ratios, and
4. compares P, NP, DA(0,10,20) and DA(0,20,40) on a common job trace.

Run with::

    python examples/text_analytics_three_priorities.py
"""

from __future__ import annotations

from repro import HIGH, LOW, MEDIUM, AccuracyModel, SchedulingPolicy, run_policies
from repro.experiments.reporting import format_comparison, format_rows
from repro.mapreduce.wordcount import wordcount_accuracy_curve
from repro.workloads.scenarios import three_priority_scenario
from repro.workloads.text import CorpusSpec, synthetic_corpus


def measure_accuracy_curve() -> AccuracyModel:
    """Run the real word-count analysis at several drop ratios and fit the curve."""
    corpus = synthetic_corpus(
        CorpusSpec(num_documents=120, words_per_document=80, vocabulary_size=3000,
                   num_topics=12, topic_vocabulary_size=150, topic_word_fraction=0.5,
                   zipf_exponent=1.2),
        seed=7,
    )
    curve = wordcount_accuracy_curve(corpus, (0.1, 0.2, 0.4), num_partitions=50,
                                     repetitions=2, top_n=300, seed=7)
    print("Measured accuracy loss of the word-count analysis:")
    print(format_rows([{"drop_ratio": t, "mape_pct": e} for t, e in curve]))
    print()
    return AccuracyModel.from_points([(t, e / 100.0) for t, e in curve])


def main() -> None:
    accuracy = measure_accuracy_curve()
    scenario = three_priority_scenario(num_jobs=500)

    # Check the candidate drop ratios against each class's tolerance.
    for priority, label in ((MEDIUM, "medium"), (LOW, "low")):
        tolerance = scenario.profiles[priority].max_accuracy_loss
        ceiling = accuracy.max_drop_for_error(tolerance)
        print(f"{label}-priority class tolerates {tolerance:.0%} error "
              f"-> drop at most {ceiling:.0%} of its tasks")
    print()

    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
        SchedulingPolicy.differential_approximation(
            {HIGH: 0.0, MEDIUM: 0.1, LOW: 0.2}, name="DA(0/10/20)"),
        SchedulingPolicy.differential_approximation(
            {HIGH: 0.0, MEDIUM: 0.2, LOW: 0.4}, name="DA(0/20/40)"),
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=11,
                              accuracy_model=accuracy)
    print(format_comparison(comparison, "Three-priority text analytics (Fig. 9 setup)"))


if __name__ == "__main__":
    main()
