"""Property tests: span-tree invariants hold across policies, seeds, engines.

Every traced run — whatever the policy mix of dropping, sprinting and
preemption — must produce, for every job, a span tree that satisfies the
structural invariants of :func:`repro.telemetry.spans.check_trace`, an
attempt count consistent with its evictions, and a latency decomposition
that closes exactly onto the response time reported by the untraced
``job_completed`` probe.
"""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig
from repro.core.dias import DiASSimulation
from repro.core.policies import SchedulingPolicy
from repro.dag.simulation import DagSimulation
from repro.engine.cluster import Cluster
from repro.telemetry import CallbackSink, TelemetryHub, Tracer
from repro.telemetry.spans import (
    TERMINAL_CATS,
    build_job_traces,
    check_trace,
    decompose,
    observed_stage_path,
    predicted_stage_path,
    stage_observations,
)
from repro.workloads.scenarios import (
    HIGH,
    LOW,
    dag_fork_join_scenario,
    reference_two_priority_scenario,
)

#: Decomposition closure tolerance: components must sum to the job's
#: response time up to float summation error.
CLOSURE_EPSILON = 1e-6


def _sprint() -> SprintConfig:
    return SprintConfig(budget_seconds=600.0, default_timeout=5.0)


def _policies():
    return [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
        SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.2}, _sprint()),
    ]


def _traced_hub():
    """(hub, tracer, completed) — completed maps job_id -> response_time."""
    hub = TelemetryHub(tracing=True)
    tracer = hub.add_sink(Tracer())
    completed = {}
    hub.add_sink(
        CallbackSink(
            lambda event: completed.__setitem__(
                event["job_id"], event["response_time"]
            )
            if event["kind"] == "job_completed"
            else None
        )
    )
    return hub, tracer, completed


def _run_dias(policy: SchedulingPolicy, seed: int, num_jobs: int = 40):
    scenario = reference_two_priority_scenario()
    trace = scenario.generate_trace(seed=seed, num_jobs=num_jobs)
    hub, tracer, completed = _traced_hub()
    source = scenario.cluster
    cluster = Cluster(
        config=source.config, dvfs=source.dvfs, power_model=source.power_model
    )
    DiASSimulation(
        policy=policy, jobs=trace, cluster=cluster, seed=seed, telemetry=hub
    ).run()
    return tracer, completed


def _run_dag(seed: int, num_jobs: int = 25):
    scenario = dag_fork_join_scenario(num_jobs=num_jobs)
    trace = scenario.generate_trace(seed=seed)
    hub, tracer, completed = _traced_hub()
    DagSimulation(
        policy=SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
        jobs=trace,
        scheduler="critical_path_first",
        cluster=scenario.cluster,
        seed=seed,
        telemetry=hub,
    ).run()
    return tracer, completed


def _assert_invariants(tracer: Tracer, completed) -> None:
    traces = tracer.traces()
    assert traces, "a traced run must produce at least one job trace"
    assert len(traces) == len(completed)
    for trace in traces:
        problems = check_trace(trace)
        assert problems == [], f"job {trace.job_id}: {problems}"
        # Exactly one root job span per job.
        assert len(trace.by_cat("job")) == 1
        # One dispatch per queue wait: an eviction re-queues the job, so the
        # attempt count is evictions + 1 and matches the queue-span count.
        attempts = trace.by_cat("attempt")
        evicted = [
            span for span in attempts if span.extras.get("outcome") == "evicted"
        ]
        assert len(attempts) == len(evicted) + 1
        assert len(trace.by_cat("queue")) == len(attempts)
        # Annotation spans stay terminal.
        annotation_ids = {
            span.span_id for span in trace.spans if span.cat in TERMINAL_CATS
        }
        for span in trace.spans:
            assert span.parent_id not in annotation_ids
        # The decomposition closes onto the probe-reported response time.
        parts = decompose(trace)
        assert abs(parts["residual"]) < CLOSURE_EPSILON
        assert parts["response"] == pytest.approx(
            completed[trace.job_id], abs=CLOSURE_EPSILON
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("policy", _policies(), ids=lambda p: p.name)
def test_dias_span_trees_hold_invariants(policy, seed):
    tracer, completed = _run_dias(policy, seed)
    _assert_invariants(tracer, completed)


def test_preemptive_run_traces_evictions():
    """At least one eviction appears across seeds, and its spans line up."""
    for seed in range(3):
        tracer, _ = _run_dias(SchedulingPolicy.preemptive_priority(), seed)
        evicted = [
            span
            for span in tracer.spans
            if span.cat == "attempt" and span.extras.get("outcome") == "evicted"
        ]
        if evicted:
            evict_marks = [span for span in tracer.spans if span.cat == "evict"]
            assert len(evict_marks) == len(evicted)
            return
    pytest.fail("no eviction observed in any seeded preemptive run")


@pytest.mark.parametrize("seed", [0, 1])
def test_dag_span_trees_hold_invariants(seed):
    tracer, completed = _run_dag(seed)
    _assert_invariants(tracer, completed)


@pytest.mark.parametrize("seed", [0, 1])
def test_dag_observed_path_is_a_real_dag_path(seed):
    """The observed critical path walks parent edges of the executed DAG."""
    tracer, _ = _run_dag(seed)
    checked = 0
    for trace in tracer.traces():
        predicted = predicted_stage_path(trace)
        observed = observed_stage_path(trace)
        assert predicted, "DAG attempts must record the PERT prediction"
        assert observed, "completed DAG jobs must yield an observed path"
        starts, ends, parents = stage_observations(trace)
        # Every consecutive hop follows a recorded parent edge, and stage
        # intervals along the path never move backwards in time.
        for earlier, later in zip(observed, observed[1:]):
            assert earlier in parents[later]
            assert ends[earlier] <= starts[later] + 1e-9
        # The path ends at the stage finishing last.
        assert ends[observed[-1]] == max(ends.values())
        checked += 1
    assert checked > 0


def test_sprinted_run_nests_sprint_spans_inside_attempts():
    scenario = reference_two_priority_scenario()
    trace = scenario.generate_trace(seed=3, num_jobs=40)
    hub, tracer, completed = _traced_hub()
    source = scenario.cluster
    cluster = Cluster(
        config=source.config, dvfs=source.dvfs, power_model=source.power_model
    )
    DiASSimulation(
        policy=SchedulingPolicy.sprinted_non_preemptive(_sprint()),
        jobs=trace,
        cluster=cluster,
        seed=3,
        telemetry=hub,
    ).run()
    _assert_invariants(tracer, completed)
    sprints = [span for span in tracer.spans if span.cat == "sprint"]
    assert sprints, "the sprinting scenario must record sprint spans"
    by_id = {span.span_id: span for span in tracer.spans}
    for sprint in sprints:
        parent = by_id[sprint.parent_id]
        assert parent.cat in ("attempt", "job")
