"""Property-based tests on core invariants of the DiAS components."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dropper import find_missing_partitions
from repro.engine.dvfs import DVFSModel, FrequencyLevel
from repro.engine.job import effective_task_count
from repro.models.accuracy import AccuracyModel, compose_stage_drop_ratios
from repro.models.mg1 import (
    ServiceMoments,
    mg1_mean_waiting_time,
    nonpreemptive_priority_response_times,
    nonpreemptive_priority_waiting_times,
)
from repro.models.sprinting import SprintingRateModel
from repro.simulation.metrics import percentile

drop_ratios = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
task_counts = st.integers(min_value=0, max_value=500)


# ----------------------------------------------------------- task dropping
@given(n=task_counts, theta=drop_ratios)
@settings(max_examples=200, deadline=None)
def test_effective_task_count_bounds(n, theta):
    kept = effective_task_count(n, theta)
    assert 0 <= kept <= n
    assert kept == math.ceil(n * (1 - theta))
    if n > 0 and theta < 1:
        assert kept >= 1  # the ceiling keeps at least one task


@given(n=st.integers(min_value=1, max_value=500), theta=drop_ratios)
@settings(max_examples=200, deadline=None)
def test_dropping_is_monotone_in_theta(n, theta):
    smaller = find_missing_partitions(n, theta)
    larger_drop = min(0.99, theta + 0.2)
    assert find_missing_partitions(n, larger_drop) <= smaller


# ----------------------------------------------------------- accuracy model
@given(theta=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_accuracy_error_in_unit_interval(theta):
    model = AccuracyModel.paper_default()
    error = model.error(theta)
    assert 0.0 <= error <= 1.0


@given(thetas=st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_composed_drop_ratio_bounds(thetas):
    composed = compose_stage_drop_ratios(thetas)
    assert 0.0 <= composed <= 1.0
    assert composed >= max(thetas) - 1e-12


@given(tolerance=st.floats(min_value=0.001, max_value=0.9))
@settings(max_examples=100, deadline=None)
def test_max_drop_then_error_is_within_tolerance(tolerance):
    model = AccuracyModel.paper_default()
    theta = model.max_drop_for_error(tolerance)
    assert model.error(theta) <= tolerance + 1e-9


# ------------------------------------------------------------------ sprinting
@given(
    base_time=st.floats(min_value=1.0, max_value=500.0),
    timeout=st.floats(min_value=0.0, max_value=500.0),
    speedup=st.floats(min_value=1.0, max_value=4.0),
)
@settings(max_examples=150, deadline=None)
def test_sprinting_never_slows_a_job_down(base_time, timeout, speedup):
    model = SprintingRateModel(speedup=speedup, timeout=timeout)
    effective = model.effective_time_deterministic(base_time)
    assert effective <= base_time + 1e-9
    assert effective >= base_time / speedup - 1e-9


@given(
    frequency=st.floats(min_value=800.0, max_value=4000.0),
    beta=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_dvfs_speedup_bounded_by_frequency_ratio(frequency, beta):
    model = DVFSModel(
        base=FrequencyLevel("base", 800.0),
        sprint=FrequencyLevel("sprint", frequency),
        cpu_bound_fraction=beta,
    )
    assert 1.0 - 1e-9 <= model.sprint_speedup <= frequency / 800.0 + 1e-9


# ------------------------------------------------------------------- queueing
@given(
    rho=st.floats(min_value=0.05, max_value=0.9),
    scv=st.floats(min_value=0.1, max_value=4.0),
)
@settings(max_examples=100, deadline=None)
def test_mg1_waiting_time_scales_with_variability(rho, scv):
    mean = 1.0
    base = ServiceMoments(mean=mean, second_moment=(1 + scv) * mean**2)
    waiting = mg1_mean_waiting_time(rho, base)
    assert waiting >= 0
    # P-K formula is linear in E[S^2]: doubling the second moment doubles W.
    doubled = ServiceMoments(mean=mean, second_moment=2 * (1 + scv) * mean**2)
    assert mg1_mean_waiting_time(rho, doubled) == pytest.approx(2 * waiting, rel=1e-9)


@given(
    lam_high=st.floats(min_value=0.01, max_value=0.4),
    lam_low=st.floats(min_value=0.01, max_value=0.4),
    mean_high=st.floats(min_value=0.2, max_value=1.2),
    mean_low=st.floats(min_value=0.2, max_value=1.2),
)
@settings(max_examples=100, deadline=None)
def test_priority_queue_invariants(lam_high, lam_low, mean_high, mean_low):
    rates = {1: lam_high, 0: lam_low}
    services = {
        1: ServiceMoments(mean=mean_high, second_moment=2 * mean_high**2),
        0: ServiceMoments(mean=mean_low, second_moment=2 * mean_low**2),
    }
    rho = lam_high * mean_high + lam_low * mean_low
    responses = nonpreemptive_priority_response_times(rates, services)
    waits = nonpreemptive_priority_waiting_times(rates, services)
    if rho < 0.95:
        # Responses exceed service times and the high class waits less.
        assert responses[1] >= mean_high - 1e-9
        assert responses[0] >= mean_low - 1e-9
        assert waits[1] <= waits[0] + 1e-9
        # Kleinrock conservation: the load-weighted waits equal the FCFS value
        # computed on the aggregate arrival stream.
        aggregate_second = (
            lam_high * services[1].second_moment + lam_low * services[0].second_moment
        ) / (lam_high + lam_low)
        aggregate = ServiceMoments(
            mean=(lam_high * mean_high + lam_low * mean_low) / (lam_high + lam_low),
            second_moment=max(aggregate_second,
                              ((lam_high * mean_high + lam_low * mean_low) / (lam_high + lam_low)) ** 2),
        )
        fcfs_wait = mg1_mean_waiting_time(lam_high + lam_low, aggregate)
        weighted = (
            lam_high * mean_high * waits[1] + lam_low * mean_low * waits[0]
        ) / rho
        expected = (lam_high + lam_low) * aggregate.second_moment / 2 / (1 - rho)
        assert weighted == pytest.approx(expected, rel=1e-6)


# ------------------------------------------------------------------ percentile
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50),
       q=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=150, deadline=None)
def test_percentile_within_range(values, q):
    p = percentile(values, q)
    assert min(values) - 1e-9 <= p <= max(values) + 1e-9


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=50))
@settings(max_examples=100, deadline=None)
def test_percentile_monotone_in_q(values):
    assert percentile(values, 25) <= percentile(values, 75) + 1e-9
    assert percentile(values, 0) == pytest.approx(min(values))
    assert percentile(values, 100) == pytest.approx(max(values))
