"""Property tests: trace synthesis and replay are CRN-deterministic.

The replay acceptance bar from the paper-reproduction roadmap: the same
trace replayed twice gives byte-identical reports, and parallel ingestion
(``--jobs N``) never changes a result — only how fast the file is parsed.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.traces.formats import DAG_JSONL
from repro.traces.synth import synthesize_trace
from repro.workloads.scenarios import (
    dag_layered_scenario,
    reference_two_priority_scenario,
)


def _synth(path, seed=3, fmt=None, num_jobs=60):
    if fmt == DAG_JSONL:
        scenario = dag_layered_scenario(num_jobs=num_jobs)
        return synthesize_trace(path, scenario, num_jobs=num_jobs, seed=seed, fmt=fmt)
    scenario = reference_two_priority_scenario(num_jobs=num_jobs)
    return synthesize_trace(path, scenario, num_jobs=num_jobs, seed=seed)


def test_synthesis_is_deterministic(tmp_path):
    a, b, c = (str(tmp_path / name) for name in ("a.jsonl", "b.jsonl", "c.jsonl"))
    _synth(a, seed=3)
    _synth(b, seed=3)
    _synth(c, seed=4)
    assert open(a, "rb").read() == open(b, "rb").read()
    assert open(a, "rb").read() != open(c, "rb").read()


def _run_cli(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


def test_fleet_replay_is_deterministic_and_parallel_safe(tmp_path, capsys):
    path = str(tmp_path / "fleet.jsonl")
    _synth(path, num_jobs=80)
    base = _run_cli(capsys, ["fleet", "--replay", path])
    again = _run_cli(capsys, ["fleet", "--replay", path])
    parallel = _run_cli(capsys, ["fleet", "--replay", path, "--jobs", "2"])
    assert again == base
    assert parallel == base
    assert "Fleet replay" in base


def test_dag_replay_is_deterministic_and_parallel_safe(tmp_path, capsys):
    path = str(tmp_path / "dag.jsonl")
    _synth(path, fmt=DAG_JSONL, num_jobs=30)
    base = _run_cli(capsys, ["dag", "--replay", path])
    again = _run_cli(capsys, ["dag", "--replay", path])
    parallel = _run_cli(capsys, ["dag", "--replay", path, "--jobs", "2"])
    assert again == base
    assert parallel == base
    assert "DAG replay" in base


def test_time_scale_compresses_the_replayed_horizon(tmp_path, capsys):
    path = str(tmp_path / "fleet.jsonl")
    _synth(path, num_jobs=40)
    base = _run_cli(capsys, ["fleet", "--replay", path])
    compressed = _run_cli(
        capsys, ["fleet", "--replay", path, "--replay-time-scale", "2.0"]
    )
    # Same workload, different clock: the report must change, but the run
    # must still complete all jobs.
    assert compressed != base
    assert "40 jobs" in compressed
