"""Fault-injection determinism and span-tree properties.

Three contracts:

* **CRN** — fault draws live on dedicated ``faults/*`` random streams, so
  replicated runs with faults are bitwise-identical between serial and
  multiprocess execution, and a zero-probability fault plan reproduces the
  fault-free run exactly (fault draws never perturb workload streams).
* **Checkpoint/resume** — a run resumed from a mid-run snapshot finishes
  with metrics and fault counters bitwise-identical to the uninterrupted
  run (see also ``tests/faults/test_checkpoint.py``).
* **Span trees** — traced runs under crashes, retries and speculation still
  satisfy every structural invariant, and fault-induced re-execution shows
  up in (and closes under) the latency decomposition.
"""

from __future__ import annotations

import pytest

from repro.core.dias import DiASSimulation
from repro.core.policies import SchedulingPolicy
from repro.dag.simulation import replicate_dag
from repro.engine.cluster import Cluster
from repro.fleet.simulation import FleetSimulation, replicate_fleet
from repro.telemetry import CallbackSink, TelemetryHub, Tracer
from repro.telemetry.spans import TERMINAL_CATS, check_trace, decompose
from repro.workloads.scenarios import (
    FleetScenario,
    dag_fork_join_scenario,
    reference_two_priority_scenario,
)

CLOSURE_EPSILON = 1e-6

FULL_SPEC = (
    "crash:mttf=400,repair=40,probation=20;"
    "stragglers:p=0.15,slowdown=3,speculate=1.6;"
    "taskfail:p=0.08,retries=2"
)


def _fleet_scenario(num_jobs: int = 30) -> FleetScenario:
    return FleetScenario(
        base=reference_two_priority_scenario(num_jobs=num_jobs).with_utilisation(0.4),
        num_clusters=2,
    )


# ---------------------------------------------------------------- CRN
def test_fleet_replications_with_faults_serial_equals_parallel():
    scenario = _fleet_scenario()
    policy = SchedulingPolicy.non_preemptive_priority()
    kwargs = dict(
        dispatcher="round_robin", base_seed=3, faults=FULL_SPEC
    )
    serial = replicate_fleet(scenario, policy, 3, jobs=1, **kwargs)
    parallel = replicate_fleet(scenario, policy, 3, jobs=3, **kwargs)
    assert set(serial) == set(parallel)
    for name in serial:
        assert serial[name].samples == parallel[name].samples, name
    # Fault activity actually happened in the replications being compared.
    assert any(value > 0 for value in serial["faults/crashes"].samples)


def test_dag_replications_with_faults_serial_equals_parallel():
    scenario = dag_fork_join_scenario(num_jobs=12)
    policy = SchedulingPolicy.non_preemptive_priority()
    kwargs = dict(scheduler="critical_path_first", base_seed=5,
                  faults="stragglers:p=0.2,slowdown=3;taskfail:p=0.1,retries=2")
    serial = replicate_dag(scenario, policy, 3, jobs=1, **kwargs)
    parallel = replicate_dag(scenario, policy, 3, jobs=3, **kwargs)
    assert set(serial) == set(parallel)
    for name in serial:
        assert serial[name].samples == parallel[name].samples, name


def _dias(faults, seed: int = 9):
    scenario = reference_two_priority_scenario(num_jobs=30)
    source = scenario.cluster
    return DiASSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=seed),
        cluster=Cluster(
            config=source.config, dvfs=source.dvfs, power_model=source.power_model
        ),
        seed=seed,
        faults=faults,
    ).run()


def test_zero_probability_faults_reproduce_the_fault_free_run():
    """Fault draws live on their own streams: a plan that can never fire
    leaves every workload metric bitwise-identical to running without one."""
    clean = _dias(None)
    armed = _dias("stragglers:p=0,slowdown=3,speculate=0;taskfail:p=0,retries=2")
    assert armed.mean_response_time() == clean.mean_response_time()
    assert armed.tail_response_time() == clean.tail_response_time()
    assert armed.total_energy_joules == clean.total_energy_joules
    assert armed.completed_jobs == clean.completed_jobs
    assert all(value == 0 for value in armed.fault_counts.values())


# ------------------------------------------------- checkpoint/resume
def test_fleet_resume_matches_uninterrupted_run_bitwise(tmp_path):
    path = str(tmp_path / "fleet.ckpt")
    scenario = _fleet_scenario(num_jobs=40)
    policy = SchedulingPolicy.non_preemptive_priority()

    def build(**kwargs):
        return FleetSimulation(
            policy=policy,
            jobs=scenario.generate_trace(seed=11),
            clusters=scenario.make_clusters(),
            dispatcher="round_robin",
            seed=11,
            faults=FULL_SPEC,
            **kwargs,
        )

    reference = build().run()
    build(checkpoint_every=50.0, checkpoint_path=path).run(
        until=reference.duration * 0.6
    )
    from repro.faults.checkpoint import load_checkpoint

    payload = load_checkpoint(path)
    assert 0 < payload["routed"] < 80, "interruption must be mid-run"
    resumed_sim = build()
    resumed_sim.restore(payload)
    resumed = resumed_sim.run()
    assert resumed.summary() == reference.summary()
    assert dict(resumed.fault_counts) == dict(reference.fault_counts)


# ------------------------------------------------------- span trees
def _traced_dias(faults, seed: int = 4, num_jobs: int = 30):
    scenario = reference_two_priority_scenario(num_jobs=num_jobs)
    hub = TelemetryHub(tracing=True)
    tracer = hub.add_sink(Tracer())
    completed = {}
    hub.add_sink(
        CallbackSink(
            lambda event: completed.__setitem__(
                event["job_id"], event["response_time"]
            )
            if event["kind"] == "job_completed"
            else None
        )
    )
    source = scenario.cluster
    DiASSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=seed),
        cluster=Cluster(
            config=source.config, dvfs=source.dvfs, power_model=source.power_model
        ),
        seed=seed,
        telemetry=hub,
        faults=faults,
    ).run()
    return tracer, completed


def _assert_span_invariants(tracer, completed):
    traces = tracer.traces()
    assert traces and len(traces) == len(completed)
    for trace in traces:
        problems = check_trace(trace)
        assert problems == [], f"job {trace.job_id}: {problems}"
        attempts = trace.by_cat("attempt")
        evicted = [
            span for span in attempts if span.extras.get("outcome") == "evicted"
        ]
        assert len(attempts) == len(evicted) + 1
        assert len(trace.by_cat("queue")) == len(attempts)
        annotation_ids = {
            span.span_id for span in trace.spans if span.cat in TERMINAL_CATS
        }
        for span in trace.spans:
            assert span.parent_id not in annotation_ids
        parts = decompose(trace)
        assert abs(parts["residual"]) < CLOSURE_EPSILON
        assert parts["response"] == pytest.approx(
            completed[trace.job_id], abs=CLOSURE_EPSILON
        )
    return traces


@pytest.mark.parametrize(
    "faults",
    [
        "crash:mttf=300,repair=40",
        "stragglers:p=0.2,slowdown=3,speculate=1.3",
        "taskfail:p=0.1,retries=3,backoff=0.5",
        FULL_SPEC,
    ],
    ids=["crash", "speculate", "retry", "mixed"],
)
def test_span_invariants_hold_under_faults(faults):
    tracer, completed = _traced_dias(faults)
    traces = _assert_span_invariants(tracer, completed)
    fault_marks = [span for span in tracer.spans if span.cat == "fault"]
    assert fault_marks, "a faulty traced run must record fault annotation spans"
    # Fault annotations are instants, never parents.
    ids = {span.span_id for span in fault_marks}
    for span in tracer.spans:
        assert span.parent_id not in ids


def test_restart_recovery_shows_up_as_re_execution():
    tracer, completed = _traced_dias(
        "crash:mttf=250,repair=40,recovery=restart", seed=6
    )
    traces = _assert_span_invariants(tracer, completed)
    restarted = [t for t in traces if decompose(t)["re_execution"] > 0]
    assert restarted, "restart recovery must attribute time to re_execution"
    # Restarted jobs carry the crash/restart annotations explaining why.
    for trace in restarted:
        cats = {span.cat for span in trace.spans}
        assert "fault" in cats
