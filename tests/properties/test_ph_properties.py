"""Property-based tests for Phase-Type distributions and their closure ops."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.ph import PhaseType

positive_rates = st.floats(min_value=0.05, max_value=50.0, allow_nan=False)
means = st.floats(min_value=0.05, max_value=200.0, allow_nan=False)
scvs = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)


@given(mean=means, scv=scvs)
@settings(max_examples=60, deadline=None)
def test_two_moment_fit_matches_requested_moments(mean, scv):
    ph = PhaseType.fit_mean_scv(mean, scv)
    assert ph.mean == pytest.approx(mean, rel=1e-5)
    assert ph.scv == pytest.approx(scv, rel=1e-4)


@given(mean=means, scv=scvs)
@settings(max_examples=40, deadline=None)
def test_fitted_ph_is_a_valid_distribution(mean, scv):
    ph = PhaseType.fit_mean_scv(mean, scv)
    # CDF is monotone, within [0, 1] and approaches 1 far in the tail.
    points = [0.0, mean / 2, mean, 2 * mean, 10 * mean]
    values = [ph.cdf(x) for x in points]
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)
    assert all(values[i] <= values[i + 1] + 1e-9 for i in range(len(values) - 1))
    assert ph.cdf(60 * mean) > 0.95


@given(rate_a=positive_rates, rate_b=positive_rates)
@settings(max_examples=60, deadline=None)
def test_convolution_adds_means_and_variances(rate_a, rate_b):
    a = PhaseType.exponential(rate_a)
    b = PhaseType.erlang(2, rate_b)
    c = a.convolve(b)
    assert c.mean == pytest.approx(a.mean + b.mean, rel=1e-8)
    assert c.variance == pytest.approx(a.variance + b.variance, rel=1e-8)


@given(
    weight=st.floats(min_value=0.01, max_value=0.99),
    rate_a=positive_rates,
    rate_b=positive_rates,
)
@settings(max_examples=60, deadline=None)
def test_mixture_mean_is_weighted_average(weight, rate_a, rate_b):
    a = PhaseType.exponential(rate_a)
    b = PhaseType.exponential(rate_b)
    mix = PhaseType.mixture([weight, 1 - weight], [a, b])
    assert mix.mean == pytest.approx(weight * a.mean + (1 - weight) * b.mean, rel=1e-8)


@given(mean=means, scv=scvs, factor=st.floats(min_value=0.1, max_value=20.0))
@settings(max_examples=60, deadline=None)
def test_scaling_preserves_scv(mean, scv, factor):
    ph = PhaseType.fit_mean_scv(mean, scv)
    scaled = ph.scaled(factor)
    assert scaled.mean == pytest.approx(factor * mean, rel=1e-6)
    assert scaled.scv == pytest.approx(ph.scv, rel=1e-6)


@given(k=st.integers(min_value=1, max_value=12), rate=positive_rates)
@settings(max_examples=60, deadline=None)
def test_erlang_moments_formulae(k, rate):
    ph = PhaseType.erlang(k, rate)
    assert ph.mean == pytest.approx(k / rate, rel=1e-9)
    assert ph.variance == pytest.approx(k / rate**2, rel=1e-9)
    assert ph.scv == pytest.approx(1.0 / k, rel=1e-9)
