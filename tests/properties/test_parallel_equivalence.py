"""Serial/parallel equivalence and kernel-compaction order properties.

The parallel engine promises *bitwise identical* metrics to serial execution
for every experiment family (reference policy comparisons, fleet, DAG), and
the kernel promises that heap compaction never changes the order in which
surviving events fire.  These are the load-bearing invariants behind
``--jobs N``; each test exercises one of them end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.core.policies import SchedulingPolicy
from repro.dag.simulation import replicate_dag
from repro.experiments.parallel import PolicyComparisonExperiment
from repro.fleet.simulation import replicate_fleet
from repro.simulation.des import Simulator
from repro.simulation.replication import ReplicationRunner
from repro.workloads import scenarios as scenario_module


def _samples(metrics):
    return {name: metric.samples for name, metric in metrics.items()}


def _policy() -> SchedulingPolicy:
    return SchedulingPolicy.differential_approximation({0: 0.2, 2: 0.0})


def test_reference_comparison_parallel_equals_serial():
    scenario = scenario_module.reference_two_priority_scenario()
    policies = [SchedulingPolicy.preemptive_priority(), _policy()]
    experiment = PolicyComparisonExperiment(scenario, policies, num_jobs=30)
    serial = ReplicationRunner(experiment).run(4, base_seed=7, jobs=1)
    parallel = ReplicationRunner(experiment).run(4, base_seed=7, jobs=2)
    assert _samples(serial) == _samples(parallel)


def test_fleet_replications_parallel_equals_serial():
    scenario = scenario_module.fleet_two_priority_scenario(
        num_clusters=2, num_jobs_per_cluster=12
    )
    policy = _policy()
    serial = replicate_fleet(scenario, policy, 3, dispatcher="jsq", jobs=1)
    parallel = replicate_fleet(scenario, policy, 3, dispatcher="jsq", jobs=2)
    assert _samples(serial) == _samples(parallel)


def test_dag_replications_parallel_equals_serial():
    scenario = scenario_module.dag_layered_scenario(num_jobs=8)
    policy = SchedulingPolicy.differential_approximation({1: 0.0, 0: 0.2})
    serial = replicate_dag(
        scenario, policy, 3, scheduler="critical_path_first", jobs=1
    )
    parallel = replicate_dag(
        scenario, policy, 3, scheduler="critical_path_first", jobs=2
    )
    assert _samples(serial) == _samples(parallel)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_heap_compaction_never_reorders_surviving_events(seed):
    """Fire order with aggressive compaction == fire order with none."""
    rng = random.Random(seed)
    waves = []
    for wave in range(12):
        waves.append(
            [(rng.uniform(0.0, 100.0), rng.randrange(3), wave * 100 + i)
             for i in range(100)]
        )

    def build(compaction_threshold):
        sim = Simulator(compaction_threshold=compaction_threshold)
        fired = []
        previous_wave = []
        for wave in waves:
            # Cancel ~2/3 of the previous wave, then schedule the next one, so
            # dead entries accumulate while scheduling continues (the pattern
            # that triggers the watermark scan).
            for event, index in previous_wave:
                if index % 3 != 0:
                    event.cancel()
            previous_wave = []
            for when, priority, index in wave:
                event = sim.schedule(
                    when,
                    lambda s, index=index: fired.append((s.now, index)),
                    priority=priority,
                )
                previous_wave.append((event, index))
        sim.run()
        return sim, fired

    compacting, fired_compacting = build(compaction_threshold=8)
    lazy, fired_lazy = build(compaction_threshold=None)
    assert compacting.heap_compactions > 0, "compaction should have triggered"
    assert lazy.heap_compactions == 0
    assert fired_compacting == fired_lazy
    assert compacting.processed_events == lazy.processed_events


def test_compaction_bounds_heap_under_timeout_storm():
    """Far-future cancelled timeouts must not bloat the heap unboundedly."""
    sim = Simulator()
    state = {"timeout": None, "count": 0}

    def tick(s):
        state["count"] += 1
        if state["timeout"] is not None:
            state["timeout"].cancel()
        state["timeout"] = s.schedule(1e12, lambda s: None)
        if state["count"] < 5000:
            s.schedule(1.0, tick)
        else:
            s.stop()

    sim.schedule(0.0, tick)
    sim.run()
    assert sim.heap_compactions > 0
    # One live timeout plus at most ~2x the compaction threshold of dead ones.
    assert sim.pending_events < 3000
