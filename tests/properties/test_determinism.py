"""Common-random-numbers determinism and DAG structural invariants.

The paper's relative-difference methodology requires every policy under
comparison to see *identical* job sequences (common random numbers).  These
tests pin that property at the trace level — byte-identical serialised traces
across stage schedulers and fleet dispatchers for a fixed seed — and check
the structural invariants of the DAG layer (acyclicity rejection, topological
order, critical-path bounds) over randomly generated topologies.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import SchedulingPolicy
from repro.dag.analytics import analyze_critical_path, stage_duration
from repro.dag.graph import DagStage, StageDAG
from repro.dag.simulation import run_dag_policy
from repro.fleet.simulation import FleetSimulation
from repro.workloads.dag import layered_topology
from repro.workloads.scenarios import (
    HIGH,
    dag_layered_scenario,
    fleet_two_priority_scenario,
)


# --------------------------------------------------------- trace serialisers
def serialise_dag_trace(trace) -> bytes:
    """Canonical byte encoding of a DAG-job trace (full sampled content)."""
    payload = [
        {
            "job_id": job.job_id,
            "priority": job.priority,
            "arrival": job.arrival_time,
            "size_mb": job.size_mb,
            "stages": [
                {
                    "index": s.index,
                    "parents": list(s.parents),
                    "maps": s.map_task_times,
                    "reduces": s.reduce_task_times,
                    "shuffle": s.shuffle_time,
                    "droppable": s.droppable,
                }
                for s in job.stages
            ],
        }
        for job in trace
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def serialise_job_trace(trace) -> bytes:
    """Canonical byte encoding of a linear-job trace."""
    payload = [
        {
            "job_id": job.job_id,
            "priority": job.priority,
            "arrival": job.arrival_time,
            "size_mb": job.size_mb,
            "stages": [
                {
                    "index": s.index,
                    "maps": s.map_task_times,
                    "reduces": s.reduce_task_times,
                    "shuffle": s.shuffle_time,
                }
                for s in job.stages
            ],
        }
        for job in trace
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


# ------------------------------------------------- common random numbers: DAG
def test_stage_schedulers_see_byte_identical_traces():
    """Trace generation must not depend on the stage scheduler under test."""
    scenario = dag_layered_scenario(num_jobs=25)
    baseline = serialise_dag_trace(scenario.generate_trace(seed=11))
    # Regenerate "for" two different schedulers: the scheduler is not an
    # input to generation, so the bytes must match exactly.
    for _scheduler in ("fifo", "critical_path_first"):
        assert serialise_dag_trace(scenario.generate_trace(seed=11)) == baseline
    assert serialise_dag_trace(scenario.generate_trace(seed=12)) != baseline


def test_dag_runs_identical_across_repeats_per_scheduler():
    scenario = dag_layered_scenario(num_jobs=20)
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})
    for scheduler in ("fifo", "shortest_remaining_work"):
        results = [
            run_dag_policy(
                policy,
                scenario.generate_trace(seed=6),
                scheduler=scheduler,
                cluster=scenario.cluster,
                seed=6,
            )
            for _ in range(2)
        ]
        rows_a = [
            (r.job_id, r.completion_time, r.execution_time)
            for r in results[0].metrics.records
        ]
        rows_b = [
            (r.job_id, r.completion_time, r.execution_time)
            for r in results[1].metrics.records
        ]
        assert rows_a == rows_b


# ----------------------------------------------- common random numbers: fleet
def test_fleet_dispatchers_see_byte_identical_traces():
    scenario = fleet_two_priority_scenario(num_clusters=3, num_jobs_per_cluster=20)
    baseline = serialise_job_trace(scenario.generate_trace(seed=11))
    for _dispatcher in ("round_robin", "least_work_left"):
        assert serialise_job_trace(scenario.generate_trace(seed=11)) == baseline


def test_fleet_run_identical_across_repeats_per_dispatcher():
    scenario = fleet_two_priority_scenario(num_clusters=3, num_jobs_per_cluster=15)
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})
    for dispatcher in ("round_robin", "jsq"):
        outcomes = []
        for _ in range(2):
            simulation = FleetSimulation(
                policy=policy,
                jobs=scenario.generate_trace(seed=8),
                clusters=scenario.make_clusters(),
                dispatcher=dispatcher,
                seed=8,
            )
            result = simulation.run()
            outcomes.append(
                (
                    tuple(result.dispatch_counts),
                    result.mean_response_time(),
                    result.tail_response_time(HIGH),
                    result.total_energy_joules,
                )
            )
        assert outcomes[0] == outcomes[1]


# ----------------------------------------------------- DAG invariants (random)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_random_layered_topologies_are_valid_dags(seed):
    rng = np.random.default_rng(seed)
    spec = layered_topology(rng, num_layers=4, min_width=1, max_width=4)
    stages = [
        DagStage(
            index=index,
            map_task_times=[1.0],
            reduce_task_times=[],
            shuffle_time=0.0,
            parents=parents,
        )
        for index, parents in spec
    ]
    dag = StageDAG(stages)  # construction itself asserts acyclicity
    order = dag.topological_order()
    positions = {index: pos for pos, index in enumerate(order)}
    for s in dag:
        for parent in s.parents:
            assert positions[parent] < positions[s.index]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    slots=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_critical_path_at_least_longest_stage(seed, slots):
    rng = np.random.default_rng(seed)
    spec = layered_topology(rng, num_layers=3, min_width=1, max_width=3)
    stages = [
        DagStage(
            index=index,
            map_task_times=list(rng.uniform(0.5, 5.0, size=int(rng.integers(1, 6)))),
            reduce_task_times=[],
            shuffle_time=0.0,
            parents=parents,
        )
        for index, parents in spec
    ]
    dag = StageDAG(stages)
    analysis = analyze_critical_path(dag, slots=slots)
    longest = max(stage_duration(s, slots) for s in dag)
    assert analysis.critical_path_length >= longest - 1e-9
    assert analysis.lower_bound_makespan >= analysis.critical_path_length - 1e-9
    # Slack is non-negative and zero along the reported critical path.
    assert all(slack >= -1e-9 for slack in analysis.slack.values())
    for index in analysis.critical_path:
        assert analysis.slack[index] == pytest.approx(0.0, abs=1e-9)


def test_cycle_rejection_invariant():
    """Any back edge added to a chain must be rejected."""
    for length in (2, 3, 5):
        stages = [
            DagStage(
                index=i,
                map_task_times=[1.0],
                reduce_task_times=[],
                shuffle_time=0.0,
                parents=(i - 1,) if i > 0 else (length - 1,),
            )
            for i in range(length)
        ]
        with pytest.raises(ValueError, match="cycle"):
            StageDAG(stages)
