"""Decision-hook behaviour preservation.

The decision-point refactor (``decision_hook`` on :class:`DagSimulation` /
:class:`FleetSimulation`) promises that re-expressing every built-in stage
scheduler and fleet dispatcher as an agent behind the hook protocol changes
*nothing*: per-job records, summaries, parallel replication metrics, and
streamed telemetry must stay byte-identical to the hookless direct path.
These tests are the proof the learned-policy layer leans on — if the hook
path drifted, training rewards would silently diverge from the simulations
the rest of the repo reports.
"""

from __future__ import annotations

import pytest

from repro.core.policies import SchedulingPolicy
from repro.dag.schedulers import STAGE_SCHEDULERS
from repro.dag.simulation import DagSimulation, replicate_dag
from repro.env import AgentDecisionHook, BuiltinAgent, SchedulerAgent
from repro.fleet.dispatcher import ROUTERS
from repro.fleet.simulation import FleetSimulation, replicate_fleet
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.sinks import JsonLinesSink
from repro.workloads import scenarios as scenario_module

SEED = 3


def _policy() -> SchedulingPolicy:
    return SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})


def _dag_run(scheduler, hook=None, telemetry_path=None):
    scenario = scenario_module.dag_layered_scenario(num_jobs=6)
    hub = None
    if telemetry_path is not None:
        hub = TelemetryHub(sample_interval=5.0, tracing=True)
        hub.add_sink(JsonLinesSink(str(telemetry_path)))
    simulation = DagSimulation(
        policy=_policy(),
        jobs=scenario.generate_trace(seed=SEED),
        scheduler=scheduler,
        cluster=scenario.cluster,
        seed=SEED,
        decision_hook=hook,
        **({} if hub is None else {"telemetry": hub}),
    )
    result = simulation.run()
    if hub is not None:
        hub.close()
    return result


def _fleet_run(dispatcher, hook=None, telemetry_path=None):
    scenario = scenario_module.fleet_two_priority_scenario(
        num_clusters=3, num_jobs_per_cluster=15
    )
    hub = None
    if telemetry_path is not None:
        hub = TelemetryHub(sample_interval=5.0, tracing=True)
        hub.add_sink(JsonLinesSink(str(telemetry_path)))
    simulation = FleetSimulation(
        policy=_policy(),
        jobs=scenario.generate_trace(seed=SEED),
        clusters=scenario.make_clusters(),
        dispatcher=dispatcher,
        seed=SEED,
        decision_hook=hook,
        **({} if hub is None else {"telemetry": hub}),
    )
    result = simulation.run()
    if hub is not None:
        hub.close()
    return result


def _samples(metrics):
    return {name: metric.samples for name, metric in metrics.items()}


# ------------------------------------------------- built-ins through the hook
@pytest.mark.parametrize("scheduler", STAGE_SCHEDULERS)
def test_every_stage_scheduler_is_identical_through_the_hook(scheduler):
    direct = _dag_run(scheduler)
    hooked = _dag_run(scheduler, hook=AgentDecisionHook(BuiltinAgent()))
    assert hooked.metrics.records == direct.metrics.records
    assert hooked.total_energy_joules == direct.total_energy_joules


@pytest.mark.parametrize("dispatcher", ROUTERS)
def test_every_dispatcher_is_identical_through_the_hook(dispatcher):
    direct = _fleet_run(dispatcher)
    hooked = _fleet_run(dispatcher, hook=AgentDecisionHook(BuiltinAgent()))
    assert hooked.records() == direct.records()
    assert list(hooked.dispatch_counts) == list(direct.dispatch_counts)
    assert hooked.summary() == direct.summary()


@pytest.mark.parametrize("scheduler", STAGE_SCHEDULERS)
def test_scheduler_agent_matches_direct_named_scheduler(scheduler):
    """SchedulerAgent(name) on a fifo-configured sim == direct scheduler=name."""
    direct = _dag_run(scheduler)
    hooked = _dag_run("fifo", hook=AgentDecisionHook(SchedulerAgent(scheduler)))
    assert hooked.metrics.records == direct.metrics.records


# ------------------------------------------------ hooked replication parallel
def test_replicate_dag_with_hook_serial_equals_parallel():
    scenario = scenario_module.dag_layered_scenario(num_jobs=5)
    hook = AgentDecisionHook(BuiltinAgent())
    direct = replicate_dag(scenario, _policy(), 3, scheduler="fifo", jobs=1)
    serial = replicate_dag(
        scenario, _policy(), 3, scheduler="fifo", jobs=1, decision_hook=hook
    )
    parallel = replicate_dag(
        scenario, _policy(), 3, scheduler="fifo", jobs=2, decision_hook=hook
    )
    assert _samples(serial) == _samples(parallel)
    assert _samples(serial) == _samples(direct)


def test_replicate_fleet_with_hook_serial_equals_parallel():
    scenario = scenario_module.fleet_two_priority_scenario(
        num_clusters=2, num_jobs_per_cluster=10
    )
    hook = AgentDecisionHook(BuiltinAgent())
    direct = replicate_fleet(scenario, _policy(), 3, dispatcher="jsq", jobs=1)
    serial = replicate_fleet(
        scenario, _policy(), 3, dispatcher="jsq", jobs=1, decision_hook=hook
    )
    parallel = replicate_fleet(
        scenario, _policy(), 3, dispatcher="jsq", jobs=2, decision_hook=hook
    )
    assert _samples(serial) == _samples(parallel)
    assert _samples(serial) == _samples(direct)


# --------------------------------------------------- telemetry byte-identity
def test_hooked_dag_run_streams_byte_identical_telemetry(tmp_path):
    direct_path = tmp_path / "direct.jsonl"
    hooked_path = tmp_path / "hooked.jsonl"
    _dag_run("critical_path_first", telemetry_path=direct_path)
    _dag_run(
        "critical_path_first",
        hook=AgentDecisionHook(BuiltinAgent()),
        telemetry_path=hooked_path,
    )
    assert hooked_path.read_bytes() == direct_path.read_bytes()


def test_hooked_fleet_run_streams_byte_identical_telemetry(tmp_path):
    direct_path = tmp_path / "direct.jsonl"
    hooked_path = tmp_path / "hooked.jsonl"
    _fleet_run("least_work_left", telemetry_path=direct_path)
    _fleet_run(
        "least_work_left",
        hook=AgentDecisionHook(BuiltinAgent()),
        telemetry_path=hooked_path,
    )
    assert hooked_path.read_bytes() == direct_path.read_bytes()


# ----------------------------------------------------------- hook validation
def test_out_of_range_stage_choice_is_rejected():
    with pytest.raises(ValueError, match="invalid stage index"):
        _dag_run("fifo", hook=lambda point: point.num_actions)


def test_out_of_range_route_choice_is_rejected():
    with pytest.raises(ValueError, match="invalid cluster"):
        _fleet_run("round_robin", hook=lambda point: -1)
