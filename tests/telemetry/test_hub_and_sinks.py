"""Tests for the telemetry probe bus and its sinks."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    NULL_HUB,
    CallbackSink,
    JsonLinesSink,
    RingBufferSink,
    TelemetryHub,
    merge_parts,
    part_path,
    seed_part_path,
)


def test_hub_disabled_without_sinks():
    hub = TelemetryHub()
    assert not hub.enabled
    hub.emit("job_admitted", 1.0, src="dias", job_id=1, priority=0)
    assert hub.events_emitted == 0


def test_hub_enables_on_first_sink_and_fans_out():
    hub = TelemetryHub()
    seen = []
    hub.add_sink(CallbackSink(seen.append))
    ring = hub.add_sink(RingBufferSink(capacity=8))
    assert hub.enabled
    hub.emit("job_admitted", 2.5, src="dias", job_id=7, priority=1)
    assert hub.events_emitted == 1
    assert seen == [{"t": 2.5, "kind": "job_admitted", "src": "dias",
                     "job_id": 7, "priority": 1}]
    assert list(ring.events) == seen


def test_remove_last_sink_disables_hub():
    hub = TelemetryHub()
    sink = hub.add_sink(RingBufferSink())
    hub.remove_sink(sink)
    assert not hub.enabled


def test_null_hub_refuses_sinks():
    with pytest.raises(RuntimeError):
        NULL_HUB.add_sink(RingBufferSink())
    assert not NULL_HUB.enabled


def test_invalid_sample_interval_rejected():
    with pytest.raises(ValueError):
        TelemetryHub(sample_interval=0.0)
    with pytest.raises(ValueError):
        TelemetryHub(sample_interval=-1.0)


def test_jsonl_sink_writes_canonical_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    hub = TelemetryHub()
    sink = hub.add_sink(JsonLinesSink(str(path)))
    hub.emit("sample", 1.0, src="kernel", b=2.0, a=1.0)
    hub.close()
    assert sink.events_written == 1
    line = path.read_text().strip()
    # Canonical encoding: sorted keys, no whitespace.
    assert line == json.dumps(json.loads(line), sort_keys=True,
                              separators=(",", ":"))


def test_ring_buffer_bounded():
    ring = RingBufferSink(capacity=3)
    for i in range(10):
        ring.write({"t": float(i), "kind": "sample", "src": "x"})
    assert len(ring) == 3
    assert [e["t"] for e in ring.events] == [7.0, 8.0, 9.0]


def test_merge_parts_preserves_order_and_cleans_up(tmp_path):
    base = str(tmp_path / "out.jsonl")
    parts = [part_path(base, f"u{i}") for i in range(3)]
    for i, part in enumerate(parts):
        with open(part, "w") as handle:
            handle.write(f'{{"t":{i}.0}}\n')
    count = merge_parts(base, parts)
    assert count == 3
    lines = open(base).read().splitlines()
    assert lines == ['{"t":0.0}', '{"t":1.0}', '{"t":2.0}']
    import os
    assert not any(os.path.exists(part) for part in parts)


def test_seed_part_path_unique_per_seed():
    assert seed_part_path("x.jsonl", 0) != seed_part_path("x.jsonl", 1000)
