"""CLI-level tests for --telemetry/--telemetry-interval/--quantiles/inspect."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.schema import validate_file


def test_fleet_telemetry_writes_schema_valid_jsonl(tmp_path, capsys):
    path = str(tmp_path / "fleet.jsonl")
    code = main(["fleet", "--clusters", "2", "--num-jobs", "40", "--seed", "1",
                 "--telemetry", path, "--telemetry-interval", "1.0"])
    assert code == 0
    count = validate_file(path)
    assert count > 0
    kinds = {json.loads(line)["kind"] for line in open(path)}
    assert {"run_start", "sample", "job_completed", "run_end"} <= kinds


def test_inspect_renders_fleet_stream(tmp_path, capsys):
    path = str(tmp_path / "fleet.jsonl")
    assert main(["fleet", "--clusters", "2", "--num-jobs", "40", "--seed", "1",
                 "--telemetry", path, "--telemetry-interval", "1.0"]) == 0
    capsys.readouterr()
    assert main(["inspect", path]) == 0
    output = capsys.readouterr().out
    assert "Event counts" in output
    assert "Completed jobs by priority" in output
    assert main(["inspect", path, "--validate"]) == 0
    assert "all lines valid" in capsys.readouterr().out


def test_inspect_missing_file_fails_cleanly(capsys):
    assert main(["inspect", "/nonexistent/telemetry.jsonl"]) == 1
    assert "error:" in capsys.readouterr().err


def test_unwritable_telemetry_path_fails_before_running(capsys):
    code = main(["fleet", "--clusters", "2", "--num-jobs", "40",
                 "--telemetry", "/nonexistent-dir/t.jsonl"])
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err and "cannot write telemetry file" in err


def test_telemetry_interval_must_be_positive(capsys):
    with pytest.raises(SystemExit):
        main(["fleet", "--num-jobs", "10", "--telemetry", "t.jsonl",
              "--telemetry-interval", "0"])


def test_compare_quantiles_renders_streaming_table(capsys):
    code = main(["compare", "--num-jobs", "40", "--seed", "2",
                 "--quantiles", "0.9,0.999"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Streaming response-time quantiles" in output
    assert "p90_response_s" in output
    assert "p99.9_response_s" in output


def test_compare_quantiles_rejects_replications(capsys):
    code = main(["compare", "--num-jobs", "20", "--quantiles", "0.9",
                 "--replications", "2"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_quantiles_flag_validates_fractions(capsys):
    with pytest.raises(SystemExit):
        main(["compare", "--num-jobs", "10", "--quantiles", "1.5"])
    with pytest.raises(SystemExit):
        main(["compare", "--num-jobs", "10", "--quantiles", "0.9,nope"])
