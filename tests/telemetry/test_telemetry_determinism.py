"""Determinism guarantees of the telemetry layer.

Three properties back the "continuous monitoring without breaking
reproducibility" claim:

* the telemetry stream is a pure function of (seed, config) — running the
  same command twice yields byte-identical JSONL;
* serial and ``--jobs N`` runs produce byte-identical *merged* output (the
  per-work-unit part files are merged in submission order);
* attaching a telemetry hub does not perturb the simulation itself — the
  reported results match a run without telemetry, and a hub with no sinks
  (disabled) leaves even the kernel's instrumented fast path untouched.
"""

from __future__ import annotations

import glob
import os

from repro.cli import main
from repro.telemetry.schema import validate_file


def _run(args, capsys):
    assert main(args) == 0
    return capsys.readouterr().out


def _no_parts_left(base):
    assert glob.glob(base + ".part-*") == []


def test_fleet_telemetry_same_seed_is_byte_identical(tmp_path, capsys):
    paths = [str(tmp_path / f"run{i}.jsonl") for i in range(2)]
    for path in paths:
        _run(["fleet", "--clusters", "2", "--num-jobs", "30", "--seed", "11",
              "--telemetry", path, "--telemetry-interval", "1.0"], capsys)
    first, second = (open(p, "rb").read() for p in paths)
    assert first and first == second
    assert validate_file(paths[0]) > 0


def test_replicated_fleet_serial_vs_parallel_merged_output_identical(
        tmp_path, capsys):
    serial = str(tmp_path / "serial.jsonl")
    parallel = str(tmp_path / "parallel.jsonl")
    base = ["fleet", "--clusters", "2", "--num-jobs", "25", "--seed", "3",
            "--replications", "3", "--telemetry-interval", "2.0"]
    out_serial = _run(base + ["--telemetry", serial, "--jobs", "1"], capsys)
    out_parallel = _run(base + ["--telemetry", parallel, "--jobs", "2"], capsys)
    assert out_serial == out_parallel
    assert open(serial, "rb").read() == open(parallel, "rb").read()
    _no_parts_left(serial)
    _no_parts_left(parallel)


def test_sweep_serial_vs_parallel_merged_output_identical(tmp_path, capsys):
    serial = str(tmp_path / "serial.jsonl")
    parallel = str(tmp_path / "parallel.jsonl")
    base = ["sweep", "--num-jobs", "20", "--seed", "5",
            "--ratios", "0.0", "0.5", "--telemetry-interval", "2.0"]
    out_serial = _run(base + ["--telemetry", serial, "--jobs", "1"], capsys)
    out_parallel = _run(base + ["--telemetry", parallel, "--jobs", "2"], capsys)
    assert out_serial == out_parallel
    assert open(serial, "rb").read() == open(parallel, "rb").read()
    _no_parts_left(serial)


def test_telemetry_does_not_perturb_results(tmp_path, capsys):
    """Reported tables match exactly with and without --telemetry."""
    path = str(tmp_path / "t.jsonl")
    base = ["fleet", "--clusters", "2", "--num-jobs", "30", "--seed", "7"]
    plain = _run(base, capsys)
    with_telemetry = _run(
        base + ["--telemetry", path, "--telemetry-interval", "1.0"], capsys)
    assert plain == with_telemetry
    assert os.path.getsize(path) > 0


def test_dag_telemetry_does_not_perturb_results(tmp_path, capsys):
    path = str(tmp_path / "t.jsonl")
    base = ["dag", "--scenario", "fork-join", "--num-jobs", "15", "--seed", "2"]
    plain = _run(base, capsys)
    with_telemetry = _run(
        base + ["--telemetry", path, "--telemetry-interval", "1.0"], capsys)
    assert plain == with_telemetry
    assert validate_file(path) > 0


def test_compare_telemetry_same_seed_is_byte_identical(tmp_path, capsys):
    paths = [str(tmp_path / f"c{i}.jsonl") for i in range(2)]
    for path in paths:
        _run(["compare", "--num-jobs", "25", "--seed", "9",
              "--telemetry", path, "--telemetry-interval", "2.0"], capsys)
    assert open(paths[0], "rb").read() == open(paths[1], "rb").read()
    _no_parts_left(paths[0])


def test_disabled_hub_matches_null_hub_kernel_results():
    """A hub with no sinks must leave the kernel on the uninstrumented path."""
    from repro.simulation.des import Simulator
    from repro.telemetry import NULL_HUB, TelemetryHub

    def drive(sim):
        order = []
        for i in range(20):
            sim.schedule(0.5 * i, lambda s, i=i: order.append((s.now, i)))
        end = sim.run()
        return end, order, sim.processed_events

    null_result = drive(Simulator(telemetry=NULL_HUB))
    disabled_result = drive(Simulator(telemetry=TelemetryHub()))
    assert null_result == disabled_result
