"""Tests for the run inspector's series extraction, plots and report."""

from __future__ import annotations

import json

from repro.telemetry.inspect import (
    ascii_plot,
    ascii_rate_plot,
    event_counts,
    event_weight_series,
    inspect_file,
    job_rows,
    render_report,
    sample_series,
)


def _synthetic_events():
    events = [
        {"t": 0.0, "kind": "run_start", "src": "fleet", "run": "fleet",
         "policy": "drop(0.2)+sprint", "clusters": 2},
    ]
    for i in range(20):
        t = float(i)
        events.append({"t": t, "kind": "sample", "src": "cluster0",
                       "utilisation": 0.5 + 0.02 * i, "queue_depth": float(i % 5)})
        events.append({"t": t, "kind": "sample", "src": "kernel",
                       "processed_events": 10.0 * i, "pending_events": 3.0,
                       "scheduled_events": 10.0 * i + 3.0, "heap_compactions": 0.0,
                       "events_per_simsec": 10.0})
    for i in range(8):
        events.append({"t": float(i), "kind": "job_completed", "src": "dias",
                       "job_id": i, "priority": i % 2, "response_time": 1.0 + i,
                       "queueing_time": 0.5, "execution_time": 0.5 + i,
                       "drop_ratio": 0.2, "sprinted": False})
        events.append({"t": float(i), "kind": "drop_decision", "src": "dias",
                       "job_id": i, "priority": i % 2, "map_drop_ratio": 0.2,
                       "reduce_drop_ratio": 0.0,
                       "kept_map_tasks": 8, "dropped_map_tasks": 2})
    events.append({"t": 20.0, "kind": "run_end", "src": "fleet",
                   "completed": 8, "duration": 20.0})
    return events


def test_sample_series_filters_by_field_and_src():
    events = _synthetic_events()
    times, values = sample_series(events, "utilisation")
    assert len(times) == 20 and values[0] == 0.5
    ktimes, kvalues = sample_series(events, "events_per_simsec", src="kernel")
    assert len(ktimes) == 20 and all(v == 10.0 for v in kvalues)
    assert sample_series(events, "no_such_field") == ([], [])


def test_event_weight_series_counts_and_weights():
    events = _synthetic_events()
    times, ones = event_weight_series(events, "job_completed")
    assert len(times) == 8 and all(w == 1.0 for w in ones)
    _, dropped = event_weight_series(events, "drop_decision", "dropped_map_tasks")
    assert sum(dropped) == 16.0


def test_ascii_plot_renders_label_axes_and_bars():
    times = [float(i) for i in range(50)]
    values = [float(i) for i in range(50)]
    plot = ascii_plot(times, values, width=40, height=6, label="ramp")
    lines = plot.splitlines()
    assert lines[0] == "ramp"
    assert len(lines) == 1 + 6 + 2  # label + height rows + x-axis + t labels
    assert "█" in plot
    assert "t=0" in lines[-1] and "t=49" in lines[-1]


def test_ascii_plot_empty_series():
    assert ascii_plot([], [], label="empty") == "empty: (no data)"
    assert ascii_rate_plot([], [], label="rate") == "rate: (no data)"


def test_event_counts_sorted_by_kind():
    counts = event_counts(_synthetic_events())
    kinds = [row["kind"] for row in counts]
    assert kinds == sorted(kinds)
    as_map = {row["kind"]: row["count"] for row in counts}
    assert as_map["sample"] == 40
    assert as_map["job_completed"] == 8


def test_job_rows_grouped_by_priority_descending():
    rows = job_rows(_synthetic_events())
    assert [row["priority"] for row in rows] == [1, 0]
    assert sum(row["jobs"] for row in rows) == 8
    assert all(row["mean_drop_ratio"] == 0.2 for row in rows)


def test_render_report_contains_all_sections():
    report = render_report(_synthetic_events(), width=40, height=6)
    assert "58 events" in report
    assert "policy=drop(0.2)+sprint" in report
    assert "Event counts" in report
    assert "Completed jobs by priority" in report
    assert "Drop decisions by priority" in report
    assert "Utilisation" in report
    assert "Queue depth" in report
    assert "Drop rate" in report
    assert "Kernel event rate" in report


def test_render_report_empty():
    assert render_report([], title="T") == "T: (no events)"


def test_inspect_file_validate_only_and_render(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in _synthetic_events())
    )
    summary = inspect_file(str(path), validate_only=True)
    assert "58 events" in summary and "valid" in summary
    report = inspect_file(str(path), width=40, height=5)
    assert "Event counts" in report
