"""Tests for the simulator-clock periodic sampler."""

from __future__ import annotations

import pytest

from repro.simulation.des import Simulator
from repro.telemetry import (
    PeriodicSampler,
    RingBufferSink,
    TelemetryHub,
    kernel_sample_source,
)


def _hub_with_ring():
    hub = TelemetryHub(sample_interval=1.0)
    ring = hub.add_sink(RingBufferSink(capacity=1024))
    return hub, ring


def test_samples_every_interval():
    sim = Simulator()
    hub, ring = _hub_with_ring()
    for i in range(5):
        sim.schedule(float(i), lambda s: None)
    sampler = PeriodicSampler(sim, hub, 1.0,
                              sources=[("kernel", kernel_sample_source(sim))])
    sampler.start()
    sim.run()
    times = [e["t"] for e in ring.events if e["kind"] == "sample"]
    # Baseline at t=0 plus one tick per interval while work remained.
    assert times[0] == 0.0
    assert times == sorted(times)
    assert sampler.samples_taken == len(times)


def test_sampler_stop_prevents_clock_advance():
    """A cancelled trailing tick must not advance the kernel clock."""
    sim = Simulator()
    hub, _ring = _hub_with_ring()
    sim.schedule(2.5, lambda s: None)
    sampler = PeriodicSampler(sim, hub, 1.0,
                              sources=[("kernel", kernel_sample_source(sim))],
                              should_continue=lambda: True)
    sampler.start()
    # Stop as soon as the workload's only event fires (t=2.5); the pending
    # tick at t=3.0 is cancelled and must be skipped without advancing time.
    sim.schedule(2.5, lambda s: sampler.stop(), priority=10)
    end = sim.run()
    assert end == 2.5
    assert sim.now == 2.5


def test_sampler_without_stop_overruns_the_workload():
    """Control for the stop() test: the trailing tick advances the clock."""
    sim = Simulator()
    hub, _ring = _hub_with_ring()
    sim.schedule(2.5, lambda s: None)
    sampler = PeriodicSampler(sim, hub, 1.0,
                              sources=[("kernel", kernel_sample_source(sim))])
    sampler.start()
    end = sim.run()
    assert end > 2.5


def test_sample_priority_observes_post_state():
    """Samples at time T run after engine events scheduled at T."""
    sim = Simulator()
    hub, ring = _hub_with_ring()
    state = {"value": 0.0}

    def bump(s):
        state["value"] = 1.0

    sim.schedule(1.0, bump)  # priority 0 < SAMPLE_PRIORITY
    sampler = PeriodicSampler(sim, hub, 1.0,
                              sources=[("probe", lambda: dict(state))])
    sampler.start()
    sim.run()
    at_one = [e for e in ring.events if e["t"] == 1.0 and e["kind"] == "sample"]
    assert at_one and at_one[0]["value"] == 1.0


def test_kernel_source_rate_is_per_simulated_second():
    # The simulator only maintains live per-event counters when it is
    # constructed with an enabled hub, exactly as the engines do.
    hub, ring = _hub_with_ring()
    sim = Simulator(telemetry=hub)
    for i in range(10):
        sim.schedule(0.1 * i, lambda s: None)
    sampler = PeriodicSampler(sim, hub, 1.0,
                              sources=[("kernel", kernel_sample_source(sim))])
    sampler.start()
    sim.run()
    samples = [e for e in ring.events if e["src"] == "kernel"]
    assert samples[0]["events_per_simsec"] == 0.0  # baseline: no time elapsed
    assert all(s["events_per_simsec"] >= 0.0 for s in samples)
    assert samples[-1]["processed_events"] >= 10.0


def test_sampler_validates_arguments():
    sim = Simulator()
    hub, _ = _hub_with_ring()
    with pytest.raises(ValueError):
        PeriodicSampler(sim, hub, 0.0, sources=[("x", dict)])
    with pytest.raises(ValueError):
        PeriodicSampler(sim, hub, 1.0, sources=[])
    sampler = PeriodicSampler(sim, hub, 1.0, sources=[("x", dict)])
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()
