"""Tests for the telemetry event schema and JSONL validation."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.schema import (
    KIND_FIELDS,
    iter_events,
    parse_line,
    read_events,
    validate_event,
    validate_file,
)


def _event(kind="job_admitted", **extra):
    base = {"t": 1.0, "kind": kind, "src": "dias"}
    base.update(extra)
    return base


def test_all_documented_kinds_validate_with_required_fields():
    fillers = {int: 1, float: 1.0, str: "x", bool: True}
    for kind, fields in KIND_FIELDS.items():
        event = _event(kind=kind)
        for name, types in fields.items():
            first = types[0] if isinstance(types, tuple) else types
            event[name] = fillers[first]
        validate_event(event)  # must not raise


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown event kind"):
        validate_event(_event(kind="mystery"))


def test_missing_required_field_rejected():
    event = _event(kind="job_admitted", priority=0)  # job_id missing
    with pytest.raises(ValueError, match="job_id"):
        validate_event(event)


def test_missing_base_field_rejected():
    with pytest.raises(ValueError):
        validate_event({"kind": "sample", "src": "kernel"})  # no t


def test_extra_fields_allowed():
    event = _event(kind="sample", depth_p0=3.0, utilisation=0.5)
    validate_event(event)


def test_parse_line_reports_line_number():
    with pytest.raises(ValueError, match="line 7"):
        parse_line("not json", 7)


def test_validate_file_and_read_events(tmp_path):
    path = tmp_path / "t.jsonl"
    events = [
        _event(kind="run_start", run="dias", policy="P"),
        _event(kind="sample", src="kernel"),
        _event(kind="run_end", completed=1, duration=2.0),
    ]
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    assert validate_file(str(path)) == 3
    assert read_events(str(path)) == events
    with open(path) as handle:
        assert list(iter_events(handle)) == events


def test_validate_file_rejects_bad_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 1.0, "kind": "nope", "src": ""}\n')
    with pytest.raises(ValueError):
        validate_file(str(path))
