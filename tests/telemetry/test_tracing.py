"""Tracing exporters and CLI: Chrome export, byte-identical merges, reports.

The load-bearing guarantee: the exported Chrome trace is a pure function of
the span stream, so a ``repro compare --trace`` run fanned out with
``--jobs N`` must produce *byte-identical* output to the serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.spans import build_job_traces, decompose
from repro.telemetry.tracing import (
    chrome_trace_document,
    load_spans,
    read_spans,
    spans_from_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)

COMPARE = ["compare", "--num-jobs", "50", "--seed", "4",
           "--policies", "P", "DA(0/20)"]


def test_compare_trace_serial_and_parallel_are_byte_identical(tmp_path, capsys):
    serial = str(tmp_path / "serial.json")
    parallel = str(tmp_path / "parallel.json")
    assert main([*COMPARE, "--trace", serial]) == 0
    assert main([*COMPARE, "--trace", parallel, "--jobs", "2"]) == 0
    capsys.readouterr()
    serial_bytes = open(serial, "rb").read()
    parallel_bytes = open(parallel, "rb").read()
    assert serial_bytes, "the export must not be empty"
    assert serial_bytes == parallel_bytes


def test_chrome_export_round_trips_spans(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    events_path = str(tmp_path / "events.jsonl")
    assert main(["fleet", "--clusters", "2", "--num-jobs", "40", "--seed", "1",
                 "--telemetry", events_path, "--trace", trace_path]) == 0
    capsys.readouterr()
    spans = read_spans(events_path)
    assert spans
    document = chrome_trace_document(spans)
    assert spans_from_chrome(document) == spans
    # And through the file: load_spans dispatches on the envelope.
    assert load_spans(trace_path) == spans


def test_validate_chrome_trace_accepts_export_and_rejects_corruption(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    assert main(["dag", "--num-jobs", "20", "--seed", "2",
                 "--trace", trace_path]) == 0
    capsys.readouterr()
    count = validate_chrome_trace(trace_path)
    assert count > 0
    document = json.load(open(trace_path))
    spans = [e for e in document["traceEvents"] if e["ph"] != "M"]
    assert count == len(spans)
    del spans[0]["args"]["span_id"]
    with pytest.raises(ValueError, match="span_id"):
        validate_chrome_trace(document)
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"events": []})


def test_fleet_trace_decomposition_closes(tmp_path, capsys):
    trace_path = str(tmp_path / "fleet-trace.json")
    assert main(["fleet", "--clusters", "3", "--num-jobs", "60", "--seed", "0",
                 "--trace", trace_path]) == 0
    capsys.readouterr()
    traces = build_job_traces(load_spans(trace_path))
    assert traces
    routed = 0
    for trace in traces:
        parts = decompose(trace)
        assert abs(parts["residual"]) < 1e-6
        routed += len(trace.by_cat("route"))
    assert routed == len(traces), "every fleet job carries a routing annotation"


def test_trace_report_renders_and_focuses(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    assert main(["dag", "--num-jobs", "20", "--seed", "2",
                 "--trace", trace_path]) == 0
    capsys.readouterr()
    assert main(["trace", trace_path]) == 0
    output = capsys.readouterr().out
    assert "Latency decomposition" in output
    assert "Span summary by category" in output
    assert "Critical path: observed vs PERT prediction" in output
    assert "Waterfall" in output

    focus_job = build_job_traces(load_spans(trace_path))[0].job_id
    assert main(["trace", trace_path, "--focus-job", str(focus_job)]) == 0
    assert f"Waterfall — job {focus_job}" in capsys.readouterr().out

    assert main(["trace", trace_path, "--validate"]) == 0
    assert "valid Chrome-trace document" in capsys.readouterr().out


def test_trace_report_unknown_focus_job_fails_cleanly(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    assert main(["dag", "--num-jobs", "10", "--seed", "0",
                 "--trace", trace_path]) == 0
    capsys.readouterr()
    assert main(["trace", trace_path, "--focus-job", "987654"]) == 1
    assert "no spans for job 987654" in capsys.readouterr().err


def test_trace_flag_rejects_replicated_runs(capsys):
    assert main(["fleet", "--num-jobs", "10", "--replications", "2",
                 "--trace", "t.json"]) == 1
    assert "cannot be combined with --replications" in capsys.readouterr().err


def test_inspect_summarises_spans_and_skips_unknown_kinds(tmp_path, capsys):
    events_path = str(tmp_path / "events.jsonl")
    trace_path = str(tmp_path / "trace.json")
    assert main(["fleet", "--clusters", "2", "--num-jobs", "30", "--seed", "3",
                 "--telemetry", events_path, "--trace", trace_path]) == 0
    with open(events_path, "a") as handle:
        handle.write(json.dumps({"t": 0.0, "kind": "mystery_probe", "src": "x"}))
        handle.write("\n")
    capsys.readouterr()
    assert main(["inspect", events_path]) == 0
    output = capsys.readouterr().out
    assert "Trace spans by category" in output
    assert "skipped 1 events of unknown kinds (mystery_probe x1)" in output
