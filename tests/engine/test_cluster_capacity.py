"""Zero-capacity guard: a cluster must refuse to lose its last worker."""

from __future__ import annotations

import pytest

from repro.engine.cluster import Cluster, ClusterCapacityError, ClusterConfig


def _cluster(workers: int = 2) -> Cluster:
    return Cluster(ClusterConfig(workers=workers, cores_per_worker=2))


def test_fail_worker_tracks_failed_set_and_slots():
    cluster = _cluster()
    cluster.fail_worker(0, repair_scheduled=True)
    assert 0 in cluster.failed_workers
    assert cluster.available_workers == 1
    # Slots of the failed worker disappear from the free-slot view.
    free = cluster.free_slot_ids()
    assert all(cluster.worker_of_slot(slot) != 0 for slot in free)


def test_repair_worker_restores_capacity():
    cluster = _cluster()
    cluster.fail_worker(0, repair_scheduled=True)
    cluster.repair_worker(0)
    assert not cluster.failed_workers
    assert cluster.available_workers == 2
    assert len(cluster.free_slot_ids()) == cluster.config.slots


def test_last_worker_with_repair_scheduled_is_allowed():
    cluster = _cluster()
    cluster.fail_worker(0, repair_scheduled=True)
    cluster.fail_worker(1, repair_scheduled=True)
    assert cluster.available_workers == 0


def test_last_worker_without_repair_raises_clear_error():
    cluster = _cluster()
    cluster.fail_worker(0, repair_scheduled=False)
    with pytest.raises(ClusterCapacityError) as excinfo:
        cluster.fail_worker(1, repair_scheduled=False)
    message = str(excinfo.value)
    assert "zero available workers" in message
    assert "no repair scheduled" in message
    # The refused crash must not have been applied.
    assert cluster.available_workers == 1


def test_capacity_error_is_a_runtime_error():
    # The CLI maps it to a non-zero exit alongside ValueError; callers that
    # catch RuntimeError keep working.
    assert issubclass(ClusterCapacityError, RuntimeError)
