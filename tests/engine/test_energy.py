"""Tests for the power model and energy meter."""

from __future__ import annotations

import pytest

from repro.engine.energy import EnergyMeter, PowerModel


def test_power_model_defaults_match_paper():
    model = PowerModel()
    assert model.power("busy") == 180.0
    assert model.power("sprint") == 270.0
    assert model.power("sprint") / model.power("busy") == pytest.approx(1.5)


def test_power_model_scales_with_servers():
    model = PowerModel(active_servers=10)
    assert model.power("busy") == 1800.0


def test_power_model_rejects_unknown_mode():
    with pytest.raises(ValueError):
        PowerModel().power("turbo")


def test_power_model_rejects_sprint_below_busy():
    with pytest.raises(ValueError):
        PowerModel(busy_watts=200.0, sprint_watts=100.0)


def test_meter_charges_interval_to_previous_mode():
    meter = EnergyMeter(PowerModel(idle_watts=10.0, busy_watts=100.0, sprint_watts=200.0))
    meter.set_mode("busy", 5.0)   # 0-5 idle
    meter.set_mode("idle", 15.0)  # 5-15 busy
    meter.advance(20.0)           # 15-20 idle
    assert meter.account.idle_joules == pytest.approx(5 * 10.0 + 5 * 10.0)
    assert meter.account.busy_joules == pytest.approx(10 * 100.0)
    assert meter.total_joules == pytest.approx(100.0 + 1000.0)


def test_meter_sprint_mode_charged_at_sprint_power():
    meter = EnergyMeter(PowerModel(idle_watts=0.0, busy_watts=100.0, sprint_watts=300.0))
    meter.set_mode("sprint", 0.0)
    meter.advance(10.0)
    assert meter.account.sprint_joules == pytest.approx(3000.0)


def test_meter_rejects_time_going_backwards():
    meter = EnergyMeter(PowerModel())
    meter.advance(10.0)
    with pytest.raises(ValueError):
        meter.advance(5.0)


def test_meter_rejects_unknown_mode():
    meter = EnergyMeter(PowerModel())
    with pytest.raises(ValueError):
        meter.set_mode("overdrive", 1.0)


def test_meter_total_kilojoules():
    meter = EnergyMeter(PowerModel(idle_watts=100.0))
    meter.advance(100.0)
    assert meter.total_kilojoules == pytest.approx(10.0)


def test_zero_length_interval_adds_no_energy():
    meter = EnergyMeter(PowerModel())
    meter.set_mode("busy", 0.0)
    meter.set_mode("sprint", 0.0)
    assert meter.total_joules == 0.0
