"""Tests for the DVFS speedup model."""

from __future__ import annotations

import pytest

from repro.engine.dvfs import BASE_FREQUENCY, SPRINT_FREQUENCY, DVFSModel, FrequencyLevel


def test_frequency_level_rejects_non_positive():
    with pytest.raises(ValueError):
        FrequencyLevel("bad", 0.0)


def test_default_frequencies_match_paper():
    assert BASE_FREQUENCY.frequency_mhz == 800.0
    assert SPRINT_FREQUENCY.frequency_mhz == 2400.0


def test_base_frequency_has_no_speedup():
    model = DVFSModel()
    assert model.speedup(model.base) == pytest.approx(1.0)
    assert model.time_scale(model.base) == pytest.approx(1.0)


def test_sprint_speedup_between_one_and_frequency_ratio():
    model = DVFSModel()
    ratio = SPRINT_FREQUENCY.frequency_mhz / BASE_FREQUENCY.frequency_mhz
    assert 1.0 < model.sprint_speedup < ratio + 1e-9


def test_fully_cpu_bound_speedup_equals_frequency_ratio():
    model = DVFSModel(cpu_bound_fraction=1.0)
    assert model.sprint_speedup == pytest.approx(3.0)


def test_no_cpu_bound_work_gives_no_speedup():
    model = DVFSModel(cpu_bound_fraction=0.0)
    assert model.sprint_speedup == pytest.approx(1.0)


def test_default_sprint_time_reduction_matches_paper_ceiling():
    # The paper reports that sprinting reduces execution time by *up to* 60 %.
    model = DVFSModel()
    assert model.sprint_time_reduction == pytest.approx(0.6, abs=0.02)


def test_invalid_cpu_bound_fraction_rejected():
    with pytest.raises(ValueError):
        DVFSModel(cpu_bound_fraction=1.5)


def test_sprint_frequency_must_not_be_below_base():
    with pytest.raises(ValueError):
        DVFSModel(base=FrequencyLevel("b", 2000.0), sprint=FrequencyLevel("s", 1000.0))


def test_speedup_is_inverse_of_time_scale():
    model = DVFSModel(cpu_bound_fraction=0.7)
    assert model.speedup(model.sprint) == pytest.approx(1.0 / model.time_scale(model.sprint))
