"""Tests for job class profiles and task-time models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.profiles import JobClassProfile, TaskTimeModel


# ---------------------------------------------------------------- TaskTimeModel
def test_task_time_model_mean_and_variance():
    model = TaskTimeModel(mean=10.0, scv=0.25)
    assert model.variance == pytest.approx(25.0)
    assert model.second_moment == pytest.approx(125.0)


def test_task_time_model_sampling_matches_mean(rng):
    model = TaskTimeModel(mean=5.0, scv=0.1)
    samples = model.sample(rng, 5000)
    assert abs(samples.mean() - 5.0) / 5.0 < 0.05


def test_task_time_model_zero_scv_is_deterministic(rng):
    model = TaskTimeModel(mean=3.0, scv=0.0)
    samples = model.sample(rng, 10)
    assert np.allclose(samples, 3.0)


def test_task_time_model_zero_samples(rng):
    assert TaskTimeModel(mean=1.0).sample(rng, 0).size == 0


def test_task_time_model_negative_count_rejected(rng):
    with pytest.raises(ValueError):
        TaskTimeModel(mean=1.0).sample(rng, -1)


def test_task_time_model_scaled():
    model = TaskTimeModel(mean=4.0, scv=0.2).scaled(2.0)
    assert model.mean == 8.0
    assert model.scv == 0.2


def test_task_time_model_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TaskTimeModel(mean=0.0)
    with pytest.raises(ValueError):
        TaskTimeModel(mean=1.0, scv=-0.1)


# -------------------------------------------------------------- JobClassProfile
def test_profile_map_task_time_scales_with_size(high_profile):
    small = high_profile.mean_map_task_time(100.0)
    large = high_profile.mean_map_task_time(200.0)
    assert large == pytest.approx(2 * small)


def test_profile_setup_time_interpolates_linearly(high_profile):
    full = high_profile.setup_time(0.0)
    minimum = high_profile.setup_time(0.9)
    middle = high_profile.setup_time(0.45)
    assert full == high_profile.setup_time_full
    assert minimum == high_profile.setup_time_min
    assert middle == pytest.approx((full + minimum) / 2)


def test_profile_setup_time_rejects_out_of_range(high_profile):
    with pytest.raises(ValueError):
        high_profile.setup_time(0.95)


def test_profile_with_size_returns_copy(high_profile):
    bigger = high_profile.with_size(500.0)
    assert bigger.mean_size_mb == 500.0
    assert high_profile.mean_size_mb != 500.0
    assert bigger.priority == high_profile.priority


def test_profile_with_priority_relabels(high_profile):
    relabelled = high_profile.with_priority(5, name="urgent")
    assert relabelled.priority == 5
    assert relabelled.name == "urgent"


def test_mean_sequential_work_decreases_with_dropping(low_profile):
    full = low_profile.mean_sequential_work(0.0)
    dropped = low_profile.mean_sequential_work(0.5)
    assert dropped < full


def test_mean_service_time_decreases_with_more_slots(low_profile):
    few = low_profile.mean_service_time(2)
    many = low_profile.mean_service_time(16)
    assert many < few


def test_mean_service_time_decreases_with_dropping(low_profile):
    assert low_profile.mean_service_time(4, 0.5) < low_profile.mean_service_time(4, 0.0)


def test_mean_service_time_reflects_wave_boundaries():
    profile = JobClassProfile(
        priority=0, mean_size_mb=100.0, partitions=40, reduce_tasks=0,
        map_time_per_100mb=40.0, setup_time_full=0.0, setup_time_min=0.0,
        shuffle_time=0.0,
    )
    # 40 tasks on 20 slots = 2 waves; dropping 10% (36 tasks) still needs 2 waves,
    # dropping 50% (20 tasks) needs only 1.
    base = profile.mean_service_time(20, 0.0)
    ten = profile.mean_service_time(20, 0.1)
    half = profile.mean_service_time(20, 0.5)
    assert ten == pytest.approx(base)
    assert half == pytest.approx(base / 2)


def test_profile_validation_errors():
    with pytest.raises(ValueError):
        JobClassProfile(priority=-1)
    with pytest.raises(ValueError):
        JobClassProfile(priority=0, mean_size_mb=-1.0)
    with pytest.raises(ValueError):
        JobClassProfile(priority=0, num_stages=0)
    with pytest.raises(ValueError):
        JobClassProfile(priority=0, max_accuracy_loss=1.5)
    with pytest.raises(ValueError):
        JobClassProfile(priority=0, setup_time_full=5.0, setup_time_min=10.0)


def test_profile_service_time_requires_positive_slots(high_profile):
    with pytest.raises(ValueError):
        high_profile.mean_service_time(0)
