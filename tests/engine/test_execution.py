"""Tests for wave-based job execution (phases, speed changes, eviction)."""

from __future__ import annotations

import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.execution import ExecutionPhase, JobExecution, build_phases
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.simulation.des import Simulator


def deterministic_profile(partitions=4, reduce_tasks=2) -> JobClassProfile:
    return JobClassProfile(
        priority=1,
        name="test",
        mean_size_mb=100.0,
        size_cv=0.0,
        partitions=partitions,
        reduce_tasks=reduce_tasks,
        map_time_per_100mb=partitions * 10.0,  # 10 s per map task at 100 MB
        reduce_time=5.0,
        setup_time_full=2.0,
        setup_time_min=1.0,
        shuffle_time=3.0,
        task_scv=0.0,
    )


def deterministic_job(partitions=4, reduce_tasks=2, map_time=10.0, reduce_time=5.0,
                      shuffle=3.0, priority=1, droppable=True) -> Job:
    profile = deterministic_profile(partitions, reduce_tasks)
    stage = StageSpec(
        index=0,
        map_task_times=[map_time] * partitions,
        reduce_task_times=[reduce_time] * reduce_tasks,
        shuffle_time=shuffle,
        droppable=droppable,
    )
    return Job(job_id=0, priority=priority, arrival_time=0.0, size_mb=100.0,
               stages=[stage], profile=profile)


def run_execution(job, slots=2, drop_ratio=0.0, speed=None):
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=slots))
    sim = Simulator()
    done = {}
    phases = build_phases(job, map_drop_ratio=drop_ratio)
    execution = JobExecution(sim, cluster, job, phases, on_complete=lambda e: done.setdefault("t", e.completion_time))
    execution.start(speed=speed)
    sim.run()
    return execution, done.get("t"), sim


# --------------------------------------------------------------- build_phases
def test_build_phases_structure():
    job = deterministic_job()
    phases = build_phases(job)
    names = [p.name for p in phases]
    assert names == ["setup", "map", "shuffle", "reduce"]


def test_build_phases_applies_drop_ratio():
    job = deterministic_job(partitions=4)
    phases = build_phases(job, map_drop_ratio=0.5)
    map_phase = [p for p in phases if p.name == "map"][0]
    assert len(map_phase.durations) == 2  # ⌈4·0.5⌉


def test_build_phases_respects_kept_indices():
    job = deterministic_job(partitions=4)
    phases = build_phases(job, map_drop_ratio=0.5, kept_map_indices={0: [0, 3]})
    map_phase = [p for p in phases if p.name == "map"][0]
    assert len(map_phase.durations) == 2


def test_build_phases_non_droppable_stage_keeps_everything():
    job = deterministic_job(partitions=4, droppable=False)
    phases = build_phases(job, map_drop_ratio=0.5)
    map_phase = [p for p in phases if p.name == "map"][0]
    assert len(map_phase.durations) == 4


def test_execution_phase_rejects_negative_duration():
    with pytest.raises(ValueError):
        ExecutionPhase("map", 0, [-1.0])


# ---------------------------------------------------------------- JobExecution
def test_execution_wave_timing_is_exact():
    # 4 map tasks of 10 s on 2 slots = 2 waves = 20 s; shuffle 3 s;
    # 2 reduce tasks of 5 s on 2 slots = 5 s; setup 2 s -> total 30 s.
    job = deterministic_job()
    execution, completion, _ = run_execution(job, slots=2)
    assert execution.completed
    assert completion == pytest.approx(2.0 + 20.0 + 3.0 + 5.0)


def test_execution_with_more_slots_is_faster():
    job = deterministic_job(partitions=4)
    _, t_two_slots, _ = run_execution(job, slots=2)
    _, t_four_slots, _ = run_execution(job, slots=4)
    assert t_four_slots < t_two_slots
    assert t_four_slots == pytest.approx(2.0 + 10.0 + 3.0 + 5.0)


def test_execution_with_dropping_is_faster():
    job = deterministic_job(partitions=4)
    _, t_full, _ = run_execution(job, slots=2, drop_ratio=0.0)
    _, t_dropped, _ = run_execution(job, slots=2, drop_ratio=0.5)
    assert t_dropped < t_full


def test_execution_speed_scales_duration():
    job = deterministic_job()
    _, t_base, _ = run_execution(job, slots=2, speed=1.0)
    _, t_fast, _ = run_execution(job, slots=2, speed=2.0)
    assert t_fast == pytest.approx(t_base / 2.0)


def test_mid_flight_speed_change_rescales_remaining_work():
    job = deterministic_job(partitions=2, reduce_tasks=0, map_time=10.0, shuffle=0.0)
    # setup 2 s + one wave of 10 s = 12 s at speed 1.
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    sim = Simulator()
    done = {}
    phases = build_phases(job)
    execution = JobExecution(sim, cluster, job, phases,
                             on_complete=lambda e: done.setdefault("t", e.completion_time))
    execution.start(speed=1.0)
    # Double the speed at t = 7 (after setup, 5 s into the 10 s map wave).
    sim.schedule(7.0, lambda s: execution.set_speed(2.0))
    sim.run()
    assert done["t"] == pytest.approx(7.0 + 5.0 / 2.0)


def test_sprinted_time_is_tracked():
    job = deterministic_job(partitions=2, reduce_tasks=0, map_time=10.0, shuffle=0.0)
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    sim = Simulator()
    execution = JobExecution(sim, cluster, job, build_phases(job), on_complete=lambda e: None)
    execution.start(speed=1.0)
    sim.schedule(7.0, lambda s: execution.set_speed(2.0))
    sim.run()
    assert execution.sprinted_time == pytest.approx(2.5)


def test_eviction_cancels_work_and_reports_wasted_time():
    job = deterministic_job()
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    sim = Simulator()
    completed = []
    execution = JobExecution(sim, cluster, job, build_phases(job),
                             on_complete=lambda e: completed.append(e))
    execution.start()
    wasted = {}
    sim.schedule(12.0, lambda s: wasted.setdefault("w", execution.evict()))
    sim.run()
    assert wasted["w"] == pytest.approx(12.0)
    assert execution.evicted
    assert not execution.completed
    assert completed == []
    # No events left over from the cancelled tasks.
    assert sim.peek_time() is None


def test_evicting_a_finished_job_is_an_error():
    job = deterministic_job()
    execution, _, _ = run_execution(job)
    with pytest.raises(RuntimeError):
        execution.evict()


def test_double_start_rejected():
    job = deterministic_job()
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    sim = Simulator()
    execution = JobExecution(sim, cluster, job, build_phases(job), on_complete=lambda e: None)
    execution.start()
    with pytest.raises(RuntimeError):
        execution.start()


def test_elapsed_equals_completion_minus_start():
    job = deterministic_job()
    execution, completion, _ = run_execution(job)
    assert execution.elapsed == pytest.approx(completion - execution.start_time)


def test_multi_stage_job_runs_all_stages():
    profile = deterministic_profile()
    stages = [
        StageSpec(index=i, map_task_times=[4.0, 4.0], reduce_task_times=[2.0],
                  shuffle_time=1.0)
        for i in range(3)
    ]
    job = Job(job_id=0, priority=1, arrival_time=0.0, size_mb=100.0,
              stages=stages, profile=profile)
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    sim = Simulator()
    done = {}
    execution = JobExecution(sim, cluster, job, build_phases(job),
                             on_complete=lambda e: done.setdefault("t", e.completion_time))
    execution.start()
    sim.run()
    # setup 2 + 3 × (4 + 1 + 2) = 23
    assert done["t"] == pytest.approx(2.0 + 3 * 7.0)


def test_execution_requires_phases():
    job = deterministic_job()
    cluster = Cluster()
    sim = Simulator()
    with pytest.raises(ValueError):
        JobExecution(sim, cluster, job, [], on_complete=lambda e: None)
