"""Tests for the cluster model."""

from __future__ import annotations

import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.dvfs import DVFSModel


def test_default_cluster_matches_paper_testbed():
    cluster = Cluster()
    assert cluster.config.workers == 10
    assert cluster.config.cores_per_worker == 2
    assert cluster.slots == 20


def test_cluster_config_slots_and_memory():
    config = ClusterConfig(workers=3, cores_per_worker=4, memory_per_worker_gb=8.0)
    assert config.slots == 12
    assert config.total_memory_gb == 24.0


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(workers=0)
    with pytest.raises(ValueError):
        ClusterConfig(cores_per_worker=0)
    with pytest.raises(ValueError):
        ClusterConfig(memory_per_worker_gb=0.0)


def test_cluster_starts_at_base_frequency():
    cluster = Cluster()
    assert not cluster.sprinting
    assert cluster.frequency == cluster.dvfs.base
    assert cluster.speed == pytest.approx(1.0)


def test_set_sprinting_changes_speed():
    cluster = Cluster()
    changed = cluster.set_sprinting(True)
    assert changed
    assert cluster.sprinting
    assert cluster.frequency == cluster.dvfs.sprint
    assert cluster.speed == pytest.approx(cluster.dvfs.sprint_speedup)


def test_set_sprinting_reports_no_change():
    cluster = Cluster()
    assert cluster.set_sprinting(False) is False
    cluster.set_sprinting(True)
    assert cluster.set_sprinting(True) is False


def test_power_mode_mapping():
    cluster = Cluster()
    assert cluster.power_mode(busy=False) == "idle"
    assert cluster.power_mode(busy=True) == "busy"
    cluster.set_sprinting(True)
    assert cluster.power_mode(busy=True) == "sprint"
    assert cluster.power_mode(busy=False) == "idle"


def test_custom_dvfs_model_used_for_speed():
    cluster = Cluster(dvfs=DVFSModel(cpu_bound_fraction=1.0))
    cluster.set_sprinting(True)
    assert cluster.speed == pytest.approx(3.0)
