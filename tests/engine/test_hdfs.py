"""Tests for the HDFS-like block store."""

from __future__ import annotations

import pytest

from repro.engine.hdfs import BlockStore, Dataset


def test_dataset_requires_positive_size():
    with pytest.raises(ValueError):
        Dataset("x", size_mb=0.0)


def test_dataset_partition_count_must_be_positive():
    with pytest.raises(ValueError):
        Dataset("x", size_mb=10.0, partitions=0)


def test_num_blocks_rounds_up():
    store = BlockStore(block_size_mb=128.0)
    store.create_dataset("a", size_mb=129.0)
    assert store.num_blocks("a") == 2


def test_small_dataset_has_one_block():
    store = BlockStore(block_size_mb=128.0)
    store.create_dataset("tiny", size_mb=1.0)
    assert store.num_blocks("tiny") == 1


def test_explicit_partitions_override_blocks():
    store = BlockStore()
    store.create_dataset("text", size_mb=473.0, partitions=50)
    assert store.num_partitions("text") == 50


def test_partitions_default_to_block_count():
    store = BlockStore(block_size_mb=100.0)
    store.create_dataset("data", size_mb=450.0)
    assert store.num_partitions("data") == 5


def test_unknown_dataset_raises_key_error():
    store = BlockStore()
    with pytest.raises(KeyError):
        store.get("missing")


def test_contains_and_listing():
    store = BlockStore()
    store.create_dataset("a", 10.0)
    store.create_dataset("b", 20.0)
    assert "a" in store and "b" in store
    assert {d.name for d in store.datasets()} == {"a", "b"}


def test_stored_mb_includes_replication():
    store = BlockStore(replication=3, datanodes=3)
    store.create_dataset("a", 100.0)
    assert store.stored_mb() == pytest.approx(300.0)


def test_replication_cannot_exceed_datanodes():
    with pytest.raises(ValueError):
        BlockStore(replication=4, datanodes=3)


def test_block_placement_has_replication_entries_per_block():
    store = BlockStore(block_size_mb=100.0, replication=2, datanodes=3)
    store.create_dataset("a", 250.0)
    placement = store.block_placement("a")
    assert len(placement) == 3
    assert all(len(replicas) == 2 for replicas in placement)
    assert all(0 <= node < 3 for replicas in placement for node in replicas)


def test_block_placement_replicas_are_distinct_nodes():
    store = BlockStore(block_size_mb=10.0, replication=3, datanodes=3)
    store.create_dataset("a", 35.0)
    for replicas in store.block_placement("a"):
        assert len(set(replicas)) == 3


def test_reregistering_dataset_overwrites():
    store = BlockStore()
    store.create_dataset("a", 100.0)
    store.create_dataset("a", 200.0)
    assert store.get("a").size_mb == 200.0
