"""Tests for straggler/failure injection in the job factory."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.dias import run_policy
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import JobFactory
from repro.engine.profiles import JobClassProfile
from repro.simulation.random_streams import RandomStreams
from repro.workloads.scenarios import HIGH, LOW


def profile_with_stragglers(probability: float, slowdown: float = 4.0) -> JobClassProfile:
    return JobClassProfile(
        priority=LOW, partitions=40, reduce_tasks=0, shuffle_time=0.0,
        setup_time_full=0.0, setup_time_min=0.0, task_scv=0.0,
        mean_size_mb=100.0, map_time_per_100mb=40.0,
        straggler_probability=probability, straggler_slowdown=slowdown,
    )


def test_no_stragglers_by_default():
    factory = JobFactory(RandomStreams(0))
    profile = profile_with_stragglers(0.0)
    job = factory.create_job(profile, arrival_time=0.0, size_mb=100.0)
    times = job.stages[0].map_task_times
    assert max(times) == pytest.approx(min(times))


def test_stragglers_inflate_some_tasks():
    factory = JobFactory(RandomStreams(1))
    profile = profile_with_stragglers(0.2, slowdown=5.0)
    job = factory.create_job(profile, arrival_time=0.0, size_mb=100.0)
    times = job.stages[0].map_task_times
    base = min(times)
    stragglers = [t for t in times if t > 2 * base]
    assert stragglers, "expected at least one straggler with p=0.2 over 40 tasks"
    assert all(t == pytest.approx(base * 5.0) for t in stragglers)
    assert len(stragglers) < len(times)


def test_straggler_injection_is_reproducible():
    profile = profile_with_stragglers(0.3)
    a = JobFactory(RandomStreams(5)).create_job(profile, 0.0, size_mb=100.0)
    b = JobFactory(RandomStreams(5)).create_job(profile, 0.0, size_mb=100.0)
    assert a.stages[0].map_task_times == b.stages[0].map_task_times


def test_straggler_parameters_validated():
    with pytest.raises(ValueError):
        profile_with_stragglers(1.5)
    with pytest.raises(ValueError):
        profile_with_stragglers(0.1, slowdown=0.5)


def test_stragglers_lengthen_jobs_and_dropping_mitigates_them():
    """Failure injection end to end: stragglers hurt, task dropping recovers."""
    streams = RandomStreams(2)
    factory = JobFactory(streams)
    clean_profile = profile_with_stragglers(0.0)
    slow_profile = profile_with_stragglers(0.1, slowdown=6.0)
    cluster = Cluster(ClusterConfig(workers=2, cores_per_worker=2))

    clean_jobs = [factory.create_job(clean_profile, arrival_time=200.0 * i, size_mb=100.0)
                  for i in range(10)]
    slow_jobs = [factory.create_job(slow_profile, arrival_time=200.0 * i, size_mb=100.0)
                 for i in range(10)]

    np_policy = SchedulingPolicy.non_preemptive_priority()
    da_policy = SchedulingPolicy.differential_approximation({LOW: 0.2, HIGH: 0.0})

    clean = run_policy(np_policy, clean_jobs, cluster=cluster)
    slow = run_policy(np_policy, slow_jobs, cluster=cluster)
    slow_with_dropping = run_policy(da_policy, slow_jobs, cluster=cluster)

    assert slow.mean_response_time(LOW) > clean.mean_response_time(LOW)
    assert slow_with_dropping.mean_response_time(LOW) < slow.mean_response_time(LOW)
