"""Tests for jobs, stages and the job factory."""

from __future__ import annotations

import math

import pytest

from repro.engine.job import Job, JobFactory, StageSpec, effective_task_count


# -------------------------------------------------------- effective_task_count
def test_effective_task_count_matches_paper_formula():
    # ⌈n(1 − θ)⌉
    assert effective_task_count(50, 0.2) == 40
    assert effective_task_count(50, 0.1) == 45
    assert effective_task_count(50, 0.0) == 50
    assert effective_task_count(3, 0.5) == 2


def test_effective_task_count_rounds_up():
    assert effective_task_count(10, 0.15) == 9  # 8.5 -> 9


def test_effective_task_count_full_drop_keeps_nothing():
    assert effective_task_count(10, 1.0) == 0


def test_effective_task_count_zero_tasks():
    assert effective_task_count(0, 0.5) == 0


def test_effective_task_count_validates_inputs():
    with pytest.raises(ValueError):
        effective_task_count(-1, 0.1)
    with pytest.raises(ValueError):
        effective_task_count(10, 1.5)


# ------------------------------------------------------------------- StageSpec
def test_stage_spec_counts_and_work():
    stage = StageSpec(index=0, map_task_times=[1.0, 2.0], reduce_task_times=[3.0],
                      shuffle_time=0.5)
    assert stage.num_map_tasks == 2
    assert stage.num_reduce_tasks == 1
    assert stage.total_work() == pytest.approx(6.0)


def test_stage_spec_rejects_non_positive_durations():
    with pytest.raises(ValueError):
        StageSpec(index=0, map_task_times=[0.0], reduce_task_times=[], shuffle_time=0.0)
    with pytest.raises(ValueError):
        StageSpec(index=0, map_task_times=[1.0], reduce_task_times=[-1.0], shuffle_time=0.0)
    with pytest.raises(ValueError):
        StageSpec(index=0, map_task_times=[1.0], reduce_task_times=[], shuffle_time=-0.1)


# ------------------------------------------------------------------------ Job
def make_job(profile, arrival=0.0):
    stage = StageSpec(
        index=0,
        map_task_times=[2.0] * profile.partitions,
        reduce_task_times=[1.0] * profile.reduce_tasks,
        shuffle_time=profile.shuffle_time,
    )
    return Job(job_id=1, priority=profile.priority, arrival_time=arrival,
               size_mb=profile.mean_size_mb, stages=[stage], profile=profile)


def test_job_task_counts(high_profile):
    job = make_job(high_profile)
    assert job.num_map_tasks == high_profile.partitions
    assert job.num_reduce_tasks == high_profile.reduce_tasks


def test_job_requires_at_least_one_stage(high_profile):
    with pytest.raises(ValueError):
        Job(job_id=1, priority=0, arrival_time=0.0, size_mb=10.0, stages=[],
            profile=high_profile)


def test_job_total_work(high_profile):
    job = make_job(high_profile)
    expected = 2.0 * high_profile.partitions + 1.0 * high_profile.reduce_tasks
    assert job.total_work() == pytest.approx(expected)


def test_job_setup_time_uses_profile_interpolation(high_profile):
    job = make_job(high_profile)
    assert job.setup_time(0.0) == high_profile.setup_time_full
    assert job.setup_time(0.9) == high_profile.setup_time_min


def test_ideal_service_time_decreases_with_slots(high_profile):
    job = make_job(high_profile)
    assert job.ideal_service_time(8) < job.ideal_service_time(2)


def test_ideal_service_time_decreases_with_dropping(high_profile):
    job = make_job(high_profile)
    assert job.ideal_service_time(4, drop_ratio=0.5) < job.ideal_service_time(4, 0.0)


def test_ideal_service_time_requires_positive_slots(high_profile):
    job = make_job(high_profile)
    with pytest.raises(ValueError):
        job.ideal_service_time(0)


# ----------------------------------------------------------------- JobFactory
def test_factory_assigns_increasing_ids(job_factory, high_profile):
    a = job_factory.create_job(high_profile, arrival_time=0.0)
    b = job_factory.create_job(high_profile, arrival_time=1.0)
    assert b.job_id > a.job_id


def test_factory_job_structure_matches_profile(job_factory, high_profile):
    job = job_factory.create_job(high_profile, arrival_time=3.0)
    assert job.priority == high_profile.priority
    assert job.arrival_time == 3.0
    assert len(job.stages) == high_profile.num_stages
    assert job.stages[0].num_map_tasks == high_profile.partitions
    assert job.stages[0].num_reduce_tasks == high_profile.reduce_tasks


def test_factory_respects_explicit_size(job_factory, high_profile):
    job = job_factory.create_job(high_profile, arrival_time=0.0, size_mb=250.0)
    assert job.size_mb == 250.0


def test_factory_sampled_sizes_average_to_profile_mean(job_factory, high_profile):
    sizes = [job_factory.sample_size_mb(high_profile) for _ in range(3000)]
    mean = sum(sizes) / len(sizes)
    assert abs(mean - high_profile.mean_size_mb) / high_profile.mean_size_mb < 0.05


def test_factory_zero_cv_gives_deterministic_size(job_factory, high_profile):
    profile = high_profile.with_size(100.0)
    profile = type(profile)(**{**profile.__dict__, "size_cv": 0.0})
    assert job_factory.sample_size_mb(profile) == 100.0


def test_factory_task_times_scale_with_job_size(job_factory, high_profile):
    small = job_factory.create_job(high_profile, arrival_time=0.0, size_mb=50.0)
    large = job_factory.create_job(high_profile, arrival_time=0.0, size_mb=500.0)
    small_mean = sum(small.stages[0].map_task_times) / small.stages[0].num_map_tasks
    large_mean = sum(large.stages[0].map_task_times) / large.stages[0].num_map_tasks
    assert large_mean > 5 * small_mean


def test_factory_multi_stage_profile(job_factory, high_profile):
    profile = type(high_profile)(**{**high_profile.__dict__, "num_stages": 3})
    job = job_factory.create_job(profile, arrival_time=0.0)
    assert len(job.stages) == 3
    assert [s.index for s in job.stages] == [0, 1, 2]
