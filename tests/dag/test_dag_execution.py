"""Tests for the frontier-driven DagExecution engine."""

from __future__ import annotations

import pytest

from repro.dag.execution import DagExecution
from repro.dag.graph import DagJob, DagStage, StageDAG
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.profiles import JobClassProfile
from repro.simulation.des import Simulator
from repro.workloads.scenarios import HIGH


def profile(**kw) -> JobClassProfile:
    defaults = dict(
        priority=HIGH,
        name="t",
        mean_size_mb=100.0,
        partitions=4,
        reduce_tasks=1,
        setup_time_full=0.0,
        setup_time_min=0.0,
        shuffle_time=0.0,
        task_scv=0.0,
    )
    defaults.update(kw)
    return JobClassProfile(**defaults)


def stage(index, parents=(), maps=(1.0,), reduces=(), shuffle=0.0, droppable=True):
    return DagStage(
        index=index,
        map_task_times=list(maps),
        reduce_task_times=list(reduces),
        shuffle_time=shuffle,
        droppable=droppable,
        parents=tuple(parents),
    )


def make_job(stages, setup=0.0) -> DagJob:
    prof = profile(setup_time_full=setup, setup_time_min=setup)
    return DagJob(
        job_id=0, priority=HIGH, arrival_time=0.0, size_mb=100.0,
        dag=StageDAG(stages), profile=prof,
    )


def run_execution(job, slots=4, scheduler="fifo", **kw):
    sim = Simulator()
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=slots))
    done = []
    execution = DagExecution(
        sim, cluster, job, scheduler=scheduler, on_complete=done.append, **kw
    )
    execution.start()
    sim.run()
    assert done == [execution]
    return execution


# -------------------------------------------------------------- basic runs
def test_single_stage_job_completes_at_wave_time():
    job = make_job([stage(0, maps=(2.0, 2.0, 2.0), reduces=(1.0,), shuffle=0.5)])
    execution = run_execution(job, slots=2)
    # Two map waves (4.0) + shuffle (0.5) + reduce (1.0).
    assert execution.completion_time == pytest.approx(5.5)
    assert execution.makespan == pytest.approx(5.5)


def test_setup_delays_all_stages():
    job = make_job([stage(0, maps=(1.0,))], setup=3.0)
    execution = run_execution(job)
    assert execution.completion_time == pytest.approx(4.0)


def test_parallel_branches_overlap():
    # 0 → {1, 2} with one 4-slot wave each: branches must run concurrently.
    job = make_job(
        [
            stage(0, maps=(1.0,)),
            stage(1, parents=(0,), maps=(5.0,)),
            stage(2, parents=(0,), maps=(5.0,)),
        ]
    )
    execution = run_execution(job, slots=4)
    assert execution.completion_time == pytest.approx(6.0)


def test_join_waits_for_all_parents():
    job = make_job(
        [
            stage(0, maps=(1.0,)),
            stage(1, parents=(0,), maps=(5.0,)),
            stage(2, parents=(0,), maps=(2.0,)),
            stage(3, parents=(1, 2), maps=(1.0,)),
        ]
    )
    execution = run_execution(job, slots=4)
    assert execution.completion_time == pytest.approx(7.0)


def test_chain_matches_sequential_sum():
    job = make_job(
        [stage(0, maps=(2.0,)), stage(1, parents=(0,), maps=(3.0,)), stage(2, parents=(1,), maps=(4.0,))]
    )
    execution = run_execution(job, slots=4)
    assert execution.completion_time == pytest.approx(9.0)


def test_makespan_respects_lower_bound():
    job = make_job(
        [
            stage(0, maps=(1.0, 2.0, 3.0)),
            stage(1, parents=(0,), maps=(2.0, 2.0)),
            stage(2, parents=(0,), maps=(4.0,)),
            stage(3, parents=(1, 2), maps=(1.0, 1.0, 1.0, 1.0)),
        ]
    )
    execution = run_execution(job, slots=2)
    assert execution.elapsed >= execution.lower_bound_makespan - 1e-9


# ------------------------------------------------------------ slot pressure
def test_slot_contention_serialises_work():
    # Two independent 1-task stages on a single slot must serialise.
    job = make_job([stage(0, maps=(2.0,)), stage(1, maps=(3.0,))])
    execution = run_execution(job, slots=1)
    assert execution.completion_time == pytest.approx(5.0)


def test_critical_path_first_beats_widest_on_crafted_dag():
    # A long chain (0→1→2) and a wide independent stage; one slot free at a
    # time forces the scheduler's choice to matter.
    stages = [
        stage(0, maps=(2.0,)),
        stage(1, parents=(0,), maps=(2.0,)),
        stage(2, parents=(1,), maps=(2.0,)),
        stage(3, maps=(1.0,) * 6),
    ]
    cpf = run_execution(make_job([s for s in stages]), slots=2, scheduler="critical_path_first")
    widest = run_execution(
        make_job(
            [
                stage(0, maps=(2.0,)),
                stage(1, parents=(0,), maps=(2.0,)),
                stage(2, parents=(1,), maps=(2.0,)),
                stage(3, maps=(1.0,) * 6),
            ]
        ),
        slots=2,
        scheduler="widest_first",
    )
    assert cpf.completion_time <= widest.completion_time


# ------------------------------------------------------- dropping integration
def test_uniform_drop_ratio_prunes_droppable_stages():
    job = make_job([stage(0, maps=(1.0,) * 4), stage(1, parents=(0,), maps=(1.0,) * 4, droppable=False)])
    execution = run_execution(job, slots=1, map_drop_ratio=0.5)
    # Droppable stage keeps 2 of 4 tasks; non-droppable keeps all 4.
    assert execution.completion_time == pytest.approx(6.0)


def test_kept_indices_take_precedence():
    job = make_job([stage(0, maps=(1.0, 10.0))])
    execution = run_execution(job, slots=1, kept_map_indices={0: [0]}, map_drop_ratio=0.0)
    assert execution.completion_time == pytest.approx(1.0)


def test_fully_dropped_dag_completes_after_setup():
    job = make_job([stage(0, maps=(1.0,)), stage(1, parents=(0,), maps=(1.0,))], setup=2.0)
    execution = run_execution(job, kept_map_indices={0: [], 1: []})
    assert execution.completed
    assert execution.completion_time == pytest.approx(2.0)


# ----------------------------------------------------------- speed / evict
def test_set_speed_rescales_in_flight_tasks():
    sim = Simulator()
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    job = make_job([stage(0, maps=(8.0,))])
    execution = DagExecution(sim, cluster, job, on_complete=lambda e: None)
    execution.start()
    sim.run(until=2.0)
    execution.set_speed(2.0)  # 6.0 of work left → 3.0 wall seconds
    sim.run()
    assert execution.completion_time == pytest.approx(5.0)
    assert execution.sprinted_time == pytest.approx(3.0)


def test_evict_cancels_everything_and_reports_waste():
    sim = Simulator()
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    job = make_job([stage(0, maps=(8.0, 8.0)), stage(1, parents=(0,), maps=(1.0,))])
    execution = DagExecution(sim, cluster, job, on_complete=lambda e: None)
    execution.start()
    sim.run(until=3.0)
    wasted = execution.evict()
    assert wasted == pytest.approx(3.0)
    assert execution.evicted and not execution.running
    end = sim.run()
    assert not execution.completed
    assert end == pytest.approx(3.0)  # cancelled events are skipped, clock stays


def test_cannot_start_twice_or_evict_idle():
    sim = Simulator()
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    job = make_job([stage(0)])
    execution = DagExecution(sim, cluster, job, on_complete=lambda e: None)
    with pytest.raises(RuntimeError):
        execution.evict()
    execution.start()
    with pytest.raises(RuntimeError):
        execution.start()
