"""Tests for DagSimulation — DiAS on stage-DAG jobs."""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig
from repro.core.dropper import TaskDropper
from repro.core.policies import SchedulingPolicy
from repro.dag.graph import DagJob, DagStage, StageDAG
from repro.dag.simulation import DagSimulation, run_dag_policy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.profiles import JobClassProfile
from repro.workloads.scenarios import HIGH, LOW, dag_layered_scenario


def profile(priority=LOW, **kw) -> JobClassProfile:
    defaults = dict(
        name="t",
        mean_size_mb=100.0,
        partitions=4,
        reduce_tasks=1,
        setup_time_full=1.0,
        setup_time_min=0.5,
        shuffle_time=0.0,
        task_scv=0.0,
        max_accuracy_loss=0.32,
    )
    defaults.update(kw)
    return JobClassProfile(priority=priority, **defaults)


def stage(index, parents=(), maps=(1.0, 1.0), reduces=(0.5,), droppable=True):
    return DagStage(
        index=index,
        map_task_times=list(maps),
        reduce_task_times=list(reduces),
        shuffle_time=0.0,
        droppable=droppable,
        parents=tuple(parents),
    )


def diamond_job(job_id=0, priority=LOW, arrival=0.0) -> DagJob:
    dag = StageDAG(
        [stage(0), stage(1, parents=(0,)), stage(2, parents=(0,)), stage(3, parents=(1, 2))]
    )
    return DagJob(
        job_id=job_id, priority=priority, arrival_time=arrival, size_mb=100.0,
        dag=dag, profile=profile(priority),
    )


def small_cluster() -> Cluster:
    return Cluster(ClusterConfig(workers=2, cores_per_worker=2))


# ------------------------------------------------------------------- basics
def test_trace_runs_to_completion_with_records():
    jobs = [diamond_job(i, arrival=float(i)) for i in range(5)]
    result = run_dag_policy(
        SchedulingPolicy.non_preemptive_priority(), jobs, cluster=small_cluster()
    )
    assert result.completed_jobs == 5
    assert result.metrics.job_count == 5
    assert len(result.dag_rows) == 5
    assert result.scheduler_name == "fifo"
    for row in result.dag_rows:
        assert row["makespan_s"] >= row["lower_bound_s"] - 1e-9
        assert row["cp_stretch"] >= 1.0 - 1e-9


def test_empty_trace_rejected():
    with pytest.raises(ValueError, match="must not be empty"):
        DagSimulation(SchedulingPolicy.non_preemptive_priority(), jobs=[])


def test_priority_order_respected():
    # A low job arrives first; a high job arriving while it queues jumps ahead.
    jobs = [
        diamond_job(0, priority=LOW, arrival=0.0),
        diamond_job(1, priority=LOW, arrival=0.1),
        diamond_job(2, priority=HIGH, arrival=0.2),
    ]
    result = run_dag_policy(
        SchedulingPolicy.non_preemptive_priority(), jobs, cluster=small_cluster()
    )
    records = {r.job_id: r for r in result.metrics.records}
    assert records[2].completion_time < records[1].completion_time


def test_per_stage_dropping_reduces_execution_time():
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.5})
    jobs_full = [diamond_job(i, arrival=float(i * 100)) for i in range(3)]
    jobs_drop = [diamond_job(i, arrival=float(i * 100)) for i in range(3)]
    base = run_dag_policy(
        SchedulingPolicy.non_preemptive_priority(), jobs_full, cluster=small_cluster()
    )
    dropped = run_dag_policy(policy, jobs_drop, cluster=small_cluster())
    assert dropped.mean_makespan() < base.mean_makespan()
    assert dropped.mean_accuracy_loss(LOW) > 0.0
    # Non-droppable stages would keep all tasks; here every stage dropped,
    # so the effective ratio composes across the four droppable stages.
    assert all(r.drop_ratio > 0.5 for r in dropped.metrics.records)


def test_non_droppable_stages_keep_all_tasks():
    dag = StageDAG([stage(0, droppable=False)])
    job = DagJob(
        job_id=0, priority=LOW, arrival_time=0.0, size_mb=100.0,
        dag=dag, profile=profile(),
    )
    policy = SchedulingPolicy.differential_approximation({LOW: 0.5})
    result = run_dag_policy(policy, [job], cluster=small_cluster())
    assert result.metrics.records[0].drop_ratio == 0.0


def test_preemptive_policy_evicts_and_restarts():
    jobs = [
        diamond_job(0, priority=LOW, arrival=0.0),
        diamond_job(1, priority=HIGH, arrival=1.0),
    ]
    result = run_dag_policy(
        SchedulingPolicy.preemptive_priority(), jobs, cluster=small_cluster()
    )
    assert result.completed_jobs == 2
    assert result.evictions == 1
    assert result.resource_waste > 0.0


def test_sprinting_on_dag_jobs():
    sprint = SprintConfig(
        budget_seconds=100.0,
        replenish_seconds_per_hour=0.0,
        timeouts={HIGH: 0.0},
        sprint_priorities=frozenset({HIGH}),
    )
    policy = SchedulingPolicy.non_preemptive_priority().with_sprint(sprint, name="NPS")
    jobs = [diamond_job(0, priority=HIGH)]
    result = run_dag_policy(policy, jobs, cluster=small_cluster())
    assert result.sprinted_seconds > 0.0
    base = run_dag_policy(
        SchedulingPolicy.non_preemptive_priority(),
        [diamond_job(0, priority=HIGH)],
        cluster=small_cluster(),
    )
    assert result.mean_makespan() < base.mean_makespan()


def test_slack_biased_conserves_accuracy_budget_direction():
    scenario = dag_layered_scenario(num_jobs=20)
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})
    uniform = run_dag_policy(
        policy, scenario.generate_trace(seed=2), cluster=scenario.cluster, seed=2
    )
    biased = run_dag_policy(
        policy,
        scenario.generate_trace(seed=2),
        cluster=scenario.cluster,
        seed=2,
        slack_biased=True,
    )
    assert biased.completed_jobs == uniform.completed_jobs
    # Same class-level budget: mean effective drop stays in the same ballpark.
    assert biased.mean_accuracy_loss(LOW) == pytest.approx(
        uniform.mean_accuracy_loss(LOW), rel=0.25
    )


def test_plan_stages_per_stage_ratios():
    dropper = TaskDropper()
    job = diamond_job(0)
    plan = dropper.plan_stages(job, {0: 0.5, 1: 0.0, 2: 0.5, 3: 0.0})
    assert len(plan.kept_map_indices[0]) == 1
    assert len(plan.kept_map_indices[1]) == 2
    assert plan.total_map_tasks == 8
    assert plan.dropped_map_tasks == 2
    assert 0.0 < plan.effective_drop_ratio < 1.0
    # The requested ratio defaults to the task-weighted mean.
    assert plan.map_drop_ratio == pytest.approx(0.25)


def test_plan_stages_rejects_bad_ratio():
    dropper = TaskDropper()
    with pytest.raises(ValueError, match="must be in"):
        dropper.plan_stages(diamond_job(0), {0: 1.0})
