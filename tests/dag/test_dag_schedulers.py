"""Tests for the pluggable stage schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.dag.schedulers import (
    STAGE_SCHEDULERS,
    CriticalPathFirstScheduler,
    FifoStageScheduler,
    ShortestRemainingWorkScheduler,
    StageScheduler,
    WidestFirstScheduler,
    make_stage_scheduler,
)


@dataclass
class FakeRun:
    """Minimal StageRunView stand-in."""

    index: int
    ready_seq: int = 0
    rank: float = 0.0
    pending_tasks: int = 1
    work: float = 1.0

    def remaining_work(self) -> float:
        return self.work


def test_make_stage_scheduler_by_name_and_aliases():
    for name in STAGE_SCHEDULERS:
        scheduler = make_stage_scheduler(name)
        assert isinstance(scheduler, StageScheduler)
        assert scheduler.name == name
    assert isinstance(make_stage_scheduler("critical-path-first"), CriticalPathFirstScheduler)
    assert isinstance(make_stage_scheduler("  FIFO "), FifoStageScheduler)


def test_make_stage_scheduler_idempotent_on_instances():
    scheduler = FifoStageScheduler()
    assert make_stage_scheduler(scheduler) is scheduler


def test_make_stage_scheduler_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown stage scheduler"):
        make_stage_scheduler("lifo")


def test_fifo_picks_earliest_ready_then_lowest_index():
    runs = [FakeRun(index=2, ready_seq=1), FakeRun(index=0, ready_seq=2), FakeRun(index=1, ready_seq=1)]
    assert FifoStageScheduler().select(runs).index == 1


def test_critical_path_first_picks_highest_rank():
    runs = [FakeRun(index=0, rank=5.0), FakeRun(index=1, rank=9.0), FakeRun(index=2, rank=7.0)]
    assert CriticalPathFirstScheduler().select(runs).index == 1


def test_critical_path_first_breaks_ties_fifo():
    runs = [FakeRun(index=2, rank=5.0, ready_seq=3), FakeRun(index=1, rank=5.0, ready_seq=1)]
    assert CriticalPathFirstScheduler().select(runs).index == 1


def test_shortest_remaining_work_picks_least_work():
    runs = [FakeRun(index=0, work=9.0), FakeRun(index=1, work=2.0), FakeRun(index=2, work=4.0)]
    assert ShortestRemainingWorkScheduler().select(runs).index == 1


def test_widest_first_picks_most_pending_tasks():
    runs = [FakeRun(index=0, pending_tasks=3), FakeRun(index=1, pending_tasks=8), FakeRun(index=2, pending_tasks=5)]
    assert WidestFirstScheduler().select(runs).index == 1
