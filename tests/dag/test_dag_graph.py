"""Tests for the StageDAG / DagJob model."""

from __future__ import annotations

import pytest

from repro.dag.graph import DagJob, DagStage, StageDAG
from repro.workloads.scenarios import HIGH


def stage(index, parents=(), maps=(1.0, 1.0), reduces=(0.5,), shuffle=0.5, **kw):
    return DagStage(
        index=index,
        map_task_times=list(maps),
        reduce_task_times=list(reduces),
        shuffle_time=shuffle,
        parents=tuple(parents),
        **kw,
    )


def diamond() -> StageDAG:
    """0 → {1, 2} → 3."""
    return StageDAG(
        [stage(0), stage(1, parents=(0,)), stage(2, parents=(0,)), stage(3, parents=(1, 2))]
    )


# ------------------------------------------------------------------ stages
def test_dag_stage_is_a_stage_spec():
    s = stage(0)
    assert s.num_map_tasks == 2
    assert s.num_reduce_tasks == 1
    assert s.total_work() == pytest.approx(2.5)


def test_dag_stage_rejects_self_dependency():
    with pytest.raises(ValueError, match="depend on itself"):
        stage(1, parents=(1,))


def test_dag_stage_rejects_duplicate_parent():
    with pytest.raises(ValueError, match="duplicate parent"):
        stage(2, parents=(0, 0))


# -------------------------------------------------------------- validation
def test_empty_dag_rejected():
    with pytest.raises(ValueError, match="at least one stage"):
        StageDAG([])


def test_duplicate_stage_index_rejected():
    with pytest.raises(ValueError, match="duplicate stage index"):
        StageDAG([stage(0), stage(0)])


def test_unknown_parent_rejected():
    with pytest.raises(ValueError, match="unknown stage"):
        StageDAG([stage(0), stage(1, parents=(7,))])


def test_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        StageDAG(
            [stage(0, parents=(2,)), stage(1, parents=(0,)), stage(2, parents=(1,))]
        )


def test_two_stage_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        StageDAG([stage(0, parents=(1,)), stage(1, parents=(0,))])


# ---------------------------------------------------------------- topology
def test_topological_order_respects_dependencies():
    dag = diamond()
    order = dag.topological_order()
    assert sorted(order) == [0, 1, 2, 3]
    for s in dag:
        for parent in s.parents:
            assert order.index(parent) < order.index(s.index)


def test_topological_order_is_deterministic_lowest_index_first():
    dag = StageDAG([stage(3), stage(1), stage(2, parents=(1, 3))])
    assert dag.topological_order() == [1, 3, 2]


def test_sources_sinks_children():
    dag = diamond()
    assert dag.sources() == [0]
    assert dag.sinks() == [3]
    assert dag.children(0) == [1, 2]
    assert dag.parents(3) == (1, 2)
    assert dag.num_edges == 4
    assert dag.depth() == 3


def test_linear_chain_detection():
    chain = StageDAG([stage(0), stage(1, parents=(0,)), stage(2, parents=(1,))])
    assert chain.is_linear_chain
    assert not diamond().is_linear_chain


def test_total_work_sums_stages():
    assert diamond().total_work() == pytest.approx(4 * 2.5)


# -------------------------------------------------------------------- jobs
def make_job(dag, profile, **kw):
    defaults = dict(job_id=0, priority=HIGH, arrival_time=0.0, size_mb=100.0)
    defaults.update(kw)
    return DagJob(dag=dag, profile=profile, **defaults)


def test_dag_job_exposes_stage_view(high_profile):
    job = make_job(diamond(), high_profile)
    assert [s.index for s in job.stages] == [0, 1, 2, 3]
    assert job.num_stages == 4
    assert job.num_map_tasks == 8
    assert job.num_reduce_tasks == 4
    assert job.total_work() == pytest.approx(10.0)
    assert job.setup_time(0.0) == high_profile.setup_time_full


def test_dag_job_rejects_nonpositive_size(high_profile):
    with pytest.raises(ValueError, match="size"):
        make_job(diamond(), high_profile, size_mb=0.0)


def test_ideal_service_time_includes_setup(high_profile):
    job = make_job(diamond(), high_profile)
    assert job.ideal_service_time(slots=4) > high_profile.setup_time_full
    with pytest.raises(ValueError, match="slots"):
        job.ideal_service_time(slots=0)


def test_ideal_service_time_decreases_with_dropping(high_profile):
    job = make_job(diamond(), high_profile)
    assert job.ideal_service_time(slots=1, drop_ratio=0.5) < job.ideal_service_time(
        slots=1, drop_ratio=0.0
    )
