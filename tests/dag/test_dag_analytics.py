"""Tests for critical-path/slack analytics and slack-biased dropping."""

from __future__ import annotations

import pytest

from repro.dag.analytics import (
    analyze_critical_path,
    slack_biased_drop_ratios,
    stage_duration,
    upward_ranks,
)
from repro.dag.graph import DagStage, StageDAG


def stage(index, parents=(), maps=(1.0,), reduces=(), shuffle=0.0, droppable=True):
    return DagStage(
        index=index,
        map_task_times=list(maps),
        reduce_task_times=list(reduces),
        shuffle_time=shuffle,
        droppable=droppable,
        parents=tuple(parents),
    )


def unbalanced() -> StageDAG:
    """0 → 1 → 3 (long chain) and 0 → 2 → 3 (short chain)."""
    return StageDAG(
        [
            stage(0, maps=(2.0,)),
            stage(1, parents=(0,), maps=(10.0,)),
            stage(2, parents=(0,), maps=(1.0,)),
            stage(3, parents=(1, 2), maps=(3.0,)),
        ]
    )


# ---------------------------------------------------------- stage duration
def test_stage_duration_waves_and_shuffle():
    s = stage(0, maps=(2.0, 2.0, 2.0), reduces=(1.0,), shuffle=0.5)
    # 2 slots: maps take two waves (4.0), plus shuffle and the reduce.
    assert stage_duration(s, slots=2) == pytest.approx(4.0 + 0.5 + 1.0)
    # Plenty of slots: one map wave.
    assert stage_duration(s, slots=10) == pytest.approx(2.0 + 0.5 + 1.0)


def test_stage_duration_skips_shuffle_without_reduces():
    s = stage(0, maps=(2.0,), reduces=(1.0,), shuffle=0.5)
    assert stage_duration(s, slots=4, reduce_durations=[]) == pytest.approx(2.0)


def test_stage_duration_rejects_bad_slots():
    with pytest.raises(ValueError):
        stage_duration(stage(0), slots=0)


# ------------------------------------------------------------ forward pass
def test_critical_path_on_unbalanced_diamond():
    analysis = analyze_critical_path(unbalanced(), slots=4)
    assert analysis.critical_path == (0, 1, 3)
    assert analysis.critical_path_length == pytest.approx(15.0)
    assert analysis.earliest_start[3] == pytest.approx(12.0)
    # The off-critical stage has slack equal to the branch difference.
    assert analysis.slack[2] == pytest.approx(9.0)
    assert analysis.slack[0] == pytest.approx(0.0)
    assert analysis.slack[1] == pytest.approx(0.0)
    assert analysis.is_critical(0) and analysis.is_critical(1) and analysis.is_critical(3)
    assert not analysis.is_critical(2)


def test_lower_bound_is_at_least_longest_stage():
    dag = unbalanced()
    analysis = analyze_critical_path(dag, slots=4)
    longest_stage = max(stage_duration(s, 4) for s in dag)
    assert analysis.lower_bound_makespan >= longest_stage
    assert analysis.lower_bound_makespan >= analysis.work_bound


def test_work_bound_dominates_when_slots_scarce():
    dag = StageDAG([stage(0, maps=(1.0,) * 8), stage(1, maps=(1.0,) * 8)])
    analysis = analyze_critical_path(dag, slots=1)
    # 16 units of work on one slot beats the 8-unit critical path.
    assert analysis.lower_bound_makespan == pytest.approx(16.0)


def test_explicit_durations_override():
    analysis = analyze_critical_path(unbalanced(), slots=4, stage_durations={1: 0.5})
    assert analysis.critical_path_length == pytest.approx(2.0 + 1.0 + 3.0)
    assert analysis.critical_path == (0, 2, 3)


# ------------------------------------------------------------ upward ranks
def test_upward_ranks_decrease_along_edges():
    dag = unbalanced()
    ranks = upward_ranks(dag, slots=4)
    for s in dag:
        for parent in s.parents:
            assert ranks[parent] > ranks[s.index]
    assert ranks[0] == pytest.approx(15.0)
    assert ranks[1] == pytest.approx(13.0)
    assert ranks[2] == pytest.approx(4.0)


# ----------------------------------------------------- slack-biased ratios
def test_slack_bias_shifts_dropping_off_critical_path():
    dag = unbalanced()
    ratios = slack_biased_drop_ratios(dag, base_ratio=0.2, slots=4)
    # The high-slack stage drops more than every critical stage.
    assert ratios[2] > ratios[0]
    assert ratios[2] > ratios[1]
    # The work-weighted mean ratio (the accuracy budget) is conserved.
    work = {s.index: s.total_work() for s in dag}
    mean = sum(ratios[i] * work[i] for i in ratios) / sum(work.values())
    assert mean == pytest.approx(0.2)


def test_slack_bias_negative_concentrates_on_critical_path():
    ratios = slack_biased_drop_ratios(unbalanced(), base_ratio=0.2, slots=4, bias=-1.0)
    assert ratios[2] < ratios[0]


def test_slack_bias_uniform_cases():
    chain = StageDAG([stage(0), stage(1, parents=(0,))])
    # Fully serial DAG: no slack anywhere, ratios stay uniform.
    assert slack_biased_drop_ratios(chain, 0.3, slots=4) == {0: 0.3, 1: 0.3}
    # Zero base ratio stays zero.
    assert slack_biased_drop_ratios(unbalanced(), 0.0, slots=4) == {
        0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0,
    }


def test_slack_bias_respects_non_droppable_stages():
    dag = StageDAG(
        [
            stage(0, maps=(2.0,)),
            stage(1, parents=(0,), maps=(10.0,)),
            stage(2, parents=(0,), maps=(1.0,), droppable=False),
            stage(3, parents=(1, 2), maps=(3.0,)),
        ]
    )
    ratios = slack_biased_drop_ratios(dag, base_ratio=0.2, slots=4)
    assert ratios[2] == 0.0


def test_slack_bias_validates_inputs():
    with pytest.raises(ValueError):
        slack_biased_drop_ratios(unbalanced(), base_ratio=1.0, slots=4)
