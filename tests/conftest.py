"""Shared fixtures for the DiAS reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import JobFactory
from repro.engine.profiles import JobClassProfile
from repro.simulation.random_streams import RandomStreams
from repro.workloads.scenarios import HIGH, LOW


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=7)


@pytest.fixture
def small_cluster() -> Cluster:
    """A 4-slot cluster so wave effects are visible with few tasks."""
    return Cluster(ClusterConfig(workers=2, cores_per_worker=2))


@pytest.fixture
def default_cluster() -> Cluster:
    """The paper's 20-slot cluster."""
    return Cluster(ClusterConfig(workers=10, cores_per_worker=2))


@pytest.fixture
def high_profile() -> JobClassProfile:
    """A small high-priority profile (fast to simulate)."""
    return JobClassProfile(
        priority=HIGH,
        name="high",
        mean_size_mb=100.0,
        size_cv=0.1,
        partitions=8,
        reduce_tasks=2,
        map_time_per_100mb=40.0,
        reduce_time=2.0,
        setup_time_full=4.0,
        setup_time_min=2.0,
        shuffle_time=1.0,
        task_scv=0.05,
        max_accuracy_loss=0.0,
    )


@pytest.fixture
def low_profile() -> JobClassProfile:
    """A small low-priority profile (larger jobs, tolerates accuracy loss)."""
    return JobClassProfile(
        priority=LOW,
        name="low",
        mean_size_mb=240.0,
        size_cv=0.1,
        partitions=8,
        reduce_tasks=2,
        map_time_per_100mb=40.0,
        reduce_time=2.0,
        setup_time_full=4.0,
        setup_time_min=2.0,
        shuffle_time=1.0,
        task_scv=0.05,
        max_accuracy_loss=0.32,
    )


@pytest.fixture
def job_factory(streams: RandomStreams) -> JobFactory:
    return JobFactory(streams)
