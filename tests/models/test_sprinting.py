"""Tests for the effective sprinting-rate model."""

from __future__ import annotations

import pytest

from repro.models.ph import PhaseType
from repro.models.sprinting import SprintingRateModel


def test_no_speedup_changes_nothing():
    model = SprintingRateModel(speedup=1.0, timeout=10.0)
    assert model.effective_time_deterministic(100.0) == 100.0


def test_deterministic_effective_time_with_timeout():
    # 100 s job, sprint after 65 s at 2.5x -> 65 + 35/2.5 = 79 s.
    model = SprintingRateModel(speedup=2.5, timeout=65.0)
    assert model.effective_time_deterministic(100.0) == pytest.approx(79.0)


def test_deterministic_short_job_never_sprints():
    model = SprintingRateModel(speedup=2.5, timeout=65.0)
    assert model.effective_time_deterministic(50.0) == 50.0
    assert model.sprinted_seconds_deterministic(50.0) == 0.0


def test_zero_timeout_sprints_whole_job():
    model = SprintingRateModel(speedup=2.0, timeout=0.0)
    assert model.effective_time_deterministic(100.0) == pytest.approx(50.0)
    assert model.sprinted_seconds_deterministic(100.0) == pytest.approx(50.0)


def test_budget_cap_limits_sprinting():
    model = SprintingRateModel(speedup=2.0, timeout=0.0, max_sprint_seconds=10.0)
    # 10 s of sprinting executes 20 s of work; the remaining 80 s runs at base.
    assert model.effective_time_deterministic(100.0) == pytest.approx(10.0 + 80.0)
    assert model.sprinted_seconds_deterministic(100.0) == pytest.approx(10.0)


def test_stochastic_effective_mean_for_zero_timeout():
    base = PhaseType.exponential(1.0 / 100.0)  # mean 100 s
    model = SprintingRateModel(speedup=2.5, timeout=0.0)
    assert model.effective_mean_time(base) == pytest.approx(40.0, rel=1e-6)


def test_stochastic_effective_mean_with_timeout_between_bounds():
    base = PhaseType.exponential(1.0 / 100.0)
    model = SprintingRateModel(speedup=2.5, timeout=65.0)
    effective = model.effective_mean_time(base)
    assert 40.0 < effective < 100.0


def test_effective_mean_agrees_with_exponential_closed_form():
    # For Exp(mu) and timeout T: E[min(D,T)] = (1 - exp(-mu T)) / mu.
    import math

    mean = 100.0
    timeout = 65.0
    speedup = 2.5
    base = PhaseType.exponential(1.0 / mean)
    expected_before = mean * (1 - math.exp(-timeout / mean))
    expected = expected_before + (mean - expected_before) / speedup
    model = SprintingRateModel(speedup=speedup, timeout=timeout)
    assert model.effective_mean_time(base) == pytest.approx(expected, rel=1e-3)


def test_effective_rate_is_reciprocal():
    base = PhaseType.exponential(1.0 / 50.0)
    model = SprintingRateModel(speedup=2.0, timeout=0.0)
    assert model.effective_rate(base) == pytest.approx(1.0 / model.effective_mean_time(base))


def test_expected_sprinted_fraction_bounds():
    base = PhaseType.exponential(1.0 / 100.0)
    full = SprintingRateModel(speedup=2.5, timeout=0.0).expected_sprinted_fraction(base)
    partial = SprintingRateModel(speedup=2.5, timeout=65.0).expected_sprinted_fraction(base)
    assert full == pytest.approx(1.0, rel=1e-6)
    assert 0.0 < partial < full


def test_for_budget_fraction_reproduces_paper_calibration():
    # ~100 s jobs sprinting 35% of their execution -> a 65 s timeout.
    model = SprintingRateModel.for_budget_fraction(
        speedup=2.5, mean_execution_time=100.0, sprint_fraction=0.35
    )
    assert model.timeout == pytest.approx(65.0)


def test_validation():
    with pytest.raises(ValueError):
        SprintingRateModel(speedup=0.5)
    with pytest.raises(ValueError):
        SprintingRateModel(speedup=2.0, timeout=-1.0)
    with pytest.raises(ValueError):
        SprintingRateModel.for_budget_fraction(2.0, 100.0, 1.5)
    with pytest.raises(ValueError):
        SprintingRateModel(speedup=2.0).effective_time_deterministic(-1.0)
