"""Tests for Marked Markovian Arrival Processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.mmap import MarkedMAP


def test_marked_poisson_rates_recovered():
    mmap = MarkedMAP.marked_poisson([0.2, 0.5])
    assert mmap.num_classes == 2
    assert mmap.order == 1
    assert mmap.arrival_rate(0) == pytest.approx(0.2)
    assert mmap.arrival_rate(1) == pytest.approx(0.5)
    assert mmap.total_arrival_rate() == pytest.approx(0.7)


def test_marked_poisson_rejects_negative_rates():
    with pytest.raises(ValueError):
        MarkedMAP.marked_poisson([0.2, -0.1])


def test_generator_rows_sum_to_zero():
    mmap = MarkedMAP.marked_poisson([1.0, 2.0])
    assert np.allclose(mmap.generator.sum(axis=1), 0.0)


def test_invalid_generator_rejected():
    # D0 + D1 rows do not sum to zero.
    with pytest.raises(ValueError):
        MarkedMAP([[-1.0]], [[[0.5]]])


def test_negative_marked_matrix_rejected():
    with pytest.raises(ValueError):
        MarkedMAP([[-1.0]], [[[-1.0]], [[2.0]]])


def test_two_state_mmap_stationary_distribution():
    # Underlying chain flips between two states at rate 1; class-0 arrivals
    # only occur in state 0, class-1 arrivals only in state 1, both at rate 2.
    D0 = [[-3.0, 1.0], [1.0, -3.0]]
    D1 = [[2.0, 0.0], [0.0, 0.0]]
    D2 = [[0.0, 0.0], [0.0, 2.0]]
    mmap = MarkedMAP(D0, [D1, D2])
    pi = mmap.stationary_distribution()
    assert pi == pytest.approx([0.5, 0.5])
    assert mmap.arrival_rate(0) == pytest.approx(1.0)
    assert mmap.arrival_rate(1) == pytest.approx(1.0)


def test_superposition_adds_rates():
    a = MarkedMAP.marked_poisson([0.3, 0.1])
    b = MarkedMAP.marked_poisson([0.2, 0.4])
    combined = MarkedMAP.superpose(a, b)
    assert combined.arrival_rate(0) == pytest.approx(0.5)
    assert combined.arrival_rate(1) == pytest.approx(0.5)


def test_superpose_requires_matching_class_counts():
    a = MarkedMAP.marked_poisson([0.3])
    b = MarkedMAP.marked_poisson([0.2, 0.4])
    with pytest.raises(ValueError):
        MarkedMAP.superpose(a, b)


def test_sampled_arrivals_are_ordered_and_marked(rng):
    mmap = MarkedMAP.marked_poisson([0.5, 1.5])
    arrivals = mmap.sample_arrivals(rng, horizon=200.0)
    times = [t for t, _ in arrivals]
    classes = {k for _, k in arrivals}
    assert times == sorted(times)
    assert classes <= {0, 1}
    assert all(0 <= t < 200.0 for t in times)


def test_sampled_arrival_rates_match_specification(rng):
    mmap = MarkedMAP.marked_poisson([0.5, 1.5])
    arrivals = mmap.sample_arrivals(rng, horizon=3000.0)
    count_low = sum(1 for _, k in arrivals if k == 0)
    count_high = sum(1 for _, k in arrivals if k == 1)
    assert count_low / 3000.0 == pytest.approx(0.5, rel=0.15)
    assert count_high / 3000.0 == pytest.approx(1.5, rel=0.15)


def test_sample_requires_positive_horizon(rng):
    mmap = MarkedMAP.marked_poisson([1.0])
    with pytest.raises(ValueError):
        mmap.sample_arrivals(rng, horizon=0.0)
