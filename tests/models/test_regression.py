"""Tests for the interpolation and regression helpers."""

from __future__ import annotations

import pytest

from repro.models.regression import LinearInterpolator, LinearRegression


# ---------------------------------------------------------- LinearInterpolator
def test_two_point_interpolation():
    interp = LinearInterpolator.two_point(0.0, 12.0, 0.9, 6.0)
    assert interp(0.0) == 12.0
    assert interp(0.9) == 6.0
    assert interp(0.45) == pytest.approx(9.0)


def test_interpolation_clamps_outside_range():
    interp = LinearInterpolator.two_point(0.0, 10.0, 1.0, 20.0)
    assert interp(-5.0) == 10.0
    assert interp(5.0) == 20.0


def test_multi_point_interpolation_is_piecewise():
    interp = LinearInterpolator([(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)])
    assert interp(0.5) == pytest.approx(5.0)
    assert interp(1.5) == pytest.approx(5.0)


def test_points_order_does_not_matter():
    interp = LinearInterpolator([(2.0, 4.0), (0.0, 0.0)])
    assert interp(1.0) == pytest.approx(2.0)


def test_interpolator_needs_two_points():
    with pytest.raises(ValueError):
        LinearInterpolator([(0.0, 1.0)])


def test_interpolator_rejects_duplicate_x():
    with pytest.raises(ValueError):
        LinearInterpolator([(1.0, 2.0), (1.0, 3.0)])


def test_points_property_is_sorted():
    interp = LinearInterpolator([(2.0, 4.0), (0.0, 0.0)])
    assert interp.points == [(0.0, 0.0), (2.0, 4.0)]


# ------------------------------------------------------------ LinearRegression
def test_perfect_line_is_recovered():
    fit = LinearRegression.fit([0.0, 1.0, 2.0, 3.0], [1.0, 3.0, 5.0, 7.0])
    assert fit.intercept == pytest.approx(1.0)
    assert fit.slope == pytest.approx(2.0)
    assert fit.r_squared == pytest.approx(1.0)


def test_noisy_fit_has_r_squared_below_one():
    xs = [0.0, 1.0, 2.0, 3.0, 4.0]
    ys = [0.0, 2.2, 3.8, 6.1, 7.9]
    fit = LinearRegression.fit(xs, ys)
    assert 0.9 < fit.r_squared <= 1.0
    assert fit.slope == pytest.approx(2.0, abs=0.2)


def test_predict_and_predict_many():
    fit = LinearRegression(intercept=1.0, slope=2.0, r_squared=1.0)
    assert fit.predict(3.0) == 7.0
    assert fit.predict_many([0.0, 1.0]) == [1.0, 3.0]


def test_fit_validation():
    with pytest.raises(ValueError):
        LinearRegression.fit([1.0], [2.0])
    with pytest.raises(ValueError):
        LinearRegression.fit([1.0, 2.0], [2.0])
    with pytest.raises(ValueError):
        LinearRegression.fit([1.0, 1.0], [1.0, 2.0])
