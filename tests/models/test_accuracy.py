"""Tests for accuracy-loss models."""

from __future__ import annotations

import pytest

from repro.models.accuracy import AccuracyModel, compose_stage_drop_ratios


# ------------------------------------------------- compose_stage_drop_ratios
def test_compose_single_stage_is_identity():
    assert compose_stage_drop_ratios([0.2]) == pytest.approx(0.2)


def test_compose_multiple_stages():
    assert compose_stage_drop_ratios([0.1, 0.1]) == pytest.approx(1 - 0.9 * 0.9)


def test_compose_six_stages_like_triangle_count():
    # 5% per stage over six ShuffleMap stages.
    effective = compose_stage_drop_ratios([0.05] * 6)
    assert effective == pytest.approx(1 - 0.95**6)
    assert 0.25 < effective < 0.27


def test_compose_empty_is_zero():
    assert compose_stage_drop_ratios([]) == 0.0


def test_compose_validates_range():
    with pytest.raises(ValueError):
        compose_stage_drop_ratios([1.2])


# ------------------------------------------------------------- AccuracyModel
def test_zero_drop_has_zero_error():
    assert AccuracyModel.paper_default().error(0.0) == 0.0


def test_paper_default_matches_published_points():
    model = AccuracyModel.paper_default()
    assert model.error(0.1) == pytest.approx(0.085, abs=0.01)
    assert model.error(0.2) == pytest.approx(0.15, abs=0.015)
    assert model.error(0.4) == pytest.approx(0.32, abs=0.03)


def test_error_grows_sublinearly():
    model = AccuracyModel.paper_default()
    # Sub-linear growth: doubling theta less than doubles the error.
    assert model.error(0.4) < 2 * model.error(0.2)
    assert model.exponent < 1.001


def test_error_is_monotone_and_capped():
    model = AccuracyModel.paper_default()
    errors = [model.error(theta) for theta in (0.1, 0.3, 0.5, 0.8, 1.0)]
    assert errors == sorted(errors)
    assert errors[-1] <= 1.0


def test_error_percent():
    model = AccuracyModel(coefficient=0.5, exponent=1.0)
    assert model.error_percent(0.2) == pytest.approx(10.0)


def test_max_drop_for_error_inverts_the_curve():
    model = AccuracyModel.paper_default()
    for tolerance in (0.085, 0.15, 0.32):
        theta = model.max_drop_for_error(tolerance)
        assert model.error(theta) == pytest.approx(tolerance, rel=1e-6)


def test_max_drop_for_zero_tolerance_is_zero():
    assert AccuracyModel.paper_default().max_drop_for_error(0.0) == 0.0


def test_max_drop_is_clamped_to_one():
    model = AccuracyModel(coefficient=0.1, exponent=1.0)
    assert model.max_drop_for_error(0.5) == 1.0


def test_zero_model_has_no_loss():
    model = AccuracyModel.zero()
    assert model.error(0.9) == 0.0
    assert model.max_drop_for_error(0.1) == 1.0


def test_from_points_fits_power_law():
    truth = AccuracyModel(coefficient=0.6, exponent=0.7)
    points = [(theta, truth.error(theta)) for theta in (0.1, 0.2, 0.4, 0.6)]
    fitted = AccuracyModel.from_points(points)
    assert fitted.coefficient == pytest.approx(0.6, rel=0.05)
    assert fitted.exponent == pytest.approx(0.7, rel=0.05)


def test_from_points_requires_two_positive_points():
    with pytest.raises(ValueError):
        AccuracyModel.from_points([(0.0, 0.0), (0.1, 0.05)])


def test_curve_returns_percent_pairs():
    model = AccuracyModel.paper_default()
    curve = model.curve([0.1, 0.2])
    assert len(curve) == 2
    assert curve[0][1] == pytest.approx(8.5, abs=1.0)


def test_invalid_drop_ratio_rejected():
    with pytest.raises(ValueError):
        AccuracyModel.paper_default().error(1.5)


def test_model_validation():
    with pytest.raises(ValueError):
        AccuracyModel(coefficient=-0.1, exponent=1.0)
    with pytest.raises(ValueError):
        AccuracyModel(coefficient=0.1, exponent=0.0)
