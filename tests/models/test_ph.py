"""Tests for Phase-Type distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.models.ph import PhaseType


# ------------------------------------------------------------------ factories
def test_exponential_moments():
    ph = PhaseType.exponential(0.5)
    assert ph.mean == pytest.approx(2.0)
    assert ph.variance == pytest.approx(4.0)
    assert ph.scv == pytest.approx(1.0)


def test_erlang_moments():
    ph = PhaseType.erlang(4, 2.0)
    assert ph.mean == pytest.approx(2.0)
    assert ph.scv == pytest.approx(0.25)


def test_hyperexponential_moments():
    ph = PhaseType.hyperexponential([0.5, 0.5], [1.0, 3.0])
    expected_mean = 0.5 * 1.0 + 0.5 / 3.0
    assert ph.mean == pytest.approx(expected_mean)
    assert ph.scv > 1.0


def test_deterministic_approx_has_tiny_scv():
    ph = PhaseType.deterministic_approx(5.0, phases=100)
    assert ph.mean == pytest.approx(5.0)
    assert ph.scv == pytest.approx(0.01)


def test_factory_validation():
    with pytest.raises(ValueError):
        PhaseType.exponential(0.0)
    with pytest.raises(ValueError):
        PhaseType.erlang(0, 1.0)
    with pytest.raises(ValueError):
        PhaseType.hyperexponential([0.5, 0.4], [1.0, 2.0])


# ------------------------------------------------------------------ validation
def test_alpha_must_sum_to_one():
    with pytest.raises(ValueError):
        PhaseType([0.5, 0.2], [[-1.0, 0.0], [0.0, -1.0]])


def test_off_diagonal_must_be_non_negative():
    with pytest.raises(ValueError):
        PhaseType([1.0, 0.0], [[-1.0, -0.5], [0.0, -1.0]])


def test_row_sums_must_be_non_positive():
    with pytest.raises(ValueError):
        PhaseType([1.0, 0.0], [[-1.0, 2.0], [0.0, -1.0]])


def test_dimension_mismatch_rejected():
    with pytest.raises(ValueError):
        PhaseType([1.0], [[-1.0, 1.0], [0.0, -1.0]])


# --------------------------------------------------------------------- moments
def test_moment_zero_is_one():
    assert PhaseType.exponential(1.0).moment(0) == 1.0


def test_exponential_third_moment():
    # E[X^3] of Exp(rate) is 6 / rate^3.
    ph = PhaseType.exponential(2.0)
    assert ph.moment(3) == pytest.approx(6.0 / 8.0)


def test_second_moment_consistency():
    ph = PhaseType.erlang(3, 1.5)
    assert ph.second_moment == pytest.approx(ph.variance + ph.mean**2)


# ---------------------------------------------------------------- cdf/pdf/tail
def test_exponential_cdf_matches_closed_form():
    ph = PhaseType.exponential(0.7)
    for x in (0.1, 1.0, 3.0):
        assert ph.cdf(x) == pytest.approx(1.0 - math.exp(-0.7 * x), abs=1e-9)


def test_cdf_is_zero_at_negative_values():
    assert PhaseType.exponential(1.0).cdf(-1.0) == 0.0


def test_sf_is_complement_of_cdf():
    ph = PhaseType.erlang(2, 1.0)
    assert ph.sf(1.3) == pytest.approx(1.0 - ph.cdf(1.3))


def test_pdf_integrates_to_about_one():
    ph = PhaseType.erlang(3, 2.0)
    xs = np.linspace(0, 20, 4000)
    integral = np.trapezoid([ph.pdf(x) for x in xs], xs)
    assert integral == pytest.approx(1.0, abs=1e-3)


def test_quantile_inverts_cdf():
    ph = PhaseType.exponential(1.0)
    x = ph.quantile(0.95)
    assert ph.cdf(x) == pytest.approx(0.95, abs=1e-4)


def test_quantile_zero():
    assert PhaseType.exponential(1.0).quantile(0.0) == 0.0


# ------------------------------------------------------------------ operations
def test_convolution_adds_means_and_variances():
    a = PhaseType.exponential(1.0)
    b = PhaseType.erlang(2, 3.0)
    c = a.convolve(b)
    assert c.mean == pytest.approx(a.mean + b.mean)
    assert c.variance == pytest.approx(a.variance + b.variance)


def test_convolve_many():
    parts = [PhaseType.exponential(1.0) for _ in range(3)]
    total = parts[0].convolve_many(parts[1:])
    assert total.mean == pytest.approx(3.0)


def test_mixture_mean_is_weighted_average():
    a = PhaseType.exponential(1.0)   # mean 1
    b = PhaseType.exponential(0.25)  # mean 4
    mix = PhaseType.mixture([0.25, 0.75], [a, b])
    assert mix.mean == pytest.approx(0.25 * 1.0 + 0.75 * 4.0)


def test_mixture_weights_validated():
    a = PhaseType.exponential(1.0)
    with pytest.raises(ValueError):
        PhaseType.mixture([0.5, 0.6], [a, a])


def test_scaling_scales_moments():
    ph = PhaseType.erlang(2, 1.0)
    scaled = ph.scaled(3.0)
    assert scaled.mean == pytest.approx(3.0 * ph.mean)
    assert scaled.scv == pytest.approx(ph.scv)


def test_scaling_rejects_non_positive_factor():
    with pytest.raises(ValueError):
        PhaseType.exponential(1.0).scaled(0.0)


# -------------------------------------------------------------------- fitting
@pytest.mark.parametrize("mean,scv", [(2.0, 1.0), (5.0, 0.5), (1.0, 0.2), (3.0, 4.0)])
def test_fit_mean_scv_matches_first_two_moments(mean, scv):
    ph = PhaseType.fit_mean_scv(mean, scv)
    assert ph.mean == pytest.approx(mean, rel=1e-6)
    assert ph.scv == pytest.approx(scv, rel=1e-6)


def test_fit_mean_scv_zero_scv_is_nearly_deterministic():
    ph = PhaseType.fit_mean_scv(4.0, 0.0)
    assert ph.mean == pytest.approx(4.0)
    assert ph.scv < 0.05


def test_fit_rejects_bad_inputs():
    with pytest.raises(ValueError):
        PhaseType.fit_mean_scv(0.0, 1.0)
    with pytest.raises(ValueError):
        PhaseType.fit_mean_scv(1.0, -1.0)


# -------------------------------------------------------------------- sampling
def test_sampling_mean_close_to_analytic(rng):
    ph = PhaseType.erlang(3, 1.0)
    samples = ph.sample(rng, 4000)
    assert abs(samples.mean() - ph.mean) / ph.mean < 0.05


def test_sampling_non_negative(rng):
    ph = PhaseType.hyperexponential([0.3, 0.7], [0.5, 5.0])
    samples = ph.sample(rng, 200)
    assert np.all(samples >= 0)


def test_repr_mentions_order_and_mean():
    text = repr(PhaseType.erlang(2, 1.0))
    assert "order=2" in text
