"""Tests for the wave-level PH model (§4.2)."""

from __future__ import annotations

import pytest

from repro.models.ph import PhaseType
from repro.models.wave_level import WaveLevelModel, wave_count_distribution


# ------------------------------------------------------- wave_count_distribution
def test_wave_count_basic():
    # 40 tasks on 20 slots -> 2 waves.
    assert wave_count_distribution({40: 1.0}, 0.0, 20) == {2: 1.0}


def test_wave_count_with_dropping_crosses_boundary():
    # 50 tasks, dropping 20% -> 40 tasks -> 2 waves (down from 3).
    assert wave_count_distribution({50: 1.0}, 0.0, 20) == {3: 1.0}
    assert wave_count_distribution({50: 1.0}, 0.2, 20) == {2: 1.0}


def test_wave_count_mixture():
    dist = wave_count_distribution({10: 0.5, 30: 0.5}, 0.0, 20)
    assert dist == {1: 0.5, 2: 0.5}


def test_wave_count_all_dropped_gives_zero_waves():
    assert wave_count_distribution({10: 1.0}, 0.99, 20) == {1: 1.0}  # ⌈10·0.01⌉ = 1


def test_wave_count_requires_positive_slots():
    with pytest.raises(ValueError):
        wave_count_distribution({10: 1.0}, 0.0, 0)


# ----------------------------------------------------------------- WaveLevelModel
def wave_model(**overrides) -> WaveLevelModel:
    params = dict(
        slots=2,
        map_task_distribution={4: 1.0},
        reduce_task_distribution={2: 1.0},
        map_wave_ph=PhaseType.erlang(2, 2.0),     # mean 1 per wave
        reduce_wave_ph=PhaseType.exponential(2.0),  # mean 0.5 per wave
        setup_ph=None,
        shuffle_ph=None,
        map_drop_ratio=0.0,
        reduce_drop_ratio=0.0,
    )
    params.update(overrides)
    return WaveLevelModel(**params)


def test_wave_model_mean_is_sum_of_wave_means():
    # 4 map tasks / 2 slots = 2 map waves of mean 1; 2 reduce tasks / 2 slots =
    # 1 reduce wave of mean 0.5.
    model = wave_model()
    assert model.mean_processing_time() == pytest.approx(2.0 + 0.5, rel=1e-6)


def test_wave_model_includes_setup_and_shuffle():
    model = wave_model(
        setup_ph=PhaseType.exponential(0.5),   # mean 2
        shuffle_ph=PhaseType.exponential(1.0),  # mean 1
    )
    assert model.mean_processing_time() == pytest.approx(2.0 + 2.0 + 1.0 + 0.5, rel=1e-6)


def test_wave_model_dropping_whole_wave_reduces_mean():
    base = wave_model().mean_processing_time()
    dropped = wave_model(map_drop_ratio=0.5).mean_processing_time()
    assert dropped == pytest.approx(base - 1.0, rel=1e-6)


def test_wave_model_small_drop_keeps_wave_count():
    # Dropping 10% of 4 tasks keeps 4 effective tasks (⌈3.6⌉) -> same waves.
    base = wave_model().mean_processing_time()
    slight = wave_model(map_drop_ratio=0.05).mean_processing_time()
    assert slight == pytest.approx(base, rel=1e-6)


def test_wave_model_matches_paper_two_wave_example_structure():
    # wm = wr = 2 as in the worked example of §4.2.
    model = wave_model(map_task_distribution={4: 1.0}, reduce_task_distribution={4: 1.0})
    qm = model.map_wave_distribution()
    qr = model.reduce_wave_distribution()
    assert qm == {2: 1.0}
    assert qr == {2: 1.0}
    ph = model.build()
    # Blocks: 2 map waves of order 2 + 2 reduce waves of order 1.
    assert ph.order == 2 * 2 + 2 * 1


def test_wave_model_mixture_of_wave_counts():
    model = wave_model(map_task_distribution={2: 0.5, 4: 0.5})
    # Half the jobs need 1 map wave, half need 2.
    assert model.map_wave_distribution() == {1: 0.5, 2: 0.5}
    assert model.mean_processing_time() == pytest.approx(0.5 * 1.0 + 0.5 * 2.0 + 0.5, rel=1e-6)


def test_wave_model_per_wave_distributions():
    waves = [PhaseType.exponential(1.0), PhaseType.exponential(0.5)]  # means 1 and 2
    model = wave_model(map_wave_ph=waves)
    assert model.mean_processing_time() == pytest.approx(1.0 + 2.0 + 0.5, rel=1e-6)


def test_wave_model_insufficient_per_wave_list_rejected():
    with pytest.raises(ValueError):
        wave_model(map_wave_ph=[PhaseType.exponential(1.0)]).build()


def test_wave_model_with_drop_ratios_copy():
    base = wave_model()
    other = base.with_drop_ratios(0.5)
    assert other.map_drop_ratio == 0.5
    assert base.map_drop_ratio == 0.0


def test_from_profile_mean_close_to_wave_approximation(low_profile):
    slots = 4
    model = WaveLevelModel.from_profile(low_profile, slots)
    approx = low_profile.mean_service_time(slots)
    assert model.mean_processing_time() == pytest.approx(approx, rel=0.1)


def test_from_profile_dropping_reduces_mean(low_profile):
    base = WaveLevelModel.from_profile(low_profile, 4, map_drop_ratio=0.0)
    dropped = WaveLevelModel.from_profile(low_profile, 4, map_drop_ratio=0.5)
    assert dropped.mean_processing_time() < base.mean_processing_time()


def test_wave_model_validation():
    with pytest.raises(ValueError):
        wave_model(slots=0)
    with pytest.raises(ValueError):
        wave_model(map_drop_ratio=1.0)
