"""Tests for the task-level PH model (§4.1)."""

from __future__ import annotations

import pytest

from repro.models.ph import PhaseType
from repro.models.task_level import TaskLevelModel


def simple_model(**overrides) -> TaskLevelModel:
    params = dict(
        slots=2,
        map_task_distribution={4: 1.0},
        reduce_task_distribution={2: 1.0},
        map_rate=1.0,
        reduce_rate=2.0,
        setup_rate=None,
        shuffle_rate=None,
        map_drop_ratio=0.0,
        reduce_drop_ratio=0.0,
    )
    params.update(overrides)
    return TaskLevelModel(**params)


def test_model_builds_a_valid_ph():
    ph = simple_model().build()
    assert isinstance(ph, PhaseType)
    assert ph.mean > 0


def test_mean_matches_hand_computed_value():
    # 4 map tasks on 2 slots at rate 1 each: phases M4, M3 run at rate 2,
    # M2 at rate 2, M1 at rate 1 -> expected map time 0.5 + 0.5 + 0.5 + 1 = 2.5.
    # 2 reduce tasks at rate 2 on 2 slots: R2 at rate 4, R1 at rate 2 -> 0.5.
    model = simple_model()
    assert model.mean_processing_time() == pytest.approx(2.5 + 0.75, rel=1e-6)


def test_phase_count_matches_paper_formula():
    # N̄m + N̄r + 2 phases (setup, maps, shuffle, reduces).
    model = simple_model(setup_rate=1.0, shuffle_rate=1.0)
    ph = model.build()
    assert ph.order == 4 + 2 + 2


def test_setup_and_shuffle_increase_mean():
    without = simple_model().mean_processing_time()
    with_stages = simple_model(setup_rate=0.5, shuffle_rate=1.0).mean_processing_time()
    assert with_stages == pytest.approx(without + 2.0 + 1.0, rel=1e-6)


def test_dropping_reduces_mean():
    full = simple_model().mean_processing_time()
    dropped = simple_model(map_drop_ratio=0.5).mean_processing_time()
    assert dropped < full


def test_effective_distribution_applies_ceiling():
    model = simple_model(map_task_distribution={5: 1.0}, map_drop_ratio=0.2)
    assert model.effective_map_distribution() == {4: 1.0}


def test_effective_distribution_merges_counts():
    model = simple_model(
        map_task_distribution={4: 0.5, 5: 0.5}, map_drop_ratio=0.25
    )
    effective = model.effective_map_distribution()
    # ⌈4·0.75⌉ = 3 and ⌈5·0.75⌉ = 4.
    assert effective == {3: 0.5, 4: 0.5}


def test_random_task_counts_mix_means():
    fixed_small = simple_model(map_task_distribution={2: 1.0}).mean_processing_time()
    fixed_large = simple_model(map_task_distribution={6: 1.0}).mean_processing_time()
    mixed = simple_model(
        map_task_distribution={2: 0.5, 6: 0.5}
    ).mean_processing_time()
    assert fixed_small < mixed < fixed_large
    assert mixed == pytest.approx((fixed_small + fixed_large) / 2, rel=1e-6)


def test_more_slots_means_shorter_jobs():
    slow = simple_model(slots=1).mean_processing_time()
    fast = simple_model(slots=4).mean_processing_time()
    assert fast < slow


def test_with_drop_ratios_returns_new_model():
    base = simple_model()
    dropped = base.with_drop_ratios(0.5)
    assert dropped.map_drop_ratio == 0.5
    assert base.map_drop_ratio == 0.0


def test_phase_names_layout():
    names = simple_model(setup_rate=1.0, shuffle_rate=1.0).phase_names()
    assert names[0] == "O"
    assert names[-1] == "R1"
    assert "S" in names


def test_from_profile_reflects_drop_ratio(high_profile):
    base = TaskLevelModel.from_profile(high_profile, slots=4, map_drop_ratio=0.0)
    dropped = TaskLevelModel.from_profile(high_profile, slots=4, map_drop_ratio=0.4)
    assert dropped.mean_processing_time() < base.mean_processing_time()


def test_validation_errors():
    with pytest.raises(ValueError):
        simple_model(slots=0)
    with pytest.raises(ValueError):
        simple_model(map_rate=0.0)
    with pytest.raises(ValueError):
        simple_model(map_drop_ratio=1.0)
    with pytest.raises(ValueError):
        simple_model(map_task_distribution={})
    with pytest.raises(ValueError):
        simple_model(map_task_distribution={-1: 1.0})
