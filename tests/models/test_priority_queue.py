"""Tests for the multi-priority queue response-time model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.models.mg1 import ServiceMoments, nonpreemptive_priority_response_times
from repro.models.ph import PhaseType
from repro.models.priority_queue import PriorityClassInput, PriorityQueueModel


def two_class_model(load_low=0.5, load_high=0.2) -> PriorityQueueModel:
    high_service = PhaseType.exponential(1.0)      # mean 1
    low_service = PhaseType.erlang(2, 1.0)         # mean 2
    return PriorityQueueModel(
        [
            PriorityClassInput(priority=1, arrival_rate=load_high / 1.0, service=high_service),
            PriorityClassInput(priority=0, arrival_rate=load_low / 2.0, service=low_service),
        ]
    )


def test_utilisation_sums_class_loads():
    model = two_class_model(load_low=0.5, load_high=0.2)
    assert model.utilisation() == pytest.approx(0.7)


def test_mean_responses_match_mg1_priority_formulas():
    model = two_class_model()
    expected = nonpreemptive_priority_response_times(
        {1: 0.2, 0: 0.25},
        {
            1: ServiceMoments(mean=1.0, second_moment=2.0),
            0: ServiceMoments(mean=2.0, second_moment=6.0),
        },
    )
    result = model.mean_response_times("nonpreemptive")
    for k in expected:
        assert result[k] == pytest.approx(expected[k], rel=1e-9)


def test_high_priority_faster_than_low_priority():
    responses = two_class_model().mean_response_times()
    assert responses[1] < responses[0]


def test_preemptive_resume_bounds_nonpreemptive_for_top_class():
    model = two_class_model()
    np_responses = model.mean_response_times("nonpreemptive")
    pr_responses = model.mean_response_times("preemptive_resume")
    assert pr_responses[1] <= np_responses[1]


def test_waiting_times_subtract_service_mean():
    model = two_class_model()
    responses = model.mean_response_times()
    waits = model.mean_waiting_times()
    assert waits[1] == pytest.approx(responses[1] - 1.0)
    assert waits[0] == pytest.approx(responses[0] - 2.0)


def test_unknown_discipline_rejected():
    with pytest.raises(ValueError):
        two_class_model().mean_response_times("lifo")


def test_duplicate_priorities_rejected():
    service = PhaseType.exponential(1.0)
    with pytest.raises(ValueError):
        PriorityQueueModel(
            [
                PriorityClassInput(priority=1, arrival_rate=0.1, service=service),
                PriorityClassInput(priority=1, arrival_rate=0.2, service=service),
            ]
        )


def test_simulation_matches_analytic_means():
    model = two_class_model(load_low=0.4, load_high=0.2)
    rng = np.random.default_rng(42)
    samples = model.simulate(horizon=60_000.0, rng=rng, discipline="nonpreemptive")
    analytic = model.mean_response_times("nonpreemptive")
    for priority in (0, 1):
        observed = sum(samples[priority]) / len(samples[priority])
        assert observed == pytest.approx(analytic[priority], rel=0.15)


def test_simulation_preemptive_restart_hurts_low_priority():
    model = two_class_model(load_low=0.5, load_high=0.25)
    rng = np.random.default_rng(7)
    non = model.simulate(horizon=20_000.0, rng=rng, discipline="nonpreemptive")
    rng = np.random.default_rng(7)
    restart = model.simulate(horizon=20_000.0, rng=rng, discipline="preemptive_restart")
    mean_non = sum(non[0]) / len(non[0])
    mean_restart = sum(restart[0]) / len(restart[0])
    # Restarting evicted jobs from scratch wastes work, so the low class is
    # slower (or at best comparable) than under non-preemptive scheduling.
    assert mean_restart > mean_non * 0.9


def test_simulation_preemptive_helps_high_priority():
    model = two_class_model(load_low=0.5, load_high=0.2)
    rng = np.random.default_rng(3)
    non = model.simulate(horizon=20_000.0, rng=rng, discipline="nonpreemptive")
    rng = np.random.default_rng(3)
    resume = model.simulate(horizon=20_000.0, rng=rng, discipline="preemptive_resume")
    assert sum(resume[1]) / len(resume[1]) < sum(non[1]) / len(non[1])


def test_simulated_summary_has_mean_and_tail():
    model = two_class_model()
    summary = model.simulated_summary(horizon=5_000.0, rng=np.random.default_rng(0))
    for priority in (0, 1):
        assert summary[priority]["count"] > 0
        assert summary[priority]["tail"] >= summary[priority]["mean"] * 0.5


def test_simulation_validates_inputs():
    model = two_class_model()
    with pytest.raises(ValueError):
        model.simulate(horizon=0.0)
    with pytest.raises(ValueError):
        model.simulate(horizon=10.0, discipline="unknown")


def test_empty_class_list_rejected():
    with pytest.raises(ValueError):
        PriorityQueueModel([])
