"""Tests for the matrix-geometric M/PH/1 solver."""

from __future__ import annotations

import pytest

from repro.models.mg1 import ServiceMoments, mg1_mean_waiting_time
from repro.models.ph import PhaseType
from repro.models.qbd import MPH1Queue


def test_utilisation_and_stability():
    queue = MPH1Queue(arrival_rate=0.5, service=PhaseType.exponential(1.0))
    assert queue.utilisation == pytest.approx(0.5)
    assert queue.stable


def test_unstable_queue_detected():
    queue = MPH1Queue(arrival_rate=2.0, service=PhaseType.exponential(1.0))
    assert not queue.stable
    with pytest.raises(ValueError):
        queue.mean_queue_length()


def test_mm1_mean_queue_length():
    # M/M/1 with rho = 0.5: E[N] = rho / (1 - rho) = 1.
    queue = MPH1Queue(arrival_rate=0.5, service=PhaseType.exponential(1.0))
    assert queue.mean_queue_length() == pytest.approx(1.0, rel=1e-6)


def test_mm1_empty_probability():
    queue = MPH1Queue(arrival_rate=0.3, service=PhaseType.exponential(1.0))
    p0, _, _ = queue.solve()
    assert p0 == pytest.approx(0.7, rel=1e-6)


@pytest.mark.parametrize("rho", [0.2, 0.5, 0.8])
def test_mph1_matches_pollaczek_khinchine_for_erlang_service(rho):
    service = PhaseType.erlang(3, 3.0)  # mean 1, scv 1/3
    queue = MPH1Queue(arrival_rate=rho, service=service)
    pk = mg1_mean_waiting_time(
        rho, ServiceMoments(mean=service.mean, second_moment=service.second_moment)
    )
    assert queue.mean_waiting_time() == pytest.approx(pk, rel=1e-4)


def test_mph1_matches_pollaczek_khinchine_for_hyperexponential_service():
    service = PhaseType.hyperexponential([0.4, 0.6], [0.5, 2.0])
    queue = MPH1Queue(arrival_rate=0.3, service=service)
    pk = mg1_mean_waiting_time(
        0.3, ServiceMoments(mean=service.mean, second_moment=service.second_moment)
    )
    assert queue.mean_waiting_time() == pytest.approx(pk, rel=1e-4)


def test_response_time_is_waiting_plus_service():
    service = PhaseType.erlang(2, 2.0)
    queue = MPH1Queue(arrival_rate=0.4, service=service)
    assert queue.mean_response_time() == pytest.approx(
        queue.mean_waiting_time() + service.mean, rel=1e-9
    )


def test_rate_matrix_is_nonnegative_with_small_spectral_radius():
    import numpy as np

    queue = MPH1Queue(arrival_rate=0.6, service=PhaseType.erlang(2, 2.0))
    R = queue.rate_matrix()
    assert np.all(R >= -1e-12)
    eigenvalues = np.linalg.eigvals(R)
    assert max(abs(eigenvalues)) < 1.0


def test_arrival_rate_must_be_positive():
    with pytest.raises(ValueError):
        MPH1Queue(arrival_rate=0.0, service=PhaseType.exponential(1.0))
