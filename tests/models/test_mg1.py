"""Tests for the M/G/1 and priority mean-value formulas."""

from __future__ import annotations

import math

import pytest

from repro.models.mg1 import (
    ServiceMoments,
    mg1_mean_waiting_time,
    nonpreemptive_priority_response_times,
    nonpreemptive_priority_waiting_times,
    preemptive_resume_response_times,
    total_utilisation,
)


def exponential_moments(mean: float) -> ServiceMoments:
    return ServiceMoments(mean=mean, second_moment=2 * mean * mean)


# --------------------------------------------------------------- ServiceMoments
def test_service_moments_variance():
    m = ServiceMoments(mean=2.0, second_moment=6.0)
    assert m.variance == pytest.approx(2.0)


def test_service_moments_validation():
    with pytest.raises(ValueError):
        ServiceMoments(mean=0.0, second_moment=1.0)
    with pytest.raises(ValueError):
        ServiceMoments(mean=2.0, second_moment=3.0)  # below mean^2


# ------------------------------------------------------------------------ M/G/1
def test_mm1_waiting_time_matches_closed_form():
    # M/M/1: W = rho / (mu - lambda).
    lam, mu = 0.5, 1.0
    waiting = mg1_mean_waiting_time(lam, exponential_moments(1.0 / mu))
    assert waiting == pytest.approx((lam / mu) / (mu - lam))


def test_md1_waits_half_as_long_as_mm1():
    lam = 0.5
    deterministic = ServiceMoments(mean=1.0, second_moment=1.0)
    exponential = exponential_moments(1.0)
    assert mg1_mean_waiting_time(lam, deterministic) == pytest.approx(
        mg1_mean_waiting_time(lam, exponential) / 2.0
    )


def test_unstable_queue_has_infinite_wait():
    assert math.isinf(mg1_mean_waiting_time(2.0, exponential_moments(1.0)))


# -------------------------------------------------------------------- priority
def test_total_utilisation():
    rates = {1: 0.2, 0: 0.3}
    services = {1: exponential_moments(1.0), 0: exponential_moments(2.0)}
    assert total_utilisation(rates, services) == pytest.approx(0.2 + 0.6)


def test_single_class_nonpreemptive_reduces_to_mg1():
    rates = {0: 0.5}
    services = {0: exponential_moments(1.0)}
    response = nonpreemptive_priority_response_times(rates, services)[0]
    assert response == pytest.approx(mg1_mean_waiting_time(0.5, services[0]) + 1.0)


def test_high_priority_waits_less_than_low_priority():
    rates = {1: 0.2, 0: 0.4}
    services = {1: exponential_moments(1.0), 0: exponential_moments(1.0)}
    np_resp = nonpreemptive_priority_response_times(rates, services)
    pr_resp = preemptive_resume_response_times(rates, services)
    assert np_resp[1] < np_resp[0]
    assert pr_resp[1] < pr_resp[0]


def test_preemptive_high_priority_ignores_low_priority_load():
    # Under preemptive-resume, the top class sees an M/G/1 with only its own load.
    rates = {1: 0.3, 0: 0.5}
    services = {1: exponential_moments(1.0), 0: exponential_moments(1.0)}
    top = preemptive_resume_response_times(rates, services)[1]
    solo = mg1_mean_waiting_time(0.3, services[1]) + 1.0
    assert top == pytest.approx(solo)


def test_nonpreemptive_high_priority_pays_residual_of_low():
    rates = {1: 0.3, 0: 0.5}
    services = {1: exponential_moments(1.0), 0: exponential_moments(1.0)}
    np_top = nonpreemptive_priority_response_times(rates, services)[1]
    pr_top = preemptive_resume_response_times(rates, services)[1]
    assert np_top > pr_top


def test_waiting_times_are_response_minus_service():
    rates = {1: 0.2, 0: 0.4}
    services = {1: exponential_moments(1.5), 0: exponential_moments(1.0)}
    responses = nonpreemptive_priority_response_times(rates, services)
    waits = nonpreemptive_priority_waiting_times(rates, services)
    for k in rates:
        assert waits[k] == pytest.approx(responses[k] - services[k].mean)


def test_overloaded_class_reports_infinite_response():
    rates = {1: 0.5, 0: 0.9}
    services = {1: exponential_moments(1.0), 0: exponential_moments(1.0)}
    responses = nonpreemptive_priority_response_times(rates, services)
    assert math.isinf(responses[0])
    # The high-priority class is still finite under preemption.
    assert math.isfinite(preemptive_resume_response_times(rates, services)[1])


def test_conservation_against_fcfs_single_class_equivalence():
    # With identical service distributions, the class-weighted mean waiting time
    # under non-preemptive priority equals the FCFS M/G/1 waiting time
    # (Kleinrock's conservation law for two classes with equal service).
    rates = {1: 0.3, 0: 0.4}
    service = exponential_moments(1.0)
    services = {1: service, 0: service}
    waits = nonpreemptive_priority_waiting_times(rates, services)
    total_rate = sum(rates.values())
    weighted = sum(rates[k] * waits[k] for k in rates) / total_rate
    fcfs = mg1_mean_waiting_time(total_rate, service)
    assert weighted == pytest.approx(fcfs, rel=1e-9)


def test_inputs_must_cover_same_classes():
    with pytest.raises(ValueError):
        nonpreemptive_priority_response_times({0: 0.1}, {1: exponential_moments(1.0)})


def test_rates_must_be_non_negative():
    with pytest.raises(ValueError):
        nonpreemptive_priority_response_times({0: -0.1}, {0: exponential_moments(1.0)})
