"""Tests for the sprinting configuration."""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig


def test_disabled_config_sprints_nothing():
    config = SprintConfig.disabled()
    assert not config.sprints(0)
    assert not config.sprints(5)
    assert config.budget_seconds == 0.0


def test_default_config_sprints_every_priority():
    config = SprintConfig()
    assert config.sprints(0)
    assert config.sprints(3)


def test_priority_filtering():
    config = SprintConfig(sprint_priorities=frozenset({2}))
    assert config.sprints(2)
    assert not config.sprints(0)


def test_timeout_lookup_with_default():
    config = SprintConfig(timeouts={2: 65.0}, default_timeout=10.0)
    assert config.timeout_for(2) == 65.0
    assert config.timeout_for(0) == 10.0


def test_unlimited_flag():
    assert SprintConfig(budget_seconds=None).unlimited
    assert not SprintConfig(budget_seconds=100.0).unlimited


def test_replenish_rate_conversion():
    config = SprintConfig(replenish_seconds_per_hour=360.0)
    assert config.replenish_rate == pytest.approx(0.1)


def test_budget_cap_defaults_to_initial_budget():
    config = SprintConfig(budget_seconds=200.0)
    assert config.budget_cap() == 200.0
    capped = SprintConfig(budget_seconds=200.0, max_budget_seconds=500.0)
    assert capped.budget_cap() == 500.0


def test_unlimited_sprinting_factory():
    config = SprintConfig.unlimited_sprinting({2}, timeout=0.0)
    assert config.unlimited
    assert config.sprints(2)
    assert not config.sprints(0)
    assert config.timeout_for(2) == 0.0


def test_limited_sprinting_factory_matches_paper_defaults():
    config = SprintConfig.limited_sprinting(budget_seconds=244.0, sprint_priorities={2})
    assert config.budget_seconds == 244.0
    assert config.timeout_for(2) == 65.0
    assert config.replenish_seconds_per_hour == 360.0


def test_from_energy_budget_converts_joules():
    # 22 kJ at 90 W extra power is about 244 s of sprinting.
    config = SprintConfig.from_energy_budget(22_000.0, 90.0, sprint_priorities={2})
    assert config.budget_seconds == pytest.approx(22_000.0 / 90.0)


def test_from_energy_budget_validation():
    with pytest.raises(ValueError):
        SprintConfig.from_energy_budget(-1.0, 90.0)
    with pytest.raises(ValueError):
        SprintConfig.from_energy_budget(100.0, 0.0)


def test_config_validation():
    with pytest.raises(ValueError):
        SprintConfig(default_timeout=-1.0)
    with pytest.raises(ValueError):
        SprintConfig(timeouts={1: -5.0})
    with pytest.raises(ValueError):
        SprintConfig(budget_seconds=-1.0)
    with pytest.raises(ValueError):
        SprintConfig(replenish_seconds_per_hour=-1.0)
