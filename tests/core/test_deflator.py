"""Tests for the model-guided task deflator."""

from __future__ import annotations

import math

import pytest

from repro.core.deflator import TaskDeflator
from repro.models.accuracy import AccuracyModel
from repro.workloads.arrivals import calibrate_arrival_rates
from repro.workloads.scenarios import HIGH, LOW


@pytest.fixture
def deflator(high_profile, low_profile) -> TaskDeflator:
    profiles = {HIGH: high_profile, LOW: low_profile}
    rates = calibrate_arrival_rates(
        profiles, {HIGH: 1.0, LOW: 9.0}, slots=4, target_utilisation=0.8
    )
    return TaskDeflator(profiles=profiles, arrival_rates=rates, slots=4)


def test_service_distribution_shrinks_with_dropping(deflator):
    base = deflator.service_distribution(LOW, 0.0).mean
    dropped = deflator.service_distribution(LOW, 0.5).mean
    assert dropped < base


def test_predict_mean_processing_time_matches_distribution(deflator):
    assert deflator.predict_mean_processing_time(LOW, 0.2) == pytest.approx(
        deflator.service_distribution(LOW, 0.2).mean
    )


def test_predicted_utilisation_decreases_with_dropping(deflator):
    full = deflator.predicted_utilisation({HIGH: 0.0, LOW: 0.0})
    dropped = deflator.predicted_utilisation({HIGH: 0.0, LOW: 0.5})
    assert dropped < full
    assert full == pytest.approx(0.8, abs=0.1)


def test_predict_response_times_orders_priorities(deflator):
    responses = deflator.predict_response_times({HIGH: 0.0, LOW: 0.0})
    assert responses[HIGH] < responses[LOW]


def test_dropping_low_priority_helps_both_classes(deflator):
    base = deflator.predict_response_times({HIGH: 0.0, LOW: 0.0})
    dropped = deflator.predict_response_times({HIGH: 0.0, LOW: 0.4})
    assert dropped[LOW] < base[LOW]
    assert dropped[HIGH] <= base[HIGH]


def test_max_drop_ratio_respects_accuracy_tolerance(deflator, high_profile, low_profile):
    assert deflator.max_drop_ratio(HIGH) == 0.0
    expected = deflator.accuracy_model.max_drop_for_error(low_profile.max_accuracy_loss)
    assert deflator.max_drop_ratio(LOW) == pytest.approx(expected)


def test_feasible_drop_ratios_filtered_by_tolerance(deflator):
    feasible_high = deflator.feasible_drop_ratios(HIGH, (0.0, 0.1, 0.2))
    feasible_low = deflator.feasible_drop_ratios(LOW, (0.0, 0.1, 0.2))
    assert feasible_high == [0.0]
    assert 0.2 in feasible_low


def test_choose_latency_objective_prefers_larger_admissible_drop(deflator):
    decision = deflator.choose(candidates=(0.0, 0.1, 0.2))
    assert decision.drop_ratio(HIGH) == 0.0
    assert decision.drop_ratio(LOW) == pytest.approx(0.2)
    assert decision.feasible


def test_choose_accuracy_objective_prefers_no_drop(deflator):
    decision = deflator.choose(candidates=(0.0, 0.1, 0.2), objective="accuracy")
    assert decision.drop_ratio(LOW) == 0.0


def test_choose_respects_high_priority_degradation_cap(deflator):
    generous = deflator.choose(candidates=(0.0, 0.2), max_high_priority_degradation=10.0)
    assert generous.feasible
    # A negative cap forces the no-drop assignment to be the only feasible one
    # only if dropping degrades the high class; dropping helps here, so the
    # decision must still be feasible.
    strict = deflator.choose(candidates=(0.0, 0.2), max_high_priority_degradation=0.0)
    assert strict.feasible


def test_choose_with_latency_targets(deflator):
    baseline = deflator.predict_response_times({HIGH: 0.0, LOW: 0.0})
    # Require the low class to beat a target only reachable by dropping.
    target = {LOW: baseline[LOW] * 0.8}
    decision = deflator.choose(candidates=(0.0, 0.1, 0.2), latency_targets=target)
    assert decision.drop_ratio(LOW) > 0.0


def test_choose_reports_predicted_losses(deflator):
    decision = deflator.choose(candidates=(0.0, 0.2))
    assert decision.predicted_accuracy_loss[HIGH] == 0.0
    assert decision.predicted_accuracy_loss[LOW] == pytest.approx(
        deflator.accuracy_model.error(decision.drop_ratio(LOW))
    )


def test_choose_forwards_sprint_timeouts(deflator):
    decision = deflator.choose(candidates=(0.0,), sprint_timeouts={HIGH: 65.0})
    assert decision.sprint_timeouts == {HIGH: 65.0}


def test_choose_sprint_timeout_from_budget_fraction(deflator):
    timeout = deflator.choose_sprint_timeout(HIGH, sprint_fraction=0.35, speedup=2.5)
    mean = deflator.service_distribution(HIGH, 0.0).mean
    assert timeout == pytest.approx(mean * 0.65)


def test_task_model_variant(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    rates = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 9.0}, 4, 0.5)
    deflator = TaskDeflator(profiles=profiles, arrival_rates=rates, slots=4, model="task")
    responses = deflator.predict_response_times({HIGH: 0.0, LOW: 0.0})
    assert all(math.isfinite(v) for v in responses.values())


def test_sprinting_speedup_shrinks_high_priority_service(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    rates = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 9.0}, 4, 0.5)
    plain = TaskDeflator(profiles=profiles, arrival_rates=rates, slots=4)
    sprinted = TaskDeflator(
        profiles=profiles, arrival_rates=rates, slots=4,
        sprint_speedup=2.5, sprint_priorities={HIGH},
    )
    assert sprinted.service_distribution(HIGH, 0.0).mean < plain.service_distribution(HIGH, 0.0).mean
    # The low class is not sprinted.
    assert sprinted.service_distribution(LOW, 0.0).mean == pytest.approx(
        plain.service_distribution(LOW, 0.0).mean
    )


def test_deflator_validation(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    with pytest.raises(ValueError):
        TaskDeflator(profiles=profiles, arrival_rates={HIGH: 0.1}, slots=4)
    with pytest.raises(ValueError):
        TaskDeflator(profiles={}, arrival_rates={}, slots=4)
    with pytest.raises(ValueError):
        TaskDeflator(profiles=profiles, arrival_rates={HIGH: 0.1, LOW: 0.1}, slots=4,
                     model="magic")
    with pytest.raises(ValueError):
        TaskDeflator(profiles=profiles, arrival_rates={HIGH: 0.1, LOW: 0.1}, slots=4,
                     sprint_speedup=0.5)
    deflator = TaskDeflator(profiles=profiles,
                            arrival_rates={HIGH: 0.001, LOW: 0.001}, slots=4)
    with pytest.raises(ValueError):
        deflator.choose(objective="fastest")
