"""Tests for the online adaptive deflation controller."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveDeflationController
from repro.core.dias import DiASSimulation, DropRatioDecision
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.simulation.metrics import JobRecord, MetricsCollector
from repro.workloads.scenarios import HIGH, LOW


def profiles():
    high = JobClassProfile(priority=HIGH, partitions=4, reduce_tasks=0, shuffle_time=0.0,
                           setup_time_full=0.0, setup_time_min=0.0, max_accuracy_loss=0.0)
    low = JobClassProfile(priority=LOW, partitions=4, reduce_tasks=0, shuffle_time=0.0,
                          setup_time_full=0.0, setup_time_min=0.0, max_accuracy_loss=0.32)
    return {HIGH: high, LOW: low}


def make_job(job_id, priority, arrival, task_time=10.0):
    stage = StageSpec(index=0, map_task_times=[task_time] * 4, reduce_task_times=[],
                      shuffle_time=0.0)
    return Job(job_id=job_id, priority=priority, arrival_time=arrival, size_mb=10.0,
               stages=[stage], profile=profiles()[priority])


def record(priority, response, arrival=0.0):
    return JobRecord(job_id=0, priority=priority, arrival_time=arrival, start_time=arrival,
                     completion_time=arrival + response, execution_time=response)


def controller(**kwargs):
    defaults = dict(profiles=profiles(), latency_target=50.0, window=3,
                    reevaluation_interval=10.0, candidates=(0.0, 0.1, 0.2, 0.4))
    defaults.update(kwargs)
    return AdaptiveDeflationController(**defaults)


def test_initial_drop_ratios_are_zero():
    ctl = controller()
    assert ctl.current_drop_ratios() == {HIGH: 0.0, LOW: 0.0}


def test_latency_violation_increases_low_priority_drop_ratio():
    ctl = controller()
    metrics = MetricsCollector()
    for _ in range(3):
        metrics.record_job(record(HIGH, response=200.0))
    decision = ctl(make_job(1, LOW, 0.0), now=100.0, metrics=metrics)
    assert isinstance(decision, DropRatioDecision)
    assert ctl.current_drop_ratio(LOW) == pytest.approx(0.1)
    assert ctl.adaptations == 1


def test_high_priority_class_never_adapts_with_zero_tolerance():
    ctl = controller()
    metrics = MetricsCollector()
    for _ in range(3):
        metrics.record_job(record(HIGH, response=500.0))
    for now in (100.0, 200.0, 300.0):
        ctl(make_job(1, LOW, 0.0), now=now, metrics=metrics)
    assert ctl.current_drop_ratio(HIGH) == 0.0


def test_drop_ratio_never_exceeds_accuracy_ceiling():
    ctl = controller()
    metrics = MetricsCollector()
    for _ in range(3):
        metrics.record_job(record(HIGH, response=500.0))
    for now in range(100, 1000, 20):
        ctl(make_job(1, LOW, 0.0), now=float(now), metrics=metrics)
    ceiling = ctl.accuracy_model.max_drop_for_error(0.32)
    assert ctl.current_drop_ratio(LOW) <= ceiling + 1e-12


def test_low_latency_releases_the_approximation():
    ctl = controller()
    metrics = MetricsCollector()
    for _ in range(3):
        metrics.record_job(record(HIGH, response=200.0))
    ctl(make_job(1, LOW, 0.0), now=100.0, metrics=metrics)
    assert ctl.current_drop_ratio(LOW) > 0.0
    # Now the system recovers: recent latencies far below the target.
    for _ in range(3):
        metrics.record_job(record(HIGH, response=5.0))
    ctl(make_job(2, LOW, 0.0), now=200.0, metrics=metrics)
    assert ctl.current_drop_ratio(LOW) == 0.0


def test_reevaluation_interval_limits_adaptation_rate():
    ctl = controller(reevaluation_interval=1000.0)
    metrics = MetricsCollector()
    for _ in range(3):
        metrics.record_job(record(HIGH, response=200.0))
    ctl(make_job(1, LOW, 0.0), now=100.0, metrics=metrics)
    ctl(make_job(2, LOW, 0.0), now=200.0, metrics=metrics)  # too soon for a second step
    assert ctl.adaptations == 1
    assert ctl.current_drop_ratio(LOW) == pytest.approx(0.1)


def test_no_adaptation_without_observations():
    ctl = controller()
    decision = ctl(make_job(1, LOW, 0.0), now=100.0, metrics=MetricsCollector())
    assert decision.map_drop_ratio == 0.0
    assert ctl.adaptations == 0


def test_validation_of_parameters():
    with pytest.raises(ValueError):
        controller(latency_target=0.0)
    with pytest.raises(ValueError):
        controller(window=0)
    with pytest.raises(ValueError):
        controller(candidates=(0.2, 0.1))
    with pytest.raises(ValueError):
        controller(monitored_priority=99)
    with pytest.raises(ValueError):
        controller(release_fraction=0.0)


def test_adaptive_controller_plugs_into_the_simulation():
    # Overloaded low-priority stream: the controller should start dropping.
    jobs = [make_job(i, LOW, 12.0 * i) for i in range(30)]
    jobs += [make_job(100 + i, HIGH, 60.0 * i + 5.0) for i in range(6)]
    ctl = controller(latency_target=30.0, reevaluation_interval=30.0)
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    simulation = DiASSimulation(
        SchedulingPolicy.non_preemptive_priority(),
        jobs,
        cluster=cluster,
        drop_ratio_provider=ctl,
    )
    result = simulation.run()
    assert result.completed_jobs == len(jobs)
    assert ctl.adaptations >= 1
    # Some low-priority jobs were deflated once the target was violated.
    low_records = result.metrics.records_for_priority(LOW)
    assert any(r.drop_ratio > 0 for r in low_records)
    # And the adaptation never exceeded the accuracy ceiling.
    assert all(r.drop_ratio <= ctl.accuracy_model.max_drop_for_error(0.32) + 1e-9
               for r in low_records)


def test_static_policy_still_used_when_no_provider_given():
    jobs = [make_job(0, LOW, 0.0)]
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    simulation = DiASSimulation(
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.5}),
        jobs,
        cluster=cluster,
    )
    result = simulation.run()
    assert result.metrics.records[0].drop_ratio == pytest.approx(0.5)
