"""Tests for task dropping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dropper import TaskDropper, find_missing_partitions
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile


def make_job(num_stages=1, partitions=10, reduce_tasks=4, droppable=True) -> Job:
    profile = JobClassProfile(priority=0, partitions=partitions, reduce_tasks=reduce_tasks,
                              num_stages=num_stages)
    stages = [
        StageSpec(index=i, map_task_times=[1.0] * partitions,
                  reduce_task_times=[1.0] * reduce_tasks, shuffle_time=0.5,
                  droppable=droppable)
        for i in range(num_stages)
    ]
    return Job(job_id=1, priority=0, arrival_time=0.0, size_mb=100.0, stages=stages,
               profile=profile)


# ------------------------------------------------------ find_missing_partitions
def test_find_missing_partitions_matches_spark_modification():
    assert find_missing_partitions(50, 0.2) == 40
    assert find_missing_partitions(50, 0.0) == 50
    assert find_missing_partitions(10, 0.05) == 10  # ⌈9.5⌉


def test_find_missing_partitions_never_negative():
    assert find_missing_partitions(0, 0.5) == 0


# -------------------------------------------------------------------- TaskDropper
def test_plan_without_dropping_keeps_everything():
    plan = TaskDropper().plan(make_job(), 0.0, 0.0)
    assert plan.dropped_map_tasks == 0
    assert plan.dropped_reduce_tasks == 0
    assert not plan.drops_anything
    assert plan.effective_drop_ratio == 0.0
    assert plan.kept_map_indices[0] == list(range(10))


def test_plan_drops_requested_fraction_of_map_tasks():
    plan = TaskDropper().plan(make_job(partitions=10), 0.3, 0.0)
    assert plan.dropped_map_tasks == 3
    assert len(plan.kept_map_indices[0]) == 7
    assert plan.kept_reduce_tasks == 4
    assert plan.effective_drop_ratio == pytest.approx(0.3)


def test_plan_reduce_dropping():
    plan = TaskDropper().plan(make_job(reduce_tasks=4), 0.0, 0.5)
    assert plan.dropped_reduce_tasks == 2
    assert plan.dropped_map_tasks == 0


def test_kept_indices_are_valid_and_unique():
    plan = TaskDropper(np.random.default_rng(1)).plan(make_job(partitions=20), 0.4, 0.0)
    kept = plan.kept_map_indices[0]
    assert len(kept) == len(set(kept)) == 12
    assert all(0 <= i < 20 for i in kept)
    assert kept == sorted(kept)


def test_random_selection_varies_with_rng():
    job = make_job(partitions=30)
    plan_a = TaskDropper(np.random.default_rng(1)).plan(job, 0.5, 0.0)
    plan_b = TaskDropper(np.random.default_rng(2)).plan(job, 0.5, 0.0)
    assert plan_a.kept_map_indices[0] != plan_b.kept_map_indices[0]


def test_multi_stage_plan_composes_effective_ratio():
    plan = TaskDropper().plan(make_job(num_stages=6), 0.05, 0.0)
    assert plan.effective_drop_ratio == pytest.approx(1 - 0.95**6)
    assert set(plan.kept_map_indices) == set(range(6))


def test_non_droppable_stage_is_untouched():
    plan = TaskDropper().plan(make_job(droppable=False), 0.5, 0.5)
    assert plan.dropped_map_tasks == 0
    assert plan.dropped_reduce_tasks == 0
    assert plan.effective_drop_ratio == 0.0


def test_plan_totals_are_consistent():
    plan = TaskDropper().plan(make_job(num_stages=2, partitions=10, reduce_tasks=4), 0.2, 0.0)
    assert plan.total_map_tasks == 20
    assert plan.total_reduce_tasks == 8
    assert plan.kept_map_tasks == plan.total_map_tasks - plan.dropped_map_tasks


def test_invalid_ratios_rejected():
    dropper = TaskDropper()
    with pytest.raises(ValueError):
        dropper.plan(make_job(), 1.0, 0.0)
    with pytest.raises(ValueError):
        dropper.plan(make_job(), 0.0, -0.1)
