"""Tests for scheduling-policy definitions."""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig
from repro.core.policies import SchedulingPolicy


def test_preemptive_baseline():
    policy = SchedulingPolicy.preemptive_priority()
    assert policy.name == "P"
    assert policy.preemptive
    assert not policy.approximates
    assert not policy.sprints


def test_non_preemptive_baseline():
    policy = SchedulingPolicy.non_preemptive_priority()
    assert policy.name == "NP"
    assert not policy.preemptive
    assert not policy.approximates


def test_differential_approximation_name_follows_paper_convention():
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})
    assert policy.name == "DA(0/20)"
    assert policy.map_drop_ratio(0) == 0.2
    assert policy.map_drop_ratio(2) == 0.0
    assert policy.approximates
    assert not policy.preemptive


def test_three_priority_name_ordering():
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 1: 0.1, 0: 0.2})
    assert policy.name == "DA(0/10/20)"


def test_dias_policy_enables_sprinting():
    sprint = SprintConfig.unlimited_sprinting({2})
    policy = SchedulingPolicy.dias({2: 0.0, 0: 0.2}, sprint=sprint)
    assert policy.name == "DiAS(0/20)"
    assert policy.sprints
    assert policy.approximates


def test_sprinted_non_preemptive():
    policy = SchedulingPolicy.sprinted_non_preemptive(SprintConfig.unlimited_sprinting({2}))
    assert policy.name == "NPS"
    assert policy.sprints
    assert not policy.approximates


def test_unknown_priority_drops_nothing():
    policy = SchedulingPolicy.differential_approximation({0: 0.2})
    assert policy.map_drop_ratio(7) == 0.0
    assert policy.reduce_drop_ratio(0) == 0.0


def test_reduce_drop_ratios_supported():
    policy = SchedulingPolicy.differential_approximation({0: 0.2}, reduce_drop_ratios={0: 0.1})
    assert policy.reduce_drop_ratio(0) == 0.1


def test_with_sprint_creates_copy():
    base = SchedulingPolicy.non_preemptive_priority()
    sprinted = base.with_sprint(SprintConfig.unlimited_sprinting({2}), name="NPS")
    assert sprinted.sprints
    assert not base.sprints
    assert sprinted.name == "NPS"


def test_sprints_false_when_no_priority_is_eligible():
    policy = SchedulingPolicy.dias({0: 0.1}, sprint=SprintConfig(sprint_priorities=frozenset()))
    assert not policy.sprints


def test_sprints_false_for_zero_budget():
    policy = SchedulingPolicy.dias({0: 0.1}, sprint=SprintConfig(budget_seconds=0.0))
    assert not policy.sprints


def test_drop_ratio_validation():
    with pytest.raises(ValueError):
        SchedulingPolicy.differential_approximation({0: 1.0})
    with pytest.raises(ValueError):
        SchedulingPolicy.differential_approximation({0: -0.1})


def test_custom_name_override():
    policy = SchedulingPolicy.differential_approximation({0: 0.05}, name="DA(custom)")
    assert policy.name == "DA(custom)"
