"""Tests for the DiAS controller / end-to-end simulation."""

from __future__ import annotations

import pytest

import math

from repro.core.config import SprintConfig
from repro.core.dias import DiASSimulation, DropRatioDecision, run_policy
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.models.accuracy import AccuracyModel
from repro.workloads.scenarios import HIGH, LOW


def profile_for(priority: int) -> JobClassProfile:
    return JobClassProfile(priority=priority, partitions=4, reduce_tasks=0,
                           shuffle_time=0.0, setup_time_full=0.0, setup_time_min=0.0)


def make_job(job_id: int, priority: int, arrival: float, task_time: float = 10.0,
             partitions: int = 4) -> Job:
    stage = StageSpec(index=0, map_task_times=[task_time] * partitions,
                      reduce_task_times=[], shuffle_time=0.0)
    return Job(job_id=job_id, priority=priority, arrival_time=arrival, size_mb=10.0,
               stages=[stage], profile=profile_for(priority))


def small_cluster(slots: int = 2) -> Cluster:
    return Cluster(ClusterConfig(workers=1, cores_per_worker=slots))


# A low job of 4×10 s tasks on 2 slots takes 20 s.
def test_single_job_runs_to_completion():
    jobs = [make_job(0, LOW, arrival=0.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    assert result.completed_jobs == 1
    assert result.mean_response_time(LOW) == pytest.approx(20.0)
    assert result.resource_waste == 0.0


def test_fcfs_within_class_queues_second_job():
    jobs = [make_job(0, LOW, 0.0), make_job(1, LOW, 1.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    records = {r.job_id: r for r in result.metrics.records}
    assert records[0].response_time == pytest.approx(20.0)
    # Second job waits until 20 s, runs 20 s, arrived at 1 s.
    assert records[1].response_time == pytest.approx(39.0)
    assert records[1].queueing_time == pytest.approx(19.0)


def test_non_preemptive_high_priority_waits_for_running_low_job():
    jobs = [make_job(0, LOW, 0.0), make_job(1, HIGH, 5.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    records = {r.job_id: r for r in result.metrics.records}
    # The high job waits for the low job to finish at 20 s, then runs 20 s.
    assert records[1].response_time == pytest.approx(35.0)
    assert result.evictions == 0


def test_preemptive_policy_evicts_low_job_and_restarts_it():
    jobs = [make_job(0, LOW, 0.0), make_job(1, HIGH, 5.0)]
    result = run_policy(SchedulingPolicy.preemptive_priority(), jobs,
                        cluster=small_cluster())
    records = {r.job_id: r for r in result.metrics.records}
    # The high job starts immediately at 5 s and finishes at 25 s.
    assert records[1].response_time == pytest.approx(20.0)
    assert records[1].queueing_time == pytest.approx(0.0)
    # The low job is evicted (5 s wasted) and restarts from scratch at 25 s.
    assert records[0].evictions == 1
    assert records[0].wasted_time == pytest.approx(5.0)
    assert records[0].response_time == pytest.approx(45.0)
    assert result.evictions == 1
    assert result.resource_waste == pytest.approx(5.0 / (40.0 + 5.0))


def test_higher_priority_job_is_served_before_queued_lower_priority():
    jobs = [make_job(0, LOW, 0.0), make_job(1, LOW, 1.0), make_job(2, HIGH, 2.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    records = {r.job_id: r for r in result.metrics.records}
    # After job 0 completes at 20 s, the queued high job runs before job 1.
    assert records[2].completion_time < records[1].completion_time


def test_da_policy_drops_low_priority_tasks_only():
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.5})
    jobs = [make_job(0, LOW, 0.0), make_job(1, HIGH, 100.0)]
    result = run_policy(policy, jobs, cluster=small_cluster())
    records = {r.job_id: r for r in result.metrics.records}
    # The low job runs only 2 of its 4 tasks: 10 s instead of 20 s.
    assert records[0].execution_time == pytest.approx(10.0)
    assert records[0].drop_ratio == pytest.approx(0.5)
    assert records[0].accuracy_loss > 0
    # The high job is untouched.
    assert records[1].execution_time == pytest.approx(20.0)
    assert records[1].drop_ratio == 0.0
    assert records[1].accuracy_loss == 0.0


def test_da_improves_low_priority_latency_under_contention():
    arrivals = [make_job(i, LOW, 15.0 * i) for i in range(10)]
    arrivals += [make_job(100 + i, HIGH, 40.0 * i + 7.0) for i in range(3)]
    base = run_policy(SchedulingPolicy.non_preemptive_priority(), arrivals,
                      cluster=small_cluster())
    approx = run_policy(
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.5}),
        arrivals, cluster=small_cluster(),
    )
    assert approx.mean_response_time(LOW) < base.mean_response_time(LOW)
    assert approx.mean_response_time(HIGH) <= base.mean_response_time(HIGH)


def test_sprinting_accelerates_high_priority_jobs():
    sprint = SprintConfig.unlimited_sprinting({HIGH}, timeout=0.0)
    policy = SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.0}, sprint=sprint)
    jobs = [make_job(0, HIGH, 0.0)]
    cluster = small_cluster()
    result = run_policy(policy, jobs, cluster=cluster)
    expected = 20.0 / cluster.dvfs.sprint_speedup
    assert result.mean_response_time(HIGH) == pytest.approx(expected, rel=1e-6)
    assert result.sprinted_seconds == pytest.approx(expected, rel=1e-6)


def test_sprinting_energy_accounted_at_sprint_power():
    sprint = SprintConfig.unlimited_sprinting({HIGH}, timeout=0.0)
    policy = SchedulingPolicy.dias({HIGH: 0.0}, sprint=sprint)
    jobs = [make_job(0, HIGH, 0.0)]
    cluster = small_cluster()
    result = run_policy(policy, jobs, cluster=cluster)
    simulation_duration = result.duration
    expected_energy = simulation_duration * cluster.power_model.power("sprint")
    assert result.total_energy_joules == pytest.approx(expected_energy, rel=1e-6)


def test_energy_includes_idle_periods():
    policy = SchedulingPolicy.non_preemptive_priority()
    jobs = [make_job(0, LOW, 0.0), make_job(1, LOW, 100.0)]
    cluster = small_cluster()
    result = run_policy(policy, jobs, cluster=cluster)
    busy = 40.0 * cluster.power_model.power("busy")
    idle = 80.0 * cluster.power_model.power("idle")
    assert result.total_energy_joules == pytest.approx(busy + idle, rel=1e-6)


def test_evicted_job_keeps_original_arrival_time_in_metrics():
    jobs = [make_job(0, LOW, 0.0), make_job(1, HIGH, 5.0)]
    result = run_policy(SchedulingPolicy.preemptive_priority(), jobs,
                        cluster=small_cluster())
    record = [r for r in result.metrics.records if r.job_id == 0][0]
    assert record.arrival_time == 0.0
    assert record.start_time >= 25.0  # successful attempt starts after the high job


def test_relative_difference_between_policies():
    jobs = [make_job(i, LOW, 15.0 * i) for i in range(6)]
    jobs += [make_job(10 + i, HIGH, 31.0 * i + 3.0) for i in range(2)]
    preemptive = run_policy(SchedulingPolicy.preemptive_priority(), jobs,
                            cluster=small_cluster())
    non_preemptive = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                                cluster=small_cluster())
    diff = non_preemptive.relative_difference(preemptive, HIGH, "mean")
    assert diff >= 0  # non-preemption can only slow the high class down
    with pytest.raises(ValueError):
        non_preemptive.relative_difference(preemptive, HIGH, "median")


def test_simulation_requires_jobs():
    with pytest.raises(ValueError):
        DiASSimulation(SchedulingPolicy.non_preemptive_priority(), [])


def test_custom_accuracy_model_is_used():
    policy = SchedulingPolicy.differential_approximation({LOW: 0.5})
    jobs = [make_job(0, LOW, 0.0)]
    result = run_policy(policy, jobs, cluster=small_cluster(),
                        accuracy_model=AccuracyModel.zero())
    assert result.metrics.records[0].accuracy_loss == 0.0


def test_utilisation_reported():
    jobs = [make_job(0, LOW, 0.0), make_job(1, LOW, 30.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    # 40 s of busy time over a 50 s horizon.
    assert result.utilisation == pytest.approx(40.0 / 50.0)


def test_relative_difference_tail_uses_p95_not_mean():
    # Odd task counts round up under 50% dropping (⌈n(1−θ)⌉), so the drop
    # speeds jobs up unevenly and the mean and tail differences diverge.
    jobs = [make_job(i, LOW, 200.0 * i, partitions=2 + i) for i in range(5)]
    baseline = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                          cluster=small_cluster())
    ours = run_policy(SchedulingPolicy.differential_approximation({LOW: 0.5}), jobs,
                      cluster=small_cluster())
    tail_diff = ours.relative_difference(baseline, LOW, "tail")
    expected = 100.0 * (
        ours.tail_response_time(LOW) - baseline.tail_response_time(LOW)
    ) / baseline.tail_response_time(LOW)
    assert tail_diff == pytest.approx(expected)
    assert tail_diff != ours.relative_difference(baseline, LOW, "mean")


def test_relative_difference_nan_for_zero_or_nan_baseline():
    jobs = [make_job(0, LOW, 0.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    # The baseline never saw a HIGH job: its mean is nan, and a nan baseline
    # must propagate to the relative difference rather than raise.
    assert math.isnan(result.relative_difference(result, HIGH, "mean"))
    assert math.isnan(result.relative_difference(result, HIGH, "tail"))


def test_relative_difference_rejects_unknown_metric():
    jobs = [make_job(0, LOW, 0.0)]
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs,
                        cluster=small_cluster())
    with pytest.raises(ValueError):
        result.relative_difference(result, LOW, "p99")


def test_drop_ratio_decision_validates_bounds():
    decision = DropRatioDecision(map_drop_ratio=0.0, reduce_drop_ratio=0.999)
    assert decision.map_drop_ratio == 0.0
    for bad in (-0.01, 1.0, 1.5):
        with pytest.raises(ValueError):
            DropRatioDecision(map_drop_ratio=bad)
        with pytest.raises(ValueError):
            DropRatioDecision(map_drop_ratio=0.0, reduce_drop_ratio=bad)


def test_duplicate_job_ids_are_tolerated():
    # Hand-built traces (e.g. two generated halves concatenated) can reuse
    # job ids; completion bookkeeping must not assume ids are unique even
    # though it pops per-job state to keep streaming replays bounded.
    jobs = [make_job(0, LOW, arrival=0.0), make_job(0, LOW, arrival=1.0),
            make_job(0, HIGH, arrival=2.0)]
    result = run_policy(SchedulingPolicy.preemptive_priority(), jobs,
                        cluster=small_cluster())
    assert result.metrics.job_count == 3
