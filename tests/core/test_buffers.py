"""Tests for priority buffers."""

from __future__ import annotations

import pytest

from repro.core.buffers import PriorityBuffers
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile


def make_job(job_id: int, priority: int) -> Job:
    profile = JobClassProfile(priority=priority, partitions=2, reduce_tasks=1)
    stage = StageSpec(index=0, map_task_times=[1.0, 1.0], reduce_task_times=[1.0],
                      shuffle_time=0.5)
    return Job(job_id=job_id, priority=priority, arrival_time=0.0, size_mb=10.0,
               stages=[stage], profile=profile)


def test_empty_buffers():
    buffers = PriorityBuffers()
    assert buffers.is_empty
    assert len(buffers) == 0
    assert buffers.pop_highest() is None
    assert buffers.peek_highest() is None
    assert buffers.highest_waiting_priority() is None


def test_push_and_pop_fcfs_within_class():
    buffers = PriorityBuffers()
    first = make_job(1, priority=0)
    second = make_job(2, priority=0)
    buffers.push(first)
    buffers.push(second)
    assert buffers.pop_highest() is first
    assert buffers.pop_highest() is second


def test_higher_priority_served_first():
    buffers = PriorityBuffers()
    low = make_job(1, priority=0)
    high = make_job(2, priority=2)
    buffers.push(low)
    buffers.push(high)
    assert buffers.peek_highest() is high
    assert buffers.pop_highest() is high
    assert buffers.pop_highest() is low


def test_push_front_puts_evicted_job_at_head():
    buffers = PriorityBuffers()
    first = make_job(1, priority=0)
    second = make_job(2, priority=0)
    evicted = make_job(3, priority=0)
    buffers.push(first)
    buffers.push(second)
    buffers.push_front(evicted)
    assert buffers.pop_highest() is evicted


def test_len_and_depths():
    buffers = PriorityBuffers()
    buffers.push(make_job(1, 0))
    buffers.push(make_job(2, 0))
    buffers.push(make_job(3, 2))
    assert len(buffers) == 3
    assert buffers.depth(0) == 2
    assert buffers.depth(2) == 1
    assert buffers.depth(5) == 0
    assert buffers.depths() == {0: 2, 2: 1}


def test_priorities_listed_highest_first():
    buffers = PriorityBuffers(priorities=[0, 2, 1])
    assert buffers.priorities() == [2, 1, 0]


def test_preregistered_empty_buffers_do_not_break_pop():
    buffers = PriorityBuffers(priorities=[0, 1, 2])
    job = make_job(1, priority=1)
    buffers.push(job)
    assert buffers.pop_highest() is job
    assert buffers.pop_highest() is None


def test_highest_waiting_priority():
    buffers = PriorityBuffers()
    buffers.push(make_job(1, priority=0))
    assert buffers.highest_waiting_priority() == 0
    buffers.push(make_job(2, priority=3))
    assert buffers.highest_waiting_priority() == 3


def test_clear_empties_all_buffers():
    buffers = PriorityBuffers()
    buffers.push(make_job(1, 0))
    buffers.push(make_job(2, 1))
    buffers.clear()
    assert buffers.is_empty
