"""Tests for the sprinter (timers, budget, replenishment)."""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig
from repro.core.sprinter import Sprinter
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.execution import JobExecution, build_phases
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.simulation.des import Simulator


def make_job(priority=2, map_time=10.0, partitions=2) -> Job:
    profile = JobClassProfile(priority=priority, partitions=partitions, reduce_tasks=0,
                              shuffle_time=0.0, setup_time_full=0.0, setup_time_min=0.0)
    stage = StageSpec(index=0, map_task_times=[map_time] * partitions,
                      reduce_task_times=[], shuffle_time=0.0)
    return Job(job_id=0, priority=priority, arrival_time=0.0, size_mb=10.0,
               stages=[stage], profile=profile)


class Harness:
    """Wires a sprinter to a single job execution for controlled testing."""

    def __init__(self, config: SprintConfig, job=None, speedup=2.0, slots=2):
        self.sim = Simulator()
        self.cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=slots))
        self.speedup = speedup
        self.events = []
        self.sprinter = Sprinter(
            self.sim, config,
            on_sprint_start=self._start,
            on_sprint_end=self._end,
        )
        self.job = job if job is not None else make_job()
        self.execution = JobExecution(
            self.sim, self.cluster, self.job, build_phases(self.job),
            on_complete=self._complete,
        )
        self.completion_time = None

    def _start(self, execution):
        self.events.append(("start", self.sim.now))
        if execution.running:
            execution.set_speed(self.speedup)

    def _end(self, execution):
        self.events.append(("end", self.sim.now))
        if execution.running:
            execution.set_speed(1.0)

    def _complete(self, execution):
        self.completion_time = execution.completion_time
        self.sprinter.on_job_end(execution)

    def run(self):
        self.execution.start(speed=1.0)
        self.sprinter.on_dispatch(self.execution)
        self.sim.run()
        return self


def test_zero_timeout_sprints_from_dispatch():
    harness = Harness(SprintConfig.unlimited_sprinting({2}, timeout=0.0)).run()
    # 10 s of work at 2x speed -> 5 s.
    assert harness.completion_time == pytest.approx(5.0)
    assert harness.events[0] == ("start", 0.0)
    assert harness.sprinter.total_sprinted_seconds == pytest.approx(5.0)


def test_timeout_delays_the_sprint():
    harness = Harness(SprintConfig.unlimited_sprinting({2}, timeout=4.0)).run()
    # 4 s at base + remaining 6 s of work at 2x -> 7 s total.
    assert harness.completion_time == pytest.approx(7.0)
    assert harness.events[0] == ("start", 4.0)


def test_ineligible_priority_never_sprints():
    harness = Harness(SprintConfig.unlimited_sprinting({5}, timeout=0.0)).run()
    assert harness.completion_time == pytest.approx(10.0)
    assert harness.events == []
    assert harness.sprinter.sprints_started == 0


def test_job_finishing_before_timeout_never_sprints():
    harness = Harness(SprintConfig.unlimited_sprinting({2}, timeout=50.0)).run()
    assert harness.completion_time == pytest.approx(10.0)
    assert harness.events == []


def test_budget_exhaustion_stops_the_sprint():
    config = SprintConfig(
        sprint_priorities=frozenset({2}), default_timeout=0.0,
        budget_seconds=2.0, replenish_seconds_per_hour=0.0,
    )
    harness = Harness(config).run()
    # 2 s sprinted at 2x completes 4 s of work; remaining 6 s at base speed.
    assert harness.completion_time == pytest.approx(2.0 + 6.0)
    assert ("end", 2.0) in harness.events
    assert harness.sprinter.total_sprinted_seconds == pytest.approx(2.0)
    assert harness.sprinter.available_budget() == pytest.approx(0.0)


def test_zero_budget_denies_sprint():
    config = SprintConfig(
        sprint_priorities=frozenset({2}), default_timeout=0.0, budget_seconds=0.0,
    )
    harness = Harness(config).run()
    assert harness.completion_time == pytest.approx(10.0)
    assert harness.sprinter.sprints_denied == 1


def test_budget_replenishes_over_time():
    config = SprintConfig(
        sprint_priorities=frozenset({2}), default_timeout=0.0,
        budget_seconds=100.0, replenish_seconds_per_hour=3600.0,  # 1 s per s
    )
    sim_config_harness = Harness(config)
    sim_config_harness.run()
    # With a replenish rate of 1 s/s the budget never drains.
    assert sim_config_harness.completion_time == pytest.approx(5.0)
    assert sim_config_harness.sprinter.available_budget() == pytest.approx(100.0)


def test_unlimited_budget_reports_none():
    harness = Harness(SprintConfig.unlimited_sprinting({2})).run()
    assert harness.sprinter.available_budget() is None


def test_eviction_stops_sprint_and_cancels_timer():
    config = SprintConfig.unlimited_sprinting({2}, timeout=2.0)
    harness = Harness(config, job=make_job(map_time=20.0))
    harness.execution.start(speed=1.0)
    harness.sprinter.on_dispatch(harness.execution)
    harness.sim.schedule(6.0, lambda s: (harness.execution.evict(),
                                          harness.sprinter.on_job_end(harness.execution)))
    harness.sim.run()
    # Sprint started at 2 s and was force-stopped at eviction time 6 s.
    assert ("start", 2.0) in harness.events
    assert ("end", 6.0) in harness.events
    assert harness.sprinter.total_sprinted_seconds == pytest.approx(4.0)
    assert not harness.sprinter.sprinting


def test_budget_shared_across_successive_jobs():
    config = SprintConfig(
        sprint_priorities=frozenset({2}), default_timeout=0.0,
        budget_seconds=7.0, replenish_seconds_per_hour=0.0,
    )
    first = Harness(config).run()
    # First job sprinted its entire 5 s, leaving 2 s of budget.
    assert first.sprinter.available_budget() == pytest.approx(2.0)
