"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import SCENARIOS, _parse_policy, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "figures" in output
    assert "scenarios" in output
    assert "reference" in output


def test_no_command_prints_help_and_fails(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_parse_policy_variants():
    assert _parse_policy("P").preemptive
    assert not _parse_policy("np").preemptive
    da = _parse_policy("DA(0/20)")
    assert da.map_drop_ratio(0) == pytest.approx(0.2)
    assert da.map_drop_ratio(1) == 0.0
    three = _parse_policy("DA(0/10/20)")
    assert three.map_drop_ratio(2) == 0.0
    assert three.map_drop_ratio(1) == pytest.approx(0.1)
    assert three.map_drop_ratio(0) == pytest.approx(0.2)


def test_parse_policy_rejects_garbage():
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_policy("FIFO")


def test_all_scenarios_buildable():
    for name, factory in SCENARIOS.items():
        scenario = factory()
        assert scenario.priorities, name


def test_compare_command_runs_small_comparison(capsys):
    code = main([
        "compare", "--scenario", "reference", "--policies", "P", "DA(0/20)",
        "--num-jobs", "40", "--seed", "1",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "DA(0/20)" in output
    assert "diff_mean_pct" in output


def test_table_command(capsys):
    code = main(["table", "2", "--num-jobs", "60", "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Table 2" in output
    assert "mean_queueing_s" in output


def test_figure7_command(capsys):
    code = main(["figure", "7", "--num-jobs", "60", "--seed", "1"])
    assert code == 0
    assert "Figure 7" in capsys.readouterr().out


def test_sweep_command(capsys):
    code = main([
        "sweep", "--scenario", "reference", "--ratios", "0", "0.2",
        "--num-jobs", "50", "--seed", "1",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "drop_ratio" in output
    assert "accuracy_loss_pct" in output


def test_load_sweep_command(capsys):
    code = main([
        "load-sweep", "--scenario", "reference", "--utilisations", "0.5",
        "--num-jobs", "40", "--seed", "1",
    ])
    assert code == 0
    assert "utilisation" in capsys.readouterr().out


def test_invalid_figure_rejected_by_argparse():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "99"])


def test_fleet_command_runs_small_fleet(capsys):
    code = main([
        "fleet", "--clusters", "2", "--router", "jsq",
        "--scenario", "two-priority", "--num-jobs", "25", "--seed", "1",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "router=jsq" in output
    assert "Per-cluster load" in output
    assert "load_imbalance" in output


def test_fleet_command_three_priority_default_policy(capsys):
    code = main([
        "fleet", "--clusters", "3", "--router", "least_work_left",
        "--scenario", "three-priority", "--num-jobs", "20",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "policy=DA(0/10/20)" in output


def test_fleet_command_shared_budget_and_explicit_policy(capsys):
    code = main([
        "fleet", "--clusters", "2", "--router", "round_robin",
        "--num-jobs", "15", "--policy", "DA(0/20)", "--budget", "shared",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "budget=shared" in output
    assert "policy=DA(0/20)" in output


def test_fleet_command_rejects_unknown_router(capsys):
    """A typo'd router exits non-zero with the valid choices, no traceback."""
    code = main(["fleet", "--router", "mystery", "--num-jobs", "5"])
    assert code == 1
    err = capsys.readouterr().err
    assert "unknown router 'mystery'" in err
    assert "valid choices:" in err
    for router in ("random", "round_robin", "jsq", "least_work_left"):
        assert router in err


def test_list_mentions_fleet_routers(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "fleet routers" in output
    assert "least_work_left" in output


def test_list_mentions_dag_layer(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "dag scenarios" in output
    assert "critical_path_first" in output


def test_dag_command_runs_small_scenario(capsys):
    code = main([
        "dag", "--scenario", "layered", "--scheduler", "critical_path_first",
        "--num-jobs", "15", "--seed", "1",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "scheduler=critical_path_first" in output
    assert "mean_cp_stretch" in output
    assert "mean_makespan_s" in output


def test_dag_command_slack_biased_and_policy(capsys):
    code = main([
        "dag", "--scenario", "fork-join", "--scheduler", "fifo",
        "--num-jobs", "10", "--policy", "DA(0/30)", "--slack-biased",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "policy=DA(0/30)" in output
    assert "slack_biased=True" in output


def test_dag_command_rejects_unknown_scheduler(capsys):
    """A typo'd stage scheduler exits non-zero listing the valid names."""
    code = main(["dag", "--scheduler", "lifo", "--num-jobs", "5"])
    assert code == 1
    err = capsys.readouterr().err
    assert "unknown stage scheduler 'lifo'" in err
    assert "valid choices:" in err
    for scheduler in ("fifo", "critical_path_first", "widest_first"):
        assert scheduler in err


def test_dag_command_rejects_unknown_scenario():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["dag", "--scenario", "mystery"])


def test_compare_command_parallel_jobs_matches_serial(capsys):
    argv = ["compare", "--scenario", "reference", "--policies", "P", "DA(0/20)",
            "--num-jobs", "30", "--seed", "1"]
    assert main(argv) == 0
    serial_output = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel_output = capsys.readouterr().out
    assert parallel_output == serial_output


def test_compare_command_replications_reports_intervals(capsys):
    code = main([
        "compare", "--scenario", "reference", "--policies", "P",
        "--num-jobs", "25", "--replications", "3",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "half_width" in output
    assert "replications" in output


def test_jobs_flag_rejects_zero():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["compare", "--jobs", "0"])
    with pytest.raises(SystemExit):
        parser.parse_args(["fleet", "--jobs", "-1"])
    with pytest.raises(SystemExit):
        parser.parse_args(["dag", "--replications", "0"])
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--jobs", "two"])


def test_jobs_flag_error_message_is_clear(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "--jobs", "0"])
    err = capsys.readouterr().err
    assert "must be >= 1" in err


def test_fleet_command_replications(capsys):
    code = main([
        "fleet", "--clusters", "2", "--router", "round_robin",
        "--num-jobs", "10", "--replications", "2",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "replications=2" in output
    assert "half_width" in output


def test_dag_command_replications(capsys):
    code = main([
        "dag", "--scenario", "layered", "--num-jobs", "6", "--replications", "2",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "replications=2" in output
    assert "mean_makespan_s" in output


def test_sweep_command_with_replications(capsys):
    code = main([
        "sweep", "--scenario", "reference", "--ratios", "0", "0.2",
        "--num-jobs", "20", "--replications", "2",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "drop_ratio" in output
    assert "replications" in output


def test_fleet_command_with_faults_reports_counters(capsys):
    code = main([
        "fleet", "--clusters", "2", "--num-jobs", "20", "--seed", "3",
        "--faults", "crash:mttf=300,repair=40;stragglers:p=0.1",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Faults & recovery" in output
    assert "crashes" in output
    assert "quarantine_redirects" in output


def test_fleet_command_rejects_bad_fault_spec(capsys):
    code = main(["fleet", "--num-jobs", "5", "--faults", "crash:mtbf=10"])
    assert code == 1
    err = capsys.readouterr().err
    assert "unknown crash key 'mtbf'" in err
    assert "valid keys:" in err


def test_fleet_command_rejects_unknown_fault_kind(capsys):
    code = main(["fleet", "--num-jobs", "5", "--faults", "meteor:p=1"])
    assert code == 1
    err = capsys.readouterr().err
    assert "unknown fault kind 'meteor'" in err
    for kind in ("crash", "stragglers", "taskfail"):
        assert kind in err


def test_fleet_zero_capacity_crash_exits_cleanly(capsys):
    """Permanent crashes that drain the fleet exit 1 with a clear message."""
    code = main([
        "fleet", "--clusters", "2", "--num-jobs", "30", "--seed", "1",
        "--faults", "crash:mttf=100,repair=0",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "zero available workers" in err
    assert "no repair scheduled" in err


def test_dag_command_with_faults(capsys):
    code = main([
        "dag", "--scenario", "fork-join", "--num-jobs", "10", "--seed", "2",
        "--faults", "taskfail:p=0.1,retries=2",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Faults & recovery" in output
    assert "retries" in output


def test_compare_command_with_faults(capsys):
    code = main([
        "compare", "--scenario", "reference", "--policies", "NP", "P",
        "--num-jobs", "25", "--faults", "stragglers:p=0.1,slowdown=3",
    ])
    assert code == 0
    assert "NP" in capsys.readouterr().out


def test_chaos_command_reports_levels(capsys):
    code = main([
        "chaos", "--clusters", "2", "--num-jobs", "15", "--seed", "4",
        "--faults", "stragglers:p=0.2,slowdown=3", "--levels", "0", "1",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Sensitivity to fault intensity" in output
    assert "delta_mean_pct" in output


def test_chaos_command_requires_faults(capsys):
    with pytest.raises(SystemExit):
        main(["chaos", "--num-jobs", "5"])


def test_fleet_checkpoint_resume_via_cli(tmp_path, capsys):
    ckpt = str(tmp_path / "fleet.ckpt")
    base = [
        "fleet", "--clusters", "2", "--num-jobs", "30", "--seed", "11",
        "--utilisation", "0.4", "--router", "round_robin",
        "--faults", "crash:mttf=400,repair=40;taskfail:p=0.05,retries=2",
    ]
    assert main(base) == 0
    reference = capsys.readouterr().out

    assert main(base + ["--checkpoint", ckpt, "--checkpoint-every", "50",
                        "--until", "3000"]) == 0
    capsys.readouterr()

    assert main(["fleet", "--resume", ckpt]) == 0
    resumed = capsys.readouterr().out
    # Identical metrics; only the title line mentions the resume.
    ref_body = reference.split("\n", 2)[2]
    resumed_body = resumed.split("\n", 2)[2]
    assert resumed_body == ref_body


def test_fleet_resume_rejects_replications_and_tracing(tmp_path, capsys):
    ckpt = str(tmp_path / "missing.ckpt")
    code = main(["fleet", "--resume", ckpt, "--replications", "4"])
    assert code == 1
    assert "--replications" in capsys.readouterr().err
    code = main(["fleet", "--resume", ckpt, "--trace", str(tmp_path / "t.json")])
    assert code == 1
    assert "--trace" in capsys.readouterr().err


def test_fleet_resume_missing_file_exits_cleanly(tmp_path, capsys):
    code = main(["fleet", "--resume", str(tmp_path / "nope.ckpt")])
    assert code == 1
    assert "cannot read checkpoint" in capsys.readouterr().err


def test_fleet_checkpoint_every_requires_checkpoint_path(capsys):
    code = main(["fleet", "--num-jobs", "5", "--checkpoint-every", "50"])
    assert code == 1
    assert "--checkpoint-every needs --checkpoint" in capsys.readouterr().err


def test_list_mentions_fault_kinds(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "fault kinds" in output
    assert "crash" in output and "stragglers" in output and "taskfail" in output


# ------------------------------------------------------------- trace replay
def _synth_cli_trace(tmp_path, capsys, *extra):
    path = str(tmp_path / "trace.jsonl")
    assert main(["synth-trace", "--out", path, "--num-jobs", "30",
                 "--seed", "5", *extra]) == 0
    capsys.readouterr()
    return path


def test_synth_trace_prints_a_histogram(tmp_path, capsys):
    path = str(tmp_path / "t.jsonl")
    code = main(["synth-trace", "--out", path, "--num-jobs", "25", "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "jobs: 25" in output
    assert "length buckets" in output


def test_synth_trace_google_mix_rejects_scenario(tmp_path, capsys):
    path = str(tmp_path / "t.jsonl")
    code = main(["synth-trace", "--out", path, "--mix", "google",
                 "--scenario", "reference"])
    assert code == 1
    assert "--mix" in capsys.readouterr().err


def test_fleet_replay_runs_and_reports(tmp_path, capsys):
    path = _synth_cli_trace(tmp_path, capsys)
    assert main(["fleet", "--replay", path]) == 0
    output = capsys.readouterr().out
    assert "Fleet replay" in output
    assert "30 jobs" in output


def test_replay_rejects_conflicting_flags(tmp_path, capsys):
    path = _synth_cli_trace(tmp_path, capsys)
    code = main(["fleet", "--replay", path, "--num-jobs", "10"])
    assert code == 1
    assert "conflicts" in capsys.readouterr().err
    code = main(["fleet", "--replay", path, "--scenario", "two-priority"])
    assert code == 1
    assert "conflicts" in capsys.readouterr().err


def test_replay_fails_fast_on_malformed_files(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not a trace\n")
    assert main(["fleet", "--replay", str(bad)]) == 1
    assert "unrecognised trace file" in capsys.readouterr().err
    assert main(["fleet", "--replay", str(tmp_path / "missing.jsonl")]) == 1
    assert "no such trace file" in capsys.readouterr().err


def test_replay_mode_mismatch_points_at_the_other_command(tmp_path, capsys):
    path = _synth_cli_trace(tmp_path, capsys)
    assert main(["dag", "--replay", path]) == 1
    assert "repro fleet --replay" in capsys.readouterr().err


def test_dag_replay_runs_from_a_dag_trace(tmp_path, capsys):
    path = str(tmp_path / "dag.jsonl")
    assert main(["synth-trace", "--out", path, "--format", "dag-jsonl",
                 "--num-jobs", "10", "--seed", "2"]) == 0
    capsys.readouterr()
    assert main(["dag", "--replay", path]) == 0
    output = capsys.readouterr().out
    assert "DAG replay" in output
    assert "10 jobs" in output


def test_list_mentions_trace_formats(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "trace formats" in output
    assert "cluster-csv" in output and "dag-jsonl" in output


# --------------------------------------------------------- learn / policy
def test_learn_routing_trains_evaluates_and_saves(tmp_path, capsys):
    agent_path = tmp_path / "agent.json"
    out_path = tmp_path / "learn.json"
    code = main([
        "learn", "--env", "routing", "--agent", "linucb",
        "--clusters", "3", "--num-jobs", "30",
        "--episodes", "2", "--eval-episodes", "2",
        "--save", str(agent_path), "--out", str(out_path),
    ])
    output = capsys.readouterr().out
    assert code == 0
    assert "baseline:random" in output
    assert "baseline:jsq" in output
    assert "p95_response_s" in output
    import json as json_module

    saved = json_module.loads(agent_path.read_text())
    assert saved["agent"] == "linucb"
    results = json_module.loads(out_path.read_text())
    assert results["key_metric"] == "p95_response_s"
    assert len(results["train"]["history"]) == 2
    assert set(results["eval"]["rows"]) == {
        "linucb", "baseline:random", "baseline:jsq"
    }


def test_policy_replays_a_saved_agent_byte_identically(tmp_path, capsys):
    agent_path = tmp_path / "agent.json"
    assert main([
        "learn", "--env", "routing", "--agent", "epsilon_greedy",
        "--clusters", "2", "--num-jobs", "20",
        "--episodes", "1", "--eval-episodes", "1",
        "--save", str(agent_path),
    ]) == 0
    capsys.readouterr()
    outputs = []
    for jobs in ("1", "2"):
        assert main([
            "policy", "--env", "routing", "--load", str(agent_path),
            "--clusters", "2", "--num-jobs", "20",
            "--episodes", "2", "--jobs", jobs,
        ]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
    assert "epsilon_greedy" in outputs[0]


def test_policy_scheduling_with_scheduler_agent(capsys):
    code = main([
        "policy", "--env", "scheduling", "--agent",
        "scheduler:critical_path_first", "--num-jobs", "2", "--episodes", "1",
    ])
    output = capsys.readouterr().out
    assert code == 0
    assert "scheduler:critical_path_first" in output
    assert "mean_makespan_s" in output


def test_policy_rejects_scheduler_agents_on_the_routing_env(capsys):
    assert main([
        "policy", "--env", "routing", "--agent", "scheduler:fifo",
    ]) == 1
    assert "stage decisions" in capsys.readouterr().err


def test_policy_rejects_unknown_agents(capsys):
    assert main(["policy", "--env", "routing", "--agent", "dqn"]) == 1
    assert "unknown agent" in capsys.readouterr().err


def test_learn_rejects_unknown_baselines(capsys):
    assert main([
        "learn", "--env", "routing", "--clusters", "2", "--num-jobs", "5",
        "--episodes", "1", "--eval-episodes", "1", "--baseline", "nope",
    ]) == 1
    assert "baseline router" in capsys.readouterr().err


def test_learn_rejects_mismatched_scenarios(capsys):
    assert main([
        "learn", "--env", "scheduling", "--scenario", "two-priority",
        "--episodes", "1", "--eval-episodes", "1",
    ]) == 1
    assert "unknown scheduling scenario" in capsys.readouterr().err


def test_list_mentions_decision_envs_and_agents(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "decision envs (learn, policy): scheduling, routing" in output
    assert "epsilon_greedy" in output
    assert "linucb" in output
