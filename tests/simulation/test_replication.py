"""Tests for replicated runs and confidence intervals."""

from __future__ import annotations

import math

import pytest

from repro.simulation.replication import (
    ConfidenceInterval,
    ReplicationRunner,
    confidence_interval,
)


def test_confidence_interval_of_constant_samples_is_tight():
    interval = confidence_interval([5.0, 5.0, 5.0, 5.0])
    assert interval.mean == 5.0
    assert interval.half_width == pytest.approx(0.0)
    assert interval.contains(5.0)


def test_confidence_interval_widens_with_variance():
    tight = confidence_interval([10.0, 10.1, 9.9, 10.05])
    wide = confidence_interval([10.0, 14.0, 6.0, 12.0])
    assert wide.half_width > tight.half_width


def test_confidence_interval_single_sample_is_infinite():
    interval = confidence_interval([3.0])
    assert math.isinf(interval.half_width)
    assert interval.replications == 1


def test_confidence_interval_contains_and_bounds():
    interval = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.95, replications=5)
    assert interval.lower == 8.0
    assert interval.upper == 12.0
    assert interval.contains(9.0)
    assert not interval.contains(13.0)
    assert interval.relative_half_width == pytest.approx(0.2)


def test_confidence_interval_validation():
    with pytest.raises(ValueError):
        confidence_interval([])
    with pytest.raises(ValueError):
        confidence_interval([1.0, 2.0], confidence=1.5)


def test_interval_narrows_with_more_replications():
    import numpy as np

    rng = np.random.default_rng(0)
    few = confidence_interval(list(rng.normal(100, 10, size=5)))
    many = confidence_interval(list(rng.normal(100, 10, size=50)))
    assert many.half_width < few.half_width


def test_replication_runner_collects_all_metrics():
    def experiment(seed: int):
        return {"metric_a": float(seed % 7), "metric_b": 2.0}

    runner = ReplicationRunner(experiment)
    metrics = runner.run(replications=5, base_seed=1)
    assert set(metrics) == {"metric_a", "metric_b"}
    assert len(metrics["metric_a"].samples) == 5
    intervals = runner.intervals()
    assert intervals["metric_b"].mean == pytest.approx(2.0)


def test_replication_runner_uses_distinct_seeds():
    seen = []

    def experiment(seed: int):
        seen.append(seed)
        return {"x": float(seed)}

    ReplicationRunner(experiment).run(replications=4, base_seed=0)
    assert len(set(seen)) == 4


def test_replication_runner_validates_count():
    with pytest.raises(ValueError):
        ReplicationRunner(lambda seed: {"x": 1.0}).run(replications=0)


def test_run_until_precise_stops_once_target_met():
    def experiment(seed: int):
        return {"stable": 100.0 + (seed % 3) * 0.01}

    runner = ReplicationRunner(experiment)
    interval = runner.run_until_precise(0.01, metric="stable", min_replications=3,
                                        max_replications=10)
    assert interval.relative_half_width <= 0.01
    assert 3 <= interval.replications <= 10


def test_run_until_precise_respects_max_replications():
    import numpy as np

    rng = np.random.default_rng(1)

    def experiment(seed: int):
        return {"noisy": float(rng.normal(10, 20))}

    runner = ReplicationRunner(experiment)
    interval = runner.run_until_precise(0.0001, metric="noisy", max_replications=5)
    assert interval.replications == 5


def test_run_until_precise_unknown_metric():
    runner = ReplicationRunner(lambda seed: {"x": 1.0})
    with pytest.raises(KeyError):
        runner.run_until_precise(0.1, metric="missing", min_replications=1, max_replications=2)


def test_run_until_precise_validates_target():
    runner = ReplicationRunner(lambda seed: {"x": 1.0})
    with pytest.raises(ValueError):
        runner.run_until_precise(1.5, metric="x")


def test_replication_seed_formula_and_uniqueness():
    from repro.simulation.replication import replication_seed

    assert replication_seed(0, 0) == 0
    assert replication_seed(0, 3) == 3003
    assert replication_seed(42, 1) == 1043
    seeds = {replication_seed(0, i) for i in range(50)}
    assert len(seeds) == 50


def test_replication_runner_rejects_reuse():
    runner = ReplicationRunner(lambda seed: {"x": float(seed)})
    runner.run(replications=2)
    with pytest.raises(RuntimeError, match="already run"):
        runner.run(replications=2)
    with pytest.raises(RuntimeError):
        runner.run_until_precise(0.5, metric="x")


def test_replication_runner_reset_allows_reuse():
    runner = ReplicationRunner(lambda seed: {"x": float(seed % 5)})
    first = dict(runner.run(replications=3))
    first_samples = list(first["x"].samples)
    runner.reset()
    second = runner.run(replications=3)
    assert second["x"].samples == first_samples  # same seeds, no mixing


def test_run_until_precise_parallel_matches_serial():
    def experiment(seed: int):
        return {"stable": 100.0 + (seed % 3) * 0.01}

    serial_runner = ReplicationRunner(experiment)
    serial = serial_runner.run_until_precise(
        0.01, metric="stable", min_replications=3, max_replications=10, jobs=1
    )
    parallel_runner = ReplicationRunner(_stable_experiment)
    parallel = parallel_runner.run_until_precise(
        0.01, metric="stable", min_replications=3, max_replications=10, jobs=2
    )
    assert parallel.replications == serial.replications
    assert parallel.mean == serial.mean
    assert parallel.half_width == serial.half_width
    assert (
        parallel_runner.metrics["stable"].samples
        == serial_runner.metrics["stable"].samples
    )


def _stable_experiment(seed: int):
    return {"stable": 100.0 + (seed % 3) * 0.01}


def test_replication_runner_validates_jobs():
    runner = ReplicationRunner(lambda seed: {"x": 1.0})
    with pytest.raises(ValueError, match="jobs"):
        runner.run(replications=2, jobs=0)
