"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.simulation.des import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_starts_at_custom_time():
    sim = Simulator(start_time=12.5)
    assert sim.now == 12.5


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda s: fired.append(s.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda s: order.append("c"))
    sim.schedule(1.0, lambda s: order.append("a"))
    sim.schedule(2.0, lambda s: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_priority_then_fifo_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda s: order.append("low"), priority=5)
    sim.schedule(1.0, lambda s: order.append("first"), priority=0)
    sim.schedule(1.0, lambda s: order.append("second"), priority=0)
    sim.run()
    assert order == ["first", "second", "low"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda s: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda s: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda s: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda s: fired.append("cancelled"))
    sim.schedule(2.0, lambda s: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_cancelled_events_do_not_advance_clock():
    sim = Simulator()
    event = sim.schedule(10.0, lambda s: None)
    sim.schedule(1.0, lambda s: None)
    event.cancel()
    sim.run()
    assert sim.now == 1.0


def test_events_scheduled_from_callbacks():
    sim = Simulator()
    times = []

    def chain(s: Simulator) -> None:
        times.append(s.now)
        if len(times) < 3:
            s.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert times == [1.0, 2.0, 3.0]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda s: fired.append(1))
    sim.schedule(10.0, lambda s: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    # The pending event survives and can still run later.
    sim.run()
    assert fired == [1, 10]


def test_run_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda s, i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_stop_from_callback():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda s: (fired.append(1), s.stop()))
    sim.schedule(2.0, lambda s: fired.append(2))
    sim.run()
    assert fired == [1]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda s: None)
    sim.schedule(4.0, lambda s: None)
    event.cancel()
    assert sim.peek_time() == 4.0


def test_step_returns_none_when_empty():
    sim = Simulator()
    assert sim.step() is None


def test_processed_event_count():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i + 1), lambda s: None)
    sim.run()
    assert sim.processed_events == 4


def test_payload_is_preserved():
    sim = Simulator()
    event = sim.schedule(1.0, lambda s: None, payload={"job": 42})
    assert event.payload == {"job": 42}
    sim.run()


def test_step_survives_thousands_of_consecutive_cancelled_events():
    """A long run of cancelled entries must not hit the recursion limit."""
    sim = Simulator()
    cancelled = [sim.schedule(1.0, lambda s: None) for _ in range(5000)]
    for event in cancelled:
        event.cancel()
    fired = []
    sim.schedule(2.0, lambda s: fired.append(s.now))
    assert sim.step() is not None
    assert fired == [2.0]
    assert sim.pending_events == 0


def test_run_survives_cancellation_storm_interleaved():
    """Cancellation storms interleaved with live events drain iteratively."""
    sim = Simulator()
    fired = []
    for burst in range(5):
        doomed = [
            sim.schedule(float(burst) + 0.5, lambda s: None) for _ in range(2000)
        ]
        for event in doomed:
            event.cancel()
        sim.schedule(float(burst) + 1.0, lambda s: fired.append(s.now))
    sim.run()
    assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert sim.processed_events == 5


def test_heap_entries_are_flat_tuples():
    """The hot path pushes (time, priority, seq, event) entries directly."""
    sim = Simulator()
    event = sim.schedule(3.0, lambda s: None, priority=7)
    entry = sim._heap[0]
    assert entry == (3.0, 7, event.seq, event)
    assert entry[:3] == event.sort_key()


def test_scheduled_events_counts_all_schedules():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i), lambda s: None)
    assert sim.scheduled_events == 3
    sim.run()
    assert sim.processed_events == 3


def test_compaction_disabled_keeps_lazy_behaviour():
    sim = Simulator(compaction_threshold=None)
    events = [sim.schedule(1.0, lambda s: None) for _ in range(200)]
    for event in events:
        event.cancel()
    for i in range(200):
        sim.schedule(2.0 + i, lambda s: None)
    assert sim.heap_compactions == 0


def test_compaction_drops_dead_entries_while_scheduling_continues():
    sim = Simulator(compaction_threshold=16)
    doomed = []
    for i in range(300):
        doomed.append(sim.schedule(1000.0 + i, lambda s: None))
        if len(doomed) >= 10:
            for event in doomed:
                event.cancel()
            doomed = []
    assert sim.heap_compactions > 0
    assert sim.pending_events < 300


def test_cancel_after_firing_is_harmless():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda s: fired.append(s.now))
    sim.run()
    event.cancel()  # already fired; must not corrupt kernel state
    sim.schedule(2.0, lambda s: fired.append(s.now))
    sim.run()
    assert fired == [1.0, 3.0]


def test_run_with_max_events_skips_cancelled_without_counting_them():
    sim = Simulator()
    fired = []
    cancelled = [sim.schedule(0.5, lambda s: None) for _ in range(50)]
    for event in cancelled:
        event.cancel()
    for i in range(4):
        sim.schedule(float(i + 1), lambda s, i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]
