"""Tests for named random streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.random_streams import RandomStreams


def test_same_name_returns_same_generator_object():
    streams = RandomStreams(seed=1)
    assert streams.stream("arrivals") is streams.stream("arrivals")


def test_different_names_produce_different_sequences():
    streams = RandomStreams(seed=1)
    a = streams.stream("arrivals").random(10)
    b = streams.stream("tasks").random(10)
    assert not np.allclose(a, b)


def test_same_seed_reproduces_sequences():
    a = RandomStreams(seed=3).stream("x").random(5)
    b = RandomStreams(seed=3).stream("x").random(5)
    assert np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=3).stream("x").random(5)
    b = RandomStreams(seed=4).stream("x").random(5)
    assert not np.allclose(a, b)


def test_stream_independent_of_creation_order():
    first = RandomStreams(seed=9)
    first.stream("a")
    values_b_after_a = first.stream("b").random(5)
    second = RandomStreams(seed=9)
    values_b_alone = second.stream("b").random(5)
    assert np.allclose(values_b_after_a, values_b_alone)


def test_exponential_mean_is_roughly_right():
    streams = RandomStreams(seed=0)
    draws = [streams.exponential("arr", 10.0) for _ in range(4000)]
    assert 9.0 < sum(draws) / len(draws) < 11.0


def test_exponential_rejects_non_positive_mean():
    streams = RandomStreams(seed=0)
    with pytest.raises(ValueError):
        streams.exponential("arr", 0.0)


def test_uniform_bounds():
    streams = RandomStreams(seed=0)
    draws = [streams.uniform("u", 2.0, 3.0) for _ in range(100)]
    assert all(2.0 <= d <= 3.0 for d in draws)


def test_choice_with_probabilities():
    streams = RandomStreams(seed=0)
    picks = [streams.choice("c", ["a", "b"], [0.0, 1.0]) for _ in range(20)]
    assert set(picks) == {"b"}


def test_fork_creates_independent_registry():
    base = RandomStreams(seed=5)
    fork = base.fork(1)
    assert fork.seed != base.seed
    a = base.stream("x").random(5)
    b = fork.stream("x").random(5)
    assert not np.allclose(a, b)
