"""Tests for metric collection and summaries."""

from __future__ import annotations

import math

import pytest

from repro.simulation.metrics import (
    EnergyAccount,
    JobRecord,
    MetricsCollector,
    SummaryStatistics,
    percentile,
)


def make_record(job_id=0, priority=0, arrival=0.0, start=1.0, completion=11.0,
                execution=8.0, wasted=0.0, evictions=0, **kwargs) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        priority=priority,
        arrival_time=arrival,
        start_time=start,
        completion_time=completion,
        execution_time=execution,
        wasted_time=wasted,
        evictions=evictions,
        **kwargs,
    )


# ----------------------------------------------------------------- percentile
def test_percentile_median_of_odd_list():
    assert percentile([3.0, 1.0, 2.0], 50) == 2.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 50) == 5.0


def test_percentile_extremes():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_rejected():
    with pytest.raises(ValueError):
        percentile([1.0], 150)


# ------------------------------------------------------------------ JobRecord
def test_job_record_response_and_queueing():
    record = make_record(arrival=0.0, completion=11.0, execution=8.0)
    assert record.response_time == 11.0
    assert record.queueing_time == pytest.approx(3.0)


def test_job_record_slowdown():
    record = make_record(arrival=0.0, completion=16.0, execution=8.0)
    assert record.slowdown == pytest.approx(2.0)


def test_job_record_slowdown_with_zero_execution():
    record = make_record(execution=0.0)
    assert math.isinf(record.slowdown)


# ---------------------------------------------------------- SummaryStatistics
def test_summary_statistics_from_values():
    stats = SummaryStatistics.from_values([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.maximum == 4.0


def test_summary_statistics_empty_is_nan():
    stats = SummaryStatistics.from_values([])
    assert stats.count == 0
    assert math.isnan(stats.mean)


# -------------------------------------------------------------- EnergyAccount
def test_energy_account_totals():
    account = EnergyAccount()
    account.add("idle", 100.0)
    account.add("busy", 200.0)
    account.add("sprint", 50.0)
    assert account.total_joules == 350.0
    assert account.total_kilojoules == pytest.approx(0.35)


def test_energy_account_rejects_negative():
    account = EnergyAccount()
    with pytest.raises(ValueError):
        account.add("busy", -1.0)


def test_energy_account_rejects_unknown_mode():
    account = EnergyAccount()
    with pytest.raises(ValueError):
        account.add("turbo", 1.0)


# ----------------------------------------------------------- MetricsCollector
def test_collector_counts_and_means():
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=1, priority=0, completion=11.0))
    collector.record_job(make_record(job_id=2, priority=1, completion=21.0))
    assert collector.job_count == 2
    assert collector.priorities() == [0, 1]
    assert collector.mean_response_time(0) == pytest.approx(11.0)
    assert collector.mean_response_time(1) == pytest.approx(21.0)


def test_collector_rejects_completion_before_arrival():
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        collector.record_job(make_record(arrival=10.0, completion=5.0))


def test_resource_waste_fraction():
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=1, execution=8.0, wasted=2.0))
    collector.record_job(make_record(job_id=2, execution=10.0, wasted=0.0))
    assert collector.resource_waste_fraction() == pytest.approx(2.0 / 20.0)


def test_resource_waste_zero_when_no_jobs():
    assert MetricsCollector().resource_waste_fraction() == 0.0


def test_class_metrics_summaries():
    collector = MetricsCollector()
    for i, completion in enumerate([11.0, 21.0, 31.0]):
        collector.record_job(make_record(job_id=i, priority=2, completion=completion))
    metrics = collector.class_metrics(2)
    assert metrics.job_count == 3
    assert metrics.response_time.mean == pytest.approx(21.0)
    assert metrics.evictions == 0


def test_utilisation_uses_observation_time():
    collector = MetricsCollector()
    collector.record_busy_time(50.0)
    collector.set_observation_time(100.0)
    assert collector.utilisation() == pytest.approx(0.5)


def test_utilisation_includes_wasted_time():
    collector = MetricsCollector()
    collector.record_busy_time(40.0)
    collector.record_job(make_record(execution=40.0, wasted=10.0))
    collector.set_observation_time(100.0)
    assert collector.utilisation() == pytest.approx(0.5)


def test_to_rows_exports_one_row_per_job():
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=1))
    collector.record_job(make_record(job_id=2))
    rows = collector.to_rows()
    assert len(rows) == 2
    assert {row["job_id"] for row in rows} == {1, 2}


def test_merge_combines_collectors():
    a = MetricsCollector()
    a.record_job(make_record(job_id=1))
    a.energy.add("busy", 100.0)
    b = MetricsCollector()
    b.record_job(make_record(job_id=2))
    b.energy.add("sprint", 50.0)
    a.merge(b)
    assert a.job_count == 2
    assert a.energy.total_joules == pytest.approx(150.0)


def test_tail_response_time_matches_percentile():
    collector = MetricsCollector()
    for i in range(1, 101):
        collector.record_job(make_record(job_id=i, completion=float(i)))
    assert collector.tail_response_time(q=95.0) == pytest.approx(
        percentile([float(i) for i in range(1, 101)], 95.0)
    )
