"""Tests for metric collection and summaries."""

from __future__ import annotations

import math

import pytest

from repro.simulation.metrics import (
    EnergyAccount,
    JobRecord,
    MetricsCollector,
    SummaryStatistics,
    percentile,
)


def make_record(job_id=0, priority=0, arrival=0.0, start=1.0, completion=11.0,
                execution=8.0, wasted=0.0, evictions=0, **kwargs) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        priority=priority,
        arrival_time=arrival,
        start_time=start,
        completion_time=completion,
        execution_time=execution,
        wasted_time=wasted,
        evictions=evictions,
        **kwargs,
    )


# ----------------------------------------------------------------- percentile
def test_percentile_median_of_odd_list():
    assert percentile([3.0, 1.0, 2.0], 50) == 2.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 50) == 5.0


def test_percentile_extremes():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_rejected():
    with pytest.raises(ValueError):
        percentile([1.0], 150)


# ------------------------------------------------------------------ JobRecord
def test_job_record_response_and_queueing():
    record = make_record(arrival=0.0, completion=11.0, execution=8.0)
    assert record.response_time == 11.0
    assert record.queueing_time == pytest.approx(3.0)


def test_job_record_slowdown():
    record = make_record(arrival=0.0, completion=16.0, execution=8.0)
    assert record.slowdown == pytest.approx(2.0)


def test_job_record_slowdown_with_zero_execution():
    record = make_record(execution=0.0)
    assert math.isinf(record.slowdown)


# ---------------------------------------------------------- SummaryStatistics
def test_summary_statistics_from_values():
    stats = SummaryStatistics.from_values([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.maximum == 4.0


def test_summary_statistics_empty_is_nan():
    stats = SummaryStatistics.from_values([])
    assert stats.count == 0
    assert math.isnan(stats.mean)


# -------------------------------------------------------------- EnergyAccount
def test_energy_account_totals():
    account = EnergyAccount()
    account.add("idle", 100.0)
    account.add("busy", 200.0)
    account.add("sprint", 50.0)
    assert account.total_joules == 350.0
    assert account.total_kilojoules == pytest.approx(0.35)


def test_energy_account_rejects_negative():
    account = EnergyAccount()
    with pytest.raises(ValueError):
        account.add("busy", -1.0)


def test_energy_account_rejects_unknown_mode():
    account = EnergyAccount()
    with pytest.raises(ValueError):
        account.add("turbo", 1.0)


# ----------------------------------------------------------- MetricsCollector
def test_collector_counts_and_means():
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=1, priority=0, completion=11.0))
    collector.record_job(make_record(job_id=2, priority=1, completion=21.0))
    assert collector.job_count == 2
    assert collector.priorities() == [0, 1]
    assert collector.mean_response_time(0) == pytest.approx(11.0)
    assert collector.mean_response_time(1) == pytest.approx(21.0)


def test_collector_rejects_completion_before_arrival():
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        collector.record_job(make_record(arrival=10.0, completion=5.0))


def test_resource_waste_fraction():
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=1, execution=8.0, wasted=2.0))
    collector.record_job(make_record(job_id=2, execution=10.0, wasted=0.0))
    assert collector.resource_waste_fraction() == pytest.approx(2.0 / 20.0)


def test_resource_waste_zero_when_no_jobs():
    assert MetricsCollector().resource_waste_fraction() == 0.0


def test_class_metrics_summaries():
    collector = MetricsCollector()
    for i, completion in enumerate([11.0, 21.0, 31.0]):
        collector.record_job(make_record(job_id=i, priority=2, completion=completion))
    metrics = collector.class_metrics(2)
    assert metrics.job_count == 3
    assert metrics.response_time.mean == pytest.approx(21.0)
    assert metrics.evictions == 0


def test_utilisation_uses_observation_time():
    collector = MetricsCollector()
    collector.record_busy_time(50.0)
    collector.set_observation_time(100.0)
    assert collector.utilisation() == pytest.approx(0.5)


def test_utilisation_includes_wasted_time():
    collector = MetricsCollector()
    collector.record_busy_time(40.0)
    collector.record_job(make_record(execution=40.0, wasted=10.0))
    collector.set_observation_time(100.0)
    assert collector.utilisation() == pytest.approx(0.5)


def test_to_rows_exports_one_row_per_job():
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=1))
    collector.record_job(make_record(job_id=2))
    rows = collector.to_rows()
    assert len(rows) == 2
    assert {row["job_id"] for row in rows} == {1, 2}


def test_merge_combines_collectors():
    a = MetricsCollector()
    a.record_job(make_record(job_id=1))
    a.energy.add("busy", 100.0)
    b = MetricsCollector()
    b.record_job(make_record(job_id=2))
    b.energy.add("sprint", 50.0)
    a.merge(b)
    assert a.job_count == 2
    assert a.energy.total_joules == pytest.approx(150.0)


def test_tail_response_time_matches_percentile():
    collector = MetricsCollector()
    for i in range(1, 101):
        collector.record_job(make_record(job_id=i, completion=float(i)))
    assert collector.tail_response_time(q=95.0) == pytest.approx(
        percentile([float(i) for i in range(1, 101)], 95.0)
    )


# ------------------------------------------------------------- cached summaries
def test_summaries_update_after_new_records():
    """The per-class caches must be invalidated by record_job."""
    collector = MetricsCollector()
    collector.record_job(make_record(job_id=0, completion=11.0))
    assert collector.mean_response_time(0) == pytest.approx(11.0)
    assert collector.class_metrics(0).response_time.count == 1
    collector.record_job(make_record(job_id=1, completion=21.0))
    assert collector.mean_response_time(0) == pytest.approx(16.0)
    assert collector.class_metrics(0).response_time.count == 2
    assert collector.tail_response_time(0, 50) == pytest.approx(16.0)


def test_repeated_summary_queries_are_consistent():
    collector = MetricsCollector()
    for i in range(20):
        collector.record_job(make_record(job_id=i, completion=float(10 + i)))
    first = collector.class_metrics(0)
    second = collector.class_metrics(0)
    assert first == second
    assert collector.mean_response_time(0) == first.response_time.mean


# ------------------------------------------------------------------- streaming
def _fill(collector, values, priority=0):
    for i, value in enumerate(values):
        collector.record_job(
            make_record(job_id=i, priority=priority, completion=value, execution=1.0)
        )


def test_streaming_mean_count_max_are_exact():
    import random

    rng = random.Random(42)
    values = [rng.uniform(1.0, 100.0) for _ in range(500)]
    batch = MetricsCollector()
    stream = MetricsCollector(streaming=True)
    _fill(batch, values)
    _fill(stream, values)
    assert stream.job_count == batch.job_count == 500
    assert stream.mean_response_time(0) == pytest.approx(batch.mean_response_time(0))
    sm = stream.class_metrics(0)
    bm = batch.class_metrics(0)
    assert sm.response_time.maximum == bm.response_time.maximum
    assert sm.job_count == bm.job_count
    assert stream.resource_waste_fraction() == batch.resource_waste_fraction()


def test_streaming_percentiles_approximate_batch():
    import random

    rng = random.Random(7)
    values = [rng.expovariate(0.05) for _ in range(5000)]
    batch = MetricsCollector()
    stream = MetricsCollector(streaming=True)
    _fill(batch, values)
    _fill(stream, values)
    for q in (50.0, 95.0, 99.0):
        exact = batch.tail_response_time(0, q)
        estimate = stream.tail_response_time(0, q)
        assert estimate == pytest.approx(exact, rel=0.15), f"p{q}"


def test_streaming_rejects_record_level_accessors():
    stream = MetricsCollector(streaming=True)
    stream.record_job(make_record())
    with pytest.raises(RuntimeError, match="streaming"):
        stream.records
    with pytest.raises(RuntimeError):
        stream.records_for_priority(0)
    with pytest.raises(RuntimeError):
        stream.to_rows()
    with pytest.raises(RuntimeError):
        stream.merge(MetricsCollector())


def test_streaming_tracks_multiple_classes():
    stream = MetricsCollector(streaming=True)
    _fill(stream, [10.0, 20.0], priority=0)
    _fill(stream, [5.0], priority=1)
    assert stream.priorities() == [0, 1]
    assert stream.class_metrics(1).response_time.mean == pytest.approx(5.0)
    assert stream.mean_response_time() == pytest.approx((10 + 20 + 5) / 3)


def test_streaming_unsupported_quantile_raises():
    stream = MetricsCollector(streaming=True)
    _fill(stream, [1.0, 2.0])
    with pytest.raises(ValueError, match="track only"):
        stream.tail_response_time(0, 42.0)


def test_p2_quantile_small_samples_are_exact():
    from repro.simulation.metrics import P2Quantile

    est = P2Quantile(0.5)
    for v in [3.0, 1.0, 2.0]:
        est.add(v)
    assert est.value() == pytest.approx(2.0)
    with pytest.raises(ValueError):
        P2Quantile(1.5)


def test_online_stats_variance_matches_two_pass():
    from repro.simulation.metrics import OnlineStats

    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    stats = OnlineStats()
    for v in values:
        stats.add(v)
    mean = sum(values) / len(values)
    expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert stats.variance == pytest.approx(expected)


def test_streaming_arbitrary_quantile_sets():
    import random

    rng = random.Random(13)
    values = [rng.expovariate(0.05) for _ in range(5000)]
    batch = MetricsCollector()
    stream = MetricsCollector(streaming=True, quantiles=(0.9, 0.999))
    _fill(batch, values)
    _fill(stream, values)
    # Extra quantiles are tracked alongside the default p50/p95/p99.
    assert stream.tracked_quantiles == (0.5, 0.9, 0.95, 0.99, 0.999)
    for q in (50.0, 90.0, 95.0, 99.0):
        exact = batch.tail_response_time(0, q)
        estimate = stream.tail_response_time(0, q)
        assert estimate == pytest.approx(exact, rel=0.15), f"p{q}"
    # p99.9 is noisier with 5000 samples; just require a sane upper tail.
    assert stream.tail_response_time(0, 99.9) >= stream.tail_response_time(0, 99.0)


def test_streaming_untracked_quantile_still_raises():
    stream = MetricsCollector(streaming=True, quantiles=(0.9,))
    _fill(stream, [1.0, 2.0, 3.0])
    assert stream.tail_response_time(0, 90.0) > 0.0
    with pytest.raises(ValueError, match="track only"):
        stream.tail_response_time(0, 75.0)


def test_quantiles_must_be_fractions():
    with pytest.raises(ValueError, match="in \\(0, 1\\)"):
        MetricsCollector(streaming=True, quantiles=(90.0,)).record_job(make_record())
