"""Qualitative reproduction of the paper's headline claims.

Each test encodes one claim from the abstract/evaluation and checks that the
simulation reproduces its *shape* (who wins, in which direction, roughly by
what magnitude).  Exact percentages are not asserted — the substrate is a
simulator, not the authors' testbed — but directions and orderings are.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    figure7_two_priority_reference,
    figure11_dias_sprinting,
    figure11_energy_comparison,
)
from repro.workloads.scenarios import HIGH, LOW


@pytest.fixture(scope="module")
def reference():
    return figure7_two_priority_reference(num_jobs=600, seed=13)


@pytest.fixture(scope="module")
def dias_unlimited():
    return figure11_dias_sprinting(budget="unlimited", num_jobs=300, seed=17)


@pytest.fixture(scope="module")
def dias_limited():
    return figure11_dias_sprinting(budget="limited", num_jobs=300, seed=17)


# --- §2.1 / §5.2.1: preemptive priority wastes resources on evictions -------
def test_preemptive_scheduling_wastes_machine_time(reference):
    waste = reference.result("P").resource_waste
    assert 0.005 < waste < 0.15  # the paper reports ~4 % in the reference setup


def test_non_preemptive_policies_eliminate_waste(reference):
    for name in ("NP", "DA(0/10)", "DA(0/20)"):
        assert reference.result(name).resource_waste == 0.0


# --- §5.2.1: P favours the high class at the expense of the low class -------
def test_preemptive_low_priority_much_slower_than_high(reference):
    p = reference.result("P")
    assert p.mean_response_time(LOW) > 3 * p.mean_response_time(HIGH)


def test_np_improves_low_priority_but_hurts_high_priority(reference):
    assert reference.relative_difference("NP", LOW, "mean") < -10.0
    assert reference.relative_difference("NP", HIGH, "mean") > 20.0


def test_da20_gives_large_low_priority_gains_with_smaller_high_cost(reference):
    low_gain = reference.relative_difference("DA(0/20)", LOW, "mean")
    low_tail_gain = reference.relative_difference("DA(0/20)", LOW, "tail")
    high_cost = reference.relative_difference("DA(0/20)", HIGH, "mean")
    np_high_cost = reference.relative_difference("NP", HIGH, "mean")
    assert low_gain < -45.0           # paper: ~65 % improvement
    assert low_tail_gain < -45.0
    assert high_cost < np_high_cost    # approximation softens the NP penalty


def test_da20_outperforms_da10_for_low_priority(reference):
    assert reference.relative_difference("DA(0/20)", LOW, "mean") < reference.relative_difference(
        "DA(0/10)", LOW, "mean"
    )


def test_accuracy_loss_stays_within_the_advertised_band(reference):
    da = reference.result("DA(0/20)")
    assert 0.10 < da.mean_accuracy_loss(LOW) < 0.20  # ~15 % at a 20 % drop
    assert da.mean_accuracy_loss(HIGH) == 0.0


# --- §5.3: full DiAS improves both classes and saves energy ------------------
def test_full_dias_improves_both_priorities(dias_unlimited):
    for policy in ("DiAS(0/10)", "DiAS(0/20)"):
        assert dias_unlimited.relative_difference(policy, LOW, "mean") < -30.0
        assert dias_unlimited.relative_difference(policy, HIGH, "mean") < 0.0


def test_limited_sprinting_also_improves_high_priority(dias_limited):
    assert dias_limited.relative_difference("DiAS(0/20)", HIGH, "mean") < 0.0
    assert dias_limited.result("DiAS(0/20)").sprinted_seconds > 0


def test_unlimited_sprinting_beats_limited_for_high_priority(dias_limited, dias_unlimited):
    limited_gain = dias_limited.relative_difference("DiAS(0/20)", HIGH, "mean")
    unlimited_gain = dias_unlimited.relative_difference("DiAS(0/20)", HIGH, "mean")
    assert unlimited_gain < limited_gain


def test_dias_reduces_energy_despite_sprinting():
    energy = figure11_energy_comparison(num_jobs=200, seed=19)
    rows = {(r["budget"], r["policy"]): r for r in energy["rows"]}
    for budget in ("limited", "unlimited"):
        for policy in ("DiAS(0/10)", "DiAS(0/20)"):
            assert rows[(budget, policy)]["diff_pct"] < 0.0
    # Larger drop ratios save more energy (Fig. 11c).
    assert rows[("unlimited", "DiAS(0/20)")]["energy_kj"] <= rows[("unlimited", "DiAS(0/10)")]["energy_kj"]
