"""End-to-end integration tests across the whole stack.

These tests exercise the public API the way a downstream user would: build a
scenario, run several policies on a common trace, feed the deflator, and check
cross-module consistency (metrics vs engine vs models).
"""

from __future__ import annotations

import pytest

from repro import (
    AccuracyModel,
    Cluster,
    ClusterConfig,
    HIGH,
    LOW,
    SchedulingPolicy,
    SprintConfig,
    TaskDeflator,
    WaveLevelModel,
    reference_two_priority_scenario,
    run_policies,
)
from repro.core.dias import run_policy
from repro.workloads.jobs import generate_job_trace


@pytest.fixture(scope="module")
def scenario():
    return reference_two_priority_scenario(num_jobs=200)


@pytest.fixture(scope="module")
def comparison(scenario):
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
        SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.2},
                              sprint=SprintConfig.unlimited_sprinting({HIGH})),
    ]
    return run_policies(scenario, policies, baseline="P", seed=21)


def test_all_jobs_complete_under_every_policy(comparison):
    for result in comparison.results.values():
        assert result.completed_jobs == 200
        assert result.metrics.job_count == 200


def test_response_time_decomposition_consistency(comparison):
    for result in comparison.results.values():
        for record in result.metrics.records:
            assert record.response_time == pytest.approx(
                record.queueing_time + record.execution_time, rel=1e-9
            )
            assert record.completion_time >= record.start_time >= record.arrival_time


def test_resource_waste_only_under_preemption(comparison):
    assert comparison.result("P").evictions > 0
    assert comparison.result("P").resource_waste > 0
    for name in ("NP", "DA(0/20)", "DiAS(0/20)"):
        assert comparison.result(name).evictions == 0
        assert comparison.result(name).resource_waste == 0


def test_dropping_reduces_low_priority_execution_time(comparison):
    np_exec = comparison.result("NP").mean_execution_time(LOW)
    da_exec = comparison.result("DA(0/20)").mean_execution_time(LOW)
    assert da_exec < np_exec


def test_sprinting_reduces_high_priority_execution_time(comparison):
    da_exec = comparison.result("DA(0/20)").mean_execution_time(HIGH)
    dias_exec = comparison.result("DiAS(0/20)").mean_execution_time(HIGH)
    assert dias_exec < da_exec
    assert comparison.result("DiAS(0/20)").sprinted_seconds > 0


def test_energy_accounting_consistent_with_duration(comparison, scenario):
    power = scenario.cluster.power_model
    for result in comparison.results.values():
        max_energy = result.duration * power.power("sprint")
        min_energy = result.duration * power.power("idle")
        assert min_energy <= result.total_energy_joules <= max_energy


def test_deflator_predictions_track_simulation(scenario):
    deflator = TaskDeflator(
        profiles=scenario.profiles,
        arrival_rates=scenario.arrival_rates,
        slots=scenario.cluster.slots,
    )
    predicted = deflator.predict_response_times({HIGH: 0.0, LOW: 0.2})
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})
    observed = run_policies(scenario, [policy], seed=31).result(policy.name)
    for priority in (HIGH, LOW):
        assert predicted[priority] == pytest.approx(
            observed.mean_response_time(priority), rel=0.6
        )


def test_wave_model_predicts_isolated_execution_time(scenario):
    profile = scenario.profiles[HIGH]
    slots = scenario.cluster.slots
    model = WaveLevelModel.from_profile(profile, slots)
    trace = generate_job_trace({HIGH: profile}, {HIGH: 0.0001}, num_jobs=20, seed=3)
    cluster = Cluster(ClusterConfig(workers=10, cores_per_worker=2))
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), trace, cluster=cluster)
    observed = result.mean_execution_time(HIGH)
    assert model.mean_processing_time() == pytest.approx(observed, rel=0.2)


def test_accuracy_losses_match_the_drop_ratio(comparison):
    model = AccuracyModel.paper_default()
    da = comparison.result("DA(0/20)")
    assert da.mean_accuracy_loss(LOW) == pytest.approx(model.error(0.2), rel=1e-6)
    assert da.mean_accuracy_loss(HIGH) == 0.0


def test_policies_share_identical_traces(comparison):
    ids = None
    for result in comparison.results.values():
        current = sorted(r.job_id for r in result.metrics.records)
        if ids is None:
            ids = current
        assert current == ids
