"""Reproducibility and robustness of the experiment methodology."""

from __future__ import annotations

import pytest

from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import run_policies
from repro.simulation.replication import ReplicationRunner
from repro.workloads.scenarios import HIGH, LOW, reference_two_priority_scenario


def _policies():
    return [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
    ]


def test_same_seed_gives_bitwise_identical_results():
    scenario = reference_two_priority_scenario(num_jobs=120)
    first = run_policies(scenario, _policies(), baseline="P", seed=7)
    second = run_policies(scenario, _policies(), baseline="P", seed=7)
    for name in ("P", "DA(0/20)"):
        assert first.result(name).mean_response_time(LOW) == second.result(name).mean_response_time(LOW)
        assert first.result(name).total_energy_joules == second.result(name).total_energy_joules


def test_different_seeds_give_different_but_consistent_results():
    scenario = reference_two_priority_scenario(num_jobs=200)
    a = run_policies(scenario, _policies(), baseline="P", seed=1)
    b = run_policies(scenario, _policies(), baseline="P", seed=2)
    assert a.result("P").mean_response_time(LOW) != b.result("P").mean_response_time(LOW)
    # The qualitative conclusion holds for both seeds.
    assert a.relative_difference("DA(0/20)", LOW, "mean") < 0
    assert b.relative_difference("DA(0/20)", LOW, "mean") < 0


def test_policy_order_does_not_change_results():
    scenario = reference_two_priority_scenario(num_jobs=120)
    forward = run_policies(scenario, _policies(), baseline="P", seed=3)
    backward = run_policies(scenario, list(reversed(_policies())), baseline="P", seed=3)
    assert forward.result("DA(0/20)").mean_response_time(LOW) == pytest.approx(
        backward.result("DA(0/20)").mean_response_time(LOW)
    )


def test_headline_claim_is_stable_across_replications():
    """The DA(0,20) low-priority improvement holds across independent traces."""
    scenario = reference_two_priority_scenario(num_jobs=250)

    def experiment(seed: int):
        comparison = run_policies(scenario, _policies(), baseline="P", seed=seed)
        return {
            "low_improvement_pct": -comparison.relative_difference("DA(0/20)", LOW, "mean"),
            "waste_pct": 100.0 * comparison.result("P").resource_waste,
        }

    runner = ReplicationRunner(experiment)
    runner.run(replications=5, base_seed=100)
    intervals = runner.intervals(confidence=0.95)
    improvement = intervals["low_improvement_pct"]
    waste = intervals["waste_pct"]
    # Every replication shows a substantial improvement; the interval excludes 0.
    assert improvement.lower > 20.0
    assert waste.lower > 0.0
