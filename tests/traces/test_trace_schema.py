"""Tests for the trace record schema and bucketing."""

from __future__ import annotations

import pytest

from repro.traces.schema import (
    TraceFormatError,
    TraceHistogram,
    TraceJob,
    TraceStage,
    classify_resources,
    classify_time,
)


def _job(**overrides):
    defaults = dict(
        job_id=1,
        arrival_time=10.0,
        priority=0,
        size_mb=100.0,
        stages=(TraceStage(index=0, map_durations=(5.0, 7.0)),),
        kind="linear",
    )
    defaults.update(overrides)
    return TraceJob(**defaults)


def test_time_buckets_cover_the_spectrum():
    assert classify_time(5.0) == "0-30s"
    assert classify_time(30.0) == "0-30s"
    assert classify_time(31.0) == "30-120s"
    assert classify_time(500.0) == "2-10m"
    assert classify_time(1800.0) == "10-60m"
    assert classify_time(7200.0) == "1h+"


def test_resource_buckets_cover_the_spectrum():
    assert classify_resources(1) == "1"
    assert classify_resources(2) == "2"
    assert classify_resources(4) == "3-4"
    assert classify_resources(20) == "17-32"
    assert classify_resources(10_000) == "64+"


def test_stage_properties():
    stage = TraceStage(
        index=0,
        map_durations=(4.0, 6.0, 2.0),
        reduce_durations=(1.0,),
        shuffle_time=0.5,
    )
    assert stage.num_tasks == 4
    assert stage.width == 3
    assert stage.total_work() == pytest.approx(13.0)
    kinds = [task.kind for task in stage.tasks()]
    assert kinds == ["map", "map", "map", "reduce"]


def test_stage_rejects_bad_durations():
    with pytest.raises(TraceFormatError):
        TraceStage(index=0, map_durations=())
    with pytest.raises(TraceFormatError):
        TraceStage(index=0, map_durations=(1.0, -2.0))
    with pytest.raises(TraceFormatError):
        TraceStage(index=0, map_durations=(1.0,), shuffle_time=-1.0)


def test_stage_rejects_bad_parents():
    with pytest.raises(TraceFormatError):
        TraceStage(index=2, map_durations=(1.0,), parents=(2,))
    with pytest.raises(TraceFormatError):
        TraceStage(index=2, map_durations=(1.0,), parents=(0, 0))


def test_job_validates_fields():
    with pytest.raises(TraceFormatError):
        _job(kind="tree")
    with pytest.raises(TraceFormatError):
        _job(arrival_time=-1.0)
    with pytest.raises(TraceFormatError):
        _job(size_mb=0.0)
    with pytest.raises(TraceFormatError):
        _job(stages=())


def test_job_requires_contiguous_stage_indices():
    stages = (
        TraceStage(index=0, map_durations=(1.0,)),
        TraceStage(index=2, map_durations=(1.0,)),
    )
    with pytest.raises(TraceFormatError):
        _job(stages=stages)


def test_linear_jobs_reject_parents_and_dags_check_ranges():
    stages = (
        TraceStage(index=0, map_durations=(1.0,)),
        TraceStage(index=1, map_durations=(1.0,), parents=(0,)),
    )
    with pytest.raises(TraceFormatError):
        _job(stages=stages, kind="linear")
    assert _job(stages=stages, kind="dag").num_stages == 2
    bad = (
        TraceStage(index=0, map_durations=(1.0,)),
        TraceStage(index=1, map_durations=(1.0,), parents=(5,)),
    )
    with pytest.raises(TraceFormatError):
        _job(stages=bad, kind="dag")


def test_job_buckets_and_totals():
    job = _job()
    assert job.num_tasks == 2
    assert job.total_work() == pytest.approx(12.0)
    assert job.max_width == 2
    assert job.time_bucket() == "0-30s"
    assert job.resource_bucket() == "2"


def test_histogram_accumulates_streamed_records():
    histogram = TraceHistogram()
    histogram.add(_job(job_id=0, arrival_time=0.0))
    histogram.add(_job(job_id=1, arrival_time=50.0, priority=2))
    assert histogram.jobs == 2
    assert histogram.horizon == 50.0
    assert histogram.by_priority == {0: 1, 2: 1}
    table = histogram.format_table()
    assert "jobs: 2" in table
    assert "p0: 1" in table
