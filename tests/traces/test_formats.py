"""Round-trip, malformed-input, and parallel-ingestion tests for trace files."""

from __future__ import annotations

import json

import pytest

from repro.traces.formats import (
    CLUSTER_CSV,
    CLUSTER_JSONL,
    DAG_JSONL,
    TraceMeta,
    iter_trace,
    read_trace_meta,
    write_trace,
)
from repro.traces.schema import TraceFormatError, TraceJob, TraceStage


def _uniform_job(job_id, arrival, priority=0):
    stage = TraceStage(
        index=0,
        map_durations=(4.0,) * 3,
        reduce_durations=(2.5,) * 2,
        shuffle_time=1.5,
    )
    return TraceJob(
        job_id=job_id,
        arrival_time=arrival,
        priority=priority,
        size_mb=128.0,
        stages=(stage,),
        kind="linear",
    )


def _varied_job(job_id, arrival, priority=1):
    stages = (
        TraceStage(index=0, map_durations=(1.25, 2.5, 0.75), shuffle_time=0.5),
        TraceStage(index=1, map_durations=(3.0,), reduce_durations=(1.0, 2.0)),
    )
    return TraceJob(
        job_id=job_id,
        arrival_time=arrival,
        priority=priority,
        size_mb=473.5,
        stages=stages,
        kind="linear",
    )


def _dag_job(job_id, arrival):
    stages = (
        TraceStage(index=0, map_durations=(2.0, 3.0)),
        TraceStage(index=1, map_durations=(1.0, 1.5, 2.5), parents=(0,)),
        TraceStage(
            index=2,
            map_durations=(4.0,),
            reduce_durations=(0.5,),
            shuffle_time=1.0,
            parents=(0, 1),
        ),
    )
    return TraceJob(
        job_id=job_id,
        arrival_time=arrival,
        priority=2,
        size_mb=640.0,
        stages=stages,
        kind="dag",
    )


def test_cluster_csv_round_trip(tmp_path):
    path = str(tmp_path / "t.csv")
    records = [_uniform_job(i, float(i)) for i in range(5)]
    meta = TraceMeta(format=CLUSTER_CSV, jobs=5)
    assert write_trace(path, records, meta) == 5
    assert read_trace_meta(path).jobs == 5
    assert list(iter_trace(path)) == records


def test_cluster_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    records = [_varied_job(i, 0.5 * i) for i in range(4)]
    meta = TraceMeta(format=CLUSTER_JSONL, jobs=4, classes={1: {"share": 1.0}})
    write_trace(path, records, meta)
    assert read_trace_meta(path).class_shares() == {1: 1.0}
    assert list(iter_trace(path)) == records


def test_dag_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    records = [_dag_job(i, float(i)) for i in range(3)]
    meta = TraceMeta(format=DAG_JSONL, jobs=3, wave_width=2)
    write_trace(path, records, meta)
    parsed = list(iter_trace(path))
    assert parsed == records
    assert parsed[0].stages[2].parents == (0, 1)


def test_parallel_parse_matches_serial(tmp_path):
    path = str(tmp_path / "t.jsonl")
    records = [_varied_job(i, 0.25 * i) for i in range(60)]
    write_trace(path, records, TraceMeta(format=CLUSTER_JSONL, jobs=60))
    serial = list(iter_trace(path, jobs=1))
    parallel = list(iter_trace(path, jobs=2, chunk_lines=7))
    assert parallel == serial


def test_csv_rejects_non_uniform_tasks(tmp_path):
    path = str(tmp_path / "t.csv")
    stage = TraceStage(index=0, map_durations=(1.0, 2.0))
    job = TraceJob(
        job_id=0, arrival_time=0.0, priority=0, size_mb=10.0, stages=(stage,)
    )
    with pytest.raises(TraceFormatError, match="uniform task profiles"):
        write_trace(path, [job], TraceMeta(format=CLUSTER_CSV))
    with pytest.raises(TraceFormatError, match="single-stage linear jobs"):
        write_trace(path, [_varied_job(0, 0.0)], TraceMeta(format=CLUSTER_CSV))


def test_cluster_formats_reject_dag_jobs(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with pytest.raises(TraceFormatError, match="linear jobs only"):
        write_trace(path, [_dag_job(0, 0.0)], TraceMeta(format=CLUSTER_JSONL))


def test_empty_file_is_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(TraceFormatError, match="empty"):
        read_trace_meta(str(path))


def test_missing_file_is_rejected(tmp_path):
    with pytest.raises(TraceFormatError, match="no such trace file"):
        read_trace_meta(str(tmp_path / "nope.jsonl"))


def test_unrecognised_header_is_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("hello world\n")
    with pytest.raises(TraceFormatError, match="unrecognised trace file"):
        read_trace_meta(str(path))


def test_bare_json_header_is_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"id": 0}\n')
    with pytest.raises(TraceFormatError, match="trace header"):
        read_trace_meta(str(path))


def test_format_mismatch_is_rejected(tmp_path):
    path = str(tmp_path / "t.jsonl")
    write_trace(path, [_varied_job(0, 0.0)], TraceMeta(format=CLUSTER_JSONL, jobs=1))
    with pytest.raises(TraceFormatError, match="expected a dag-jsonl trace"):
        read_trace_meta(path, fmt=DAG_JSONL)


def test_headerless_csv_is_accepted(tmp_path):
    path = tmp_path / "external.csv"
    path.write_text(
        "job_id,arrival_time,priority,size_mb,num_tasks,task_time,"
        "num_reduce_tasks,reduce_time,shuffle_time\n"
        "0,0.0,1,100.0,4,2.0,1,3.0,0.5\n"
    )
    meta = read_trace_meta(str(path))
    assert meta.format == CLUSTER_CSV
    assert meta.jobs is None
    (job,) = list(iter_trace(str(path)))
    assert job.priority == 1
    assert job.stages[0].map_durations == (2.0,) * 4


def test_malformed_csv_row_reports_line_number(tmp_path):
    path = str(tmp_path / "t.csv")
    write_trace(path, [_uniform_job(0, 0.0)], TraceMeta(format=CLUSTER_CSV))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("1,2,3\n")
    with pytest.raises(TraceFormatError, match="line 4"):
        list(iter_trace(path))


def test_out_of_order_arrivals_are_rejected(tmp_path):
    path = str(tmp_path / "t.jsonl")
    records = [_varied_job(0, 5.0), _varied_job(1, 2.0)]
    write_trace(path, records, TraceMeta(format=CLUSTER_JSONL))
    with pytest.raises(TraceFormatError, match="arrivals out of order"):
        list(iter_trace(path))


def test_job_count_mismatch_is_rejected(tmp_path):
    path = str(tmp_path / "t.jsonl")
    write_trace(path, [_varied_job(0, 0.0)], TraceMeta(format=CLUSTER_JSONL))
    lines = open(path, encoding="utf-8").read().splitlines()
    header = json.loads(lines[0])
    header["repro_trace"]["jobs"] = 7
    lines[0] = json.dumps(header)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError, match="declares 7 jobs"):
        list(iter_trace(path))


def test_dag_adjacency_shape_is_checked(tmp_path):
    path = tmp_path / "t.jsonl"
    header = json.dumps({"repro_trace": {"format": DAG_JSONL, "wave": 2}})
    body = json.dumps(
        {
            "id": 0,
            "t": 0.0,
            "p": 0,
            "mb": 100.0,
            "adj": [[0, 0]],
            "stages": [{"n": 1, "fw": [1.0]}, {"n": 1, "fw": [1.0]}],
        }
    )
    path.write_text(header + "\n" + body + "\n")
    with pytest.raises(TraceFormatError, match="adjacency matrix"):
        list(iter_trace(str(path)))


def test_dag_short_stage_records_cycle(tmp_path):
    path = tmp_path / "t.jsonl"
    header = json.dumps({"repro_trace": {"format": DAG_JSONL, "wave": 2}})
    body = json.dumps(
        {
            "id": 0,
            "t": 0.0,
            "p": 0,
            "mb": 100.0,
            "adj": [[0]],
            "stages": [{"n": 5, "fw": [1.0, 2.0]}],
        }
    )
    path.write_text(header + "\n" + body + "\n")
    (job,) = list(iter_trace(str(path)))
    assert job.stages[0].map_durations == (1.0, 2.0, 1.0, 2.0, 1.0)
