"""Tests for the replay engine and the Google-mix trace bridge."""

from __future__ import annotations

import pytest

from repro.core.dias import DiASSimulation
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.simulation.metrics import MetricsCollector
from repro.traces.formats import DAG_JSONL
from repro.traces.replay import (
    ReplaySource,
    dag_job_from_trace,
    job_from_trace,
    replay_profile,
)
from repro.traces.schema import TraceFormatError, TraceJob, TraceStage
from repro.traces.synth import synthesize_trace
from repro.workloads.scenarios import (
    dag_layered_scenario,
    reference_two_priority_scenario,
)
from repro.workloads.traces import eviction_statistics, google_mix_scenario


def _linear_record(arrival=10.0, priority=1):
    stage = TraceStage(
        index=0,
        map_durations=(4.0, 6.0),
        reduce_durations=(2.0,),
        shuffle_time=1.0,
    )
    return TraceJob(
        job_id=0,
        arrival_time=arrival,
        priority=priority,
        size_mb=100.0,
        stages=(stage,),
        kind="linear",
    )


def _dag_record():
    stages = (
        TraceStage(index=0, map_durations=(2.0, 2.0)),
        TraceStage(index=1, map_durations=(3.0,), parents=(0,)),
    )
    return TraceJob(
        job_id=0,
        arrival_time=8.0,
        priority=0,
        size_mb=100.0,
        stages=stages,
        kind="dag",
    )


@pytest.fixture(scope="module")
def cluster_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "cluster.jsonl")
    scenario = reference_two_priority_scenario(num_jobs=30)
    meta = synthesize_trace(path, scenario, num_jobs=30, seed=7)
    return path, meta


@pytest.fixture(scope="module")
def dag_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "dag.jsonl")
    scenario = dag_layered_scenario(num_jobs=10)
    meta = synthesize_trace(path, scenario, num_jobs=10, seed=7, fmt=DAG_JSONL)
    return path, meta


def test_replay_profile_defaults_are_conservative():
    profile = replay_profile(2)
    assert profile.priority == 2
    assert profile.max_accuracy_loss == 0.0
    assert profile.setup_time_full == pytest.approx(12.0)


def test_replay_profile_uses_header_info_and_time_scale():
    info = {
        "setup_time_full": 20.0,
        "setup_time_min": 10.0,
        "max_accuracy_loss": 0.3,
        "mean_size_mb": 512.0,
    }
    profile = replay_profile(1, info, time_scale=2.0)
    assert profile.setup_time_full == pytest.approx(10.0)
    assert profile.setup_time_min == pytest.approx(5.0)
    assert profile.max_accuracy_loss == pytest.approx(0.3)
    assert profile.mean_size_mb == pytest.approx(512.0)


def test_job_from_trace_scales_arrivals_and_durations():
    record = _linear_record(arrival=10.0)
    profile = replay_profile(record.priority, time_scale=2.0)
    job = job_from_trace(record, profile, time_scale=2.0, rate_scale=2.5)
    # time_scale divides both axes; rate_scale only packs arrivals closer.
    assert job.arrival_time == pytest.approx(10.0 / 5.0)
    assert job.stages[0].map_task_times == pytest.approx([2.0, 3.0])
    assert job.stages[0].reduce_task_times == pytest.approx([1.0])
    assert job.stages[0].shuffle_time == pytest.approx(0.5)


def test_kind_mismatches_are_rejected():
    profile = replay_profile(0)
    with pytest.raises(TraceFormatError, match="repro dag --replay"):
        job_from_trace(_dag_record(), profile)
    with pytest.raises(TraceFormatError, match="repro fleet --replay"):
        dag_job_from_trace(_linear_record(), profile)


def test_dag_job_from_trace_preserves_dependencies():
    record = _dag_record()
    job = dag_job_from_trace(record, replay_profile(0), time_scale=2.0)
    assert job.arrival_time == pytest.approx(4.0)
    assert job.dag.stages[1].parents == (0,)
    assert job.dag.stages[1].map_task_times == pytest.approx([1.5])


def test_replay_source_checks_mode_against_format(cluster_trace, dag_trace):
    with pytest.raises(TraceFormatError, match="repro fleet --replay"):
        ReplaySource(cluster_trace[0], mode="dag")
    with pytest.raises(TraceFormatError, match="repro dag --replay"):
        ReplaySource(dag_trace[0], mode="fleet")
    with pytest.raises(ValueError, match="mode must be"):
        ReplaySource(cluster_trace[0], mode="chaos")
    with pytest.raises(ValueError, match="positive"):
        ReplaySource(cluster_trace[0], time_scale=0.0)


def test_replay_source_streams_engine_jobs(cluster_trace):
    path, meta = cluster_trace
    source = ReplaySource(path)
    assert source.expected_jobs == 30
    shares = source.class_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    jobs = list(source)
    assert len(jobs) == 30
    assert source.jobs_ingested == 30
    assert all(isinstance(job, Job) for job in jobs)
    arrivals = [job.arrival_time for job in jobs]
    assert arrivals == sorted(arrivals)
    assert source.horizon == pytest.approx(arrivals[-1])
    # Profiles are cached per priority and graded from the header metadata.
    priorities = {job.priority for job in jobs}
    assert priorities <= set(meta.classes)
    for job in jobs:
        assert job.profile is source.profile(job.priority)


def test_rate_scale_packs_arrivals_without_touching_durations(cluster_trace):
    path, _ = cluster_trace
    base = list(ReplaySource(path))
    packed = list(ReplaySource(path, rate_scale=2.0))
    for slow, fast in zip(base, packed):
        assert fast.arrival_time == pytest.approx(slow.arrival_time / 2.0)
        assert fast.stages[0].map_task_times == pytest.approx(
            slow.stages[0].map_task_times
        )


def test_google_mix_scenario_bridges_the_trace_mix():
    for num_classes in (2, 3):
        scenario = google_mix_scenario(num_classes=num_classes)
        assert len(scenario.profiles) == num_classes
        assert sum(scenario.class_ratio.values()) == pytest.approx(1.0)
        # Every collapsed class carries a dominant level's worth of mass.
        assert all(share > 0.25 for share in scenario.class_ratio.values())
    with pytest.raises(ValueError):
        google_mix_scenario(num_classes=4)


def _preemptive_jobs():
    def make(job_id, priority, arrival):
        profile = JobClassProfile(
            priority=priority, partitions=2, reduce_tasks=0, shuffle_time=0.0,
            setup_time_full=0.0, setup_time_min=0.0,
        )
        stage = StageSpec(index=0, map_task_times=[10.0, 10.0],
                          reduce_task_times=[], shuffle_time=0.0)
        return Job(job_id=job_id, priority=priority, arrival_time=arrival,
                   size_mb=10.0, stages=[stage], profile=profile)

    return [make(0, 0, 0.0), make(1, 2, 5.0), make(2, 0, 50.0)]


def test_eviction_statistics_match_between_batch_and_streaming():
    rows = {}
    for streaming in (False, True):
        simulation = DiASSimulation(
            policy=SchedulingPolicy.preemptive_priority(),
            jobs=_preemptive_jobs(),
            cluster=Cluster(ClusterConfig(workers=1, cores_per_worker=2)),
            metrics=MetricsCollector(streaming=streaming),
        )
        rows[streaming] = {
            row["priority"]: row for row in eviction_statistics(simulation.run())
        }
    assert set(rows[True]) == set(rows[False])
    for priority, batch_row in rows[False].items():
        for key, value in batch_row.items():
            assert rows[True][priority][key] == pytest.approx(value), (priority, key)
