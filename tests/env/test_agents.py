"""Unit tests for the decision agents: bandit math, serialisation, factory."""

import numpy as np
import pytest

from repro.env.agents import (
    AgentDecisionHook,
    BuiltinAgent,
    EpsilonGreedyAgent,
    LinUCBAgent,
    RandomAgent,
    SchedulerAgent,
    _design,
    load_agent,
    make_agent,
    save_agent,
)
from repro.simulation.decisions import ROUTE, STAGE, DecisionPoint

FEATURES = [[10.0, 1.0], [5.0, 2.0], [0.0, 4.0]]


def _point(num_candidates=3, kind=STAGE):
    return DecisionPoint(kind, 0.0, list(range(num_candidates)), None, None)


# ------------------------------------------------------------- design matrix
def test_design_normalises_columns_and_appends_bias():
    design = _design(FEATURES)
    expected = np.array([
        [1.0, 0.25, 1.0],
        [0.5, 0.5, 1.0],
        [0.0, 1.0, 1.0],
    ])
    assert np.allclose(design, expected)


def test_design_survives_an_all_zero_column():
    design = _design([[0.0, 3.0], [0.0, 6.0]])
    assert np.isfinite(design).all()
    assert np.allclose(design[:, 0], 0.0)


# ------------------------------------------------------------ epsilon-greedy
def test_epsilon_zero_picks_the_argmax_row():
    agent = EpsilonGreedyAgent(epsilon=0.0)
    agent.act(_point(), FEATURES)  # initialises the lazy weight vector
    agent.weights = np.array([1.0, 0.0, 0.0])
    assert agent.act(_point(), FEATURES) == 0
    agent.weights = np.array([0.0, 1.0, 0.0])
    assert agent.act(_point(), FEATURES) == 2


def test_epsilon_greedy_sgd_update_moves_weights_toward_reward():
    agent = EpsilonGreedyAgent(epsilon=0.0, learning_rate=0.5)
    agent.act(_point(), FEATURES)
    context = np.array([1.0, 0.0, 1.0])
    agent.observe(context, reward=1.0)
    # w starts at zero, so one step is lr * reward * context.
    assert np.allclose(agent.weights, 0.5 * context)


def test_frozen_epsilon_greedy_neither_explores_nor_learns():
    agent = EpsilonGreedyAgent(epsilon=1.0)  # would always explore
    agent.act(_point(), FEATURES)
    agent.freeze()
    before = agent.weights.copy()
    choices = {agent.act(_point(), FEATURES) for _ in range(20)}
    agent.observe(np.array([1.0, 1.0, 1.0]), reward=5.0)
    assert choices == {0}  # pure argmax of zero weights: lowest index
    assert np.array_equal(agent.weights, before)


def test_epsilon_greedy_rejects_bad_hyperparameters():
    with pytest.raises(ValueError, match="epsilon"):
        EpsilonGreedyAgent(epsilon=1.5)
    with pytest.raises(ValueError, match="learning_rate"):
        EpsilonGreedyAgent(learning_rate=0.0)


# -------------------------------------------------------------------- LinUCB
def test_linucb_breaks_prior_ties_toward_the_lowest_index():
    agent = LinUCBAgent(alpha=0.0)
    # Identical rows score identically; argmax must take the first.
    assert agent.act(_point(2), [[3.0, 3.0], [3.0, 3.0]]) == 0


def test_linucb_learns_to_prefer_the_rewarded_context():
    agent = LinUCBAgent(alpha=0.0)
    agent.act(_point(), FEATURES)
    design = _design(FEATURES)
    for _ in range(5):
        agent.observe(design[2], reward=1.0)
        agent.observe(design[0], reward=-1.0)
    assert agent.act(_point(), FEATURES) == 2


def test_frozen_linucb_drops_the_exploration_bonus():
    exploring = LinUCBAgent(alpha=10.0)
    frozen = LinUCBAgent(alpha=10.0)
    frozen.freeze()
    design = _design(FEATURES)
    # Push both toward row 0 on the mean term; the huge bonus can override
    # it for the exploring agent only.
    for agent in (exploring, frozen):
        agent._ensure(design.shape[1])
        agent.A += 100.0 * np.outer(design[0], design[0])
        agent.b += 100.0 * design[0] * 0.1
    assert frozen.act(_point(), FEATURES) == int(
        np.argmax(design @ (np.linalg.inv(frozen.A) @ frozen.b))
    )


def test_linucb_rejects_bad_hyperparameters():
    with pytest.raises(ValueError, match="alpha"):
        LinUCBAgent(alpha=-0.1)
    with pytest.raises(ValueError, match="l2"):
        LinUCBAgent(l2=0.0)


# ------------------------------------------------------------- random agent
def test_random_agent_is_deterministic_per_episode_seed():
    first = RandomAgent(seed=7)
    second = RandomAgent(seed=7)
    first.begin_episode(3)
    second.begin_episode(3)
    point = _point(5)
    assert [first.act(point) for _ in range(10)] == [
        second.act(point) for _ in range(10)
    ]


def test_random_agent_varies_across_episode_seeds():
    agent = RandomAgent(seed=7)
    point = _point(5)
    agent.begin_episode(1)
    run_a = [agent.act(point) for _ in range(10)]
    agent.begin_episode(2)
    run_b = [agent.act(point) for _ in range(10)]
    assert run_a != run_b


# ------------------------------------------------------------- serialisation
@pytest.mark.parametrize("spec", ["builtin", "random", "scheduler:fifo"])
def test_stateless_agents_round_trip(tmp_path, spec):
    path = tmp_path / "agent.json"
    agent = make_agent(spec)
    save_agent(agent, str(path))
    clone = load_agent(str(path))
    assert clone.name == agent.name
    assert clone.state() == agent.state()


def test_trained_epsilon_greedy_round_trips(tmp_path):
    agent = EpsilonGreedyAgent(epsilon=0.3, learning_rate=0.1, seed=5)
    agent.act(_point(), FEATURES)
    agent.observe(np.array([1.0, 0.5, 1.0]), reward=-2.0)
    path = tmp_path / "eg.json"
    save_agent(agent, str(path))
    clone = load_agent(str(path))
    assert clone.state() == agent.state()
    clone.freeze()
    agent.freeze()
    assert clone.act(_point(), FEATURES) == agent.act(_point(), FEATURES)


def test_trained_linucb_round_trips(tmp_path):
    agent = LinUCBAgent(alpha=0.5, l2=2.0, seed=1)
    agent.act(_point(), FEATURES)
    agent.observe(_design(FEATURES)[1], reward=1.5)
    path = tmp_path / "ucb.json"
    save_agent(agent, str(path))
    clone = load_agent(str(path))
    assert clone.state() == agent.state()
    assert clone.act(_point(), FEATURES) == agent.act(_point(), FEATURES)


def test_load_agent_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"agent": "mystery"}')
    with pytest.raises(ValueError, match="unknown agent kind"):
        load_agent(str(path))


# ------------------------------------------------------------------- factory
def test_make_agent_rejects_unknown_specs():
    with pytest.raises(ValueError, match="unknown agent"):
        make_agent("dqn")
    with pytest.raises(ValueError, match="unknown stage scheduler"):
        make_agent("scheduler:nope")


def test_make_agent_forwards_hyperparameters():
    agent = make_agent("epsilon_greedy", epsilon=0.5, learning_rate=0.2, seed=9)
    assert (agent.epsilon, agent.learning_rate, agent.seed) == (0.5, 0.2, 9)
    ucb = make_agent("linucb", alpha=2.0, seed=4)
    assert (ucb.alpha, ucb.seed) == (2.0, 4)


def test_scheduler_agent_refuses_routing_decisions():
    agent = SchedulerAgent("fifo")
    with pytest.raises(ValueError, match="stage decisions"):
        agent.act(_point(kind=ROUTE))


def test_hook_skips_feature_extraction_for_builtin_agents():
    # BuiltinAgent does not need features; the hook must not try to extract
    # them (context is None here, so extraction would raise).
    class Recorder(BuiltinAgent):
        def act(self, point, features=None):
            self.saw = features
            return 0

    agent = Recorder()
    hook = AgentDecisionHook(agent)
    assert hook(_point()) == 0
    assert agent.saw is None
