"""Training/evaluation loops: determinism, parallel equivalence, EnvSpec."""

import pytest

from repro.core.policies import SchedulingPolicy
from repro.env import BuiltinAgent, EnvSpec, EpsilonGreedyAgent, LinUCBAgent, evaluate, train
from repro.env.learn import KEY_METRICS, summarise


def _policy():
    return SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})


def _routing_spec(**kwargs):
    kwargs.setdefault("scenario", "two-priority")
    return EnvSpec(env="routing", policy=_policy(), clusters=3, num_jobs=40,
                   **kwargs)


# -------------------------------------------------------------------- EnvSpec
def test_spec_rejects_unknown_env():
    with pytest.raises(ValueError, match="unknown env"):
        EnvSpec(env="chess", policy=_policy(), scenario="two-priority")


def test_spec_requires_exactly_one_workload_source():
    with pytest.raises(ValueError, match="exactly one"):
        EnvSpec(env="routing", policy=_policy())
    with pytest.raises(ValueError, match="exactly one"):
        EnvSpec(env="routing", policy=_policy(), scenario="two-priority",
                replay="trace.jsonl")


def test_spec_validates_scenario_against_the_env_family():
    with pytest.raises(ValueError, match="unknown routing scenario"):
        EnvSpec(env="routing", policy=_policy(), scenario="layered")
    with pytest.raises(ValueError, match="unknown scheduling scenario"):
        EnvSpec(env="scheduling", policy=_policy(), scenario="two-priority")


def test_spec_key_metric_and_dispatcher_override():
    spec = _routing_spec()
    assert spec.key_metric == KEY_METRICS["routing"]
    swapped = spec.with_dispatcher("jsq")
    assert swapped.dispatcher == "jsq"
    assert spec.dispatcher == "round_robin"  # original untouched


def test_spec_builds_both_env_families():
    routing = _routing_spec().make_env()
    assert routing.id == "routing"
    scheduling = EnvSpec(
        env="scheduling", policy=_policy(), scenario="layered", num_jobs=2
    ).make_env()
    assert scheduling.id == "scheduling"


# ------------------------------------------------------------------- training
def test_training_history_is_deterministic():
    spec = _routing_spec()
    histories = []
    for _ in range(2):
        agent = LinUCBAgent(alpha=1.0)
        histories.append(train(spec, agent, episodes=3, base_seed=4))
    assert histories[0] == histories[1]
    assert len(histories[0]) == 3
    assert all(row["decisions"] == 40.0 for row in histories[0])


def test_training_updates_the_agent():
    agent = EpsilonGreedyAgent()
    assert agent.weights is None
    train(_routing_spec(), agent, episodes=1)
    assert agent.weights is not None


def test_train_rejects_zero_episodes():
    with pytest.raises(ValueError, match="at least one"):
        train(_routing_spec(), LinUCBAgent(), episodes=0)


# ----------------------------------------------------------------- evaluation
def test_evaluation_is_byte_identical_serial_vs_parallel():
    spec = _routing_spec()
    agent = LinUCBAgent()
    train(spec, agent, episodes=2)
    serial = evaluate(spec, agent, episodes=4, base_seed=9, jobs=1)
    parallel = evaluate(spec, agent, episodes=4, base_seed=9, jobs=2)
    assert serial == parallel
    assert len(serial) == 4


def test_evaluate_freezes_the_agent():
    agent = EpsilonGreedyAgent(epsilon=1.0)
    spec = _routing_spec()
    evaluate(spec, agent, episodes=1)
    assert agent.frozen


def test_evaluate_rejects_zero_episodes():
    with pytest.raises(ValueError, match="at least one"):
        evaluate(_routing_spec(), BuiltinAgent(), episodes=0)


# ------------------------------------------------------------------ summarise
def test_summarise_averages_all_metric_columns():
    rows = [
        {"seed": 1.0, "episode": 0.0, "reward": -2.0, "p95_response_s": 10.0},
        {"seed": 2.0, "episode": 1.0, "reward": -4.0, "p95_response_s": 30.0},
    ]
    summary = summarise(rows)
    assert summary == {"reward": -3.0, "p95_response_s": 20.0}
    assert summarise([]) == {}
