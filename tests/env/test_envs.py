"""Environment semantics: rollouts vs direct simulations, lock-step mode,
reward attribution, and replay-backed episodes."""

import pytest

from repro.cli import main
from repro.core.policies import SchedulingPolicy
from repro.dag.simulation import DagSimulation
from repro.env import BuiltinAgent, RoutingEnv, SchedulingEnv
from repro.env.agents import Agent
from repro.env.envs import make_env
from repro.fleet.simulation import FleetSimulation
from repro.workloads import scenarios as scenario_module

SEED = 5


def _policy():
    return SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})


def _scheduling_env(**kwargs):
    kwargs.setdefault("scenario", scenario_module.dag_layered_scenario(num_jobs=3))
    return SchedulingEnv(policy=_policy(), **kwargs)


def _routing_env(**kwargs):
    kwargs.setdefault(
        "scenario",
        scenario_module.fleet_two_priority_scenario(
            num_clusters=3, num_jobs_per_cluster=10
        ),
    )
    return RoutingEnv(policy=_policy(), **kwargs)


class _AlwaysFirst(Agent):
    name = "always_first"

    def act(self, point, features=None):
        return 0


# ------------------------------------------------- rollout == direct path
def test_scheduling_rollout_with_builtin_agent_matches_direct_simulation():
    scenario = scenario_module.dag_layered_scenario(num_jobs=3)
    env = SchedulingEnv(policy=_policy(), scenario=scenario, scheduler="fifo")
    outcome = env.rollout(BuiltinAgent(), seed=SEED)
    direct = DagSimulation(
        policy=_policy(),
        jobs=scenario.generate_trace(seed=SEED),
        scheduler="fifo",
        cluster=scenario.cluster,
        seed=SEED,
    ).run()
    assert outcome.metrics["mean_makespan_s"] == direct.mean_makespan()
    assert outcome.metrics["completed_jobs"] == float(direct.completed_jobs)
    assert outcome.decisions > 0


def test_routing_rollout_with_builtin_agent_matches_direct_simulation():
    scenario = scenario_module.fleet_two_priority_scenario(
        num_clusters=3, num_jobs_per_cluster=10
    )
    env = RoutingEnv(
        policy=_policy(), scenario=scenario, num_clusters=3, dispatcher="jsq"
    )
    outcome = env.rollout(BuiltinAgent(), seed=SEED)
    direct = FleetSimulation(
        policy=_policy(),
        jobs=scenario.generate_trace(seed=SEED),
        clusters=scenario.make_clusters(),
        dispatcher="jsq",
        seed=SEED,
    ).run()
    assert outcome.metrics == dict(direct.summary())
    assert outcome.decisions == len(direct.records())


# -------------------------------------------------------- reward attribution
def test_routing_reward_is_negative_total_response_time():
    scenario = scenario_module.fleet_two_priority_scenario(
        num_clusters=2, num_jobs_per_cluster=8
    )
    env = RoutingEnv(policy=_policy(), scenario=scenario, num_clusters=2)
    outcome = env.rollout(BuiltinAgent(), seed=SEED)
    direct = FleetSimulation(
        policy=_policy(),
        jobs=scenario.generate_trace(seed=SEED),
        clusters=scenario.make_clusters(),
        dispatcher="round_robin",
        seed=SEED,
    ).run()
    expected = -sum(record.response_time for record in direct.records())
    assert outcome.total_reward == pytest.approx(expected)


def test_custom_reward_override_is_credited_once_per_job():
    env = _routing_env(num_clusters=3, reward=lambda record: 1.0)
    outcome = env.rollout(BuiltinAgent(), seed=SEED)
    assert outcome.total_reward == outcome.metrics["completed_jobs"]


def test_scheduling_reward_is_negative_and_bounded_by_stretch():
    env = _scheduling_env()
    outcome = env.rollout(BuiltinAgent(), seed=SEED)
    # Default reward credits -makespan/lower_bound <= -1 once per job.
    assert outcome.total_reward <= -outcome.metrics["completed_jobs"]


# ------------------------------------------------------------ lock-step mode
def test_reset_step_episode_matches_callback_rollout():
    env = _routing_env(num_clusters=3)
    rollout = env.rollout(_AlwaysFirst(), seed=SEED)

    observation = env.reset(seed=SEED)
    total, steps = 0.0, 0
    done = observation is None
    info = {}
    while not done:
        assert len(observation[0]) == len(env.feature_names)
        observation, reward, done, info = env.step(0)
        total += reward
        steps += 1
    env.close()
    assert steps == rollout.decisions
    assert total == pytest.approx(rollout.total_reward)
    assert info["metrics"] == rollout.metrics


def test_step_without_pending_decision_raises():
    env = _routing_env(num_clusters=2)
    with pytest.raises(RuntimeError, match="reset"):
        env.step(0)


def test_close_mid_episode_allows_a_fresh_reset():
    env = _routing_env(num_clusters=2)
    first = env.reset(seed=SEED)
    env.step(0)
    env.close()
    again = env.reset(seed=SEED)
    env.close()
    assert [list(row) for row in again] == [list(row) for row in first]


def test_out_of_range_action_surfaces_in_the_main_thread():
    env = _routing_env(num_clusters=2)
    env.reset(seed=SEED)
    try:
        with pytest.raises(ValueError, match="invalid cluster"):
            env.step(99)
    finally:
        env.close()


# -------------------------------------------------------------- construction
def test_envs_require_exactly_one_workload_source(tmp_path):
    with pytest.raises(ValueError, match="exactly one"):
        SchedulingEnv(policy=_policy())
    with pytest.raises(ValueError, match="exactly one"):
        RoutingEnv(
            policy=_policy(),
            scenario=scenario_module.fleet_two_priority_scenario(),
            replay=str(tmp_path / "trace.jsonl"),
        )


def test_make_env_rejects_unknown_ids():
    with pytest.raises(ValueError, match="unknown env"):
        make_env("tetris")


# --------------------------------------------------------------- trace replay
def test_replay_backed_scheduling_episode_caps_jobs(tmp_path):
    trace = tmp_path / "dag.jsonl"
    assert main([
        "synth-trace", "--out", str(trace), "--format", "dag-jsonl",
        "--scenario", "layered",
    ]) == 0
    env = SchedulingEnv(policy=_policy(), replay=str(trace), num_jobs=2)
    outcome = env.rollout(BuiltinAgent(), seed=SEED)
    assert outcome.metrics["completed_jobs"] == 2.0
    # Replay episodes are deterministic per seed.
    again = env.rollout(BuiltinAgent(), seed=SEED)
    assert again.metrics == outcome.metrics
