"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

import pytest

from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import run_policies
from repro.experiments.reporting import format_comparison, format_figure, format_rows
from repro.workloads.scenarios import HIGH, LOW, reference_two_priority_scenario


def test_format_rows_renders_all_columns():
    rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "y"}]
    text = format_rows(rows)
    assert "a" in text and "b" in text
    assert "2.50" in text
    assert "y" in text


def test_format_rows_with_explicit_columns():
    rows = [{"a": 1.0, "b": 2.0}]
    text = format_rows(rows, columns=["b"])
    assert "b" in text
    assert "a" not in text.splitlines()[0]


def test_format_rows_empty():
    assert format_rows([]) == "(no rows)"


def test_format_rows_handles_nan_and_large_numbers():
    rows = [{"x": float("nan"), "y": 123456.0}]
    text = format_rows(rows)
    assert "nan" in text
    assert "123456" in text


def test_format_comparison_contains_policies_and_baseline():
    scenario = reference_two_priority_scenario(num_jobs=30)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=0)
    text = format_comparison(comparison, title="Fig test")
    assert "Fig test" in text
    assert "baseline=P" in text
    assert "DA(0/20)" in text
    assert "diff_mean_pct" in text


def test_format_figure_renders_rows_and_extras():
    result = {"figure": "6", "rows": [{"drop_ratio": 0.1, "mape": 8.5}], "note": 1.0}
    text = format_figure(result, title="Figure 6")
    assert "Figure 6" in text
    assert "drop_ratio" in text
    assert "note=1.00" in text
