"""Tests for the per-figure reproduction entry points (small instances)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.figures import (
    figure4_processing_time_validation,
    figure5_response_time_validation,
    figure6_accuracy_loss,
    figure7_two_priority_reference,
    figure8_sensitivity,
    figure9_three_priority,
    figure10_triangle_count,
    figure11_dias_sprinting,
    limited_sprint_config,
    unlimited_sprint_config,
)
from repro.workloads.scenarios import HIGH, LOW, MEDIUM
from repro.workloads.text import CorpusSpec


def test_figure4_model_tracks_observation():
    result = figure4_processing_time_validation(drop_ratios=(0.0, 0.4, 0.8), num_jobs=6)
    assert result["figure"] == "4"
    assert len(result["rows"]) == 2 * 3
    # The paper reports ~8-11% model error; allow a generous bound here.
    assert result["mean_error_pct"] < 25.0
    for row in result["rows"]:
        assert row["model_s"] > 0 and row["observed_s"] > 0


def test_figure4_processing_time_decreases_with_dropping():
    result = figure4_processing_time_validation(drop_ratios=(0.0, 0.8), num_jobs=6)
    by_dataset = {}
    for row in result["rows"]:
        by_dataset.setdefault(row["dataset"], {})[row["drop_ratio"]] = row["observed_s"]
    for series in by_dataset.values():
        assert series[0.8] < series[0.0]


def test_figure5_model_follows_simulation():
    result = figure5_response_time_validation(drop_ratios=(0.0, 0.4), num_jobs=150, seed=2)
    assert len(result["rows"]) == 4
    assert result["mean_error_pct"] < 60.0
    low_rows = {r["drop_ratio"]: r for r in result["rows"] if r["priority"] == LOW}
    # Both the model and the simulation agree dropping shortens low-priority latency.
    assert low_rows[0.4]["model_s"] < low_rows[0.0]["model_s"]
    assert low_rows[0.4]["observed_s"] < low_rows[0.0]["observed_s"]


def test_figure6_accuracy_grows_sublinearly():
    spec = CorpusSpec(num_documents=60, words_per_document=60, vocabulary_size=300,
                      num_topics=4, topic_vocabulary_size=40)
    result = figure6_accuracy_loss(drop_ratios=(0.1, 0.4, 0.8), corpus_spec=spec,
                                   num_partitions=20, repetitions=2)
    rows = {r["drop_ratio"]: r for r in result["rows"]}
    assert rows[0.1]["measured_mape_pct"] < rows[0.8]["measured_mape_pct"]
    assert 0 < result["fitted_exponent"] <= 1.5
    # The paper's reference curve is reported alongside the measurement.
    assert rows[0.1]["paper_mape_pct"] == pytest.approx(8.5, abs=1.5)


@pytest.fixture(scope="module")
def fig7():
    return figure7_two_priority_reference(num_jobs=250, seed=5)


def test_figure7_da_improves_low_priority(fig7):
    assert fig7.relative_difference("DA(0/20)", LOW, "mean") < -30.0
    assert fig7.relative_difference("DA(0/20)", LOW, "tail") < -20.0
    assert fig7.relative_difference("DA(0/10)", LOW, "mean") < 0.0


def test_figure7_np_trades_high_for_low(fig7):
    assert fig7.relative_difference("NP", LOW, "mean") < 0.0
    assert fig7.relative_difference("NP", HIGH, "mean") > 0.0


def test_figure7_da_beats_np_for_high_priority(fig7):
    assert fig7.relative_difference("DA(0/20)", HIGH, "mean") < fig7.relative_difference(
        "NP", HIGH, "mean"
    )


def test_figure7_only_preemptive_wastes_resources(fig7):
    assert fig7.result("P").resource_waste > 0.0
    assert fig7.result("NP").resource_waste == 0.0
    assert fig7.result("DA(0/20)").resource_waste == 0.0


def test_figure8_variants_run():
    for variant in ("equal_sizes", "more_high_priority", "low_load"):
        comparison = figure8_sensitivity(variant, num_jobs=120, seed=3)
        assert set(comparison.policy_names()) >= {"P", "NP", "DA(0/20)"}
        assert comparison.result("DA(0/20)").completed_jobs == 120


def test_figure8_unknown_variant_rejected():
    with pytest.raises(ValueError):
        figure8_sensitivity("upside_down")


def test_figure8_low_load_shrinks_np_penalty():
    reference = figure7_two_priority_reference(num_jobs=500, seed=4)
    low_load = figure8_sensitivity("low_load", num_jobs=500, seed=4)
    # At 50 % load the gap between preemptive and non-preemptive narrows
    # (§5.2.2): the high-priority penalty of NP is smaller than at 80 % load,
    # and preemption wastes fewer resources.
    assert low_load.relative_difference("NP", HIGH, "mean") < reference.relative_difference(
        "NP", HIGH, "mean"
    )
    assert low_load.result("P").resource_waste < reference.result("P").resource_waste


def test_figure9_three_priorities_improve_low_classes():
    comparison = figure9_three_priority(num_jobs=500, seed=6)
    assert comparison.result("DA(0/10/20)").completed_jobs == 500
    # The low class improves dramatically in mean and tail latency.
    assert comparison.relative_difference("DA(0/20/40)", LOW, "mean") < -50.0
    assert comparison.relative_difference("DA(0/10/20)", LOW, "tail") < -50.0
    # The medium class benefits from the larger drop ratios (Fig. 9 shows the
    # improvement is smaller than for the low class).
    assert comparison.relative_difference("DA(0/20/40)", MEDIUM, "mean") < comparison.relative_difference(
        "NP", MEDIUM, "mean"
    )
    # Resource waste under P is larger than in the two-priority reference
    # (§5.2.3 reports ~16 % vs ~4 %) and zero for the non-preemptive variants.
    assert comparison.result("P").resource_waste > 0.05
    assert comparison.result("DA(0/10/20)").resource_waste == 0.0


def test_figure10_small_stage_drops_help_low_priority():
    comparison = figure10_triangle_count(stage_drop_ratios=(0.05, 0.2), num_jobs=120, seed=7)
    assert comparison.relative_difference("DA(0/5)", LOW, "mean") < 0.0
    assert comparison.relative_difference("DA(0/20)", LOW, "mean") <= comparison.relative_difference(
        "DA(0/5)", LOW, "mean"
    )


def test_figure11_sprint_configs():
    limited = limited_sprint_config()
    unlimited = unlimited_sprint_config()
    assert limited.budget_seconds == pytest.approx(22_000.0 / 90.0)
    assert limited.timeout_for(HIGH) == 65.0
    assert unlimited.unlimited
    assert unlimited.timeout_for(HIGH) == 0.0
    assert not limited.sprints(LOW)


def test_figure11_dias_improves_both_classes():
    comparison = figure11_dias_sprinting(budget="unlimited", num_jobs=120, seed=8)
    assert comparison.relative_difference("DiAS(0/20)", LOW, "mean") < 0.0
    assert comparison.relative_difference("DiAS(0/20)", HIGH, "mean") < 0.0
    assert comparison.result("DiAS(0/20)").sprinted_seconds > 0.0


def test_figure11_budget_argument_validated():
    with pytest.raises(ValueError):
        figure11_dias_sprinting(budget="infinite")
