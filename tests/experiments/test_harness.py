"""Tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import measure_processing_time, run_policies
from repro.workloads.scenarios import HIGH, LOW, reference_two_priority_scenario


@pytest.fixture(scope="module")
def small_comparison():
    scenario = reference_two_priority_scenario(num_jobs=60)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2}),
    ]
    return run_policies(scenario, policies, baseline="P", seed=11)


def test_all_policies_present(small_comparison):
    assert set(small_comparison.policy_names()) == {"P", "NP", "DA(0/20)"}
    assert small_comparison.baseline_name == "P"


def test_every_policy_completes_all_jobs(small_comparison):
    counts = {name: result.completed_jobs for name, result in small_comparison.results.items()}
    assert len(set(counts.values())) == 1
    assert next(iter(counts.values())) == 60


def test_baseline_relative_difference_is_zero(small_comparison):
    assert small_comparison.relative_difference("P", LOW, "mean") == 0.0
    assert small_comparison.relative_difference("P", HIGH, "tail") == 0.0


def test_common_trace_means_identical_arrivals(small_comparison):
    arrival_sets = []
    for result in small_comparison.results.values():
        arrival_sets.append(tuple(sorted(r.arrival_time for r in result.metrics.records)))
    assert len(set(arrival_sets)) == 1


def test_only_preemptive_policy_wastes_resources(small_comparison):
    assert small_comparison.result("P").resource_waste >= 0.0
    assert small_comparison.result("NP").resource_waste == 0.0
    assert small_comparison.result("DA(0/20)").resource_waste == 0.0


def test_rows_cover_every_policy_and_priority(small_comparison):
    rows = small_comparison.to_rows()
    assert len(rows) == 3 * 2
    assert {(r["policy"], r["priority"]) for r in rows} == {
        (name, priority) for name in ("P", "NP", "DA(0/20)") for priority in (HIGH, LOW)
    }
    for row in rows:
        assert row["mean_response_s"] > 0
        assert row["tail_response_s"] >= row["mean_response_s"] * 0.3


def test_accuracy_loss_only_for_approximated_class(small_comparison):
    rows = {(r["policy"], r["priority"]): r for r in small_comparison.to_rows()}
    assert rows[("DA(0/20)", LOW)]["accuracy_loss_pct"] > 0
    assert rows[("DA(0/20)", HIGH)]["accuracy_loss_pct"] == 0
    assert rows[("NP", LOW)]["accuracy_loss_pct"] == 0


def test_unknown_baseline_rejected():
    scenario = reference_two_priority_scenario(num_jobs=10)
    with pytest.raises(ValueError):
        run_policies(scenario, [SchedulingPolicy.non_preemptive_priority()], baseline="P")


def test_empty_policy_list_rejected():
    scenario = reference_two_priority_scenario(num_jobs=10)
    with pytest.raises(ValueError):
        run_policies(scenario, [])


def test_measure_processing_time_decreases_with_dropping():
    scenario = reference_two_priority_scenario()
    profile = scenario.profiles[LOW]
    full = measure_processing_time(profile, slots=20, drop_ratio=0.0, num_jobs=5, seed=0)
    dropped = measure_processing_time(profile, slots=20, drop_ratio=0.6, num_jobs=5, seed=0)
    assert dropped < full
    assert full > 0
