"""Tests for the parallel experiment execution engine."""

from __future__ import annotations

import pytest

from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import run_policies
from repro.experiments.parallel import (
    ParallelRunner,
    PolicyComparisonExperiment,
    interval_rows,
    parallel_map,
    replicate_rows,
    validate_jobs,
)
from repro.experiments.sweeps import drop_ratio_sweep
from repro.simulation.replication import ReplicationRunner
from repro.workloads import scenarios as scenario_module


def _square(x: int) -> int:
    return x * x


def _tiny_experiment(seed: int):
    """Module-level (picklable) experiment: deterministic function of the seed."""
    return {"value": float(seed % 17), "constant": 3.0}


def _row_experiment(seed: int):
    return [{"label": "a", "value": float(seed)}, {"label": "b", "value": 2.0 * seed}]


# -------------------------------------------------------------- parallel_map
def test_parallel_map_serial_matches_plain_map():
    items = list(range(10))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]


def test_parallel_map_preserves_input_order_across_processes():
    items = list(range(12))
    assert parallel_map(_square, items, jobs=3) == [x * x for x in items]


def test_parallel_map_rejects_invalid_jobs():
    with pytest.raises(ValueError, match="jobs must be an integer >= 1"):
        parallel_map(_square, [1], jobs=0)
    with pytest.raises(ValueError):
        validate_jobs(-2)


def test_parallel_map_closure_raises_descriptive_error():
    captured = []

    def closure(x):  # pragma: no cover - never actually called
        captured.append(x)
        return x

    with pytest.raises(ValueError, match="picklable"):
        parallel_map(closure, [1, 2, 3], jobs=2)


def test_parallel_runner_validates_and_maps():
    runner = ParallelRunner(jobs=2)
    assert runner.map(_square, [3, 4]) == [9, 16]
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)


# -------------------------------------------------- replication fan-out
def test_replication_runner_parallel_samples_bitwise_equal_to_serial():
    serial = ReplicationRunner(_tiny_experiment).run(6, base_seed=5, jobs=1)
    parallel = ReplicationRunner(_tiny_experiment).run(6, base_seed=5, jobs=2)
    assert {k: m.samples for k, m in serial.items()} == {
        k: m.samples for k, m in parallel.items()
    }


def test_parallel_runner_run_replications():
    metrics = ParallelRunner(jobs=2).run_replications(_tiny_experiment, 4, base_seed=1)
    assert len(metrics["value"].samples) == 4


# ------------------------------------------------------- policy-level fan-out
def test_run_policies_parallel_is_bitwise_identical():
    scenario = scenario_module.reference_two_priority_scenario()
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({0: 0.2, 2: 0.0}),
    ]
    serial = run_policies(scenario, policies, seed=3, num_jobs=40)
    parallel = run_policies(scenario, policies, seed=3, num_jobs=40, jobs=2)
    assert serial.policy_names() == parallel.policy_names()
    for name in serial.policy_names():
        assert (
            serial.result(name).metrics.to_rows()
            == parallel.result(name).metrics.to_rows()
        )
        assert (
            serial.result(name).total_energy_joules
            == parallel.result(name).total_energy_joules
        )


def test_drop_ratio_sweep_parallel_is_bitwise_identical():
    scenario = scenario_module.reference_two_priority_scenario()
    serial = drop_ratio_sweep(scenario, [0.0, 0.2], num_jobs=30, seed=1, jobs=1)
    parallel = drop_ratio_sweep(scenario, [0.0, 0.2], num_jobs=30, seed=1, jobs=2)
    assert serial == parallel


# --------------------------------------------------------------- aggregation
def test_replicate_rows_averages_numeric_columns():
    rows = replicate_rows(_row_experiment, replications=3, base_seed=0, jobs=1)
    seeds = [0, 1001, 2002]
    assert rows[0]["label"] == "a"
    assert rows[0]["value"] == pytest.approx(sum(seeds) / 3)
    assert rows[1]["value"] == pytest.approx(2 * sum(seeds) / 3)
    assert rows[0]["replications"] == 3.0


def test_replicate_rows_validates_replications():
    with pytest.raises(ValueError):
        replicate_rows(_row_experiment, replications=0)


def test_interval_rows_renders_bounds():
    metrics = ReplicationRunner(_tiny_experiment).run(5, base_seed=0)
    rows = interval_rows(metrics)
    by_name = {row["metric"]: row for row in rows}
    constant = by_name["constant"]
    assert constant["mean"] == pytest.approx(3.0)
    assert constant["half_width"] == pytest.approx(0.0)
    assert constant["replications"] == 5.0


def test_policy_comparison_experiment_produces_flat_metrics():
    scenario = scenario_module.reference_two_priority_scenario()
    policies = [SchedulingPolicy.preemptive_priority()]
    experiment = PolicyComparisonExperiment(scenario, policies, num_jobs=25)
    outcome = experiment(0)
    assert any(key.endswith("mean_response_s") for key in outcome)
    assert all(isinstance(value, float) for value in outcome.values())
