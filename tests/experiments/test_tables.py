"""Tests for the Table 2 reproduction."""

from __future__ import annotations

import pytest

from repro.experiments.tables import table2_latency_decomposition


@pytest.fixture(scope="module")
def table2():
    return table2_latency_decomposition(num_jobs=120, seed=9)


def test_table2_has_six_rows(table2):
    rows = table2["rows"]
    assert len(rows) == 6
    assert {r["policy"] for r in rows} == {"NPS", "DiAS(0/10)", "DiAS(0/20)"}
    assert {r["class"] for r in rows} == {"High", "Low"}


def test_table2_sprinting_shortens_high_priority_execution(table2):
    rows = {(r["policy"], r["class"]): r for r in table2["rows"]}
    # High-priority jobs sprint, so their execution time is below the
    # unsprinted low-priority execution time (Table 2: ~100 s vs ~131-148 s).
    for policy in ("NPS", "DiAS(0/10)", "DiAS(0/20)"):
        assert rows[(policy, "High")]["mean_execution_s"] < rows[(policy, "Low")]["mean_execution_s"]


def test_table2_dropping_shortens_low_priority_execution(table2):
    rows = {(r["policy"], r["class"]): r for r in table2["rows"]}
    assert rows[("DiAS(0/20)", "Low")]["mean_execution_s"] < rows[("NPS", "Low")]["mean_execution_s"]
    assert rows[("DiAS(0/10)", "Low")]["mean_execution_s"] < rows[("NPS", "Low")]["mean_execution_s"]


def test_table2_dropping_shortens_low_priority_queueing(table2):
    rows = {(r["policy"], r["class"]): r for r in table2["rows"]}
    assert rows[("DiAS(0/20)", "Low")]["mean_queueing_s"] < rows[("NPS", "Low")]["mean_queueing_s"]


def test_table2_queueing_times_non_negative(table2):
    for row in table2["rows"]:
        assert row["mean_queueing_s"] >= -1e-6
        assert row["mean_execution_s"] > 0
