"""Tests for parameter sweeps."""

from __future__ import annotations

import pytest

from repro.core.policies import SchedulingPolicy
from repro.experiments.sweeps import drop_ratio_sweep, load_sweep, priority_mix_sweep
from repro.workloads.scenarios import HIGH, LOW, reference_two_priority_scenario


@pytest.fixture(scope="module")
def scenario():
    return reference_two_priority_scenario(num_jobs=120)


def test_drop_ratio_sweep_rows_cover_all_ratios(scenario):
    rows = drop_ratio_sweep(scenario, (0.0, 0.2, 0.4), num_jobs=120, seed=2)
    assert [row["drop_ratio"] for row in rows] == [0.0, 0.2, 0.4]
    assert rows[0]["policy"] == "NP"
    assert rows[1]["policy"] == "DA(0/20)"


def test_drop_ratio_sweep_latency_improves_and_accuracy_degrades(scenario):
    rows = drop_ratio_sweep(scenario, (0.0, 0.4), num_jobs=150, seed=2)
    assert rows[1]["low_diff_pct"] < rows[0]["low_diff_pct"]
    assert rows[1]["accuracy_loss_pct"] > rows[0]["accuracy_loss_pct"]
    assert rows[0]["accuracy_loss_pct"] == 0.0


def test_load_sweep_reports_every_policy_at_every_load(scenario):
    rows = load_sweep(scenario, (0.5, 0.8), num_jobs=100, seed=3)
    assert len(rows) == 2 * 3
    utilisations = {row["utilisation"] for row in rows}
    assert utilisations == {0.5, 0.8}


def test_load_sweep_waste_grows_with_load(scenario):
    rows = load_sweep(scenario, (0.4, 0.85), num_jobs=250, seed=5)
    waste = {
        (row["utilisation"], row["policy"]): row["resource_waste_pct"] for row in rows
    }
    assert waste[(0.85, "P")] >= waste[(0.4, "P")]
    assert waste[(0.85, "DA(0/20)")] == 0.0


def test_load_sweep_accepts_custom_policies(scenario):
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.1}),
    ]
    rows = load_sweep(scenario, (0.6,), policies=policies, num_jobs=80, seed=1)
    assert {row["policy"] for row in rows} == {"P", "DA(0/10)"}


def test_priority_mix_sweep_shape(scenario):
    rows = priority_mix_sweep(scenario, (0.1, 0.5), num_jobs=120, seed=4)
    assert [row["high_fraction"] for row in rows] == [0.1, 0.5]
    for row in rows:
        assert row["low_diff_pct"] < 20.0
        assert row["resource_waste_pct"] >= 0.0


def test_priority_mix_sweep_validates_fraction(scenario):
    with pytest.raises(ValueError):
        priority_mix_sweep(scenario, (1.0,), num_jobs=20)
