"""Tests for fleet-level result aggregation."""

from __future__ import annotations

import pytest

from repro.core.dias import SimulationResult
from repro.fleet.result import FleetResult
from repro.simulation.metrics import JobRecord, MetricsCollector


def make_cluster_result(
    records,
    duration: float = 100.0,
    energy: float = 1000.0,
    busy_time: float = None,
) -> SimulationResult:
    metrics = MetricsCollector()
    for record in records:
        metrics.record_job(record)
        metrics.record_busy_time(
            record.execution_time if busy_time is None else busy_time
        )
    metrics.set_observation_time(duration)
    return SimulationResult(
        policy_name="NP",
        metrics=metrics,
        duration=duration,
        completed_jobs=len(records),
        total_energy_joules=energy,
        sprinted_seconds=0.0,
        evictions=sum(r.evictions for r in records),
    )


def record(job_id: int, priority: int, arrival: float, completion: float,
           execution: float, wasted: float = 0.0, evictions: int = 0) -> JobRecord:
    return JobRecord(
        job_id=job_id, priority=priority, arrival_time=arrival,
        start_time=arrival, completion_time=completion,
        execution_time=execution, wasted_time=wasted, evictions=evictions,
    )


@pytest.fixture
def fleet_result() -> FleetResult:
    cluster0 = make_cluster_result(
        [
            record(0, 0, 0.0, 30.0, 20.0),
            record(1, 2, 5.0, 15.0, 10.0),
        ],
        energy=1200.0,
    )
    cluster1 = make_cluster_result(
        [record(2, 0, 0.0, 50.0, 40.0, wasted=10.0, evictions=1)],
        energy=800.0,
    )
    return FleetResult(
        policy_name="NP",
        dispatcher_name="jsq",
        cluster_results=[cluster0, cluster1],
        duration=100.0,
        dispatch_counts=[2, 1],
    )


def test_fleet_result_combines_jobs_and_classes(fleet_result):
    assert fleet_result.num_clusters == 2
    assert fleet_result.completed_jobs == 3
    assert fleet_result.priorities() == [0, 2]
    # Priority 0: responses 30 and 50 across the two clusters.
    assert fleet_result.mean_response_time(0) == pytest.approx(40.0)
    assert fleet_result.mean_response_time(2) == pytest.approx(10.0)
    assert fleet_result.mean_response_time() == pytest.approx((30 + 10 + 50) / 3)
    assert fleet_result.class_metrics(0).job_count == 2


def test_fleet_result_energy_waste_and_evictions(fleet_result):
    assert fleet_result.total_energy_joules == pytest.approx(2000.0)
    assert fleet_result.total_energy_kilojoules == pytest.approx(2.0)
    assert fleet_result.evictions == 1
    # Waste: 10 wasted over 70 useful + 10 wasted.
    assert fleet_result.resource_waste == pytest.approx(10.0 / 80.0)


def test_fleet_result_load_imbalance(fleet_result):
    # Cluster utilisations: (20+10)/100 = 0.30 and (40+10)/100 = 0.50.
    assert fleet_result.utilisation_per_cluster() == pytest.approx([0.30, 0.50])
    assert fleet_result.mean_utilisation == pytest.approx(0.40)
    assert fleet_result.load_imbalance == pytest.approx(0.50 / 0.40)
    assert fleet_result.utilisation_cv == pytest.approx(0.25)
    assert fleet_result.dispatch_imbalance == pytest.approx(2 / 1.5)


def test_fleet_result_rows_and_summary(fleet_result):
    cluster_rows = fleet_result.cluster_rows()
    assert [row["cluster"] for row in cluster_rows] == [0, 1]
    assert cluster_rows[0]["routed_jobs"] == 2.0
    class_rows = fleet_result.class_rows()
    assert [row["priority"] for row in class_rows] == [2, 0]
    summary = fleet_result.summary()
    assert summary["clusters"] == 2.0
    assert summary["completed_jobs"] == 3.0
    assert summary["load_imbalance"] == pytest.approx(1.25)


def test_fleet_result_validation():
    with pytest.raises(ValueError):
        FleetResult(
            policy_name="NP", dispatcher_name="jsq", cluster_results=[],
            duration=1.0, dispatch_counts=[],
        )
    cluster = make_cluster_result([record(0, 0, 0.0, 10.0, 5.0)])
    with pytest.raises(ValueError):
        FleetResult(
            policy_name="NP", dispatcher_name="jsq", cluster_results=[cluster],
            duration=1.0, dispatch_counts=[1, 1],
        )
