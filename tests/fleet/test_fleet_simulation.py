"""Tests for the multi-cluster fleet simulation driver."""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig
from repro.core.dias import DiASSimulation
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.fleet.dispatcher import PriorityPartitionedDispatcher
from repro.fleet.simulation import FleetSimulation, run_fleet
from repro.workloads.scenarios import HIGH, LOW, fleet_two_priority_scenario


def profile_for(priority: int) -> JobClassProfile:
    return JobClassProfile(priority=priority, partitions=4, reduce_tasks=0,
                           shuffle_time=0.0, setup_time_full=0.0, setup_time_min=0.0)


def make_job(job_id: int, priority: int, arrival: float, task_time: float = 10.0,
             partitions: int = 4) -> Job:
    stage = StageSpec(index=0, map_task_times=[task_time] * partitions,
                      reduce_task_times=[], shuffle_time=0.0)
    return Job(job_id=job_id, priority=priority, arrival_time=arrival, size_mb=10.0,
               stages=[stage], profile=profile_for(priority))


def small_clusters(count: int, slots: int = 2):
    return [Cluster(ClusterConfig(workers=1, cores_per_worker=slots))
            for _ in range(count)]


def simple_trace(count: int = 12, spacing: float = 5.0):
    return [make_job(i, LOW if i % 3 else HIGH, spacing * i) for i in range(count)]


def test_every_job_is_routed_and_completed():
    fleet = FleetSimulation(
        SchedulingPolicy.non_preemptive_priority(), simple_trace(),
        clusters=small_clusters(3), dispatcher="round_robin",
    )
    result = fleet.run()
    assert result.completed_jobs == 12
    assert sum(fleet.dispatch_counts) == 12
    assert fleet.dispatch_counts == [4, 4, 4]
    assert result.num_clusters == 3
    assert result.dispatcher_name == "round_robin"


def test_fleet_of_one_behaves_like_a_single_cluster():
    trace = simple_trace()
    fleet_result = FleetSimulation(
        SchedulingPolicy.non_preemptive_priority(), trace,
        clusters=small_clusters(1), dispatcher="round_robin",
    ).run()
    single_result = DiASSimulation(
        SchedulingPolicy.non_preemptive_priority(), trace,
        cluster=small_clusters(1)[0],
    ).run()
    assert fleet_result.completed_jobs == single_result.completed_jobs
    assert fleet_result.duration == pytest.approx(single_result.duration)
    assert fleet_result.mean_response_time() == pytest.approx(
        single_result.mean_response_time()
    )
    assert fleet_result.total_energy_joules == pytest.approx(
        single_result.total_energy_joules
    )


def test_jsq_prefers_idle_clusters():
    # Two simultaneous arrivals: the second must not pile onto cluster 0.
    jobs = [make_job(0, LOW, 0.0), make_job(1, LOW, 0.0)]
    fleet = FleetSimulation(
        SchedulingPolicy.non_preemptive_priority(), jobs,
        clusters=small_clusters(2), dispatcher="jsq",
    )
    fleet.run()
    assert sorted(fleet.dispatch_counts) == [1, 1]


def test_least_work_left_prefers_the_lighter_cluster():
    # One huge job at t=0, then two small ones: both smalls should avoid the
    # cluster executing the huge job.
    jobs = [
        make_job(0, LOW, 0.0, task_time=100.0),
        make_job(1, LOW, 1.0),
        make_job(2, LOW, 2.0),
    ]
    fleet = FleetSimulation(
        SchedulingPolicy.non_preemptive_priority(), jobs,
        clusters=small_clusters(2), dispatcher="least_work_left",
    )
    fleet.run()
    assert fleet.dispatch_counts == [1, 2]


def test_priority_partitioned_fleet_respects_pinning():
    trace = simple_trace(count=18, spacing=3.0)
    dispatcher = PriorityPartitionedDispatcher({HIGH: [0], LOW: [1, 2]})
    fleet = FleetSimulation(
        SchedulingPolicy.non_preemptive_priority(), trace,
        clusters=small_clusters(3), dispatcher=dispatcher,
    )
    result = fleet.run()
    high_clusters = {
        index
        for index, cluster_result in enumerate(result.cluster_results)
        for record in cluster_result.metrics.records
        if record.priority == HIGH
    }
    low_clusters = {
        index
        for index, cluster_result in enumerate(result.cluster_results)
        for record in cluster_result.metrics.records
        if record.priority == LOW
    }
    assert high_clusters == {0}
    assert low_clusters <= {1, 2}


def test_fleet_runs_are_deterministic_for_a_seed():
    scenario = fleet_two_priority_scenario(num_clusters=3, num_jobs_per_cluster=30)
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})

    def run_once():
        return FleetSimulation(
            policy, scenario.generate_trace(seed=11),
            clusters=scenario.make_clusters(), dispatcher="jsq", seed=11,
        ).run()

    first, second = run_once(), run_once()
    assert first.mean_response_time() == second.mean_response_time()
    assert first.tail_response_time(HIGH) == second.tail_response_time(HIGH)
    assert first.total_energy_joules == second.total_energy_joules
    assert first.dispatch_counts == second.dispatch_counts


def test_shared_sprint_budget_caps_fleet_sprinting():
    sprint = SprintConfig.limited_sprinting(
        budget_seconds=15.0, timeout=0.0, replenish_seconds_per_hour=0.0
    )
    policy = SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.0}, sprint=sprint)
    jobs = [make_job(i, HIGH, 0.0, task_time=30.0) for i in range(4)]
    fleet = FleetSimulation(
        policy, jobs, clusters=small_clusters(4), dispatcher="round_robin",
        sprint_budget="shared",
    )
    result = fleet.run()
    # Four clusters sprint concurrently from one 60 s pool (4 x 15 s).
    assert fleet.budget_pool is not None
    assert result.sprinted_seconds == pytest.approx(60.0, rel=1e-6)
    per_cluster = FleetSimulation(
        policy, jobs, clusters=small_clusters(4), dispatcher="round_robin",
        sprint_budget="per-cluster",
    ).run()
    assert per_cluster.sprinted_seconds == pytest.approx(60.0, rel=1e-6)


def test_shared_budget_is_fungible_across_clusters():
    # Only one cluster gets work: with a shared pool it may burn the whole
    # fleet budget; per-cluster it is limited to its own slice.
    sprint = SprintConfig.limited_sprinting(
        budget_seconds=10.0, timeout=0.0, replenish_seconds_per_hour=0.0
    )
    policy = SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.0}, sprint=sprint)
    jobs = [make_job(0, HIGH, 0.0, task_time=60.0)]
    shared = FleetSimulation(
        policy, jobs, clusters=small_clusters(3), dispatcher="round_robin",
        sprint_budget="shared",
    ).run()
    isolated = FleetSimulation(
        policy, jobs, clusters=small_clusters(3), dispatcher="round_robin",
        sprint_budget="per-cluster",
    ).run()
    assert isolated.sprinted_seconds == pytest.approx(10.0, rel=1e-6)
    assert shared.sprinted_seconds == pytest.approx(30.0, rel=1e-6)


def test_run_fleet_convenience_wrapper():
    result = run_fleet(
        SchedulingPolicy.non_preemptive_priority(), simple_trace(),
        num_clusters=2, dispatcher="round_robin",
    )
    assert result.completed_jobs == 12


def test_fleet_validation_errors():
    policy = SchedulingPolicy.non_preemptive_priority()
    with pytest.raises(ValueError):
        FleetSimulation(policy, [], num_clusters=2)
    with pytest.raises(ValueError):
        FleetSimulation(policy, simple_trace(), num_clusters=0)
    fleet = FleetSimulation(policy, simple_trace(), clusters=small_clusters(2))
    fleet.run()
    with pytest.raises(RuntimeError):
        fleet.run()


def test_dispatcher_returning_invalid_index_is_rejected():
    class BrokenDispatcher:
        name = "broken"

        def select(self, job, clusters):
            return 99

    fleet = FleetSimulation(
        SchedulingPolicy.non_preemptive_priority(), simple_trace(),
        clusters=small_clusters(2), dispatcher=BrokenDispatcher(),
    )
    with pytest.raises(ValueError):
        fleet.run()
