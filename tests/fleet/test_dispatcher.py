"""Tests for the fleet routing dispatchers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.fleet.dispatcher import (
    ROUTERS,
    JoinShortestQueueDispatcher,
    LeastWorkLeftDispatcher,
    PriorityPartitionedDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    make_dispatcher,
)


@dataclass
class FakeCluster:
    """Minimal ClusterLoadView: fixed queue length and work left."""

    queue_length: int = 0
    work: float = 0.0

    def work_left(self) -> float:
        return self.work


@dataclass
class FakeJob:
    priority: int = 0


def clusters_with_queues(*lengths: int):
    return [FakeCluster(queue_length=length) for length in lengths]


# ------------------------------------------------------------------ random
def test_random_dispatcher_stays_in_range_and_is_seed_deterministic():
    clusters = clusters_with_queues(0, 0, 0, 0)
    picks_a = [
        RandomDispatcher(np.random.default_rng(5)).select(FakeJob(), clusters)
        for _ in range(1)
    ]
    dispatcher = RandomDispatcher(np.random.default_rng(5))
    picks_b = [dispatcher.select(FakeJob(), clusters) for _ in range(20)]
    assert all(0 <= i < 4 for i in picks_b)
    assert len(set(picks_b)) > 1  # actually spreads
    repeat = RandomDispatcher(np.random.default_rng(5))
    assert [repeat.select(FakeJob(), clusters) for _ in range(20)] == picks_b
    assert picks_a[0] == picks_b[0]


# -------------------------------------------------------------- round robin
def test_round_robin_cycles_through_all_clusters():
    clusters = clusters_with_queues(9, 9, 9)
    dispatcher = RoundRobinDispatcher()
    assert [dispatcher.select(FakeJob(), clusters) for _ in range(7)] == [
        0, 1, 2, 0, 1, 2, 0,
    ]


# --------------------------------------------------------------------- jsq
def test_jsq_picks_the_shortest_queue():
    clusters = clusters_with_queues(3, 1, 2)
    assert JoinShortestQueueDispatcher().select(FakeJob(), clusters) == 1


def test_jsq_breaks_ties_by_lowest_index_without_rng():
    clusters = clusters_with_queues(2, 1, 1)
    assert JoinShortestQueueDispatcher().select(FakeJob(), clusters) == 1


def test_jsq_breaks_ties_randomly_with_rng():
    clusters = clusters_with_queues(0, 0, 0, 0)
    dispatcher = JoinShortestQueueDispatcher(rng=np.random.default_rng(0))
    picks = {dispatcher.select(FakeJob(), clusters) for _ in range(40)}
    assert len(picks) > 1


def test_jsq_power_of_d_probes_a_subset():
    clusters = clusters_with_queues(0, 5, 5, 5)
    # With d=2 the empty cluster 0 is only found when it is sampled.
    dispatcher = JoinShortestQueueDispatcher(
        rng=np.random.default_rng(1), sample_size=2
    )
    picks = [dispatcher.select(FakeJob(), clusters) for _ in range(30)]
    assert all(0 <= i < 4 for i in picks)
    assert 0 in picks  # eventually sampled
    assert any(i != 0 for i in picks)  # but not probed every time
    assert dispatcher.name == "jsq(2)"


def test_jsq_power_of_d_requires_rng_and_positive_d():
    with pytest.raises(ValueError):
        JoinShortestQueueDispatcher(sample_size=2)
    with pytest.raises(ValueError):
        JoinShortestQueueDispatcher(rng=np.random.default_rng(0), sample_size=0)


# ----------------------------------------------------------- least work left
def test_least_work_left_uses_work_not_counts():
    clusters = [
        FakeCluster(queue_length=1, work=500.0),
        FakeCluster(queue_length=3, work=30.0),
    ]
    assert LeastWorkLeftDispatcher().select(FakeJob(), clusters) == 1


# ------------------------------------------------------ priority partitioned
def test_priority_partitioned_pins_classes_to_subsets():
    clusters = clusters_with_queues(0, 9, 0, 9)
    dispatcher = PriorityPartitionedDispatcher({1: [0, 1], 0: [2, 3]})
    assert dispatcher.select(FakeJob(priority=1), clusters) == 0
    assert dispatcher.select(FakeJob(priority=0), clusters) == 2


def test_priority_partitioned_unknown_priority_uses_all_clusters():
    clusters = clusters_with_queues(4, 0, 9)
    dispatcher = PriorityPartitionedDispatcher({5: [0]})
    assert dispatcher.select(FakeJob(priority=1), clusters) == 1


def test_priority_partitioned_validation():
    with pytest.raises(ValueError):
        PriorityPartitionedDispatcher({})
    with pytest.raises(ValueError):
        PriorityPartitionedDispatcher({0: []})
    with pytest.raises(ValueError):
        PriorityPartitionedDispatcher({0: [-1]})
    dispatcher = PriorityPartitionedDispatcher({0: [7]})
    with pytest.raises(ValueError):
        dispatcher.select(FakeJob(priority=0), clusters_with_queues(0, 0))


def test_balanced_partition_weights_by_traffic_share():
    dispatcher = PriorityPartitionedDispatcher.balanced(
        [2, 0], num_clusters=4, weights={2: 1.0, 0: 9.0}
    )
    assert dispatcher.assignments[2] == [0]
    assert dispatcher.assignments[0] == [1, 2, 3]


def test_balanced_partition_equal_weights_cover_all_clusters():
    dispatcher = PriorityPartitionedDispatcher.balanced([2, 1, 0], num_clusters=6)
    covered = sorted(i for subset in dispatcher.assignments.values() for i in subset)
    assert covered == list(range(6))
    assert all(dispatcher.assignments[p] for p in (2, 1, 0))


def test_balanced_partition_one_cluster_floor_rebalances():
    # Floors of 1 for the two tiny classes over-allocate; the dominant class
    # must donate back so the partition still covers exactly num_clusters.
    dispatcher = PriorityPartitionedDispatcher.balanced(
        [2, 1, 0], num_clusters=3, weights={2: 0.1, 1: 0.1, 0: 0.8}
    )
    covered = sorted(i for subset in dispatcher.assignments.values() for i in subset)
    assert covered == [0, 1, 2]
    assert all(len(subset) == 1 for subset in dispatcher.assignments.values())


def test_balanced_partition_needs_enough_clusters():
    with pytest.raises(ValueError):
        PriorityPartitionedDispatcher.balanced([2, 1, 0], num_clusters=2)


# ---------------------------------------------------------------- registry
def test_make_dispatcher_builds_every_router():
    rng = np.random.default_rng(0)
    for name in ROUTERS:
        dispatcher = make_dispatcher(
            name, rng=rng, priorities=[2, 0], num_clusters=4
        )
        assert dispatcher.select(FakeJob(priority=0), clusters_with_queues(0, 0, 0, 0)) in range(4)


def test_make_dispatcher_normalises_names_and_rejects_unknown():
    assert make_dispatcher("Round-Robin").name == "round_robin"
    with pytest.raises(ValueError):
        make_dispatcher("fifo")
    with pytest.raises(ValueError):
        make_dispatcher("random")  # needs an rng
    with pytest.raises(ValueError):
        make_dispatcher("priority_partitioned")  # needs priorities/clusters


def test_make_dispatcher_jsq_power_of_d():
    dispatcher = make_dispatcher("jsq", rng=np.random.default_rng(0), power_of_d=2)
    assert dispatcher.name == "jsq(2)"
