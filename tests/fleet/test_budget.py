"""Tests for fleet-wide sprint-budget arbitration."""

from __future__ import annotations

import pytest

from repro.core.config import SprintConfig
from repro.core.sprinter import Sprinter
from repro.fleet.budget import SharedSprintBudget, build_budget_arbiter
from repro.simulation.des import Simulator


class RecordingSprinter:
    """Stands in for a Sprinter: records force_stop calls."""

    def __init__(self) -> None:
        self.force_stops = 0

    def force_stop(self) -> None:
        self.force_stops += 1


def test_pool_drains_one_second_per_active_sprinter():
    sim = Simulator()
    pool = SharedSprintBudget(sim, budget_seconds=100.0)
    sprinter = RecordingSprinter()
    pool.on_sprint_start(sprinter)
    sim.schedule(30.0, lambda s: None)
    sim.run(until=30.0)
    assert pool.available() == pytest.approx(70.0)
    pool.on_sprint_end(sprinter)
    sim.schedule(50.0, lambda s: None)
    sim.run(until=80.0)
    assert pool.available() == pytest.approx(70.0)  # nobody draining


def test_pool_drains_faster_with_concurrent_sprinters():
    sim = Simulator()
    pool = SharedSprintBudget(sim, budget_seconds=100.0)
    first, second = RecordingSprinter(), RecordingSprinter()
    pool.on_sprint_start(first)
    pool.on_sprint_start(second)
    sim.schedule(20.0, lambda s: None)
    sim.run(until=20.0)
    assert pool.available() == pytest.approx(60.0)  # 2 s of budget per second


def test_pool_exhaust_event_force_stops_all_active_sprinters():
    sim = Simulator()
    pool = SharedSprintBudget(sim, budget_seconds=10.0)
    first, second = RecordingSprinter(), RecordingSprinter()
    pool.on_sprint_start(first)
    pool.on_sprint_start(second)
    sim.run()
    # Two sprinters drain 10 s of budget in 5 s of simulated time.
    assert sim.now == pytest.approx(5.0)
    assert first.force_stops == 1
    assert second.force_stops == 1
    assert pool.available() == pytest.approx(0.0)
    assert pool.exhaustions == 1


def test_pool_replenishes_up_to_cap():
    sim = Simulator()
    pool = SharedSprintBudget(
        sim, budget_seconds=10.0, replenish_seconds_per_hour=3600.0,
        max_budget_seconds=15.0,
    )
    sim.schedule(100.0, lambda s: None)
    sim.run()
    assert pool.available() == pytest.approx(15.0)  # capped, not 110


def test_unlimited_pool_never_schedules_exhaustion():
    sim = Simulator()
    pool = SharedSprintBudget(sim, budget_seconds=None)
    pool.on_sprint_start(RecordingSprinter())
    sim.schedule(1000.0, lambda s: None)
    sim.run()
    assert pool.available() is None
    assert pool.exhaustions == 0


def test_pool_rejects_negative_configuration():
    sim = Simulator()
    with pytest.raises(ValueError):
        SharedSprintBudget(sim, budget_seconds=-1.0)
    with pytest.raises(ValueError):
        SharedSprintBudget(sim, budget_seconds=1.0, replenish_seconds_per_hour=-1.0)


# ------------------------------------------------------------ budget modes
def _sprinters(sim: Simulator, count: int, budget: float = 50.0):
    config = SprintConfig.limited_sprinting(budget_seconds=budget)
    return [
        Sprinter(sim, config, on_sprint_start=lambda e: None, on_sprint_end=lambda e: None)
        for _ in range(count)
    ]


def test_per_cluster_mode_leaves_sprinters_alone():
    sim = Simulator()
    sprinters = _sprinters(sim, 3)
    assert build_budget_arbiter("per-cluster", sim, sprinters) is None
    assert all(s.budget_pool is None for s in sprinters)


def test_shared_mode_pools_the_sum_of_cluster_budgets():
    sim = Simulator()
    sprinters = _sprinters(sim, 3, budget=50.0)
    pool = build_budget_arbiter("shared", sim, sprinters)
    assert pool is not None
    assert pool.available() == pytest.approx(150.0)
    assert all(s.budget_pool is pool for s in sprinters)
    assert all(s.available_budget() == pytest.approx(150.0) for s in sprinters)


def test_shared_mode_honours_explicit_budget_override():
    sim = Simulator()
    sprinters = _sprinters(sim, 2)
    pool = build_budget_arbiter("shared", sim, sprinters, shared_budget_seconds=42.0)
    assert pool.available() == pytest.approx(42.0)


def test_none_mode_denies_all_sprinting():
    sim = Simulator()
    sprinters = _sprinters(sim, 2)
    pool = build_budget_arbiter("none", sim, sprinters)
    assert pool.available() == 0.0
    assert all(s.available_budget() == 0.0 for s in sprinters)


def test_unknown_mode_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_budget_arbiter("global", sim, _sprinters(sim, 1))
