"""Tests for the canonical paper scenarios."""

from __future__ import annotations

import pytest

from repro.workloads.arrivals import expected_utilisation
from repro.workloads.scenarios import (
    HIGH,
    LOW,
    MEDIUM,
    FleetScenario,
    equal_job_sizes_scenario,
    fleet_three_priority_scenario,
    fleet_two_priority_scenario,
    low_load_scenario,
    more_high_priority_scenario,
    reference_two_priority_scenario,
    sprinting_scenario,
    three_priority_scenario,
    triangle_count_scenario,
    validation_datasets_scenario,
)


def test_reference_scenario_matches_paper_setup():
    scenario = reference_two_priority_scenario()
    assert scenario.profiles[LOW].mean_size_mb == pytest.approx(1117.0)
    assert scenario.profiles[HIGH].mean_size_mb == pytest.approx(473.0)
    assert scenario.class_ratio[LOW] / scenario.class_ratio[HIGH] == pytest.approx(9.0)
    assert scenario.target_utilisation == 0.8
    assert scenario.cluster.slots == 20
    # The low-priority dataset is 2.36x larger, as in §4.3.
    ratio = scenario.profiles[LOW].mean_size_mb / scenario.profiles[HIGH].mean_size_mb
    assert ratio == pytest.approx(2.36, abs=0.01)


def test_reference_scenario_calibrated_to_80_percent():
    scenario = reference_two_priority_scenario()
    achieved = expected_utilisation(scenario.profiles, scenario.arrival_rates,
                                    scenario.cluster.slots)
    assert achieved == pytest.approx(0.8, rel=1e-9)


def test_reference_scenario_accuracy_tolerances():
    scenario = reference_two_priority_scenario()
    assert scenario.profiles[HIGH].max_accuracy_loss == 0.0
    assert scenario.profiles[LOW].max_accuracy_loss > 0.0


def test_equal_sizes_scenario_uses_same_profile_size():
    scenario = equal_job_sizes_scenario()
    assert scenario.profiles[LOW].mean_size_mb == scenario.profiles[HIGH].mean_size_mb


def test_more_high_priority_scenario_inverts_ratio():
    scenario = more_high_priority_scenario()
    assert scenario.class_ratio[HIGH] / scenario.class_ratio[LOW] == pytest.approx(9.0)


def test_low_load_scenario_is_half_utilisation():
    scenario = low_load_scenario()
    achieved = expected_utilisation(scenario.profiles, scenario.arrival_rates,
                                    scenario.cluster.slots)
    assert achieved == pytest.approx(0.5, rel=1e-9)


def test_three_priority_scenario_has_three_classes_and_145_ratio():
    scenario = three_priority_scenario()
    assert scenario.priorities == [HIGH, MEDIUM, LOW]
    assert scenario.class_ratio[MEDIUM] / scenario.class_ratio[HIGH] == pytest.approx(4.0)
    assert scenario.class_ratio[LOW] / scenario.class_ratio[HIGH] == pytest.approx(5.0)


def test_triangle_count_scenario_is_multi_stage():
    scenario = triangle_count_scenario()
    assert scenario.profiles[LOW].num_stages == 6
    assert scenario.class_ratio[HIGH] / scenario.class_ratio[LOW] == pytest.approx(3.0 / 7.0)
    assert scenario.profiles[LOW].mean_size_mb == scenario.profiles[HIGH].mean_size_mb


def test_sprinting_scenario_reuses_triangle_count_workload():
    scenario = sprinting_scenario()
    assert scenario.name == "dias-sprinting"
    assert scenario.profiles[LOW].num_stages == 6


def test_validation_scenario_has_both_dataset_sizes():
    scenario = validation_datasets_scenario()
    sizes = {scenario.profiles[p].mean_size_mb for p in scenario.priorities}
    assert sizes == {473.0, 1117.0}


def test_scenario_trace_generation_is_reproducible():
    scenario = reference_two_priority_scenario(num_jobs=40)
    a = scenario.generate_trace(seed=1)
    b = scenario.generate_trace(seed=1)
    assert [j.arrival_time for j in a] == [j.arrival_time for j in b]
    assert len(a) == 40


def test_scenario_trace_override_job_count():
    scenario = reference_two_priority_scenario(num_jobs=40)
    trace = scenario.generate_trace(seed=0, num_jobs=15)
    assert len(trace) == 15


def test_with_utilisation_rescales_rates():
    scenario = reference_two_priority_scenario()
    lighter = scenario.with_utilisation(0.4)
    assert lighter.total_arrival_rate() < scenario.total_arrival_rate()
    assert lighter.total_arrival_rate() == pytest.approx(scenario.total_arrival_rate() / 2,
                                                         rel=1e-9)


def test_scenario_priority_helpers():
    scenario = three_priority_scenario()
    assert scenario.highest_priority == HIGH
    assert scenario.lowest_priority == LOW


def test_graph_jobs_take_longer_than_high_priority_text_jobs():
    # Sanity: the triangle-count profile produces ~100+ second jobs on the
    # default 20-slot cluster, matching Table 2's execution times.
    scenario = triangle_count_scenario()
    mean_service = scenario.profiles[LOW].mean_service_time(scenario.cluster.slots)
    assert 80.0 < mean_service < 300.0


def test_fleet_scenario_scales_rates_and_jobs_with_fleet_size():
    fleet = fleet_two_priority_scenario(num_clusters=4, num_jobs_per_cluster=50)
    base = fleet.base
    assert fleet.num_jobs == 200
    assert fleet.total_arrival_rate() == pytest.approx(4 * base.total_arrival_rate())
    for priority, rate in base.arrival_rates.items():
        assert fleet.arrival_rates[priority] == pytest.approx(4 * rate)
    assert fleet.priorities == base.priorities


def test_fleet_scenario_trace_is_fleet_sized_and_deterministic():
    fleet = fleet_three_priority_scenario(num_clusters=3, num_jobs_per_cluster=20)
    first = fleet.generate_trace(seed=4)
    second = fleet.generate_trace(seed=4)
    assert len(first) == 60
    assert [j.arrival_time for j in first] == [j.arrival_time for j in second]
    assert len(fleet.generate_trace(seed=4, num_jobs=10)) == 10


def test_fleet_scenario_builds_fresh_clusters_per_member():
    fleet = fleet_two_priority_scenario(num_clusters=3)
    clusters = fleet.make_clusters()
    assert len(clusters) == 3
    assert len({id(c) for c in clusters}) == 3
    assert all(c.slots == fleet.base.cluster.slots for c in clusters)


def test_fleet_scenario_naming_and_validation():
    fleet = fleet_two_priority_scenario(num_clusters=2)
    assert fleet.name == "fleet-reference-two-priority-x2"
    assert "2 clusters" in fleet.description
    with pytest.raises(ValueError):
        FleetScenario(base=reference_two_priority_scenario(), num_clusters=0)
