"""Tests for the Google-trace-like priority mixes and eviction statistics."""

from __future__ import annotations

import pytest

from repro.core.dias import run_policy
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.workloads.traces import (
    GOOGLE_PRIORITY_LEVELS,
    PriorityLevelSpec,
    dominant_classes,
    eviction_statistics,
    google_like_priority_mix,
    slowdown_ratio,
)


def test_mix_covers_all_twelve_levels():
    mix = google_like_priority_mix()
    assert len(mix) == GOOGLE_PRIORITY_LEVELS
    assert sum(spec.share for spec in mix) == pytest.approx(1.0)


def test_dominant_levels_hold_the_requested_share():
    mix = google_like_priority_mix(dominant_levels=(0, 4, 9), dominant_share=0.89)
    dominant = sum(spec.share for spec in mix if spec.level in (0, 4, 9))
    assert dominant == pytest.approx(0.89)


def test_mix_validation():
    with pytest.raises(ValueError):
        google_like_priority_mix(dominant_levels=())
    with pytest.raises(ValueError):
        google_like_priority_mix(dominant_levels=(99,))
    with pytest.raises(ValueError):
        google_like_priority_mix(dominant_share=0.0)
    with pytest.raises(ValueError):
        PriorityLevelSpec(level=-1, share=0.1)


def test_dominant_classes_preserve_probability_mass():
    mix = google_like_priority_mix()
    classes = dominant_classes(mix, num_classes=3)
    assert len(classes) == 3
    assert sum(classes.values()) == pytest.approx(1.0)
    # The lowest dominant class absorbs the biggest share (priority-0 heavy).
    assert classes[0] > 0.2


def test_dominant_classes_two_level_collapse():
    mix = google_like_priority_mix(dominant_levels=(0, 9), dominant_share=0.9)
    classes = dominant_classes(mix, num_classes=2)
    assert len(classes) == 2
    assert sum(classes.values()) == pytest.approx(1.0)


def test_dominant_classes_validation():
    with pytest.raises(ValueError):
        dominant_classes([], num_classes=2)
    with pytest.raises(ValueError):
        dominant_classes(google_like_priority_mix(), num_classes=0)


# ---------------------------------------------------------- eviction statistics
def _make_job(job_id, priority, arrival, task_time=10.0):
    profile = JobClassProfile(priority=priority, partitions=2, reduce_tasks=0,
                              shuffle_time=0.0, setup_time_full=0.0, setup_time_min=0.0)
    stage = StageSpec(index=0, map_task_times=[task_time, task_time],
                      reduce_task_times=[], shuffle_time=0.0)
    return Job(job_id=job_id, priority=priority, arrival_time=arrival, size_mb=10.0,
               stages=[stage], profile=profile)


@pytest.fixture(scope="module")
def preemptive_result():
    jobs = [_make_job(0, 0, 0.0), _make_job(1, 2, 5.0), _make_job(2, 0, 50.0)]
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    return run_policy(SchedulingPolicy.preemptive_priority(), jobs, cluster=cluster)


def test_eviction_statistics_report_waste_for_the_low_class(preemptive_result):
    rows = {row["priority"]: row for row in eviction_statistics(preemptive_result)}
    assert rows[0]["evictions"] == 1
    assert rows[0]["wasted_machine_time_pct"] > 0
    assert rows[2]["evictions"] == 0
    assert rows[2]["wasted_machine_time_pct"] == 0


def test_slowdown_ratio_penalises_the_low_class(preemptive_result):
    assert slowdown_ratio(preemptive_result) > 1.0


def test_slowdown_ratio_requires_two_classes():
    jobs = [_make_job(0, 0, 0.0)]
    cluster = Cluster(ClusterConfig(workers=1, cores_per_worker=2))
    result = run_policy(SchedulingPolicy.non_preemptive_priority(), jobs, cluster=cluster)
    with pytest.raises(ValueError):
        slowdown_ratio(result)
