"""Tests for the DAG workload generators and trace generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.graph import StageDAG
from repro.simulation.random_streams import RandomStreams
from repro.workloads.dag import (
    DagJobFactory,
    chain_topology,
    fork_join_topology,
    generate_dag_trace,
    layered_topology,
    triangle_count_topology,
)
from repro.workloads.scenarios import (
    HIGH,
    LOW,
    dag_fork_join_scenario,
    dag_layered_scenario,
    dag_triangle_count_scenario,
    graph_profile,
    text_profile,
)


# -------------------------------------------------------------- topologies
def test_chain_topology_shape():
    spec = chain_topology(4)
    assert spec == [(0, ()), (1, (0,)), (2, (1,)), (3, (2,))]
    with pytest.raises(ValueError):
        chain_topology(0)


def test_fork_join_topology_shape():
    spec = fork_join_topology(branches=3, branch_length=2)
    assert len(spec) == 1 + 3 * 2 + 1
    sink_index, sink_parents = spec[-1]
    assert sink_index == 7
    assert len(sink_parents) == 3
    # Every branch chain starts at the source.
    assert spec[1] == (1, (0,))


def test_layered_topology_respects_layer_structure():
    rng = np.random.default_rng(0)
    spec = layered_topology(rng, num_layers=5, min_width=2, max_width=4, max_parents=2)
    assert all(len(parents) <= 2 for _, parents in spec)
    # Sources are exactly the first layer; all parents point backwards.
    for index, parents in spec:
        assert all(p < index for p in parents)


def test_layered_topology_validates_params():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        layered_topology(rng, num_layers=0)
    with pytest.raises(ValueError):
        layered_topology(rng, min_width=3, max_width=2)


def test_triangle_count_reduces_to_chain():
    assert triangle_count_topology(6, result_stage=False) == chain_topology(6)
    spec = triangle_count_topology(6, result_stage=True)
    assert spec[-1] == (6, (5,))


# ----------------------------------------------------------------- factory
def test_factory_builds_valid_dags():
    factory = DagJobFactory(RandomStreams(0))
    profile = text_profile(HIGH, "high", 473.0, max_accuracy_loss=0.0)
    for topology in ("layered", "fork_join", "triangle_count", "chain"):
        job = factory.create_job(profile, topology, arrival_time=1.0)
        assert isinstance(job.dag, StageDAG)  # construction validates acyclicity
        assert job.arrival_time == 1.0
        assert job.num_map_tasks > 0
        assert job.size_mb > 0


def test_factory_triangle_count_has_non_droppable_result():
    factory = DagJobFactory(RandomStreams(0))
    profile = graph_profile(LOW, "low")
    job = factory.create_job(profile, "triangle_count", arrival_time=0.0)
    assert job.dag.is_linear_chain
    result_stage = job.dag.stage(profile.num_stages)
    assert not result_stage.droppable
    assert all(job.dag.stage(i).droppable for i in range(profile.num_stages))


def test_factory_rejects_unknown_topology():
    factory = DagJobFactory(RandomStreams(0))
    profile = text_profile(HIGH, "high", 473.0, max_accuracy_loss=0.0)
    with pytest.raises(ValueError, match="unknown topology"):
        factory.create_job(profile, "butterfly", arrival_time=0.0)


def test_factory_is_deterministic_per_seed():
    profile = text_profile(HIGH, "high", 473.0, max_accuracy_loss=0.0)
    a = DagJobFactory(RandomStreams(9)).create_job(profile, "layered", 0.0)
    b = DagJobFactory(RandomStreams(9)).create_job(profile, "layered", 0.0)
    assert a.size_mb == b.size_mb
    assert [s.map_task_times for s in a.stages] == [s.map_task_times for s in b.stages]
    assert [s.parents for s in a.stages] == [s.parents for s in b.stages]


# ------------------------------------------------------------------ traces
def test_generate_dag_trace_sorted_and_complete():
    profiles = {
        HIGH: text_profile(HIGH, "high", 473.0, max_accuracy_loss=0.0),
        LOW: text_profile(LOW, "low", 1117.0, max_accuracy_loss=0.32),
    }
    trace = generate_dag_trace(
        profiles,
        arrival_rates={HIGH: 0.01, LOW: 0.05},
        topologies={HIGH: "fork_join", LOW: "layered"},
        num_jobs=30,
        seed=1,
    )
    assert len(trace) == 30
    arrivals = [job.arrival_time for job in trace]
    assert arrivals == sorted(arrivals)
    assert {job.priority for job in trace} == {HIGH, LOW}
    job_ids = [job.job_id for job in trace]
    assert len(set(job_ids)) == len(job_ids)


def test_generate_dag_trace_validates_inputs():
    profiles = {HIGH: text_profile(HIGH, "high", 473.0, max_accuracy_loss=0.0)}
    with pytest.raises(ValueError, match="same priorities"):
        generate_dag_trace(profiles, {LOW: 0.1}, {HIGH: "chain"}, num_jobs=5)
    with pytest.raises(ValueError, match="topologies missing"):
        generate_dag_trace(profiles, {HIGH: 0.1}, {}, num_jobs=5)
    with pytest.raises(ValueError, match="num_jobs"):
        generate_dag_trace(profiles, {HIGH: 0.1}, {HIGH: "chain"}, num_jobs=0)


# --------------------------------------------------------------- scenarios
@pytest.mark.parametrize(
    "factory", [dag_layered_scenario, dag_fork_join_scenario, dag_triangle_count_scenario]
)
def test_dag_scenarios_generate_valid_traces(factory):
    scenario = factory(num_jobs=12)
    assert scenario.arrival_rates
    assert scenario.total_arrival_rate() > 0
    trace = scenario.generate_trace(seed=0)
    assert len(trace) == 12
    assert all(job.num_stages >= 1 for job in trace)


def test_dag_scenario_trace_is_seed_deterministic():
    scenario = dag_layered_scenario(num_jobs=10)
    a = scenario.generate_trace(seed=4)
    b = scenario.generate_trace(seed=4)
    assert [j.size_mb for j in a] == [j.size_mb for j in b]
    assert [j.arrival_time for j in a] == [j.arrival_time for j in b]
