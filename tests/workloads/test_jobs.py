"""Tests for job-trace generation."""

from __future__ import annotations

import pytest

from repro.workloads.jobs import generate_job_trace, trace_statistics
from repro.workloads.scenarios import HIGH, LOW


def rates():
    return {HIGH: 0.01, LOW: 0.09}


def test_trace_has_requested_number_of_jobs(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile}, rates(), num_jobs=50)
    assert len(trace) == 50


def test_trace_is_sorted_by_arrival_time(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile}, rates(), num_jobs=80)
    arrivals = [job.arrival_time for job in trace]
    assert arrivals == sorted(arrivals)


def test_class_mix_roughly_matches_rates(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile}, rates(), num_jobs=200)
    high_jobs = sum(1 for job in trace if job.priority == HIGH)
    low_jobs = sum(1 for job in trace if job.priority == LOW)
    assert high_jobs + low_jobs == 200
    assert 10 <= high_jobs <= 30  # about 10%


def test_every_class_with_positive_rate_gets_at_least_one_job(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile},
                               {HIGH: 0.0001, LOW: 0.1}, num_jobs=20)
    assert any(job.priority == HIGH for job in trace)


def test_same_seed_reproduces_the_trace(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    a = generate_job_trace(profiles, rates(), num_jobs=40, seed=9)
    b = generate_job_trace(profiles, rates(), num_jobs=40, seed=9)
    assert [j.arrival_time for j in a] == [j.arrival_time for j in b]
    assert [j.size_mb for j in a] == [j.size_mb for j in b]


def test_different_seed_changes_the_trace(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    a = generate_job_trace(profiles, rates(), num_jobs=40, seed=1)
    b = generate_job_trace(profiles, rates(), num_jobs=40, seed=2)
    assert [j.arrival_time for j in a] != [j.arrival_time for j in b]


def test_jobs_carry_profile_structure(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile}, rates(), num_jobs=30)
    for job in trace:
        profile = high_profile if job.priority == HIGH else low_profile
        assert job.stages[0].num_map_tasks == profile.partitions
        assert len(job.stages) == profile.num_stages


def test_job_ids_are_unique(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile}, rates(), num_jobs=60)
    ids = [job.job_id for job in trace]
    assert len(set(ids)) == len(ids)


def test_trace_statistics(high_profile, low_profile):
    trace = generate_job_trace({HIGH: high_profile, LOW: low_profile}, rates(), num_jobs=25)
    stats = trace_statistics(trace)
    assert stats["jobs"] == 25
    assert stats["horizon"] > 0
    assert stats[f"jobs_priority_{LOW}"] + stats[f"jobs_priority_{HIGH}"] == 25


def test_trace_statistics_requires_jobs():
    with pytest.raises(ValueError):
        trace_statistics([])


def test_generation_validation(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    with pytest.raises(ValueError):
        generate_job_trace(profiles, {HIGH: 0.1}, num_jobs=10)
    with pytest.raises(ValueError):
        generate_job_trace(profiles, rates(), num_jobs=0)
    with pytest.raises(ValueError):
        generate_job_trace(profiles, {HIGH: 0.0, LOW: 0.0}, num_jobs=10)
