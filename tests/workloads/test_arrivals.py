"""Tests for arrival processes and load calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import (
    calibrate_arrival_rates,
    expected_utilisation,
    poisson_arrival_times,
)
from repro.workloads.scenarios import HIGH, LOW


def test_poisson_by_count_returns_requested_number():
    times = poisson_arrival_times(rate=0.5, count=20, rng=np.random.default_rng(0))
    assert len(times) == 20
    assert times == sorted(times)
    assert times[0] > 0


def test_poisson_by_horizon_stays_within_window():
    times = poisson_arrival_times(rate=1.0, horizon=100.0, rng=np.random.default_rng(0))
    assert all(0 < t < 100.0 for t in times)
    assert 60 < len(times) < 140


def test_poisson_mean_interarrival_matches_rate():
    rate = 2.0
    times = poisson_arrival_times(rate=rate, count=5000, rng=np.random.default_rng(1))
    mean_gap = times[-1] / len(times)
    assert mean_gap == pytest.approx(1.0 / rate, rel=0.05)


def test_poisson_requires_exactly_one_stopping_rule():
    with pytest.raises(ValueError):
        poisson_arrival_times(rate=1.0)
    with pytest.raises(ValueError):
        poisson_arrival_times(rate=1.0, horizon=10.0, count=5)
    with pytest.raises(ValueError):
        poisson_arrival_times(rate=0.0, count=5)


def test_calibration_hits_target_utilisation(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    rates = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 9.0}, slots=4,
                                    target_utilisation=0.8)
    achieved = expected_utilisation(profiles, rates, slots=4)
    assert achieved == pytest.approx(0.8, rel=1e-9)


def test_calibration_respects_class_ratio(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    rates = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 9.0}, slots=4,
                                    target_utilisation=0.5)
    assert rates[LOW] / rates[HIGH] == pytest.approx(9.0)


def test_lower_target_means_lower_rates(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    heavy = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 1.0}, 4, 0.8)
    light = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 1.0}, 4, 0.4)
    assert light[LOW] < heavy[LOW]
    assert light[LOW] == pytest.approx(heavy[LOW] / 2, rel=1e-9)


def test_calibration_with_drop_ratios_allows_higher_rates(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    plain = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 9.0}, 4, 0.8)
    dropped = calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 9.0}, 4, 0.8,
                                      drop_ratios={LOW: 0.5})
    assert dropped[LOW] > plain[LOW]


def test_calibration_validation(high_profile, low_profile):
    profiles = {HIGH: high_profile, LOW: low_profile}
    with pytest.raises(ValueError):
        calibrate_arrival_rates(profiles, {HIGH: 1.0}, 4, 0.8)
    with pytest.raises(ValueError):
        calibrate_arrival_rates(profiles, {HIGH: 1.0, LOW: 1.0}, 4, 1.5)
    with pytest.raises(ValueError):
        calibrate_arrival_rates(profiles, {HIGH: 0.0, LOW: 0.0}, 4, 0.5)
    with pytest.raises(ValueError):
        calibrate_arrival_rates(profiles, {HIGH: -1.0, LOW: 2.0}, 4, 0.5)
