"""Tests for the synthetic graph generator."""

from __future__ import annotations

import pytest

from repro.workloads.graph import edge_list_to_partitions, graph_statistics, synthetic_web_graph


def test_graph_has_expected_scale():
    edges = synthetic_web_graph(num_nodes=200, edges_per_node=3, seed=0)
    stats = graph_statistics(edges)
    assert stats["nodes"] <= 200
    assert stats["edges"] > 400


def test_graph_is_reproducible():
    assert synthetic_web_graph(num_nodes=100, seed=5) == synthetic_web_graph(num_nodes=100, seed=5)


def test_graph_contains_triangles():
    edges = synthetic_web_graph(num_nodes=150, edges_per_node=4, triangle_probability=0.5,
                                seed=1)
    assert graph_statistics(edges)["triangles"] > 50


def test_degree_distribution_is_skewed():
    edges = synthetic_web_graph(num_nodes=400, edges_per_node=3, seed=2)
    stats = graph_statistics(edges)
    assert stats["max_degree"] > 4 * stats["mean_degree"]


def test_graph_parameter_validation():
    with pytest.raises(ValueError):
        synthetic_web_graph(num_nodes=3, edges_per_node=4)
    with pytest.raises(ValueError):
        synthetic_web_graph(num_nodes=10, triangle_probability=1.5)


def test_edge_partitioning_covers_all_edges():
    edges = synthetic_web_graph(num_nodes=100, seed=0)
    partitions = edge_list_to_partitions(edges, 7, seed=1)
    assert len(partitions) == 7
    assert sum(len(p) for p in partitions) == len(edges)
    flattened = {e for part in partitions for e in part}
    assert flattened == set(edges)


def test_edge_partitioning_validates_count():
    with pytest.raises(ValueError):
        edge_list_to_partitions([(0, 1)], 0)
