"""Tests for the synthetic corpus generator."""

from __future__ import annotations

import pytest

from repro.mapreduce.wordcount import tokenize
from repro.workloads.text import CorpusSpec, corpus_size_mb, synthetic_corpus


def test_corpus_has_requested_document_count():
    spec = CorpusSpec(num_documents=30, words_per_document=20)
    corpus = synthetic_corpus(spec, seed=0)
    assert len(corpus) == 30


def test_documents_have_requested_word_count():
    spec = CorpusSpec(num_documents=5, words_per_document=50)
    corpus = synthetic_corpus(spec, seed=0)
    assert all(len(doc.split()) == 50 for doc in corpus)


def test_corpus_is_reproducible():
    spec = CorpusSpec(num_documents=10)
    assert synthetic_corpus(spec, seed=3) == synthetic_corpus(spec, seed=3)
    assert synthetic_corpus(spec, seed=3) != synthetic_corpus(spec, seed=4)


def test_documents_mix_global_and_topic_vocabulary():
    spec = CorpusSpec(num_documents=4, words_per_document=100, num_topics=2,
                      topic_word_fraction=0.5)
    corpus = synthetic_corpus(spec, seed=1)
    tokens = tokenize(corpus[0])
    topic_tokens = [t for t in tokens if t.startswith("topic")]
    global_tokens = [t for t in tokens if t.startswith("word")]
    assert len(topic_tokens) == 50
    assert len(global_tokens) == 50


def test_topics_cycle_across_documents():
    spec = CorpusSpec(num_documents=4, num_topics=2, topic_word_fraction=1.0,
                      words_per_document=10)
    corpus = synthetic_corpus(spec, seed=0)
    assert all(t.startswith("topic0") for t in tokenize(corpus[0]))
    assert all(t.startswith("topic1") for t in tokenize(corpus[1]))
    assert all(t.startswith("topic0") for t in tokenize(corpus[2]))


def test_word_frequencies_are_heavy_tailed():
    spec = CorpusSpec(num_documents=50, words_per_document=200, topic_word_fraction=0.0,
                      vocabulary_size=500, zipf_exponent=1.4)
    corpus = synthetic_corpus(spec, seed=0)
    counts = {}
    for doc in corpus:
        for token in tokenize(doc):
            counts[token] = counts.get(token, 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    total = sum(ordered)
    top_ten_share = sum(ordered[:10]) / total
    assert top_ten_share > 0.3  # the head dominates, as in a Zipf distribution


def test_corpus_size_mb_positive():
    corpus = synthetic_corpus(CorpusSpec(num_documents=5), seed=0)
    assert corpus_size_mb(corpus) > 0


def test_spec_validation():
    with pytest.raises(ValueError):
        CorpusSpec(num_documents=0)
    with pytest.raises(ValueError):
        CorpusSpec(zipf_exponent=1.0)
    with pytest.raises(ValueError):
        CorpusSpec(topic_word_fraction=1.5)
