"""Chaos ablation runner: level scaling, CRN deltas, config rebuild."""

from __future__ import annotations

import math

import pytest

from repro.core.policies import SchedulingPolicy
from repro.faults.chaos import fleet_from_config, run_chaos
from repro.faults.spec import parse_fault_spec
from repro.workloads.scenarios import (
    FleetScenario,
    reference_two_priority_scenario,
)


def _scenario(num_jobs: int = 25) -> FleetScenario:
    return FleetScenario(
        base=reference_two_priority_scenario(num_jobs=num_jobs), num_clusters=2
    )


def test_chaos_rows_report_levels_and_deltas():
    rows = run_chaos(
        _scenario(),
        SchedulingPolicy.non_preemptive_priority(),
        parse_fault_spec("crash:mttf=600,repair=40;stragglers:p=0.1"),
        levels=(0.0, 1.0),
        seed=5,
    )
    assert [row["level"] for row in rows] == [0.0, 1.0]
    baseline, faulty = rows
    assert baseline["crashes"] == 0.0
    assert baseline["delta_mean_pct"] == 0.0
    assert faulty["crashes"] > 0
    assert faulty["stragglers"] > 0
    # Faults can only hurt latency; CRN guarantees the delta is pure fault
    # effect, not sampling noise.
    assert faulty["delta_mean_pct"] > 0
    # Every level completes the identical workload.
    assert faulty["completed_jobs"] == baseline["completed_jobs"] == 50.0


def test_chaos_without_level_zero_reports_nan_deltas():
    rows = run_chaos(
        _scenario(num_jobs=10),
        SchedulingPolicy.non_preemptive_priority(),
        parse_fault_spec("stragglers:p=0.1"),
        levels=(1.0,),
        seed=5,
    )
    assert math.isnan(rows[0]["delta_mean_pct"])


def test_chaos_rejects_empty_and_negative_levels():
    spec = parse_fault_spec("stragglers:p=0.1")
    policy = SchedulingPolicy.non_preemptive_priority()
    with pytest.raises(ValueError, match="at least one"):
        run_chaos(_scenario(num_jobs=5), policy, spec, levels=())
    with pytest.raises(ValueError, match=">= 0"):
        run_chaos(_scenario(num_jobs=5), policy, spec, levels=(-1.0,))


def test_fleet_from_config_rebuilds_an_equivalent_run():
    scenario = _scenario()
    policy = SchedulingPolicy.non_preemptive_priority()
    spec = parse_fault_spec("stragglers:p=0.1,slowdown=3")
    config = {
        "scenario": scenario,
        "policy": policy,
        "dispatcher": "round_robin",
        "power_of_d": None,
        "seed": 9,
        "sprint_budget": "per-cluster",
        "faults": spec,
        "checkpoint_every": None,
        "checkpoint_path": None,
    }
    rebuilt = fleet_from_config(config)
    assert rebuilt.checkpoint_config == config
    from repro.fleet.simulation import FleetSimulation

    direct = FleetSimulation(
        policy=policy,
        jobs=scenario.generate_trace(seed=9),
        clusters=scenario.make_clusters(),
        dispatcher="round_robin",
        seed=9,
        faults=spec,
    )
    assert rebuilt.run().summary() == direct.run().summary()
