"""Checkpoint/resume: file format, state round-trip, mismatch detection."""

from __future__ import annotations

import pickle

import pytest

from repro.core.dias import DiASSimulation
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster
from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    attach_dias_checkpointing,
    dias_state,
    load_checkpoint,
    restore_dias,
    restore_fleet,
    save_checkpoint,
)
from repro.fleet.simulation import FleetSimulation
from repro.workloads.scenarios import (
    FleetScenario,
    reference_two_priority_scenario,
)

SPEC = "crash:mttf=400,repair=40;taskfail:p=0.05,retries=2"


def _low_load_fleet_scenario(num_jobs: int = 40) -> FleetScenario:
    # Quiescent points (nothing queued, running, or routed-but-unfinished)
    # are rare at the reference ~80% load; checkpoint tests need the idle
    # gaps a 40%-load trace creates.
    return FleetScenario(
        base=reference_two_priority_scenario(num_jobs=num_jobs).with_utilisation(0.4),
        num_clusters=2,
    )


def _fleet(scenario: FleetScenario, seed: int = 11, **kwargs) -> FleetSimulation:
    return FleetSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=seed),
        clusters=scenario.make_clusters(),
        dispatcher="round_robin",
        seed=seed,
        faults=SPEC,
        **kwargs,
    )


def test_save_load_round_trip(tmp_path):
    path = str(tmp_path / "state.ckpt")
    save_checkpoint(path, {"magic": "repro-checkpoint",
                           "version": CHECKPOINT_VERSION, "x": 1})
    assert load_checkpoint(path)["x"] == 1


def test_load_rejects_non_checkpoint_pickle(tmp_path):
    path = str(tmp_path / "junk.ckpt")
    with open(path, "wb") as handle:
        pickle.dump({"hello": "world"}, handle)
    with pytest.raises(ValueError, match="not a repro checkpoint"):
        load_checkpoint(path)


def test_load_rejects_future_version(tmp_path):
    path = str(tmp_path / "future.ckpt")
    save_checkpoint(path, {"magic": "repro-checkpoint",
                           "version": CHECKPOINT_VERSION + 1})
    with pytest.raises(ValueError, match="unsupported checkpoint version"):
        load_checkpoint(path)


def test_fleet_checkpoint_resume_is_bitwise_identical(tmp_path):
    path = str(tmp_path / "fleet.ckpt")
    scenario = _low_load_fleet_scenario()

    reference = _fleet(scenario).run()

    interrupted = _fleet(scenario, checkpoint_every=50.0, checkpoint_path=path)
    interrupted.run(until=reference.duration * 0.6)
    payload = load_checkpoint(path)
    assert payload["kind"] == "fleet"
    assert 0 < payload["routed"] < 80  # genuinely mid-run

    resumed_sim = _fleet(scenario)
    resumed_sim.restore(payload)
    resumed = resumed_sim.run()

    assert resumed.summary() == reference.summary()
    assert dict(resumed.fault_counts) == dict(reference.fault_counts)


def test_checkpointing_does_not_perturb_the_run(tmp_path):
    scenario = _low_load_fleet_scenario()
    plain = _fleet(scenario).run()
    checkpointed = _fleet(
        scenario,
        checkpoint_every=50.0,
        checkpoint_path=str(tmp_path / "fleet.ckpt"),
    ).run()
    assert checkpointed.summary() == plain.summary()


def test_restore_rejects_wrong_kind(tmp_path):
    scenario = _low_load_fleet_scenario()
    fleet = _fleet(scenario)
    with pytest.raises(ValueError, match="cannot resume a fleet run"):
        restore_fleet(fleet, {"kind": "dias", "time": 0.0})


def test_restore_rejects_cluster_count_mismatch(tmp_path):
    path = str(tmp_path / "fleet.ckpt")
    scenario = _low_load_fleet_scenario()
    interrupted = _fleet(scenario, checkpoint_every=50.0, checkpoint_path=path)
    interrupted.run(until=6000.0)
    payload = load_checkpoint(path)

    other = FleetScenario(base=scenario.base, num_clusters=3)
    fleet = _fleet(other)
    with pytest.raises(ValueError, match="configurations must match"):
        fleet.restore(payload)


def test_restore_rejects_fault_spec_mismatch(tmp_path):
    path = str(tmp_path / "fleet.ckpt")
    scenario = _low_load_fleet_scenario()
    interrupted = _fleet(scenario, checkpoint_every=50.0, checkpoint_path=path)
    interrupted.run(until=6000.0)
    payload = load_checkpoint(path)

    faultless = FleetSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=11),
        clusters=scenario.make_clusters(),
        dispatcher="round_robin",
        seed=11,
    )
    with pytest.raises(ValueError, match="same --faults spec"):
        faultless.restore(payload)


def _dias_simulation(seed: int = 7, faults=SPEC) -> DiASSimulation:
    scenario = reference_two_priority_scenario(num_jobs=40).with_utilisation(0.4)
    source = scenario.cluster
    cluster = Cluster(
        config=source.config, dvfs=source.dvfs, power_model=source.power_model
    )
    return DiASSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=seed),
        cluster=cluster,
        seed=seed,
        faults=faults,
    )


def test_dias_checkpoint_resume_is_bitwise_identical(tmp_path):
    path = str(tmp_path / "dias.ckpt")

    reference = _dias_simulation().run()

    interrupted = _dias_simulation()
    attach_dias_checkpointing(interrupted, every=50.0, path=path)
    interrupted.run(until=reference.duration * 0.6)
    payload = load_checkpoint(path)
    assert payload["kind"] == "dias"

    resumed_sim = _dias_simulation()
    restore_dias(resumed_sim, payload)
    resumed = resumed_sim.run()

    assert resumed.mean_response_time() == reference.mean_response_time()
    assert resumed.total_energy_joules == reference.total_energy_joules
    assert resumed.completed_jobs == reference.completed_jobs
    assert dict(resumed.fault_counts) == dict(reference.fault_counts)


def test_attach_dias_checkpointing_rejects_bad_interval():
    simulation = _dias_simulation()
    with pytest.raises(ValueError, match="must be positive"):
        attach_dias_checkpointing(simulation, every=0.0, path="x.ckpt")


def test_dias_state_kind_cannot_resume_fleet(tmp_path):
    simulation = _dias_simulation()
    payload = dias_state(simulation)
    scenario = _low_load_fleet_scenario()
    with pytest.raises(ValueError, match="cannot resume a fleet run"):
        _fleet(scenario).restore(payload)
