"""FaultInjector unit behaviour: crash/repair process, draws, stop()."""

from __future__ import annotations

import math

import pytest

from repro.engine.cluster import Cluster, ClusterCapacityError, ClusterConfig
from repro.faults.injector import FAULT_COUNTERS, FaultInjector
from repro.faults.spec import parse_fault_spec
from repro.simulation.des import Simulator
from repro.simulation.random_streams import RandomStreams


def _injector(spec_text: str, workers: int = 4):
    sim = Simulator()
    cluster = Cluster(ClusterConfig(workers=workers, cores_per_worker=2))
    injector = FaultInjector(
        parse_fault_spec(spec_text), sim, cluster, RandomStreams(seed=3)
    )
    return sim, cluster, injector


def test_counters_start_at_zero_for_every_name():
    _, _, injector = _injector("crash:mttf=50")
    assert set(injector.counters) == set(FAULT_COUNTERS)
    assert all(value == 0 for value in injector.counters.values())


def test_crash_repair_cycle_counts_and_worker_state():
    sim, cluster, injector = _injector("crash:mttf=50,repair=10")
    injector.start()
    sim.run(until=500.0)
    injector.stop()
    assert injector.count("crashes") > 0
    assert injector.count("repairs") > 0
    # Every worker is either up awaiting its next crash or down awaiting
    # repair, and the cluster's failed set matches the injector's view.
    down = {w for w, (status, _) in injector.worker_state.items() if status == "down"}
    assert down == set(cluster.failed_workers)


def test_stop_cancels_renewal_so_the_heap_drains():
    sim, _, injector = _injector("crash:mttf=5,repair=1")
    injector.start()
    sim.run(until=20.0)
    injector.stop()
    # Without stop() the crash/repair renewal would run forever; after it
    # the heap drains and the clock freezes.
    sim.run()
    assert sim.now <= 20.0 + 5.0 * 100  # finite — run() returned at all
    count = injector.count("crashes")
    sim.run()
    assert injector.count("crashes") == count


def test_start_twice_raises():
    _, _, injector = _injector("crash:mttf=50")
    injector.start()
    with pytest.raises(RuntimeError):
        injector.start()


def test_eligible_honours_probation():
    sim, cluster, injector = _injector("crash:mttf=1000,repair=5,probation=30")
    injector.start()
    assert injector.eligible(sim.now)
    injector._on_crash_event(0)
    assert not injector.eligible(sim.now)  # impaired
    injector._on_repair_event(0)
    repaired_at = injector.last_repair_time
    assert not injector.eligible(repaired_at + 29.0)  # still on probation
    assert injector.eligible(repaired_at + 30.0)
    injector.stop()


def test_permanent_crash_of_last_worker_raises_capacity_error():
    sim, _, injector = _injector(
        "crash:mttf=10,repair=0,dist=fixed", workers=2
    )
    injector.start()
    # Fixed-distribution crashes land both workers at t=10; the second
    # fail_worker call must refuse to leave the cluster with zero capacity.
    with pytest.raises(ClusterCapacityError):
        sim.run()
    injector.stop()


def test_permanent_crash_never_schedules_repair():
    sim, _, injector = _injector("crash:mttf=10,repair=0", workers=4)
    injector.start()
    injector._on_crash_event(0)
    status, repair_at = injector.worker_state[0]
    assert status == "down"
    assert repair_at == math.inf
    injector.stop()


def test_retry_delay_is_capped_exponential_with_jitter():
    _, _, injector = _injector("taskfail:p=0.5,retries=3,backoff=2.0,jitter=0.5")
    for attempt in (1, 2, 3):
        base = 2.0 * 2.0 ** (attempt - 1)
        for _ in range(20):
            delay = injector.retry_delay(attempt)
            assert base <= delay <= base * 1.5


def test_draw_slowdown_counts_stragglers():
    _, _, injector = _injector("stragglers:p=1.0,slowdown=3")
    assert injector.draw_slowdown() == 3.0
    assert injector.count("stragglers") == 1
    _, _, quiet = _injector("taskfail:p=0.1")
    assert quiet.draw_slowdown() == 1.0


def test_state_dict_restore_round_trip():
    sim, cluster, injector = _injector("crash:mttf=50,repair=10")
    injector.start()
    sim.run(until=200.0)
    injector.stop()
    state = injector.state_dict()

    sim2 = Simulator()
    sim2._now = sim.now
    cluster2 = Cluster(ClusterConfig(workers=4, cores_per_worker=2))
    restored = FaultInjector(
        parse_fault_spec("crash:mttf=50,repair=10"),
        sim2,
        cluster2,
        RandomStreams(seed=3),
    )
    restored.restore(state)
    assert restored.worker_state == injector.worker_state
    assert restored.counters == injector.counters
    assert set(cluster2.failed_workers) == set(cluster.failed_workers)
    restored.stop()


def test_restore_after_start_raises():
    sim, _, injector = _injector("crash:mttf=50")
    injector.start()
    with pytest.raises(RuntimeError):
        injector.restore({"worker_state": {}, "last_repair_time": None, "counters": {}})
