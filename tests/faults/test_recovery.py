"""Recovery behaviour under injected faults, on all three simulation layers.

Every test runs a small workload to completion under some fault mix and
checks both liveness (all jobs finish despite crashes/failures) and that the
expected recovery mechanism actually engaged (counters are positive).
"""

from __future__ import annotations

import pytest

from repro.core.dias import DiASSimulation
from repro.core.policies import SchedulingPolicy
from repro.dag.simulation import DagSimulation
from repro.engine.cluster import Cluster
from repro.fleet.simulation import FleetSimulation
from repro.workloads.scenarios import (
    FleetScenario,
    dag_fork_join_scenario,
    reference_two_priority_scenario,
)


def _dias(spec: str, num_jobs: int = 30, seed: int = 2):
    scenario = reference_two_priority_scenario()
    source = scenario.cluster
    cluster = Cluster(
        config=source.config, dvfs=source.dvfs, power_model=source.power_model
    )
    simulation = DiASSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=seed, num_jobs=num_jobs),
        cluster=cluster,
        seed=seed,
        faults=spec,
    )
    return simulation, simulation.run()


def test_dias_completes_under_crashes_with_requeue():
    simulation, result = _dias("crash:mttf=200,repair=30")
    assert result.completed_jobs == 30
    assert result.fault_counts["crashes"] > 0
    assert result.fault_counts["job_restarts"] == 0


def test_dias_restart_recovery_reexecutes_jobs():
    simulation, result = _dias("crash:mttf=200,repair=30,recovery=restart")
    assert result.completed_jobs == 30
    assert result.fault_counts["crashes"] > 0
    assert result.fault_counts["job_restarts"] > 0


def test_dias_speculation_engages_for_stragglers():
    simulation, result = _dias("stragglers:p=0.2,slowdown=4,speculate=1.3")
    assert result.completed_jobs == 30
    assert result.fault_counts["stragglers"] > 0
    assert result.fault_counts["speculations"] > 0


def test_dias_speculation_can_be_disabled():
    simulation, result = _dias("stragglers:p=0.2,slowdown=4,speculate=0")
    assert result.completed_jobs == 30
    assert result.fault_counts["speculations"] == 0


def test_dias_transient_failures_are_retried():
    simulation, result = _dias("taskfail:p=0.1,retries=3,backoff=0.5")
    assert result.completed_jobs == 30
    assert result.fault_counts["task_failures"] > 0
    assert result.fault_counts["retries"] > 0


def test_faults_off_reports_no_counters():
    simulation, result = _dias(None)
    assert simulation.faults is None
    assert result.fault_counts == {}


def test_fleet_quarantines_crashed_clusters_and_completes():
    scenario = FleetScenario(
        base=reference_two_priority_scenario(num_jobs=40), num_clusters=2
    )
    fleet = FleetSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=4),
        clusters=scenario.make_clusters(),
        dispatcher="round_robin",
        seed=4,
        faults="crash:mttf=250,repair=60,probation=30",
    )
    result = fleet.run()
    assert result.completed_jobs == 80
    counters = fleet.fault_counters()
    assert counters["crashes"] > 0
    # Graceful degradation: some routing decisions were redirected away
    # from impaired or probationary clusters.
    assert counters["quarantine_redirects"] > 0
    assert fleet.quarantine_redirects == counters["quarantine_redirects"]


def _dag(spec: str, seed: int = 3, num_jobs: int = 20):
    scenario = dag_fork_join_scenario(num_jobs=num_jobs)
    simulation = DagSimulation(
        policy=SchedulingPolicy.non_preemptive_priority(),
        jobs=scenario.generate_trace(seed=seed),
        scheduler="critical_path_first",
        cluster=scenario.cluster,
        seed=seed,
        faults=spec,
    )
    return simulation, simulation.run()


def test_dag_completes_under_crashes_and_retries():
    simulation, result = _dag(
        "crash:mttf=300,repair=40;taskfail:p=0.05,retries=3,backoff=0.5"
    )
    assert result.completed_jobs == 20
    assert result.fault_counts["crashes"] > 0
    assert result.fault_counts["retries"] > 0


def test_dag_never_speculates_by_design():
    # The DAG layer injects stragglers but launches no speculative copies:
    # the stage frontier already absorbs wave tails.
    simulation, result = _dag("stragglers:p=0.3,slowdown=4,speculate=1.2")
    assert result.completed_jobs == 20
    assert result.fault_counts["stragglers"] > 0
    assert result.fault_counts["speculations"] == 0


def test_dag_restart_recovery_reexecutes_jobs():
    # MTTF must comfortably exceed the typical job makespan: restart
    # recovery re-executes from scratch, so crashes arriving faster than
    # jobs finish would livelock the workload (in simulated time).
    simulation, result = _dag("crash:mttf=600,repair=30,recovery=restart")
    assert result.completed_jobs == 20
    assert result.fault_counts["crashes"] > 0
    assert result.fault_counts["job_restarts"] > 0
