"""Fault-spec grammar: parsing, defaults, validation messages, scaling."""

from __future__ import annotations

import pytest

from repro.faults.spec import (
    CRASH_DISTS,
    CRASH_RECOVERIES,
    FAULT_KINDS,
    CrashSpec,
    FaultSpec,
    StragglerSpec,
    TaskFailSpec,
    parse_fault_spec,
)


def test_empty_and_none_mean_no_faults():
    assert parse_fault_spec(None) is None
    assert parse_fault_spec("") is None
    assert parse_fault_spec("  ; ; ") is None


def test_parsed_spec_passes_through():
    spec = parse_fault_spec("crash:mttf=100")
    assert parse_fault_spec(spec) is spec
    assert parse_fault_spec(FaultSpec()) is None


def test_full_spec_round_trip():
    spec = parse_fault_spec(
        "crash:mttf=600,repair=30,dist=fixed,recovery=restart,probation=60;"
        "stragglers:p=0.05,slowdown=4,speculate=1.5;"
        "taskfail:p=0.02,retries=3,backoff=1.0,jitter=0.5"
    )
    assert spec.crash == CrashSpec(
        mttf=600.0, repair=30.0, dist="fixed", recovery="restart", probation=60.0
    )
    assert spec.stragglers == StragglerSpec(
        probability=0.05, slowdown=4.0, speculate=1.5
    )
    assert spec.taskfail == TaskFailSpec(
        probability=0.02, retries=3, backoff=1.0, jitter=0.5
    )


def test_defaults_applied():
    spec = parse_fault_spec("crash:mttf=100;stragglers:p=0.1;taskfail:p=0.05")
    assert spec.crash.repair == 60.0
    assert spec.crash.dist == "exp"
    assert spec.crash.recovery == "requeue"
    assert spec.crash.probation == 0.0
    assert not spec.crash.permanent
    assert spec.stragglers.slowdown == 4.0
    assert spec.stragglers.speculate == 1.5
    assert spec.taskfail.retries == 3
    assert spec.taskfail.backoff == 1.0
    assert spec.taskfail.jitter == 0.5


def test_repair_zero_is_permanent():
    assert parse_fault_spec("crash:mttf=100,repair=0").crash.permanent


@pytest.mark.parametrize(
    "text, fragment",
    [
        ("flood:p=0.1", "valid choices: " + ", ".join(FAULT_KINDS)),
        ("crash:mtbf=10", "valid keys: mttf, repair, dist, recovery, probation"),
        ("crash:mttf=10,dist=weird", "valid choices: " + ", ".join(CRASH_DISTS)),
        (
            "crash:mttf=10,recovery=panic",
            "valid choices: " + ", ".join(CRASH_RECOVERIES),
        ),
        ("crash:repair=5", "crash requires mttf=<value>"),
        ("crash:mttf=ten", "must be a number"),
        ("crash:mttf=-3", "must be positive"),
        ("stragglers:p=1.5", "must be in [0, 1]"),
        ("stragglers:p=0.1,slowdown=0.5", "must be > 1"),
        ("taskfail:p=0.1,retries=2.5", "must be an integer"),
        ("taskfail:p=0.1,jitter=2", "must be in [0, 1]"),
        ("crash:mttf=10;crash:mttf=20", "duplicate crash segment"),
        ("crash:mttf=10,mttf=20", "duplicate crash key"),
        ("crash:mttf", "expected key=value"),
    ],
)
def test_invalid_specs_name_the_valid_choices(text, fragment):
    with pytest.raises(ValueError) as excinfo:
        parse_fault_spec(text)
    assert fragment in str(excinfo.value)


def test_scaled_level_zero_disables_everything():
    spec = parse_fault_spec("crash:mttf=100;stragglers:p=0.1;taskfail:p=0.05")
    assert spec.scaled(0.0).is_empty


def test_scaled_doubles_rates_and_caps_probabilities():
    spec = parse_fault_spec("crash:mttf=100;stragglers:p=0.6;taskfail:p=0.05")
    doubled = spec.scaled(2.0)
    assert doubled.crash.mttf == 50.0
    assert doubled.stragglers.probability == 1.0  # capped
    assert doubled.taskfail.probability == 0.1
    # Severity knobs are untouched: the sweep varies frequency only.
    assert doubled.crash.repair == spec.crash.repair
    assert doubled.stragglers.slowdown == spec.stragglers.slowdown
    assert doubled.taskfail.retries == spec.taskfail.retries


def test_scaled_rejects_negative_level():
    with pytest.raises(ValueError):
        parse_fault_spec("crash:mttf=100").scaled(-1.0)


def test_describe_mentions_every_active_kind():
    spec = parse_fault_spec("crash:mttf=100,repair=0;stragglers:p=0.1,speculate=0")
    text = spec.describe()
    assert "permanent" in text
    assert "no speculation" in text
    assert FaultSpec().describe() == "none"
