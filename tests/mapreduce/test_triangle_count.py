"""Tests for the multi-stage MapReduce triangle count."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce.triangle_count import (
    exact_triangle_count,
    triangle_count_accuracy_curve,
    triangle_count_error,
    triangle_count_job,
)
from repro.workloads.graph import synthetic_web_graph

TRIANGLE = [(0, 1), (1, 2), (0, 2)]
SQUARE = [(0, 1), (1, 2), (2, 3), (3, 0)]
TWO_TRIANGLES = TRIANGLE + [(2, 3), (3, 4), (2, 4)]


@pytest.fixture(scope="module")
def graph_edges():
    return synthetic_web_graph(num_nodes=120, edges_per_node=3, triangle_probability=0.4,
                               seed=2)


# ------------------------------------------------------------ exact counting
def test_exact_count_single_triangle():
    assert exact_triangle_count(TRIANGLE) == 1


def test_exact_count_square_has_no_triangles():
    assert exact_triangle_count(SQUARE) == 0


def test_exact_count_two_triangles():
    assert exact_triangle_count(TWO_TRIANGLES) == 2


def test_exact_count_ignores_duplicates_self_loops_and_direction():
    edges = TRIANGLE + [(1, 0), (2, 2), (0, 1)]
    assert exact_triangle_count(edges) == 1


def test_exact_count_matches_networkx(graph_edges):
    import networkx as nx

    graph = nx.Graph()
    graph.add_edges_from(graph_edges)
    expected = sum(nx.triangles(graph).values()) // 3
    assert exact_triangle_count(graph_edges) == expected


# ------------------------------------------------------ MapReduce pipeline
def test_job_without_dropping_is_exact():
    estimate, runtime = triangle_count_job(TWO_TRIANGLES, num_partitions=3,
                                           stage_drop_ratio=0.0)
    assert estimate == pytest.approx(2.0)
    assert runtime.total_tasks_dropped == 0


def test_job_without_dropping_matches_exact_on_synthetic_graph(graph_edges):
    estimate, _ = triangle_count_job(graph_edges, num_partitions=6, stage_drop_ratio=0.0)
    assert estimate == pytest.approx(exact_triangle_count(graph_edges))


def test_job_runs_multiple_shuffle_stages(graph_edges):
    _, runtime = triangle_count_job(graph_edges, num_partitions=6, stage_drop_ratio=0.0)
    shuffles = [s for s in runtime.stages if s.description in ("reduceByKey", "groupByKey")]
    assert len(shuffles) >= 5


def test_dropping_drops_tasks_in_every_shuffle_stage(graph_edges):
    _, runtime = triangle_count_job(graph_edges, num_partitions=8, stage_drop_ratio=0.25,
                                    rng=np.random.default_rng(0))
    shuffles = [s for s in runtime.stages if s.description in ("reduceByKey", "groupByKey")]
    full_width = [s for s in shuffles if s.total_tasks == 8]
    # Every shuffle stage that fans out over the full 8 partitions drops 25 %.
    assert len(full_width) >= 3
    assert all(s.dropped_tasks == 2 for s in full_width)
    assert runtime.total_tasks_dropped >= 2 * len(full_width)


def test_estimate_with_small_drop_is_in_the_right_ballpark(graph_edges):
    exact = exact_triangle_count(graph_edges)
    estimate, _ = triangle_count_job(graph_edges, num_partitions=8, stage_drop_ratio=0.05,
                                     rng=np.random.default_rng(1))
    assert estimate == pytest.approx(exact, rel=0.6)


def test_error_grows_with_stage_drop_ratio(graph_edges):
    small = triangle_count_error(graph_edges, stage_drop_ratio=0.02, num_partitions=8,
                                 repetitions=2, seed=0)
    large = triangle_count_error(graph_edges, stage_drop_ratio=0.3, num_partitions=8,
                                 repetitions=2, seed=0)
    assert small < large


def test_error_requires_triangles():
    with pytest.raises(ValueError):
        triangle_count_error(SQUARE, stage_drop_ratio=0.1)


def test_accuracy_curve_shape(graph_edges):
    curve = triangle_count_accuracy_curve(graph_edges, (0.0, 0.1), num_partitions=8,
                                          repetitions=1, seed=0)
    assert curve[0] == (0.0, 0.0)
    assert curve[1][1] >= 0.0
