"""Tests for the sampling-theory helpers."""

from __future__ import annotations

import math

import pytest

from repro.mapreduce.sampling import (
    horvitz_thompson_scale,
    mean_absolute_percentage_error,
    relative_error,
    sample_total_confidence_interval,
)


def test_horvitz_thompson_scaling():
    assert horvitz_thompson_scale(50.0, 0.5) == 100.0
    assert horvitz_thompson_scale(50.0, 1.0) == 50.0


def test_horvitz_thompson_validates_fraction():
    with pytest.raises(ValueError):
        horvitz_thompson_scale(10.0, 0.0)
    with pytest.raises(ValueError):
        horvitz_thompson_scale(10.0, 1.5)


def test_relative_error_basic():
    assert relative_error(110.0, 100.0) == pytest.approx(0.1)
    assert relative_error(90.0, 100.0) == pytest.approx(0.1)


def test_relative_error_zero_truth():
    assert relative_error(0.0, 0.0) == 0.0
    assert math.isinf(relative_error(1.0, 0.0))


def test_mape_over_keys():
    truths = {"a": 100.0, "b": 50.0}
    estimates = {"a": 110.0, "b": 50.0}
    mape = mean_absolute_percentage_error(estimates, truths, ["a", "b"])
    assert mape == pytest.approx(5.0)


def test_mape_missing_key_counts_as_total_loss():
    truths = {"a": 100.0, "b": 50.0}
    estimates = {"a": 100.0}
    mape = mean_absolute_percentage_error(estimates, truths, ["a", "b"])
    assert mape == pytest.approx(50.0)


def test_mape_errors_capped_at_100_percent():
    truths = {"a": 10.0}
    estimates = {"a": 1000.0}
    assert mean_absolute_percentage_error(estimates, truths, ["a"]) == pytest.approx(100.0)


def test_mape_requires_keys():
    with pytest.raises(ValueError):
        mean_absolute_percentage_error({}, {}, [])


def test_confidence_interval_contains_estimate():
    estimate, lower, upper = sample_total_confidence_interval([10.0, 12.0, 8.0], 0.5)
    assert lower <= estimate <= upper
    assert estimate == pytest.approx((30.0 / 3) * 6)


def test_confidence_interval_is_degenerate_without_sampling():
    estimate, lower, upper = sample_total_confidence_interval([10.0, 12.0], 1.0)
    assert lower == estimate == upper


def test_confidence_interval_validation():
    with pytest.raises(ValueError):
        sample_total_confidence_interval([], 0.5)
    with pytest.raises(ValueError):
        sample_total_confidence_interval([1.0], 0.0)
