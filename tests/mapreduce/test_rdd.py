"""Tests for the mini-RDD runtime and its task-dropping scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce.rdd import LocalRuntime


def test_parallelize_splits_into_partitions():
    runtime = LocalRuntime()
    rdd = runtime.parallelize(range(10), num_partitions=3)
    assert rdd.get_num_partitions() == 3
    assert sorted(rdd.collect(apply_drop=False)) == list(range(10))


def test_parallelize_validates_partition_count():
    with pytest.raises(ValueError):
        LocalRuntime().parallelize([1, 2], num_partitions=0)


def test_map_and_filter():
    runtime = LocalRuntime()
    rdd = runtime.parallelize(range(6), 2).map(lambda x: x * 2).filter(lambda x: x > 4)
    assert sorted(rdd.collect(apply_drop=False)) == [6, 8, 10]


def test_flat_map():
    runtime = LocalRuntime()
    rdd = runtime.parallelize(["a b", "c"], 2).flat_map(str.split)
    assert sorted(rdd.collect(apply_drop=False)) == ["a", "b", "c"]


def test_map_partitions():
    runtime = LocalRuntime()
    rdd = runtime.parallelize(range(8), 4).map_partitions(lambda part: [sum(part)])
    values = rdd.collect(apply_drop=False)
    assert len(values) == 4
    assert sum(values) == sum(range(8))


def test_reduce_by_key_aggregates():
    runtime = LocalRuntime()
    pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
    rdd = runtime.parallelize(pairs, 2).reduce_by_key(lambda x, y: x + y)
    assert dict(rdd.collect(apply_drop=False)) == {"a": 4, "b": 6}


def test_group_by_key_collects_values():
    runtime = LocalRuntime()
    pairs = [("a", 1), ("a", 2), ("b", 3)]
    rdd = runtime.parallelize(pairs, 2).group_by_key()
    grouped = dict(rdd.collect(apply_drop=False))
    assert sorted(grouped["a"]) == [1, 2]
    assert grouped["b"] == [3]


def test_wide_transformation_requires_key_value_pairs():
    runtime = LocalRuntime()
    rdd = runtime.parallelize([1, 2, 3], 2).reduce_by_key(lambda x, y: x + y)
    with pytest.raises(TypeError):
        rdd.collect(apply_drop=False)


def test_distinct():
    runtime = LocalRuntime()
    rdd = runtime.parallelize([1, 2, 2, 3, 3, 3], 3).distinct()
    assert sorted(rdd.collect(apply_drop=False)) == [1, 2, 3]


def test_join():
    runtime = LocalRuntime()
    left = runtime.parallelize([("a", 1), ("b", 2)], 2)
    right = runtime.parallelize([("a", 10), ("c", 30)], 2)
    joined = dict(left.join(right).collect(apply_drop=False))
    assert joined == {"a": (1, 10)}


def test_count_and_reduce_actions():
    runtime = LocalRuntime()
    rdd = runtime.parallelize(range(10), 5)
    assert rdd.count(apply_drop=False) == 10
    assert rdd.reduce(lambda a, b: a + b, apply_drop=False) == 45


def test_reduce_empty_rdd_raises():
    runtime = LocalRuntime()
    with pytest.raises(ValueError):
        runtime.parallelize([], 2).reduce(lambda a, b: a + b)


def test_collect_as_map():
    runtime = LocalRuntime()
    rdd = runtime.parallelize([("x", 1)], 1)
    assert rdd.collect_as_map(apply_drop=False) == {"x": 1}


# ------------------------------------------------------------- task dropping
def test_select_partitions_keeps_ceil_fraction():
    runtime = LocalRuntime(drop_ratio=0.2, rng=np.random.default_rng(0))
    selected = runtime.select_partitions(50)
    assert len(selected) == 40
    assert len(set(selected)) == 40


def test_no_dropping_keeps_all_partitions_in_order():
    runtime = LocalRuntime(drop_ratio=0.0)
    assert runtime.select_partitions(5) == [0, 1, 2, 3, 4]


def test_dropping_skips_some_input_in_final_action():
    runtime = LocalRuntime(drop_ratio=0.5, rng=np.random.default_rng(3))
    rdd = runtime.parallelize(range(100), 10)
    values = rdd.collect(apply_drop=True)
    assert len(values) == 50


def test_dropping_applies_at_shuffle_stages():
    runtime = LocalRuntime(drop_ratio=0.5, rng=np.random.default_rng(1))
    pairs = [(i % 4, 1) for i in range(40)]
    rdd = runtime.parallelize(pairs, 10).reduce_by_key(lambda a, b: a + b)
    counts = dict(rdd.collect(apply_drop=False))
    # Only half the map partitions were processed, so roughly half the total.
    assert sum(counts.values()) == 20


def test_stage_stats_track_executed_and_dropped():
    runtime = LocalRuntime(drop_ratio=0.25, rng=np.random.default_rng(2))
    pairs = [(i % 3, 1) for i in range(24)]
    runtime.parallelize(pairs, 8).reduce_by_key(lambda a, b: a + b).collect(apply_drop=False)
    shuffle_stages = [s for s in runtime.stages if s.description == "reduceByKey"]
    assert len(shuffle_stages) == 1
    assert shuffle_stages[0].total_tasks == 8
    assert shuffle_stages[0].executed_tasks == 6
    assert shuffle_stages[0].dropped_tasks == 2
    assert shuffle_stages[0].drop_ratio == pytest.approx(0.25)


def test_effective_drop_ratio_accumulates_across_stages():
    runtime = LocalRuntime(drop_ratio=0.5, rng=np.random.default_rng(0))
    pairs = [(i % 5, 1) for i in range(20)]
    runtime.parallelize(pairs, 4).reduce_by_key(lambda a, b: a + b).collect(apply_drop=True)
    assert 0.0 < runtime.effective_drop_ratio <= 0.6
    assert runtime.total_tasks_executed + runtime.total_tasks_dropped == sum(
        s.total_tasks for s in runtime.stages
    )


def test_invalid_drop_ratio_rejected():
    with pytest.raises(ValueError):
        LocalRuntime(drop_ratio=1.0)


def test_from_partitions_preserves_layout():
    runtime = LocalRuntime()
    rdd = runtime.from_partitions([[1, 2], [3]])
    assert rdd.get_num_partitions() == 2
    assert sorted(rdd.collect(apply_drop=False)) == [1, 2, 3]
