"""Tests for the word-count workload and its accuracy metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce.wordcount import (
    exact_word_count,
    tokenize,
    word_count_job,
    wordcount_accuracy_curve,
    wordcount_mape,
)
from repro.workloads.text import CorpusSpec, synthetic_corpus


@pytest.fixture(scope="module")
def corpus():
    spec = CorpusSpec(num_documents=60, words_per_document=60, vocabulary_size=300,
                      num_topics=4, topic_vocabulary_size=30)
    return synthetic_corpus(spec, seed=1)


def test_tokenize_lowercases_and_splits():
    assert tokenize("Hello, World! world") == ["hello", "world", "world"]


def test_tokenize_keeps_numbers_and_apostrophes():
    assert tokenize("it's 42") == ["it's", "42"]


def test_exact_word_count_totals(corpus):
    counts = exact_word_count(corpus, num_partitions=10)
    total_words = sum(len(tokenize(doc)) for doc in corpus)
    assert sum(counts.values()) == total_words


def test_word_count_without_dropping_matches_plain_python(corpus):
    counts, runtime = word_count_job(corpus, num_partitions=10, drop_ratio=0.0)
    manual = {}
    for doc in corpus:
        for word in tokenize(doc):
            manual[word] = manual.get(word, 0) + 1
    assert counts == manual
    assert runtime.total_tasks_dropped == 0


def test_word_count_with_dropping_executes_fewer_tasks(corpus):
    _, runtime = word_count_job(corpus, num_partitions=10, drop_ratio=0.3,
                                rng=np.random.default_rng(0))
    shuffle = [s for s in runtime.stages if s.description == "reduceByKey"][0]
    assert shuffle.executed_tasks == 7
    assert shuffle.dropped_tasks == 3


def test_scaled_estimates_are_close_to_truth_for_popular_words(corpus):
    exact = exact_word_count(corpus, num_partitions=10)
    approx, _ = word_count_job(corpus, num_partitions=10, drop_ratio=0.2,
                               rng=np.random.default_rng(1))
    top_word = max(exact, key=exact.get)
    assert approx[top_word] == pytest.approx(exact[top_word], rel=0.35)


def test_unscaled_estimates_undercount(corpus):
    exact = exact_word_count(corpus, num_partitions=10)
    approx, _ = word_count_job(corpus, num_partitions=10, drop_ratio=0.4,
                               rng=np.random.default_rng(1), scale_estimates=False)
    assert sum(approx.values()) < sum(exact.values())


def test_mape_zero_for_identical_counts(corpus):
    exact = exact_word_count(corpus, num_partitions=10)
    assert wordcount_mape(exact, exact) == 0.0


def test_mape_positive_under_dropping(corpus):
    exact = exact_word_count(corpus, num_partitions=10)
    approx, _ = word_count_job(corpus, num_partitions=10, drop_ratio=0.4,
                               rng=np.random.default_rng(2))
    assert wordcount_mape(exact, approx, top_n=50) > 0.0


def test_mape_requires_exact_counts():
    with pytest.raises(ValueError):
        wordcount_mape({}, {})


def test_accuracy_curve_starts_at_zero_and_grows(corpus):
    curve = wordcount_accuracy_curve(corpus, (0.0, 0.2, 0.6), num_partitions=10,
                                     repetitions=2, seed=3)
    ratios = [theta for theta, _ in curve]
    errors = [err for _, err in curve]
    assert ratios == [0.0, 0.2, 0.6]
    assert errors[0] == 0.0
    assert errors[1] > 0.0
    assert errors[2] > errors[1]
