"""DiAS reproduction: Differential Approximation and Sprinting for
Multi-Priority Big Data Engines (Birke et al., Middleware 2019).

The library is organised in layers:

* :mod:`repro.simulation` — discrete-event simulation kernel and metrics.
* :mod:`repro.engine` — the Spark-like processing-engine substrate (jobs,
  cluster slots, waves, DVFS, energy, HDFS-style block store).
* :mod:`repro.mapreduce` — a mini MapReduce runtime that really executes the
  text and graph analyses with task dropping (accuracy measurements).
* :mod:`repro.models` — the stochastic models of Section 4 (PH distributions,
  task-level and wave-level job models, priority-queue response times) plus
  accuracy/regression/sprinting models.
* :mod:`repro.core` — DiAS itself: priority buffers, dropper, sprinter,
  model-guided deflator, scheduling policies and the end-to-end controller.
* :mod:`repro.workloads` — synthetic datasets, job traces and the paper's
  experimental scenarios.
* :mod:`repro.experiments` — per-figure/per-table reproduction entry points.
* :mod:`repro.fleet` — multi-cluster fleet simulation: pluggable routing
  dispatchers, fleet-wide sprint-budget arbitration and fleet-level metrics.
* :mod:`repro.dag` — stage-DAG jobs (query plans, ML pipelines): dependency
  graphs, pluggable stage schedulers, critical-path/slack analytics and
  DiAS-style per-stage differential approximation.

Quick start::

    from repro import (SchedulingPolicy, reference_two_priority_scenario,
                       run_policies)

    scenario = reference_two_priority_scenario(num_jobs=200)
    policies = [SchedulingPolicy.preemptive_priority(),
                SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})]
    comparison = run_policies(scenario, policies, baseline="P")
    print(comparison.relative_difference("DA(0/20)", priority=0, metric="mean"))
"""

from repro.core.config import SprintConfig
from repro.core.deflator import DeflatorDecision, TaskDeflator
from repro.core.dias import DiASSimulation, SimulationResult, run_policy
from repro.core.dropper import DropPlan, TaskDropper, find_missing_partitions
from repro.core.policies import SchedulingPolicy
from repro.dag import (
    DagExecution,
    DagJob,
    DagSimulation,
    DagStage,
    StageDAG,
    analyze_critical_path,
    make_stage_scheduler,
    run_dag_policy,
)
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.dvfs import DVFSModel, FrequencyLevel
from repro.engine.energy import EnergyMeter, PowerModel
from repro.engine.job import Job, JobFactory, StageSpec
from repro.engine.profiles import JobClassProfile, TaskTimeModel
from repro.experiments.harness import PolicyComparison, run_policies
from repro.fleet import FleetResult, FleetSimulation, make_dispatcher, run_fleet
from repro.models.accuracy import AccuracyModel, compose_stage_drop_ratios
from repro.models.ph import PhaseType
from repro.models.priority_queue import PriorityClassInput, PriorityQueueModel
from repro.models.task_level import TaskLevelModel
from repro.models.wave_level import WaveLevelModel
from repro.workloads.scenarios import (
    HIGH,
    LOW,
    MEDIUM,
    DagScenario,
    FleetScenario,
    Scenario,
    dag_fork_join_scenario,
    dag_layered_scenario,
    dag_triangle_count_scenario,
    fleet_three_priority_scenario,
    fleet_two_priority_scenario,
    reference_two_priority_scenario,
    three_priority_scenario,
    triangle_count_scenario,
)

__version__ = "0.1.0"

__all__ = [
    "SprintConfig",
    "DeflatorDecision",
    "TaskDeflator",
    "DiASSimulation",
    "SimulationResult",
    "run_policy",
    "DropPlan",
    "TaskDropper",
    "find_missing_partitions",
    "SchedulingPolicy",
    "Cluster",
    "ClusterConfig",
    "DVFSModel",
    "FrequencyLevel",
    "EnergyMeter",
    "PowerModel",
    "Job",
    "JobFactory",
    "StageSpec",
    "JobClassProfile",
    "TaskTimeModel",
    "PolicyComparison",
    "run_policies",
    "AccuracyModel",
    "compose_stage_drop_ratios",
    "PhaseType",
    "PriorityClassInput",
    "PriorityQueueModel",
    "TaskLevelModel",
    "WaveLevelModel",
    "FleetResult",
    "FleetSimulation",
    "make_dispatcher",
    "run_fleet",
    "DagExecution",
    "DagJob",
    "DagSimulation",
    "DagStage",
    "StageDAG",
    "analyze_critical_path",
    "make_stage_scheduler",
    "run_dag_policy",
    "HIGH",
    "LOW",
    "MEDIUM",
    "DagScenario",
    "FleetScenario",
    "Scenario",
    "dag_fork_join_scenario",
    "dag_layered_scenario",
    "dag_triangle_count_scenario",
    "fleet_three_priority_scenario",
    "fleet_two_priority_scenario",
    "reference_two_priority_scenario",
    "three_priority_scenario",
    "triangle_count_scenario",
    "__version__",
]
