"""Checkpoint/resume for long simulation runs.

A checkpoint is a pickle of the full dynamic state of a
:class:`~repro.core.dias.DiASSimulation` or
:class:`~repro.fleet.simulation.FleetSimulation` at a *quiescent* simulated
instant: no job buffered, running, or routed-but-unfinished.  Restricting
snapshots to quiescent points keeps the state small and exact — there are no
in-flight task events to serialise, only completed-job metrics, energy/sprint
accounts, RNG states and the fault injector's pending crash/repair
transitions (stored as absolute simulated times and re-scheduled verbatim on
restore).

Determinism contract: a resumed run re-generates the same trace from the
stored configuration, schedules only the arrivals strictly after the
snapshot time, restores every named random stream's bit-generator state, and
re-enters the pending fault transitions at DES priority 3 — so the resumed
run's event order, draws and metrics are bitwise-identical to the
uninterrupted run's.

Checkpoint files are written atomically (temp file + ``os.replace``) so a
process killed mid-write never corrupts the latest good snapshot.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Optional

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


# ---------------------------------------------------------------------------
# Save / load
# ---------------------------------------------------------------------------
def save_checkpoint(path: str, state: Dict[str, Any]) -> None:
    """Atomically write ``state`` to ``path``."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, path)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Load and sanity-check a checkpoint file."""
    with open(path, "rb") as handle:
        state = pickle.load(handle)
    if not isinstance(state, dict) or state.get("magic") != "repro-checkpoint":
        raise ValueError(f"{path!r} is not a repro checkpoint file")
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} in {path!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return state


# ---------------------------------------------------------------------------
# Per-controller state
# ---------------------------------------------------------------------------
def controller_state(controller) -> Dict[str, Any]:
    """Snapshot one quiescent :class:`DiASSimulation` controller."""
    meter = controller.energy_meter
    state: Dict[str, Any] = {
        "metrics": controller.metrics,
        "completed": controller._completed,
        "total_evictions": controller._total_evictions,
        "job_state": controller._job_state,
        "service_estimates": controller._service_estimates,
        "queued_work": controller._queued_work,
        "energy": {
            "account": meter.account,
            "mode": meter._mode,
            "last_time": meter._last_time,
        },
        "sprinter": None,
        "injector": None,
    }
    sprinter = controller.sprinter
    if sprinter is not None:
        state["sprinter"] = {
            "budget": sprinter._budget,
            "budget_updated_at": sprinter._budget_updated_at,
            "total_sprinted_seconds": sprinter.total_sprinted_seconds,
            "sprints_started": sprinter.sprints_started,
            "sprints_denied": sprinter.sprints_denied,
        }
    if controller.faults is not None:
        state["injector"] = controller.faults.state_dict()
    return state


def restore_controller(controller, state: Dict[str, Any]) -> None:
    """Restore one controller; the shared simulator clock must be set first."""
    controller.metrics = state["metrics"]
    controller._completed = state["completed"]
    controller._total_evictions = state["total_evictions"]
    controller._job_state = dict(state["job_state"])
    controller._service_estimates = dict(state["service_estimates"])
    controller._queued_work = state["queued_work"]
    meter = controller.energy_meter
    meter.account = state["energy"]["account"]
    meter._mode = state["energy"]["mode"]
    meter._last_time = state["energy"]["last_time"]
    sprint_state = state["sprinter"]
    if sprint_state is not None and controller.sprinter is not None:
        sprinter = controller.sprinter
        sprinter._budget = sprint_state["budget"]
        sprinter._budget_updated_at = sprint_state["budget_updated_at"]
        sprinter.total_sprinted_seconds = sprint_state["total_sprinted_seconds"]
        sprinter.sprints_started = sprint_state["sprints_started"]
        sprinter.sprints_denied = sprint_state["sprints_denied"]
    if state["injector"] is not None:
        if controller.faults is None:
            raise ValueError(
                "checkpoint carries fault-injector state but the resumed run "
                "was built without faults; pass the same --faults spec"
            )
        controller.faults.restore(state["injector"])
    elif controller.faults is not None:
        raise ValueError(
            "resumed run injects faults but the checkpoint was taken without "
            "them; pass the same --faults spec"
        )
    controller._resume_time = state.get("resume_time")


def _stream_states(streams) -> Dict[str, Any]:
    return {
        name: generator.bit_generator.state
        for name, generator in streams._streams.items()
    }


def _restore_streams(streams, states: Dict[str, Any]) -> None:
    for name, state in states.items():
        streams.stream(name).bit_generator.state = state


# ---------------------------------------------------------------------------
# Fleet-level state
# ---------------------------------------------------------------------------
def fleet_state(fleet, config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Snapshot one quiescent :class:`FleetSimulation`."""
    now = fleet.sim.now
    dispatcher_state = {}
    if hasattr(fleet.dispatcher, "_next"):
        dispatcher_state["next"] = fleet.dispatcher._next
    budget_state = None
    pool = fleet.budget_pool
    if pool is not None:
        budget_state = {
            "budget": pool._budget,
            "updated_at": pool._updated_at,
            "exhaustions": pool.exhaustions,
        }
    return {
        "magic": "repro-checkpoint",
        "version": CHECKPOINT_VERSION,
        "kind": "fleet",
        "time": now,
        "routed": fleet._routed,
        "dispatch_counts": list(fleet.dispatch_counts),
        "quarantine_redirects": fleet.quarantine_redirects,
        "dispatcher": dispatcher_state,
        "budget_pool": budget_state,
        "streams": _stream_states(fleet.streams),
        "controllers": [controller_state(c) for c in fleet.controllers],
        "next_checkpoint_at": fleet._next_checkpoint_at,
        "config": config,
    }


def restore_fleet(fleet, payload: Dict[str, Any]) -> None:
    """Rehydrate a fresh, not-yet-run :class:`FleetSimulation` from a snapshot."""
    if payload.get("kind") != "fleet":
        raise ValueError(
            f"checkpoint kind {payload.get('kind')!r} cannot resume a fleet run"
        )
    if fleet._ran:
        raise RuntimeError("restore() must be called before run()")
    controllers = payload["controllers"]
    if len(controllers) != fleet.num_clusters:
        raise ValueError(
            f"checkpoint has {len(controllers)} clusters but the resumed run "
            f"was built with {fleet.num_clusters}; configurations must match"
        )
    t0 = payload["time"]
    # The clock moves first: controller/injector restore re-schedules pending
    # fault transitions at absolute times relative to the restored `now`.
    fleet.sim._now = t0
    fleet._resume_time = t0
    fleet._routed = payload["routed"]
    fleet.dispatch_counts = list(payload["dispatch_counts"])
    fleet.quarantine_redirects = payload["quarantine_redirects"]
    if payload["dispatcher"]:
        fleet.dispatcher._next = payload["dispatcher"]["next"]
    budget_state = payload["budget_pool"]
    if budget_state is not None and fleet.budget_pool is not None:
        pool = fleet.budget_pool
        pool._budget = budget_state["budget"]
        pool._updated_at = budget_state["updated_at"]
        pool.exhaustions = budget_state["exhaustions"]
    _restore_streams(fleet.streams, payload["streams"])
    for controller, state in zip(fleet.controllers, controllers):
        state = dict(state)
        state["resume_time"] = t0
        restore_controller(controller, state)
    fleet._next_checkpoint_at = payload["next_checkpoint_at"]


# ---------------------------------------------------------------------------
# Standalone DiAS state
# ---------------------------------------------------------------------------
def dias_state(simulation, config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Snapshot one quiescent standalone :class:`DiASSimulation`."""
    return {
        "magic": "repro-checkpoint",
        "version": CHECKPOINT_VERSION,
        "kind": "dias",
        "time": simulation.sim.now,
        "streams": _stream_states(simulation.streams),
        "controller": controller_state(simulation),
        "config": config,
    }


def restore_dias(simulation, payload: Dict[str, Any]) -> None:
    """Rehydrate a fresh, not-yet-run :class:`DiASSimulation` from a snapshot."""
    if payload.get("kind") != "dias":
        raise ValueError(
            f"checkpoint kind {payload.get('kind')!r} cannot resume a DiAS run"
        )
    t0 = payload["time"]
    simulation.sim._now = t0
    _restore_streams(simulation.streams, payload["streams"])
    state = dict(payload["controller"])
    state["resume_time"] = t0
    restore_controller(simulation, state)


def attach_dias_checkpointing(simulation, every: float, path: str) -> None:
    """Periodic quiescent-point checkpoints on a standalone DiAS run.

    Installs an ``on_job_complete`` hook: at the first quiescent completion
    past each ``every``-second mark of the simulated clock, the full state is
    snapshotted to ``path`` (atomically, overwriting the previous snapshot).

    The write is deferred to a zero-delay priority-4 event because the hook
    fires *inside* the completion event, before the controller settles (its
    energy meter flips to idle only after the hook returns); snapshotting
    there would capture mid-event state and break bitwise resume.  The
    deferred event observes only, so checkpointed runs remain
    bitwise-identical to unchecked ones.
    """
    if every <= 0:
        raise ValueError(f"checkpoint interval must be positive, got {every!r}")
    marks = {"next_at": every, "armed": False}

    def _drained(running_ok: bool) -> bool:
        now = simulation.sim.now
        if simulation._running is not None and not running_ok:
            return False
        if len(simulation.buffers):
            return False
        arrived = 0
        for job in simulation.jobs:  # arrival-sorted
            if job.arrival_time > now:
                break
            arrived += 1
        return arrived == simulation._completed

    def _write(_sim) -> None:
        marks["armed"] = False
        now = simulation.sim.now
        if now < marks["next_at"] or not _drained(running_ok=False):
            return
        save_checkpoint(path, dias_state(simulation))
        marks["next_at"] = now + every

    def _hook() -> None:
        if simulation.sim.now < marks["next_at"]:
            return
        # Inside the completion event `_running` still points at the job
        # that just finished (it is cleared after this hook returns), so the
        # arming check tolerates it; the deferred write re-checks strictly.
        if marks["armed"] or not _drained(running_ok=True):
            return
        marks["armed"] = True
        simulation.sim.schedule(0.0, _write, priority=4)

    simulation.on_job_complete = _hook
