"""Chaos ablation: fleet sensitivity to fault intensity.

``repro chaos`` runs the *same* fleet configuration and seed at several
fault-intensity levels — multiples of a base
:class:`~repro.faults.spec.FaultSpec` via :meth:`FaultSpec.scaled` (level 0
is the fault-free baseline, 1 the spec as given, 2 twice the crash rate and
failure/straggler probabilities) — and reports how the headline metrics move
with intensity.  Because workload draws and fault draws live on separate
named random streams, every level sees the identical job trace (common
random numbers): the deltas are pure fault effects, not sampling noise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.faults.spec import FaultSpec
from repro.telemetry import NULL_HUB, TelemetryHub


def fleet_from_config(config: Dict[str, Any], telemetry: TelemetryHub = NULL_HUB):
    """Rebuild a :class:`~repro.fleet.simulation.FleetSimulation` from the
    configuration dictionary stored inside a fleet checkpoint.

    The checkpoint carries the full pickled scenario/policy, so the resumed
    process regenerates exactly the trace and topology of the interrupted
    run regardless of which flags the resuming invocation passed.
    """
    from repro.fleet.simulation import FleetSimulation

    scenario = config["scenario"]
    simulation = FleetSimulation(
        policy=config["policy"],
        jobs=scenario.generate_trace(seed=config["seed"]),
        clusters=scenario.make_clusters(),
        dispatcher=config["dispatcher"],
        power_of_d=config["power_of_d"],
        seed=config["seed"],
        sprint_budget=config["sprint_budget"],
        telemetry=telemetry,
        faults=config["faults"],
        checkpoint_every=config["checkpoint_every"],
        checkpoint_path=config["checkpoint_path"],
    )
    simulation.checkpoint_config = dict(config)
    return simulation


def run_chaos(
    scenario,
    policy,
    spec: FaultSpec,
    levels: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    dispatcher: str = "round_robin",
    power_of_d: Optional[int] = None,
    sprint_budget: str = "per-cluster",
    seed: int = 0,
    telemetry: TelemetryHub = NULL_HUB,
    telemetry_level: Optional[float] = None,
) -> List[Dict[str, float]]:
    """Run the fault-intensity ablation; one result row per level.

    Levels must be non-negative and are reported in the given order.  Each
    row carries the level, the headline fleet metrics at that level, the
    fault/recovery counters, and the latency/energy deltas against the first
    level-0 row (``nan`` when no fault-free baseline is among the levels).

    ``telemetry_level`` restricts the hub to the runs at that one level (the
    CLI traces only the highest level so span/job identifiers stay unique in
    the exported file); ``None`` streams every level.
    """
    from repro.fleet.simulation import FleetSimulation

    if not levels:
        raise ValueError("chaos needs at least one fault-intensity level")
    if any(level < 0 for level in levels):
        raise ValueError(f"fault-intensity levels must be >= 0, got {list(levels)!r}")
    rows: List[Dict[str, float]] = []
    baseline: Optional[Dict[str, float]] = None
    for level in levels:
        scaled = spec.scaled(level)
        hub = (
            telemetry
            if telemetry_level is None or level == telemetry_level
            else NULL_HUB
        )
        simulation = FleetSimulation(
            policy=policy,
            jobs=scenario.generate_trace(seed=seed),
            clusters=scenario.make_clusters(),
            dispatcher=dispatcher,
            power_of_d=power_of_d,
            seed=seed,
            sprint_budget=sprint_budget,
            telemetry=hub,
            faults=scaled,
        )
        result = simulation.run()
        counters = simulation.fault_counters()
        row: Dict[str, float] = {
            "level": float(level),
            "completed_jobs": float(result.completed_jobs),
            "mean_response_s": result.mean_response_time(),
            "p95_response_s": result.tail_response_time(),
            "resource_waste_pct": 100.0 * result.resource_waste,
            "energy_kj": result.total_energy_kilojoules,
            "crashes": float(counters.get("crashes", 0)),
            "stragglers": float(counters.get("stragglers", 0)),
            "task_failures": float(counters.get("task_failures", 0)),
            "retries": float(counters.get("retries", 0)),
            "speculations": float(counters.get("speculations", 0)),
            "job_restarts": float(counters.get("job_restarts", 0)),
            "quarantined": float(counters.get("quarantine_redirects", 0)),
        }
        if baseline is None and level == 0:
            baseline = row
        rows.append(row)
    for row in rows:
        if baseline is None or baseline["mean_response_s"] <= 0:
            row["delta_mean_pct"] = float("nan")
            row["delta_energy_pct"] = float("nan")
            continue
        row["delta_mean_pct"] = 100.0 * (
            row["mean_response_s"] / baseline["mean_response_s"] - 1.0
        )
        row["delta_energy_pct"] = (
            100.0 * (row["energy_kj"] / baseline["energy_kj"] - 1.0)
            if baseline["energy_kj"] > 0
            else float("nan")
        )
    return rows
