"""Fault-specification grammar and validation.

A fault spec is a compact command-line string describing which failure
modes a run injects and how recovery reacts.  The grammar is
``kind:key=value,key=value`` segments joined by ``;``::

    crash:mttf=600,repair=30,dist=exp,recovery=requeue,probation=60
    stragglers:p=0.05,slowdown=4,speculate=1.5
    taskfail:p=0.02,retries=3,backoff=1.0,jitter=0.5

Three fault kinds exist:

* ``crash`` — whole-server failures with mean time to failure ``mttf`` and
  repair time ``repair`` (``repair=0`` means the server never comes back).
  ``dist`` selects exponential or deterministic inter-failure/repair times;
  ``recovery`` selects wave re-execution of lost tasks (``requeue``) or a
  full job restart (``restart``); ``probation`` is the post-repair grace
  period before a fleet dispatcher routes to the cluster again.
* ``stragglers`` — each task independently slows down by ``slowdown``× with
  probability ``p``; ``speculate`` launches a backup copy once a straggling
  task exceeds ``speculate``× its nominal duration (``0`` disables
  speculation, first finisher wins).
* ``taskfail`` — each task fails transiently with probability ``p`` and is
  retried up to ``retries`` times with exponential backoff base ``backoff``
  and uniform jitter fraction ``jitter``; exhausted retries escalate to a
  job-level re-execution.

Unknown kinds, keys or enum values raise :class:`ValueError` naming the
valid choices, matching the CLI convention for routers and schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

#: Fault kinds understood by :func:`parse_fault_spec`.
FAULT_KINDS = ("crash", "stragglers", "taskfail")

#: Inter-failure / repair time distributions for ``crash``.
CRASH_DISTS = ("exp", "fixed")

#: Crash recovery policies: re-queue lost tasks into the wave, or restart
#: the whole job from scratch.
CRASH_RECOVERIES = ("requeue", "restart")


@dataclass(frozen=True)
class CrashSpec:
    """Server crash/repair process parameters."""

    mttf: float
    repair: float = 60.0
    dist: str = "exp"
    recovery: str = "requeue"
    probation: float = 0.0

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError(f"crash mttf must be positive, got {self.mttf!r}")
        if self.repair < 0:
            raise ValueError(f"crash repair must be non-negative, got {self.repair!r}")
        if self.probation < 0:
            raise ValueError(
                f"crash probation must be non-negative, got {self.probation!r}"
            )
        _check_choice("crash dist", self.dist, CRASH_DISTS)
        _check_choice("crash recovery", self.recovery, CRASH_RECOVERIES)

    @property
    def permanent(self) -> bool:
        """``repair=0`` models servers that never come back."""
        return self.repair == 0.0


@dataclass(frozen=True)
class StragglerSpec:
    """Per-task slowdown (straggler) parameters."""

    probability: float
    slowdown: float = 4.0
    speculate: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"straggler p must be in [0, 1], got {self.probability!r}"
            )
        if self.slowdown <= 1.0:
            raise ValueError(
                f"straggler slowdown must be > 1, got {self.slowdown!r}"
            )
        if self.speculate < 0:
            raise ValueError(
                f"straggler speculate factor must be non-negative, got {self.speculate!r}"
            )


@dataclass(frozen=True)
class TaskFailSpec:
    """Transient task-failure and retry-with-backoff parameters."""

    probability: float
    retries: int = 3
    backoff: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"taskfail p must be in [0, 1], got {self.probability!r}")
        if self.retries < 0:
            raise ValueError(f"taskfail retries must be non-negative, got {self.retries!r}")
        if self.backoff < 0:
            raise ValueError(f"taskfail backoff must be non-negative, got {self.backoff!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"taskfail jitter must be in [0, 1], got {self.jitter!r}")


@dataclass(frozen=True)
class FaultSpec:
    """A full fault plan: any combination of the three fault kinds."""

    crash: Optional[CrashSpec] = None
    stragglers: Optional[StragglerSpec] = None
    taskfail: Optional[TaskFailSpec] = None
    source: str = ""

    @property
    def is_empty(self) -> bool:
        return self.crash is None and self.stragglers is None and self.taskfail is None

    def scaled(self, level: float) -> "FaultSpec":
        """Scale every failure *rate* by ``level`` (for ablation sweeps).

        ``level=0`` disables all faults; ``level=2`` doubles the crash rate
        (halves the MTTF) and doubles the straggler/taskfail probabilities
        (capped at 1).  Repair times, slowdowns and retry policies are left
        unchanged — the sweep varies how often things break, not how badly.
        """
        if level < 0:
            raise ValueError(f"fault level must be non-negative, got {level!r}")
        if level == 0:
            return FaultSpec(source=self.source)
        crash = self.crash
        if crash is not None:
            crash = replace(crash, mttf=crash.mttf / level)
        stragglers = self.stragglers
        if stragglers is not None:
            stragglers = replace(
                stragglers, probability=min(1.0, stragglers.probability * level)
            )
        taskfail = self.taskfail
        if taskfail is not None:
            taskfail = replace(
                taskfail, probability=min(1.0, taskfail.probability * level)
            )
        return FaultSpec(
            crash=crash, stragglers=stragglers, taskfail=taskfail, source=self.source
        )

    def describe(self) -> str:
        """Human-readable one-line summary for reports."""
        parts = []
        if self.crash is not None:
            repair = "permanent" if self.crash.permanent else f"repair={self.crash.repair:g}s"
            parts.append(
                f"crash(mttf={self.crash.mttf:g}s, {repair}, "
                f"{self.crash.dist}, {self.crash.recovery})"
            )
        if self.stragglers is not None:
            spec = (
                f"speculate@{self.stragglers.speculate:g}x"
                if self.stragglers.speculate > 0
                else "no speculation"
            )
            parts.append(
                f"stragglers(p={self.stragglers.probability:g}, "
                f"x{self.stragglers.slowdown:g}, {spec})"
            )
        if self.taskfail is not None:
            parts.append(
                f"taskfail(p={self.taskfail.probability:g}, "
                f"retries={self.taskfail.retries})"
            )
        return "; ".join(parts) if parts else "none"


def _check_choice(kind: str, value: str, valid: Tuple[str, ...]) -> None:
    if value not in valid:
        raise ValueError(
            f"unknown {kind} {value!r}; valid choices: {', '.join(valid)}"
        )


def _parse_fields(kind: str, text: str, valid_keys: Tuple[str, ...]) -> Dict[str, str]:
    fields: Dict[str, str] = {}
    if not text:
        return fields
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"malformed {kind} field {item!r}; expected key=value "
                f"(valid keys: {', '.join(valid_keys)})"
            )
        key, _, value = item.partition("=")
        key = key.strip()
        if key not in valid_keys:
            raise ValueError(
                f"unknown {kind} key {key!r}; valid keys: {', '.join(valid_keys)}"
            )
        if key in fields:
            raise ValueError(f"duplicate {kind} key {key!r}")
        fields[key] = value.strip()
    return fields


def _float_field(kind: str, fields: Dict[str, str], key: str, default: float) -> float:
    raw = fields.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{kind} {key} must be a number, got {raw!r}") from None


def _int_field(kind: str, fields: Dict[str, str], key: str, default: int) -> int:
    raw = fields.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{kind} {key} must be an integer, got {raw!r}") from None


def _required(kind: str, fields: Dict[str, str], key: str) -> None:
    if key not in fields:
        raise ValueError(f"{kind} requires {key}=<value>")


def parse_fault_spec(
    spec: Union[str, "FaultSpec", None]
) -> Optional["FaultSpec"]:
    """Parse a fault-spec string into a :class:`FaultSpec`.

    Accepts an already-parsed :class:`FaultSpec` (returned as-is) or ``None``
    / empty string (returns ``None``: no fault injection).
    """
    if spec is None:
        return None
    if isinstance(spec, FaultSpec):
        return None if spec.is_empty else spec
    text = spec.strip()
    if not text:
        return None
    crash: Optional[CrashSpec] = None
    stragglers: Optional[StragglerSpec] = None
    taskfail: Optional[TaskFailSpec] = None
    for segment in text.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        kind, _, body = segment.partition(":")
        kind = kind.strip().lower()
        _check_choice("fault kind", kind, FAULT_KINDS)
        if kind == "crash":
            if crash is not None:
                raise ValueError("duplicate crash segment in fault spec")
            keys = ("mttf", "repair", "dist", "recovery", "probation")
            fields = _parse_fields("crash", body, keys)
            _required("crash", fields, "mttf")
            crash = CrashSpec(
                mttf=_float_field("crash", fields, "mttf", 0.0),
                repair=_float_field("crash", fields, "repair", 60.0),
                dist=fields.get("dist", "exp").lower(),
                recovery=fields.get("recovery", "requeue").lower(),
                probation=_float_field("crash", fields, "probation", 0.0),
            )
        elif kind == "stragglers":
            if stragglers is not None:
                raise ValueError("duplicate stragglers segment in fault spec")
            keys = ("p", "slowdown", "speculate")
            fields = _parse_fields("stragglers", body, keys)
            _required("stragglers", fields, "p")
            stragglers = StragglerSpec(
                probability=_float_field("stragglers", fields, "p", 0.0),
                slowdown=_float_field("stragglers", fields, "slowdown", 4.0),
                speculate=_float_field("stragglers", fields, "speculate", 1.5),
            )
        else:
            if taskfail is not None:
                raise ValueError("duplicate taskfail segment in fault spec")
            keys = ("p", "retries", "backoff", "jitter")
            fields = _parse_fields("taskfail", body, keys)
            _required("taskfail", fields, "p")
            taskfail = TaskFailSpec(
                probability=_float_field("taskfail", fields, "p", 0.0),
                retries=_int_field("taskfail", fields, "retries", 3),
                backoff=_float_field("taskfail", fields, "backoff", 1.0),
                jitter=_float_field("taskfail", fields, "jitter", 0.5),
            )
    result = FaultSpec(crash=crash, stragglers=stragglers, taskfail=taskfail, source=text)
    return None if result.is_empty else result
