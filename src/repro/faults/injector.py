"""Deterministic fault injection driven by namespaced random streams.

A :class:`FaultInjector` owns one controller's failure processes: per-worker
crash/repair timelines, per-task transient failures, per-task straggler
slowdowns and the retry backoff jitter.  All randomness comes from dedicated
``<namespace>faults/*`` streams of the run's
:class:`~repro.simulation.random_streams.RandomStreams`, so fault draws are
independent of the workload streams (enabling common-random-numbers
comparisons of faulty vs fault-free runs) and identical between serial and
parallel replication runs.

Crash and repair events are scheduled at DES priority 3 — strictly after
arrivals (0), task completions (1) and sprint timers (2) at the same
timestamp — so their ordering relative to the workload is resolved by
priority, never by insertion sequence.  That property is what makes
checkpoint/resume bitwise-reproducible: a resumed run re-schedules the
pending transitions from their absolute times and obtains the same event
order as the uninterrupted run.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro.engine.cluster import Cluster
from repro.faults.spec import FaultSpec
from repro.simulation.des import Simulator
from repro.simulation.random_streams import RandomStreams
from repro.telemetry.hub import NULL_HUB, TelemetryHub

#: Names of the injector's counters (stable reporting order).
FAULT_COUNTERS = (
    "crashes",
    "repairs",
    "task_failures",
    "retries",
    "stragglers",
    "speculations",
    "job_restarts",
)


class FaultInjector:
    """Injects crashes, stragglers and task failures into one controller.

    The injector is *passive* for task-level faults: the execution engine
    asks it for draws (:meth:`draw_slowdown`, :meth:`draw_task_failure`,
    :meth:`retry_delay`) at dispatch time.  Server crashes are *active*:
    :meth:`start` schedules the first crash of every worker, and the
    crash/repair callbacks drive the cluster's failed-worker set, notify the
    controller through ``on_crash``/``on_repair`` and schedule the next
    transition.
    """

    def __init__(
        self,
        spec: FaultSpec,
        sim: Simulator,
        cluster: Cluster,
        streams: RandomStreams,
        namespace: str = "",
        telemetry: TelemetryHub = NULL_HUB,
        telemetry_src: str = "faults",
        on_crash: Optional[Callable[[int], None]] = None,
        on_repair: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.spec = spec
        self.sim = sim
        self.cluster = cluster
        self.namespace = namespace
        self.telemetry = telemetry
        self.telemetry_src = telemetry_src
        self.on_crash = on_crash
        self.on_repair = on_repair

        self._crash = spec.crash
        self._straggler = spec.stragglers
        self._taskfail = spec.taskfail
        # Streams are materialised eagerly so their creation is independent
        # of when the first draw happens (name-derived seeding makes order
        # irrelevant anyway, but eager creation keeps checkpoints complete).
        self._crash_rng = (
            streams.stream(namespace + "faults/crash") if self._crash else None
        )
        self._straggler_rng = (
            streams.stream(namespace + "faults/straggler") if self._straggler else None
        )
        self._taskfail_rng = (
            streams.stream(namespace + "faults/taskfail") if self._taskfail else None
        )
        self._backoff_rng = (
            streams.stream(namespace + "faults/backoff") if self._taskfail else None
        )

        #: worker index -> ("up", next_crash_time) | ("down", repair_time).
        #: Times are absolute simulated times; ``inf`` marks a permanent
        #: failure.  This map *is* the crash process's checkpoint state.
        self.worker_state: Dict[int, Tuple[str, float]] = {}
        #: Simulated time of the most recent repair (drives probation).
        self.last_repair_time: Optional[float] = None
        self.counters: Dict[str, int] = {name: 0 for name in FAULT_COUNTERS}
        self.started = False
        self.stopped = False
        #: worker -> its pending crash/repair event (cancelled by stop()).
        self._pending_events: Dict[int, object] = {}

    # -------------------------------------------------------------- queries
    @property
    def impaired(self) -> bool:
        """True while at least one worker is down."""
        return bool(self.cluster.failed_workers)

    def eligible(self, now: float) -> bool:
        """Dispatcher-facing health check: up, and past post-repair probation."""
        if self.impaired:
            return False
        if self._crash is None or self._crash.probation <= 0.0:
            return True
        last = self.last_repair_time
        return last is None or now >= last + self._crash.probation

    @property
    def crash_recovery(self) -> str:
        """Crash recovery policy name (``requeue`` or ``restart``)."""
        return self._crash.recovery if self._crash is not None else "requeue"

    @property
    def speculation_factor(self) -> float:
        """Backup copies launch at this multiple of nominal duration (0 = off)."""
        return self._straggler.speculate if self._straggler is not None else 0.0

    @property
    def max_retries(self) -> int:
        return self._taskfail.retries if self._taskfail is not None else 0

    def count(self, name: str) -> int:
        return self.counters[name]

    # ---------------------------------------------------------- task-level
    def draw_slowdown(self) -> float:
        """Per-task straggler draw: the slowdown factor (1.0 = nominal)."""
        spec = self._straggler
        if spec is None:
            return 1.0
        if float(self._straggler_rng.random()) < spec.probability:
            self.counters["stragglers"] += 1
            return spec.slowdown
        return 1.0

    def draw_task_failure(self) -> bool:
        """Per-task transient-failure draw (decided at dispatch time)."""
        spec = self._taskfail
        if spec is None:
            return False
        return float(self._taskfail_rng.random()) < spec.probability

    def retry_delay(self, attempt: int) -> float:
        """Jittered exponential backoff before retry number ``attempt``."""
        spec = self._taskfail
        delay = spec.backoff * (2.0 ** (attempt - 1))
        if spec.jitter > 0.0:
            delay *= 1.0 + spec.jitter * float(self._backoff_rng.random())
        return delay

    def note_task_failure(self) -> None:
        self.counters["task_failures"] += 1

    def note_retry(self) -> None:
        self.counters["retries"] += 1

    def note_speculation(self) -> None:
        self.counters["speculations"] += 1

    def note_job_restart(self) -> None:
        self.counters["job_restarts"] += 1

    # -------------------------------------------------------------- crashes
    def start(self) -> None:
        """Schedule the first crash of every worker (no-op without crashes)."""
        if self.started:
            raise RuntimeError("fault injector already started")
        self.started = True
        if self._crash is None:
            return
        now = self.sim.now
        for worker in range(self.cluster.config.workers):
            crash_at = now + self._draw_interval(self._crash.mttf)
            self.worker_state[worker] = ("up", crash_at)
            self._schedule_transition(crash_at, worker, crash=True)

    def _draw_interval(self, mean: float) -> float:
        if self._crash.dist == "exp":
            return float(self._crash_rng.exponential(mean))
        return mean

    def stop(self) -> None:
        """Cancel pending transitions; called when the workload has drained.

        Without this the crash/repair renewal process would keep the event
        heap non-empty forever (each transition schedules the next), so an
        open-ended ``run()`` would never terminate.  Stopping is idempotent
        and deterministic: it happens at the completion event of the last
        job, which occurs at the same simulated time in serial, parallel and
        resumed runs alike.
        """
        if self.stopped:
            return
        self.stopped = True
        for event in self._pending_events.values():
            event.cancel()
        self._pending_events.clear()

    def _schedule_transition(self, at: float, worker: int, crash: bool) -> None:
        if self.stopped:
            return
        callback = self._make_crash_callback(worker) if crash else self._make_repair_callback(worker)
        self._pending_events[worker] = self.sim.schedule_at(at, callback, priority=3)

    def _make_crash_callback(self, worker: int):
        def _callback(_sim: Simulator) -> None:
            self._on_crash_event(worker)

        return _callback

    def _make_repair_callback(self, worker: int):
        def _callback(_sim: Simulator) -> None:
            self._on_repair_event(worker)

        return _callback

    def _on_crash_event(self, worker: int) -> None:
        spec = self._crash
        now = self.sim.now
        if spec.permanent:
            repair_at = math.inf
        else:
            repair_at = now + self._draw_interval(spec.repair)
        # May raise ClusterCapacityError: a crash that leaves zero available
        # workers with no repair on the horizon is unrecoverable.
        self.cluster.fail_worker(worker, repair_scheduled=not spec.permanent)
        self.counters["crashes"] += 1
        self.worker_state[worker] = ("down", repair_at)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.crash",
                now,
                src=self.telemetry_src,
                worker=worker,
                repair_at=repair_at if repair_at != math.inf else -1.0,
            )
        if repair_at != math.inf:
            self._schedule_transition(repair_at, worker, crash=False)
        if self.on_crash is not None:
            self.on_crash(worker)

    def _on_repair_event(self, worker: int) -> None:
        now = self.sim.now
        self.cluster.repair_worker(worker)
        self.counters["repairs"] += 1
        self.last_repair_time = now
        next_crash_at = now + self._draw_interval(self._crash.mttf)
        self.worker_state[worker] = ("up", next_crash_at)
        self._schedule_transition(next_crash_at, worker, crash=True)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.repair", now, src=self.telemetry_src, worker=worker
            )
        if self.on_repair is not None:
            self.on_repair(worker)

    # ----------------------------------------------------------- checkpoint
    def state_dict(self) -> Dict[str, object]:
        """Checkpointable crash-process state (RNG states live elsewhere)."""
        return {
            "worker_state": dict(self.worker_state),
            "last_repair_time": self.last_repair_time,
            "counters": dict(self.counters),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a checkpoint and re-schedule the pending transitions.

        Workers are walked in index order so same-timestamp transitions (the
        ``fixed`` distribution crashes all workers at once) re-enter the heap
        in the original sequence.
        """
        if self.started:
            raise RuntimeError("cannot restore an already-started fault injector")
        self.started = True
        self.worker_state = dict(state["worker_state"])  # type: ignore[arg-type]
        self.last_repair_time = state["last_repair_time"]  # type: ignore[assignment]
        self.counters = dict(state["counters"])  # type: ignore[arg-type]
        for worker in sorted(self.worker_state):
            status, at = self.worker_state[worker]
            if status == "down":
                self.cluster.fail_worker(worker, repair_scheduled=at != math.inf)
                if at != math.inf:
                    self._schedule_transition(at, worker, crash=False)
            elif at != math.inf:
                self._schedule_transition(at, worker, crash=True)
