"""Deterministic fault injection and recovery for the simulation layers.

This package adds controlled unreliability to the DiAS, fleet and DAG
simulations — server crashes, transient task failures and stragglers — plus
the recovery machinery that real schedulers use to survive them: retries
with exponential backoff, speculative re-execution, wave/job re-execution
after a crash, and quarantine-based graceful degradation at the fleet
dispatcher.  All fault draws come from dedicated named random streams, so a
faulty run is reproducible (CRN) and fault seeds never perturb workload
draws.  :mod:`repro.faults.checkpoint` adds quiescent-point checkpoint /
resume so interrupted runs finish bitwise-identically to uninterrupted ones.
"""

from repro.faults.checkpoint import (
    attach_dias_checkpointing,
    dias_state,
    fleet_state,
    load_checkpoint,
    restore_dias,
    restore_fleet,
    save_checkpoint,
)
from repro.faults.injector import FAULT_COUNTERS, FaultInjector
from repro.faults.spec import (
    CRASH_DISTS,
    CRASH_RECOVERIES,
    FAULT_KINDS,
    CrashSpec,
    FaultSpec,
    StragglerSpec,
    TaskFailSpec,
    parse_fault_spec,
)

__all__ = [
    "CRASH_DISTS",
    "CRASH_RECOVERIES",
    "FAULT_COUNTERS",
    "FAULT_KINDS",
    "CrashSpec",
    "FaultInjector",
    "FaultSpec",
    "StragglerSpec",
    "TaskFailSpec",
    "attach_dias_checkpointing",
    "dias_state",
    "fleet_state",
    "load_checkpoint",
    "parse_fault_spec",
    "restore_dias",
    "restore_fleet",
    "save_checkpoint",
]
