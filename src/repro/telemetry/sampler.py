"""Simulator-clock-driven periodic telemetry samplers.

A :class:`PeriodicSampler` snapshots one or more *sources* every ``interval``
simulated seconds and publishes each snapshot as a ``sample`` event.  Sources
are ``(src_label, callable)`` pairs whose callable returns a flat dict of
numeric fields; the built-in :func:`kernel_sample_source` exposes the DES
kernel's counters (processed/pending/scheduled events, heap compactions and
the event rate per simulated second).

Two properties matter for correctness:

* **Read-only sampling.**  Source callables must only *read* simulation
  state.  The sampler's own events interleave with the run's events (they
  consume kernel sequence numbers), but because the callbacks never mutate
  engine or controller state and draw no randomness, simulation results with
  sampling enabled are identical to results without it.
* **Termination.**  A self-rescheduling event would keep a run-to-exhaustion
  kernel alive forever, so the sampler consults ``should_continue()`` after
  every tick and stops rescheduling once it returns False (typically "all
  trace jobs completed").  Without an explicit predicate it falls back to
  "the heap still holds other events", which is correct for bounded runs but
  can overrun on heaps dominated by cancelled far-future events — pass a
  predicate for open-ended workloads.
* **No trailing clock advance.**  One tick is always in flight, and if it
  fired after the workload's last completion it would advance the simulation
  clock past the natural end of the run — changing the reported duration,
  utilisation denominator and idle energy relative to an unsampled run.  The
  run driver therefore calls :meth:`PeriodicSampler.stop` the moment the
  workload completes (e.g. from the controller's ``on_job_complete`` hook):
  the pending tick is lazily cancelled, and a cancelled event is skipped by
  the kernel *without* advancing the clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

from repro.telemetry.hub import TelemetryHub

if TYPE_CHECKING:  # imported lazily: the kernel itself imports this package
    from repro.simulation.des import Simulator

#: Event priority of sampler ticks: higher than every engine/controller
#: priority in use (0-2), so a sample taken at time T observes the state
#: *after* all state changes scheduled at T.
SAMPLE_PRIORITY = 9

SampleSource = Tuple[str, Callable[[], Dict[str, float]]]


def kernel_sample_source(sim: Simulator) -> Callable[[], Dict[str, float]]:
    """Build a sample source reading the kernel's own counters.

    The event rate is computed per *simulated* second (events processed since
    the previous sample over simulated time elapsed) so that samples stay
    free of wall-clock quantities and therefore deterministic.
    """
    state = {"time": sim.now, "processed": sim.processed_events}

    def sample() -> Dict[str, float]:
        # Reads the kernel's private counters directly: each public property
        # is a Python frame, and this closure runs twice per sampler tick on
        # every sampled run — the properties remain the supported interface
        # everywhere latency does not matter.
        now = sim.now
        processed = sim.processed_events
        elapsed = now - state["time"]
        delta = processed - state["processed"]
        state["time"] = now
        state["processed"] = processed
        return {
            "processed_events": processed,
            "pending_events": len(sim._heap),
            "scheduled_events": sim._seq,
            "heap_compactions": sim._compactions,
            "events_per_simsec": (delta / elapsed) if elapsed > 0 else 0.0,
        }

    return sample


class PeriodicSampler:
    """Emits ``sample`` events for every source each ``interval`` sim-seconds."""

    def __init__(
        self,
        sim: Simulator,
        hub: TelemetryHub,
        interval: float,
        sources: Sequence[SampleSource],
        should_continue: Optional[Callable[[], bool]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval!r}")
        if not sources:
            raise ValueError("at least one sample source is required")
        self.sim = sim
        self.hub = hub
        self.interval = float(interval)
        self.sources = list(sources)
        self.should_continue = should_continue
        self.samples_taken = 0
        self._started = False
        self._stopped = False
        self._pending = None

    def start(self) -> None:
        """Take a baseline sample now and schedule the periodic ticks."""
        if self._started:
            raise RuntimeError("the sampler is already started")
        self._started = True
        self._sample()
        self._pending = self.sim.schedule(
            self.interval, self._tick, priority=SAMPLE_PRIORITY
        )

    def stop(self) -> None:
        """Cancel the in-flight tick so the clock never advances past the run.

        Call this the moment the workload completes: the pending tick is
        lazily cancelled, which the kernel skips *without* advancing the
        clock, so sampled runs end at exactly the same simulated time (and
        idle-energy charge) as unsampled ones.
        """
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    # ------------------------------------------------------------- internals
    def _sample(self) -> None:
        now = self.sim.now
        emit_event = self.hub.emit_event
        for src, fn in self.sources:
            # Sources return a fresh flat dict per call; fill in the base
            # fields and hand it straight to the hub instead of paying a
            # kwargs copy per sample (samples dominate telemetry streams).
            event = fn()
            event["t"] = now
            event["kind"] = "sample"
            event["src"] = src
            emit_event(event)
        self.samples_taken += 1

    def _tick(self, sim: Simulator) -> None:
        self._pending = None
        if self._stopped:
            return
        # The sampling loop is inlined (rather than calling :meth:`_sample`)
        # because ticks fire for the whole run on every sampled simulation —
        # one saved Python frame per tick is measurable in the telemetry
        # overhead benchmark.
        now = sim.now
        emit_event = self.hub.emit_event
        for src, fn in self.sources:
            event = fn()
            event["t"] = now
            event["kind"] = "sample"
            event["src"] = src
            emit_event(event)
        self.samples_taken += 1
        if self.should_continue is not None:
            alive = self.should_continue()
        else:
            # The tick itself was already popped, so any remaining entry is
            # other work (possibly cancelled; see module docstring).
            alive = sim.pending_events > 0
        if alive:
            self._pending = sim.schedule(
                self.interval, self._tick, priority=SAMPLE_PRIORITY
            )
