"""Causal span records and per-job span trees.

A *span* is one closed interval of a job's lifecycle, published on the probe
bus as a ``kind="span"`` event when the interval ends (``start`` carries the
begin, the base field ``t`` the end).  Producers allocate span ids up front
from the hub's deterministic counter (:meth:`TelemetryHub.new_span_id`), so a
child emitted before its parent closes can already reference the parent id;
this module reassembles the stream into trees afterwards.

Span vocabulary (``cat`` / typical ``name``):

``job``
    Root span per job: admission to completion.  ``parent_id`` 0.
``queue``/``queue_wait``
    Time spent in the priority buffers — one span per wait, so an evicted
    job contributes several.
``attempt``
    One dispatch of the job onto the cluster; ``outcome`` is ``completed``
    or ``evicted``, ``attempt`` the 1-based attempt index, ``sprinted`` the
    seconds of this attempt spent at sprint speed.  DAG attempts also carry
    ``cp`` (PERT-predicted critical path, comma-joined stage indices),
    ``cp_len`` and ``lb`` (lower-bound makespan).
``wave`` / ``stage``
    Execution phases inside an attempt: linear jobs emit ``wave`` spans
    (setup/map/shuffle/reduce), DAG jobs ``stage`` spans carrying ``stage``
    (index, -1 for setup), ``parents`` (comma-joined predecessor indices)
    and ``pred`` (PERT-predicted duration).
``task``
    One task occupying one cluster slot (``slot``, ``stage``).
``sprint``
    A DVFS sprint-throttle interval, child of the attempt it accelerated.
``drop`` / ``evict`` / ``route`` / ``fault``
    Zero-length annotation spans: the drop decision applied at dispatch
    (``salvaged`` = estimated seconds of work shed per slot), a preemptive
    eviction (``wasted``), fleet routing (``cluster``), and fault-recovery
    actions (``crash``/``retry``/``speculate``, attached to the attempt they
    hit).  These are terminal — they never have children.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Annotation categories that must stay leaves of the span tree.
TERMINAL_CATS = frozenset({"drop", "evict", "route", "denied", "fault"})

#: Fields of a ``span`` event that are *not* kind-specific extras.
_BASE_FIELDS = frozenset(
    {"t", "kind", "src", "span_id", "parent_id", "name", "cat", "start", "job_id"}
)

#: Containment slack for float comparisons on span boundaries.
EPSILON = 1e-9


class SpanRecord:
    """One closed span, decoded from a ``span`` event."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "cat",
        "src",
        "start",
        "end",
        "job_id",
        "run",
        "extras",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        cat: str,
        src: str,
        start: float,
        end: float,
        job_id: int,
        run: int = 0,
        extras: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = int(span_id)
        self.parent_id = int(parent_id)
        self.name = str(name)
        self.cat = str(cat)
        self.src = str(src)
        self.start = float(start)
        self.end = float(end)
        self.job_id = int(job_id)
        self.run = int(run)
        self.extras = dict(extras) if extras else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start and self.cat in TERMINAL_CATS

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanRecord):
            return NotImplemented
        return all(
            getattr(self, field) == getattr(other, field) for field in SpanRecord.__slots__
        )

    def __hash__(self) -> int:
        return hash((self.run, self.span_id))

    def __repr__(self) -> str:
        return (
            f"SpanRecord(run={self.run}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.cat}/{self.name}, job={self.job_id}, "
            f"[{self.start:.6f}, {self.end:.6f}])"
        )


def span_from_event(event: Mapping[str, Any], run: int = 0) -> SpanRecord:
    """Decode one ``span`` telemetry event into a :class:`SpanRecord`."""
    return SpanRecord(
        span_id=event["span_id"],
        parent_id=event["parent_id"],
        name=event["name"],
        cat=event["cat"],
        src=event.get("src", ""),
        start=event["start"],
        end=event["t"],
        job_id=event["job_id"],
        run=run,
        extras={key: value for key, value in event.items() if key not in _BASE_FIELDS},
    )


def spans_from_events(events: Iterable[Mapping[str, Any]]) -> List[SpanRecord]:
    """Extract spans from a telemetry event stream, segmenting by run.

    Span ids are only unique within one hub, and merged multi-run streams
    (``repro compare`` part files) restart the counter per run; each
    ``run_start`` event therefore increments the run index so ids never
    collide across runs.  Spans are returned in stream order.
    """
    spans: List[SpanRecord] = []
    run = 0
    for event in events:
        kind = event.get("kind")
        if kind == "run_start":
            run += 1
        elif kind == "span":
            spans.append(span_from_event(event, run))
    return spans


class JobTrace:
    """All spans of one job in one run, indexed as a tree."""

    __slots__ = ("run", "job_id", "spans", "root", "_children")

    def __init__(self, run: int, job_id: int, spans: Sequence[SpanRecord]) -> None:
        self.run = run
        self.job_id = job_id
        self.spans: List[SpanRecord] = list(spans)
        roots = [span for span in self.spans if span.cat == "job"]
        self.root: Optional[SpanRecord] = roots[0] if roots else None
        self._children: Dict[int, List[SpanRecord]] = {}
        root_id = self.root.span_id if self.root is not None else 0
        for span in self.spans:
            if span is self.root:
                continue
            # Root-parented annotations (fleet routing happens before the
            # cluster opens the job span) hang off the job root by job_id.
            parent = span.parent_id if span.parent_id != 0 else root_id
            self._children.setdefault(parent, []).append(span)
        for children in self._children.values():
            children.sort(key=lambda span: (span.start, span.span_id))

    def children(self, span: SpanRecord) -> List[SpanRecord]:
        return self._children.get(span.span_id, [])

    def by_cat(self, cat: str) -> List[SpanRecord]:
        return [span for span in self.spans if span.cat == cat]

    def walk(self) -> Iterable[Tuple[SpanRecord, int]]:
        """Depth-first ``(span, depth)`` traversal from the job root."""
        if self.root is None:
            return
        stack: List[Tuple[SpanRecord, int]] = [(self.root, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(self.children(span)):
                stack.append((child, depth + 1))

    @property
    def response_time(self) -> float:
        return self.root.duration if self.root is not None else 0.0


def build_job_traces(spans: Iterable[SpanRecord]) -> List[JobTrace]:
    """Group spans into per-(run, job) traces, in first-appearance order.

    Spans with ``job_id < 0`` (kernel/run-scoped spans) belong to no job and
    are left out; fetch them with a ``cat`` filter on the raw span list.
    """
    grouped: Dict[Tuple[int, int], List[SpanRecord]] = {}
    order: List[Tuple[int, int]] = []
    for span in spans:
        if span.job_id < 0:
            continue
        key = (span.run, span.job_id)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(span)
    return [JobTrace(run, job_id, grouped[(run, job_id)]) for run, job_id in order]


def check_trace(trace: JobTrace, epsilon: float = EPSILON) -> List[str]:
    """Return human-readable span-tree invariant violations (empty = OK).

    Checked invariants: every span is closed with ``end >= start``; span ids
    are unique within the trace; every non-root parent reference resolves;
    each child interval is contained in its parent's (within ``epsilon``);
    drop/evict/route annotation spans are terminal (no children).
    """
    problems: List[str] = []
    if trace.root is None:
        problems.append(f"job {trace.job_id}: no root 'job' span")
        return problems
    by_id: Dict[int, SpanRecord] = {}
    for span in trace.spans:
        if span.end < span.start:
            problems.append(f"{span!r}: end precedes start")
        if span.span_id in by_id:
            problems.append(f"{span!r}: duplicate span id")
        by_id[span.span_id] = span
    for span in trace.spans:
        if span is trace.root or span.parent_id == 0:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(f"{span!r}: parent {span.parent_id} not in trace")
            continue
        if span.start < parent.start - epsilon or span.end > parent.end + epsilon:
            problems.append(
                f"{span!r}: interval escapes parent "
                f"[{parent.start:.6f}, {parent.end:.6f}]"
            )
        if parent.cat in TERMINAL_CATS:
            problems.append(f"{span!r}: child of terminal {parent.cat!r} span")
    return problems


# ---------------------------------------------------------------------------
# Latency decomposition
# ---------------------------------------------------------------------------
#: Components of :func:`decompose`, in reporting order.  The first four sum
#: to the job's response time (``total``); ``salvaged`` is the estimated
#: extra service time dropping avoided, reported alongside rather than
#: inside the closure.
DECOMPOSITION_COMPONENTS = ("queueing", "re_execution", "sprinted", "service")


def decompose(trace: JobTrace) -> Dict[str, float]:
    """Attribute a job's response time to lifecycle components.

    The job interval partitions exactly into queue waits and attempts (an
    eviction re-queues the job at the same instant), and the final attempt
    splits into sprint-throttled and nominal service, so::

        queueing + re_execution + sprinted + service == response

    up to float rounding (``residual`` records the difference).  Evicted
    attempts count wholly as ``re_execution`` — the work was redone —
    including any sprint seconds they burned.
    """
    queueing = 0.0
    re_execution = 0.0
    sprinted = 0.0
    service = 0.0
    salvaged = 0.0
    attempts = 0
    for span in trace.spans:
        if span.cat == "queue":
            queueing += span.end - span.start
        elif span.cat == "attempt":
            attempts += 1
            if span.extras.get("outcome") == "evicted":
                re_execution += span.end - span.start
            else:
                boost = float(span.extras.get("sprinted", 0.0))
                sprinted += boost
                service += (span.end - span.start) - boost
        elif span.cat == "drop":
            salvaged += float(span.extras.get("salvaged", 0.0))
    response = trace.response_time
    total = queueing + re_execution + sprinted + service
    return {
        "queueing": queueing,
        "re_execution": re_execution,
        "sprinted": sprinted,
        "service": service,
        "salvaged": salvaged,
        "total": total,
        "response": response,
        "residual": response - total,
        "attempts": float(attempts),
    }


def aggregate_decomposition(traces: Sequence[JobTrace]) -> Dict[str, float]:
    """Sum per-job decompositions over ``traces`` (plus a ``jobs`` count)."""
    totals = {
        key: 0.0
        for key in (*DECOMPOSITION_COMPONENTS, "salvaged", "total", "response", "attempts")
    }
    for trace in traces:
        parts = decompose(trace)
        for key in totals:
            totals[key] += parts[key]
    totals["jobs"] = float(len(traces))
    return totals


# ---------------------------------------------------------------------------
# Observed critical path (DAG jobs)
# ---------------------------------------------------------------------------
def _parse_index_list(joined: Any) -> Tuple[int, ...]:
    text = str(joined).strip()
    if not text:
        return ()
    return tuple(int(token) for token in text.split(","))


def stage_observations(
    trace: JobTrace,
) -> Tuple[Dict[int, float], Dict[int, float], Dict[int, Tuple[int, ...]]]:
    """Per-stage ``(start, end, parents)`` observed in the *final* attempt.

    Evicted attempts also carry stage spans, but the critical path of record
    is the one that actually produced the result, so earlier attempts'
    stages are ignored (a stage index would otherwise appear twice).
    """
    final = [
        span
        for span in trace.by_cat("attempt")
        if span.extras.get("outcome") != "evicted"
    ]
    if not final:
        return {}, {}, {}
    attempt_id = final[-1].span_id
    starts: Dict[int, float] = {}
    ends: Dict[int, float] = {}
    parents: Dict[int, Tuple[int, ...]] = {}
    for span in trace.by_cat("stage"):
        if span.parent_id != attempt_id:
            continue
        stage = int(span.extras.get("stage", -1))
        if stage < 0:
            continue  # setup pseudo-stage
        starts[stage] = span.start
        ends[stage] = span.end
        parents[stage] = _parse_index_list(span.extras.get("parents", ""))
    return starts, ends, parents


def observed_stage_path(trace: JobTrace) -> Tuple[int, ...]:
    """The critical path a DAG job *actually* took, from its stage spans.

    Walks back from the last-finishing stage through the predecessor with
    the latest observed finish (:func:`repro.dag.analytics
    .observed_critical_path`); compare against the PERT prediction stored on
    the attempt span (``cp`` extra, :func:`predicted_stage_path`).
    """
    _, ends, parents = stage_observations(trace)
    if not ends:
        return ()
    from repro.dag.analytics import observed_critical_path

    return observed_critical_path(ends, parents)


def predicted_stage_path(trace: JobTrace) -> Tuple[int, ...]:
    """The PERT-predicted critical path recorded on the final attempt span."""
    for span in reversed(trace.by_cat("attempt")):
        if span.extras.get("outcome") != "evicted" and "cp" in span.extras:
            return _parse_index_list(span.extras["cp"])
    return ()
