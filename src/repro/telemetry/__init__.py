"""Live telemetry: probe bus, periodic samplers, sinks and the run inspector.

The telemetry layer gives long fleet/DAG runs continuous, streaming
visibility — utilization, per-class queue depths, drop/sprint decisions,
DVFS transitions, kernel counters — while they are in flight, in the style
of monotasks' ``plot_continuous_monitor``:

* :class:`~repro.telemetry.hub.TelemetryHub` is the probe bus the kernel,
  :class:`~repro.core.dias.DiASSimulation`,
  :class:`~repro.fleet.simulation.FleetSimulation`,
  :class:`~repro.dag.simulation.DagSimulation`, the sprinter and the shared
  sprint-budget arbiter publish typed events to.  It is **zero-cost when
  disabled**: every probe site guards on the hub's ``enabled`` flag before
  building the event payload, and a hub with no sinks is disabled.
* :mod:`~repro.telemetry.sinks` holds the pluggable outputs: a JSON-lines
  file writer, a bounded in-memory ring buffer, and a callback sink, plus
  the deterministic part-file merge used by parallel runs.
* :class:`~repro.telemetry.sampler.PeriodicSampler` snapshots simulation
  state at a configurable *simulated-time* interval.  Samples contain no
  wall-clock quantities, so telemetry streams are byte-identical across
  reruns of the same seed.
* :mod:`~repro.telemetry.schema` defines the event schema and validates
  recorded streams; :mod:`~repro.telemetry.inspect` renders summary tables
  and ASCII time-series plots (``repro inspect telemetry.jsonl``).
"""

from repro.telemetry.hub import NULL_HUB, TelemetryHub
from repro.telemetry.sampler import PeriodicSampler, kernel_sample_source
from repro.telemetry.sinks import (
    CallbackSink,
    JsonLinesSink,
    RingBufferSink,
    merge_parts,
    part_path,
    seed_part_path,
)
from repro.telemetry.spans import (
    JobTrace,
    SpanRecord,
    build_job_traces,
    spans_from_events,
)
from repro.telemetry.tracing import (
    Tracer,
    load_spans,
    read_spans,
    render_trace_report,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "NULL_HUB",
    "TelemetryHub",
    "PeriodicSampler",
    "kernel_sample_source",
    "CallbackSink",
    "JsonLinesSink",
    "RingBufferSink",
    "merge_parts",
    "part_path",
    "seed_part_path",
    "JobTrace",
    "SpanRecord",
    "build_job_traces",
    "spans_from_events",
    "Tracer",
    "load_spans",
    "read_spans",
    "render_trace_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]
