"""The telemetry probe bus.

A :class:`TelemetryHub` fans typed events out to attached sinks.  Design
constraints, in order of importance:

1. **Zero cost when disabled.**  Probe sites in hot paths guard on the plain
   ``enabled`` attribute (a single attribute load and truth test) before
   building any payload; a hub without sinks — and the shared :data:`NULL_HUB`
   default — keeps ``enabled`` False, so a simulation built without telemetry
   executes the exact same instruction stream as one built before the
   telemetry layer existed.
2. **Determinism.**  Events carry only simulated time and simulation state —
   never wall-clock time — so the emitted stream is a pure function of the
   run's seed and configuration, which is what makes byte-identical JSONL
   reruns and deterministic parallel merges possible.
3. **Typed events.**  Every event is a flat dict with the base fields ``t``
   (simulated time), ``kind`` and ``src`` plus kind-specific fields; the
   vocabulary is defined (and validated) by :mod:`repro.telemetry.schema`.

Span tracing rides on the same bus behind a second flag: probe sites that
build causal ``span`` events guard on ``tracing`` (off by default, and off
for plain ``--telemetry`` runs), and the hub hands out deterministic span ids
via :meth:`new_span_id`.  Because ids come from a per-hub counter and events
carry only simulated time, a span stream is as reproducible as any other
telemetry stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class TelemetryHub:
    """Publishes typed telemetry events to attached sinks.

    Parameters
    ----------
    sample_interval:
        Default simulated-time interval for periodic samplers attached to a
        run using this hub (``None`` = the component's own default / no
        sampling decision made here).  The hub carries the interval so one
        value configures every layer of a nested run (fleet -> controllers).
    tracing:
        Enables the causal span probes (``span`` events).  Separate from
        ``enabled`` so a plain telemetry stream never pays for span
        bookkeeping; span probe sites guard on this flag exactly the way
        ordinary probe sites guard on ``enabled``.
    """

    __slots__ = (
        "enabled",
        "tracing",
        "sample_interval",
        "events_emitted",
        "_sinks",
        "_writes",
        "_span_seq",
    )

    def __init__(
        self, sample_interval: Optional[float] = None, tracing: bool = False
    ) -> None:
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive simulated seconds, got {sample_interval!r}"
            )
        self.enabled = False
        self.tracing = bool(tracing)
        self.sample_interval = sample_interval
        self.events_emitted = 0
        self._sinks: List[Any] = []
        # Pre-bound ``sink.write`` methods: the emit loop touches one list
        # instead of re-resolving the attribute per sink per event.
        self._writes: List[Callable[[Dict[str, Any]], None]] = []
        self._span_seq = 0

    # ------------------------------------------------------------------ sinks
    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def add_sink(self, sink: Any) -> Any:
        """Attach ``sink`` (anything with ``write(event)``); returns it."""
        if not callable(getattr(sink, "write", None)):
            raise TypeError(f"telemetry sinks must expose write(event); got {sink!r}")
        self._sinks.append(sink)
        self._writes.append(sink.write)
        self.enabled = True
        return sink

    def remove_sink(self, sink: Any) -> None:
        """Detach ``sink``; the hub disables itself when no sinks remain."""
        index = self._sinks.index(sink)
        del self._sinks[index]
        del self._writes[index]
        self.enabled = bool(self._sinks)

    def close(self) -> None:
        """Close every sink that supports it and disable the hub."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()
        self._sinks = []
        self._writes = []
        self.enabled = False

    # ------------------------------------------------------------------ spans
    def new_span_id(self) -> int:
        """Allocate the next span id (deterministic per-hub counter, from 1).

        Parent/child causality in ``span`` events is expressed through these
        ids; ``0`` is reserved for "no parent" (a root span).
        """
        self._span_seq += 1
        return self._span_seq

    # ------------------------------------------------------------------ emit
    def emit(self, kind: str, time: float, src: str = "", **fields: Any) -> None:
        """Publish one event to every sink.

        No-op while disabled, but hot probe sites should still guard on
        ``hub.enabled`` themselves so the payload (``fields``) is never even
        built in the disabled case.  The kwargs dict itself becomes the event
        (one allocation, not a copy); sinks must treat events as read-only.
        """
        if not self.enabled:
            return
        fields["t"] = time if time.__class__ is float else float(time)
        fields["kind"] = kind
        fields["src"] = src
        self.events_emitted += 1
        for write in self._writes:
            write(fields)

    def emit_event(self, event: Dict[str, Any]) -> None:
        """Publish a pre-built event dict (``t``/``kind``/``src`` included).

        Fast path for producers that already hold a fresh flat dict — the
        periodic samplers in particular — skipping the kwargs copy
        :meth:`emit` would make.  The caller must not reuse the dict.
        """
        if not self.enabled:
            return
        self.events_emitted += 1
        for write in self._writes:
            write(event)


class _NullTelemetryHub(TelemetryHub):
    """The shared disabled hub; refuses sinks so it can never be enabled.

    Components default their ``telemetry`` attribute to :data:`NULL_HUB`
    instead of ``None`` so probe sites read one attribute (``enabled``)
    without a ``None`` check.  Attaching a sink to the shared instance would
    silently enable telemetry for *every* component built without an explicit
    hub, so it raises instead.
    """

    __slots__ = ()

    def add_sink(self, sink: Any) -> Any:
        raise RuntimeError(
            "cannot attach a sink to the shared NULL_HUB; "
            "construct a TelemetryHub and pass it to the component instead"
        )


#: Shared always-disabled hub used as the default for every instrumented
#: component.  Its ``emit`` is unreachable from guarded probe sites.
NULL_HUB = _NullTelemetryHub()
