"""Telemetry event schema and JSON-lines validation.

Every event is a flat JSON object with three base fields — ``t`` (simulated
time, number), ``kind`` (event type) and ``src`` (emitting component, e.g.
``"fleet"``, ``"cluster3"``, ``"kernel"``, ``"dag"``) — plus kind-specific
required fields listed in :data:`KIND_FIELDS`.  Extra fields are allowed
(``sample`` events in particular carry per-class queue-depth columns whose
names depend on the workload), so the schema stays forward compatible while
still catching malformed producers.

:func:`validate_event` checks one decoded object; :func:`validate_file`
validates a whole JSONL stream and reports the offending line on failure.
The CI bench-smoke job runs ``repro inspect --validate`` over a short fleet
run's telemetry to keep producers and schema from drifting apart.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Tuple

#: Accepted JSON types per declared field type.
_NUMBER = (int, float)
_STRING = (str,)

#: Required kind-specific fields: ``{kind: {field: accepted_types}}``.
KIND_FIELDS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "run_start": {"run": _STRING, "policy": _STRING},
    "run_end": {"completed": _NUMBER, "duration": _NUMBER},
    "job_admitted": {"job_id": _NUMBER, "priority": _NUMBER},
    "job_routed": {"job_id": _NUMBER, "priority": _NUMBER, "cluster": _NUMBER},
    "drop_decision": {
        "job_id": _NUMBER,
        "priority": _NUMBER,
        "map_drop_ratio": _NUMBER,
        "reduce_drop_ratio": _NUMBER,
        "kept_map_tasks": _NUMBER,
        "dropped_map_tasks": _NUMBER,
    },
    "job_completed": {
        "job_id": _NUMBER,
        "priority": _NUMBER,
        "response_time": _NUMBER,
        "execution_time": _NUMBER,
        "drop_ratio": _NUMBER,
    },
    "job_evicted": {"job_id": _NUMBER, "priority": _NUMBER, "wasted": _NUMBER},
    "stage_scheduled": {"job_id": _NUMBER, "stage": _NUMBER, "pending_tasks": _NUMBER},
    "sprint_start": {"job_id": _NUMBER},
    "sprint_end": {"job_id": _NUMBER, "sprinted": _NUMBER},
    "sprint_denied": {"job_id": _NUMBER},
    "dvfs_transition": {"speed": _NUMBER, "mode": _STRING},
    "budget_exhausted": {"active_sprinters": _NUMBER, "exhaustions": _NUMBER},
    "heap_compaction": {"before": _NUMBER, "after": _NUMBER, "compactions": _NUMBER},
    # Fault injection & recovery (``repair_at`` is -1 for permanent
    # failures; ``fault.quarantine`` records a dispatcher redirect away
    # from an impaired/probationary cluster).
    "fault.crash": {"worker": _NUMBER, "repair_at": _NUMBER},
    "fault.repair": {"worker": _NUMBER},
    "fault.straggler": {"job_id": _NUMBER, "slot": _NUMBER, "slowdown": _NUMBER},
    "fault.speculate": {"job_id": _NUMBER, "slot": _NUMBER, "copy_slot": _NUMBER},
    "fault.task_fail": {"job_id": _NUMBER, "slot": _NUMBER, "attempt": _NUMBER},
    "fault.retry": {
        "job_id": _NUMBER,
        "slot": _NUMBER,
        "attempt": _NUMBER,
        "delay": _NUMBER,
    },
    "fault.job_restart": {"job_id": _NUMBER, "reason": _STRING},
    "fault.quarantine": {"job_id": _NUMBER, "cluster": _NUMBER, "redirected": _NUMBER},
    "fault.checkpoint": {"path": _STRING, "completed": _NUMBER},
    "sample": {},
    # Causal span: ``t`` is the span end, ``start`` the begin; ``parent_id``
    # 0 marks a root.  Extra fields carry per-kind attribution (outcome,
    # sprinted seconds, stage index, predicted critical path, ...).
    "span": {
        "span_id": _NUMBER,
        "parent_id": _NUMBER,
        "name": _STRING,
        "cat": _STRING,
        "start": _NUMBER,
        "job_id": _NUMBER,
    },
}

#: All event kinds a producer may emit.
EVENT_KINDS: Tuple[str, ...] = tuple(sorted(KIND_FIELDS))


def validate_event(event: Mapping[str, Any]) -> None:
    """Validate one decoded event against the schema; raises ``ValueError``."""
    if not isinstance(event, Mapping):
        raise ValueError(f"telemetry events must be JSON objects, got {type(event).__name__}")
    for field, types in (("t", _NUMBER), ("kind", _STRING), ("src", _STRING)):
        if field not in event:
            raise ValueError(f"missing base field {field!r}")
        if not isinstance(event[field], types) or isinstance(event[field], bool):
            raise ValueError(
                f"base field {field!r} has wrong type {type(event[field]).__name__}"
            )
    kind = event["kind"]
    required = KIND_FIELDS.get(kind)
    if required is None:
        raise ValueError(f"unknown event kind {kind!r}; known kinds: {', '.join(EVENT_KINDS)}")
    for field, types in required.items():
        if field not in event:
            raise ValueError(f"{kind!r} event is missing required field {field!r}")
        if not isinstance(event[field], types) or isinstance(event[field], bool):
            raise ValueError(
                f"{kind!r} field {field!r} has wrong type {type(event[field]).__name__}"
            )


def parse_line(line: str, line_number: int = 0) -> Dict[str, Any]:
    """Decode and validate one JSONL line; errors carry the line number."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"line {line_number}: invalid JSON ({error})") from error
    try:
        validate_event(event)
    except ValueError as error:
        raise ValueError(f"line {line_number}: {error}") from error
    return event


def iter_events(lines: Iterable[str]) -> Iterable[Dict[str, Any]]:
    """Yield validated events from an iterable of JSONL lines."""
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        yield parse_line(stripped, number)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Read and validate a whole telemetry JSONL file."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_events(handle))


def validate_file(path: str) -> int:
    """Validate ``path`` line by line; returns the number of events."""
    return len(read_events(path))


def read_events_lenient(path: str) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Read a JSONL file, skipping events of *unknown kind* with a count.

    Returns ``(events, skipped)`` where ``skipped`` maps each unrecognised
    kind to the number of lines it occurred on.  Unknown kinds are expected
    when an older reader meets a newer producer (forward compatibility);
    anything else — invalid JSON, missing base fields, wrong field types on a
    known kind — still raises, because that indicates a broken producer, not
    a vocabulary gap.
    """
    events: List[Dict[str, Any]] = []
    skipped: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {number}: invalid JSON ({error})") from error
            kind = event.get("kind") if isinstance(event, Mapping) else None
            if isinstance(kind, str) and kind not in KIND_FIELDS:
                skipped[kind] = skipped.get(kind, 0) + 1
                continue
            try:
                validate_event(event)
            except ValueError as error:
                raise ValueError(f"line {number}: {error}") from error
            events.append(event)
    return events, skipped
