"""Span tracing: the probe-bus subscriber, exporters and the trace report.

Three consumers of the ``span`` events defined in
:mod:`repro.telemetry.spans`:

* :class:`Tracer` — a hub sink that materialises span records (and run
  segmentation) in memory while a traced run executes; zero-cost when
  tracing is off because producers never build span events then.
* Chrome trace-event export — :func:`chrome_trace_document` /
  :func:`write_chrome_trace` produce JSON loadable by ``chrome://tracing``
  and ui.perfetto.dev (``ph: "X"`` complete events on per-job / per-stage /
  per-slot tracks, ``ph: "i"`` instants for drop/evict/route annotations,
  ``ph: "M"`` metadata naming processes and threads).  Export is a pure
  function of the span stream: canonical key order, process ids assigned in
  first-appearance order — so a stream assembled from parallel part files
  (merged in submission order, PR 6) exports byte-identically to a serial
  run.  ``args`` carries the exact span fields, making the export lossless:
  :func:`spans_from_chrome` round-trips it.
* The ASCII report — :func:`render_trace_report` prints the latency
  decomposition (queueing / re-execution / sprint-throttled / service, plus
  drop-salvaged), a per-category flame summary, the slowest jobs, a per-job
  waterfall, and the observed-vs-PERT critical-path comparison for DAG jobs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.schema import read_events_lenient
from repro.telemetry.spans import (
    DECOMPOSITION_COMPONENTS,
    JobTrace,
    SpanRecord,
    aggregate_decomposition,
    build_job_traces,
    decompose,
    observed_stage_path,
    predicted_stage_path,
    span_from_event,
    spans_from_events,
    stage_observations,
)

#: Fields every exported ``args`` object carries (the rest are span extras).
_ARGS_BASE = ("span_id", "parent_id", "job_id", "src", "run", "start", "end")

#: Accepted phase types in the minimal Chrome-trace schema.
_CHROME_PHASES = frozenset({"X", "i", "M"})


class Tracer:
    """Probe-bus sink that materialises the causal span tree of a run.

    Attach to a :class:`~repro.telemetry.hub.TelemetryHub` built with
    ``tracing=True``; span events are decoded as they are published and
    multi-run streams are segmented on ``run_start`` exactly like
    :func:`~repro.telemetry.spans.spans_from_events` does for files.
    """

    def __init__(self) -> None:
        self.events_seen = 0
        self._run = 0
        self._spans: List[SpanRecord] = []

    def write(self, event: Mapping[str, Any]) -> None:
        self.events_seen += 1
        kind = event.get("kind")
        if kind == "run_start":
            self._run += 1
        elif kind == "span":
            self._spans.append(span_from_event(event, self._run))

    @property
    def spans(self) -> List[SpanRecord]:
        return list(self._spans)

    def traces(self) -> List[JobTrace]:
        return build_job_traces(self._spans)


def read_spans(path: str) -> List[SpanRecord]:
    """Read spans from a telemetry JSONL file (unknown kinds are skipped)."""
    events, _ = read_events_lenient(path)
    return spans_from_events(events)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def _thread_id(span: SpanRecord) -> int:
    """Deterministic Chrome thread id: one track family per span level.

    Only one job occupies a controller at a time and each slot runs one task
    at a time, so putting job-level spans, per-stage spans and per-slot task
    spans on separate tid ranges yields tracks without overlapping complete
    events (which trace viewers would otherwise stack arbitrarily).
    """
    cat = span.cat
    if cat == "kernel":
        return 0
    if cat == "task":
        return 1 + int(span.extras.get("slot", 0))
    if cat in ("wave", "stage"):
        return 1001 + int(span.extras.get("stage", -1))
    return 10000 + span.job_id if span.job_id >= 0 else 10000


def _thread_name(span: SpanRecord) -> str:
    cat = span.cat
    if cat == "kernel":
        return "kernel"
    if cat == "task":
        return f"slot {int(span.extras.get('slot', 0))}"
    if cat in ("wave", "stage"):
        stage = int(span.extras.get("stage", -1))
        return "setup" if stage < 0 else f"stage {stage}"
    return f"job {span.job_id}" if span.job_id >= 0 else "run"


def chrome_trace_document(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """Build a Chrome trace-event document (``{"traceEvents": [...]}``).

    Timestamps are microseconds (the format's unit); ``args`` additionally
    keeps the exact simulated-second floats so the export loses nothing to
    the µs conversion.  Process ids number ``(run, src)`` pairs in
    first-appearance order, which makes the document a deterministic
    function of the span stream.
    """
    pids: Dict[Tuple[int, str], int] = {}
    threads: Dict[Tuple[int, int], str] = {}
    body: List[Dict[str, Any]] = []
    for span in spans:
        key = (span.run, span.src)
        pid = pids.get(key)
        if pid is None:
            pid = len(pids) + 1
            pids[key] = pid
        tid = _thread_id(span)
        if (pid, tid) not in threads:
            threads[(pid, tid)] = _thread_name(span)
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "job_id": span.job_id,
            "src": span.src,
            "run": span.run,
            "start": span.start,
            "end": span.end,
        }
        args.update(span.extras)
        entry: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.is_instant:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = span.duration * 1e6
        body.append(entry)
    meta: List[Dict[str, Any]] = []
    for (run, src), pid in pids.items():
        meta.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"run{run} {src}".rstrip()},
            }
        )
    for (pid, tid), name in threads.items():
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": meta + body, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[SpanRecord]) -> int:
    """Write the Chrome trace JSON for ``spans`` to ``path`` canonically.

    Canonical encoding (sorted keys, no whitespace, trailing newline) keeps
    the bytes a pure function of the span stream, which is what the
    serial ≡ parallel equivalence tests compare.  Returns the number of
    span (non-metadata) events written.
    """
    document = chrome_trace_document(spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, sort_keys=True, separators=(",", ":")))
        handle.write("\n")
    return sum(1 for entry in document["traceEvents"] if entry["ph"] != "M")


def validate_chrome_trace(source: Union[str, Mapping[str, Any]]) -> int:
    """Validate ``source`` (path or decoded dict) against a minimal schema.

    Checks the trace-event envelope and per-phase required fields — enough
    to guarantee chrome://tracing / Perfetto can load the file and that our
    own ``args`` round-trip fields are present.  Returns the number of
    non-metadata events; raises ``ValueError`` on the first violation.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{source}: invalid JSON ({error})") from error
    else:
        document = source
    if not isinstance(document, Mapping) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace: missing top-level 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a JSON array")
    spans = 0
    for index, entry in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, Mapping):
            raise ValueError(f"{where}: not an object")
        phase = entry.get("ph")
        if phase not in _CHROME_PHASES:
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        for field, types in (("name", str), ("pid", int), ("tid", int)):
            if not isinstance(entry.get(field), types) or isinstance(entry.get(field), bool):
                raise ValueError(f"{where}: missing or mistyped {field!r}")
        if not isinstance(entry.get("ts"), (int, float)) or entry["ts"] < 0:
            raise ValueError(f"{where}: 'ts' must be a non-negative number")
        args = entry.get("args")
        if not isinstance(args, Mapping):
            raise ValueError(f"{where}: missing 'args' object")
        if phase == "M":
            if not isinstance(args.get("name"), str):
                raise ValueError(f"{where}: metadata 'args.name' must be a string")
            continue
        if phase == "X":
            if not isinstance(entry.get("dur"), (int, float)) or entry["dur"] < 0:
                raise ValueError(f"{where}: 'dur' must be a non-negative number")
        elif entry.get("s") != "t":
            raise ValueError(f"{where}: instant events must carry s='t'")
        for field in ("span_id", "parent_id", "job_id", "run"):
            if not isinstance(args.get(field), int):
                raise ValueError(f"{where}: 'args.{field}' must be an integer")
        for field in ("start", "end"):
            if not isinstance(args.get(field), (int, float)):
                raise ValueError(f"{where}: 'args.{field}' must be a number")
        spans += 1
    return spans


def spans_from_chrome(document: Mapping[str, Any]) -> List[SpanRecord]:
    """Rebuild the exact span records from an exported Chrome trace."""
    validate_chrome_trace(document)
    spans: List[SpanRecord] = []
    for entry in document["traceEvents"]:
        if entry["ph"] == "M":
            continue
        args = entry["args"]
        spans.append(
            SpanRecord(
                span_id=args["span_id"],
                parent_id=args["parent_id"],
                name=entry["name"],
                cat=entry.get("cat", ""),
                src=args["src"],
                start=args["start"],
                end=args["end"],
                job_id=args["job_id"],
                run=args["run"],
                extras={k: v for k, v in args.items() if k not in _ARGS_BASE},
            )
        )
    return spans


def load_spans(path: str) -> List[SpanRecord]:
    """Load spans from either an exported Chrome trace or telemetry JSONL."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if text.lstrip().startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, Mapping) and "traceEvents" in document:
            return spans_from_chrome(document)
    return spans_from_events(read_events_lenient(path)[0])


# ---------------------------------------------------------------------------
# ASCII report
# ---------------------------------------------------------------------------
def _span_label(span: SpanRecord) -> str:
    cat = span.cat
    extras = span.extras
    if cat == "job":
        return f"job {span.job_id} (prio {extras.get('priority', '?')})"
    if cat == "queue":
        return "queue_wait"
    if cat == "attempt":
        return f"attempt#{extras.get('attempt', '?')} ({extras.get('outcome', '?')})"
    if cat == "wave":
        return f"{span.name}[{extras.get('stage', '?')}]"
    if cat == "stage":
        stage = int(extras.get("stage", -1))
        return "setup" if stage < 0 else f"stage {stage}"
    if cat == "task":
        return f"task s{extras.get('slot', '?')}"
    if cat == "drop":
        return f"drop ({extras.get('dropped_tasks', '?')} tasks)"
    if cat == "route":
        return f"route->c{extras.get('cluster', '?')}"
    return span.name


def render_waterfall(trace: JobTrace, width: int = 100, max_rows: int = 60) -> str:
    """ASCII waterfall of one job's span tree on a shared time axis."""
    root = trace.root
    if root is None:
        return f"job {trace.job_id}: no root span"
    rows: List[Tuple[str, SpanRecord]] = []
    for span, depth in trace.walk():
        rows.append(("  " * depth + _span_label(span), span))
    omitted = max(0, len(rows) - max_rows)
    rows = rows[:max_rows]
    label_width = max(len(label) for label, _ in rows)
    bar_width = max(20, width - label_width - 16)
    window = (root.end - root.start) or 1.0
    lines = [
        f"Waterfall — job {trace.job_id} (run {trace.run})  "
        f"t={root.start:.6g} .. {root.end:.6g}  response={root.duration:.6g}s"
    ]
    for label, span in rows:
        lo = int((span.start - root.start) / window * bar_width)
        hi = int((span.end - root.start) / window * bar_width)
        lo = min(max(lo, 0), bar_width - 1)
        hi = min(max(hi, lo), bar_width)
        if span.is_instant:
            bar = " " * lo + "|" + " " * (bar_width - lo - 1)
            metric = f"@{span.start:.4g}"
        else:
            fill = max(hi - lo, 1)
            bar = " " * lo + "#" * fill + " " * (bar_width - lo - fill)
            metric = f"{span.duration:.4g}s"
        lines.append(f"{label:<{label_width}} [{bar}] {metric}")
    if omitted:
        lines.append(f"... {omitted} more spans (use --focus-job or widen --max-rows)")
    return "\n".join(lines)


def decomposition_rows(traces: Sequence[JobTrace]) -> List[Dict[str, Any]]:
    """Aggregate decomposition as table rows (component, seconds, share)."""
    totals = aggregate_decomposition(traces)
    response = totals["response"] or 1.0
    rows = [
        {
            "component": component,
            "seconds": totals[component],
            "share_pct": 100.0 * totals[component] / response,
        }
        for component in DECOMPOSITION_COMPONENTS
    ]
    rows.append(
        {"component": "response (=sum)", "seconds": totals["response"], "share_pct": 100.0}
    )
    rows.append(
        {
            "component": "drop_salvaged (avoided)",
            "seconds": totals["salvaged"],
            "share_pct": 100.0 * totals["salvaged"] / response,
        }
    )
    return rows


def span_summary_rows(spans: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Per-category span counts and durations (the flame-style aggregate)."""
    by_cat: Dict[str, List[float]] = {}
    for span in spans:
        by_cat.setdefault(span.cat, []).append(span.duration)
    rows = []
    for cat in sorted(by_cat):
        durations = by_cat[cat]
        total = sum(durations)
        rows.append(
            {
                "cat": cat,
                "spans": len(durations),
                "total_s": total,
                "mean_s": total / len(durations),
            }
        )
    return rows


def job_decomposition_rows(
    traces: Sequence[JobTrace], limit: int = 8
) -> List[Dict[str, Any]]:
    """Per-job decomposition of the ``limit`` slowest jobs."""
    scored = sorted(traces, key=lambda t: (-t.response_time, t.run, t.job_id))
    rows = []
    for trace in scored[:limit]:
        parts = decompose(trace)
        rows.append(
            {
                "run": trace.run,
                "job": trace.job_id,
                "response_s": parts["response"],
                "queueing_s": parts["queueing"],
                "service_s": parts["service"],
                "sprinted_s": parts["sprinted"],
                "re_exec_s": parts["re_execution"],
                "salvaged_s": parts["salvaged"],
                "attempts": int(parts["attempts"]),
            }
        )
    return rows


def critical_path_rows(traces: Sequence[JobTrace]) -> List[Dict[str, Any]]:
    """Observed-vs-PERT critical-path comparison for DAG jobs."""
    rows = []
    for trace in traces:
        predicted = predicted_stage_path(trace)
        if not predicted:
            continue
        observed = observed_stage_path(trace)
        starts, ends, _ = stage_observations(trace)
        observed_len = (
            ends[observed[-1]] - starts[observed[0]] if observed else 0.0
        )
        final_attempts = [
            span
            for span in trace.by_cat("attempt")
            if span.extras.get("outcome") != "evicted"
        ]
        extras = final_attempts[-1].extras if final_attempts else {}
        rows.append(
            {
                "run": trace.run,
                "job": trace.job_id,
                "predicted_path": ">".join(str(i) for i in predicted),
                "observed_path": ">".join(str(i) for i in observed),
                "match": "yes" if predicted == observed else "no",
                "pert_len_s": float(extras.get("cp_len", 0.0)),
                "observed_len_s": observed_len,
            }
        )
    return rows


def render_trace_report(
    spans: Sequence[SpanRecord],
    width: int = 100,
    focus_job: Optional[int] = None,
    jobs_limit: int = 8,
) -> str:
    """The full ``repro trace`` report for a span stream."""
    # Imported here: reporting sits above telemetry in the layering (the
    # experiments package imports the harness, which imports the controllers,
    # which import this package).
    from repro.experiments.reporting import format_rows

    if not spans:
        return "Trace: (no spans — was the run made with --trace?)"
    traces = build_job_traces(spans)
    runs = len({span.run for span in spans})
    tmin = min(span.start for span in spans)
    tmax = max(span.end for span in spans)
    sections = [
        f"Trace — {len(spans)} spans, {len(traces)} jobs, {runs} run(s), "
        f"sim time {tmin:.6g} .. {tmax:.6g}"
    ]
    sections.append(
        "Latency decomposition (all jobs)\n" + format_rows(decomposition_rows(traces))
    )
    sections.append("Span summary by category\n" + format_rows(span_summary_rows(spans)))
    job_rows = job_decomposition_rows(traces, limit=jobs_limit)
    if job_rows:
        sections.append("Slowest jobs\n" + format_rows(job_rows))
    cp_rows = critical_path_rows(traces)
    if cp_rows:
        sections.append(
            "Critical path: observed vs PERT prediction\n" + format_rows(cp_rows)
        )
    focus: Optional[JobTrace] = None
    if focus_job is not None:
        matching = [trace for trace in traces if trace.job_id == focus_job]
        if not matching:
            known = ", ".join(str(t.job_id) for t in traces[:20])
            raise ValueError(f"no spans for job {focus_job}; traced jobs: {known}")
        focus = matching[0]
    elif traces:
        focus = max(traces, key=lambda t: (t.response_time, -t.run, -t.job_id))
    if focus is not None:
        sections.append(render_waterfall(focus, width=width))
    return "\n\n".join(sections)
