"""The run inspector: summary tables + ASCII time-series of a telemetry file.

``repro inspect telemetry.jsonl`` validates every line against the event
schema (:mod:`repro.telemetry.schema`) and renders:

* event counts by kind and the run headers (policy, router, clusters);
* per-priority job statistics from ``job_completed`` events;
* drop-decision and sprint/eviction summaries;
* ASCII time-series plots — utilisation, total queue depth and drop rate
  over simulated time — in the spirit of monotasks'
  ``plot_continuous_monitor``, but terminal-native and dependency-free.

All tables reuse :func:`repro.experiments.reporting.format_rows` so inspector
output reads like the rest of the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_rows
from repro.simulation.metrics import percentile
from repro.telemetry.schema import read_events, read_events_lenient

#: Left margin reserved for y-axis labels in ASCII plots.
_Y_LABEL_WIDTH = 10


# ---------------------------------------------------------------------------
# Series extraction
# ---------------------------------------------------------------------------
def sample_series(
    events: Sequence[Dict[str, Any]], field: str, src: Optional[str] = None
) -> Tuple[List[float], List[float]]:
    """(times, values) of ``field`` across ``sample`` events (optionally one src)."""
    times: List[float] = []
    values: List[float] = []
    for event in events:
        if event.get("kind") != "sample" or field not in event:
            continue
        if src is not None and event.get("src") != src:
            continue
        times.append(float(event["t"]))
        values.append(float(event[field]))
    return times, values


def event_weight_series(
    events: Sequence[Dict[str, Any]], kind: str, field: Optional[str] = None
) -> Tuple[List[float], List[float]]:
    """(times, weights) of ``kind`` events; weight is ``field`` or 1 per event."""
    times: List[float] = []
    weights: List[float] = []
    for event in events:
        if event.get("kind") != kind:
            continue
        times.append(float(event["t"]))
        weights.append(float(event[field]) if field is not None else 1.0)
    return times, weights


# ---------------------------------------------------------------------------
# ASCII plotting
# ---------------------------------------------------------------------------
def _bucketize(
    times: Sequence[float], values: Sequence[float], width: int
) -> Tuple[float, float, List[List[float]]]:
    tmin, tmax = min(times), max(times)
    span = (tmax - tmin) or 1.0
    buckets: List[List[float]] = [[] for _ in range(width)]
    for t, v in zip(times, values):
        index = min(width - 1, int((t - tmin) / span * width))
        buckets[index].append(v)
    return tmin, tmax, buckets


def _render_columns(
    columns: Sequence[Optional[float]],
    tmin: float,
    tmax: float,
    height: int,
    label: str,
) -> str:
    filled = [c for c in columns if c is not None]
    if not filled:
        return f"{label}: (no data)"
    vmax = max(filled)
    vmin = min(0.0, min(filled))
    vspan = (vmax - vmin) or 1.0
    lines = [label]
    for row in range(height, 0, -1):
        threshold = vmin + vspan * (row - 0.5) / height
        if row == height:
            ylabel = f"{vmax:>{_Y_LABEL_WIDTH}.4g} ┤"
        elif row == 1:
            ylabel = f"{vmin:>{_Y_LABEL_WIDTH}.4g} ┤"
        elif row == (height + 1) // 2:
            ylabel = f"{vmin + vspan / 2.0:>{_Y_LABEL_WIDTH}.4g} ┤"
        else:
            ylabel = " " * _Y_LABEL_WIDTH + " │"
        cells = [
            " " if c is None else ("█" if c >= threshold else " ") for c in columns
        ]
        lines.append(ylabel + "".join(cells))
    lines.append(" " * _Y_LABEL_WIDTH + " └" + "─" * len(columns))
    left = f"t={tmin:.6g}"
    right = f"t={tmax:.6g}"
    padding = max(1, len(columns) - len(left) - len(right))
    lines.append(" " * (_Y_LABEL_WIDTH + 2) + left + " " * padding + right)
    return "\n".join(lines)


def ascii_plot(
    times: Sequence[float],
    values: Sequence[float],
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Bar plot of a time series; columns average samples falling in them."""
    if not times:
        return f"{label}: (no data)"
    tmin, tmax, buckets = _bucketize(times, values, width)
    columns = [sum(b) / len(b) if b else None for b in buckets]
    return _render_columns(columns, tmin, tmax, height, label)


def ascii_rate_plot(
    times: Sequence[float],
    weights: Sequence[float],
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Rate plot: per-column sum of ``weights`` divided by the column's span."""
    if not times:
        return f"{label}: (no data)"
    tmin, tmax, buckets = _bucketize(times, weights, width)
    span = ((tmax - tmin) or 1.0) / width
    columns: List[Optional[float]] = [sum(b) / span if b else 0.0 for b in buckets]
    return _render_columns(columns, tmin, tmax, height, label)


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------
def event_counts(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return [{"kind": kind, "count": counts[kind]} for kind in sorted(counts)]


def job_rows(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-priority latency/drop summary from ``job_completed`` events."""
    by_priority: Dict[int, List[Dict[str, Any]]] = {}
    for event in events:
        if event["kind"] != "job_completed":
            continue
        by_priority.setdefault(int(event["priority"]), []).append(event)
    rows: List[Dict[str, Any]] = []
    for priority in sorted(by_priority, reverse=True):
        completed = by_priority[priority]
        responses = [e["response_time"] for e in completed]
        rows.append(
            {
                "priority": priority,
                "jobs": len(completed),
                "mean_response_s": sum(responses) / len(responses),
                "p95_response_s": percentile(responses, 95.0),
                "mean_drop_ratio": sum(e["drop_ratio"] for e in completed) / len(completed),
            }
        )
    return rows


def drop_rows(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-priority drop-decision summary from ``drop_decision`` events."""
    by_priority: Dict[int, List[Dict[str, Any]]] = {}
    for event in events:
        if event["kind"] != "drop_decision":
            continue
        by_priority.setdefault(int(event["priority"]), []).append(event)
    rows: List[Dict[str, Any]] = []
    for priority in sorted(by_priority, reverse=True):
        decisions = by_priority[priority]
        rows.append(
            {
                "priority": priority,
                "decisions": len(decisions),
                "mean_map_drop_ratio": sum(d["map_drop_ratio"] for d in decisions)
                / len(decisions),
                "dropped_tasks": int(sum(d["dropped_map_tasks"] for d in decisions)),
            }
        )
    return rows


def headline(events: Sequence[Dict[str, Any]]) -> str:
    """One-line run description from ``run_start``/``run_end`` events."""
    parts: List[str] = []
    for event in events:
        if event["kind"] == "run_start":
            extra = [f"policy={event['policy']}"]
            for key in ("dispatcher", "scheduler", "clusters", "budget"):
                if key in event:
                    extra.append(f"{key}={event[key]}")
            parts.append(f"run={event['run']}  " + "  ".join(extra))
    for event in events:
        if event["kind"] == "run_end":
            parts.append(
                f"completed={int(event['completed'])}  duration={event['duration']:.6g}s"
            )
    return "\n".join(parts)


def render_report(
    events: Sequence[Dict[str, Any]],
    width: int = 60,
    height: int = 10,
    title: str = "Telemetry",
) -> str:
    """The full inspector report: headers, tables and time-series plots."""
    if not events:
        return f"{title}: (no events)"
    times = [e["t"] for e in events]
    sections: List[str] = [
        f"{title} — {len(events)} events, sim time {min(times):.6g} .. {max(times):.6g}"
    ]
    head = headline(events)
    if head:
        sections.append(head)
    sections.append("Event counts\n" + format_rows(event_counts(events)))
    jobs = job_rows(events)
    if jobs:
        sections.append("Completed jobs by priority\n" + format_rows(jobs))
    drops = drop_rows(events)
    if drops:
        sections.append("Drop decisions by priority\n" + format_rows(drops))
    sprints = sum(1 for e in events if e["kind"] == "sprint_start")
    denied = sum(1 for e in events if e["kind"] == "sprint_denied")
    sprinted = sum(e["sprinted"] for e in events if e["kind"] == "sprint_end")
    evictions = sum(1 for e in events if e["kind"] == "job_evicted")
    compactions = sum(1 for e in events if e["kind"] == "heap_compaction")
    sections.append(
        f"Sprints: {sprints} started, {denied} denied, {sprinted:.6g} sprinted-seconds"
        f"   Evictions: {evictions}   Heap compactions: {compactions}"
    )
    util_t, util_v = sample_series(events, "utilisation")
    if util_t:
        sections.append(
            ascii_plot(util_t, util_v, width, height,
                       label="Utilisation (mean across sampled sources)")
        )
    depth_t, depth_v = sample_series(events, "queue_depth")
    if depth_t:
        sections.append(
            ascii_plot(depth_t, depth_v, width, height,
                       label="Queue depth (jobs buffered, mean across sampled sources)")
        )
    drop_t, drop_w = event_weight_series(events, "drop_decision", "dropped_map_tasks")
    if drop_t:
        sections.append(
            ascii_rate_plot(drop_t, drop_w, width, height,
                            label="Drop rate (dropped tasks per sim-second)")
        )
    rate_t, rate_v = sample_series(events, "events_per_simsec", src="kernel")
    if rate_t:
        sections.append(
            ascii_plot(rate_t, rate_v, width, height,
                       label="Kernel event rate (events per sim-second)")
        )
    if any(e["kind"] == "span" for e in events):
        from repro.telemetry.spans import spans_from_events
        from repro.telemetry.tracing import span_summary_rows

        spans = spans_from_events(events)
        sections.append(
            "Trace spans by category (render with: repro trace)\n"
            + format_rows(span_summary_rows(spans))
        )
    return "\n\n".join(sections)


def inspect_file(
    path: str, width: int = 60, height: int = 10, validate_only: bool = False
) -> str:
    """Load, validate and render ``path``; the CLI entry point's workhorse.

    ``--validate`` keeps the strict reader (any unknown kind is an error);
    the report path reads leniently so files from newer probe vocabularies
    still render, with a note counting what was skipped.
    """
    if validate_only:
        events = read_events(path)
        return f"{path}: {len(events)} events, all lines valid"
    events, skipped = read_events_lenient(path)
    report = render_report(events, width=width, height=height, title=f"Telemetry {path}")
    if skipped:
        detail = ", ".join(f"{kind} x{count}" for kind, count in sorted(skipped.items()))
        report += (
            f"\n\nskipped {sum(skipped.values())} events of unknown kinds ({detail})"
        )
    return report
