"""Pluggable telemetry sinks and the deterministic part-file merge.

Three sinks cover the common consumption patterns:

* :class:`JsonLinesSink` — one compact, key-sorted JSON object per line.
  Because events contain only simulated time and simulation state, the file
  is a pure function of (seed, configuration): re-running the same run
  produces byte-identical output, which the determinism tests assert.
* :class:`RingBufferSink` — a bounded in-memory buffer of the most recent
  events; used by live dashboards, tests and the telemetry benchmark.
* :class:`CallbackSink` — invokes a callable per event (ad-hoc hooks).

Parallel runs write one JSONL *part file* per work unit (policy run, sweep
point, replication) and merge them in **submission order** — the same order
the serial path produces — so a merged parallel stream is byte-identical to
the serial one regardless of worker scheduling (:func:`merge_parts`).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence


def _encode(event: Dict[str, Any]) -> str:
    """Canonical JSON-lines encoding: sorted keys, no whitespace."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class JsonLinesSink:
    """Appends each event to ``path`` as one canonical JSON line.

    Encoded lines are buffered and written in batches of ``buffer_lines``
    (one ``file.write`` per batch instead of two per event), which matters on
    telemetry-heavy runs; :meth:`flush` and :meth:`close` drain the buffer,
    so the on-disk bytes after ``close`` are identical to unbuffered output.
    """

    def __init__(self, path: str, buffer_lines: int = 512) -> None:
        if buffer_lines < 1:
            raise ValueError(f"buffer_lines must be >= 1, got {buffer_lines!r}")
        self.path = str(path)
        self._file = open(self.path, "w", encoding="utf-8")
        self.events_written = 0
        self._buffer_lines = int(buffer_lines)
        self._buffer: List[str] = []

    def write(self, event: Dict[str, Any]) -> None:
        buffer = self._buffer
        buffer.append(_encode(event))
        self.events_written += 1
        if len(buffer) >= self._buffer_lines:
            self._file.write("\n".join(buffer) + "\n")
            buffer.clear()

    def _drain(self) -> None:
        if self._buffer and not self._file.closed:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def flush(self) -> None:
        if not self._file.closed:
            self._drain()
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._drain()
            self._file.close()


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    ``write`` is the deque's bound ``append`` — the hub pre-binds sink writes,
    so every published event costs one C call with no Python frame.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.write: Callable[[Dict[str, Any]], None] = self._buffer.append

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class CallbackSink:
    """Calls ``fn(event)`` for every published event (``write`` *is* ``fn``)."""

    def __init__(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        if not callable(fn):
            raise TypeError("CallbackSink requires a callable")
        self.fn = fn
        self.write = fn


# ---------------------------------------------------------------------------
# Deterministic part-file merging for parallel runs
# ---------------------------------------------------------------------------
def part_path(base: str, tag: Any) -> str:
    """Path of one work unit's telemetry part file under ``base``."""
    return f"{base}.part-{tag}"


def seed_part_path(base: str, seed: int) -> str:
    """Part path of the replication seeded with ``seed`` (index-free name).

    Replication part files are named by *seed*, not worker or completion
    index, because the seed sequence is the one thing serial and parallel
    execution share (:func:`~repro.simulation.replication.replication_seed`);
    the caller merges the parts in replication-index order.
    """
    return part_path(base, f"s{seed}")


def merge_parts(output: str, parts: Sequence[str], cleanup: bool = True) -> int:
    """Concatenate ``parts`` (in the given order) into ``output``.

    The caller supplies parts in submission order, which makes the merged
    stream identical to what a serial run writes.  Returns the number of
    merged lines; missing part files raise ``FileNotFoundError``.
    """
    lines = 0
    with open(output, "w", encoding="utf-8") as merged:
        for part in parts:
            with open(part, "r", encoding="utf-8") as handle:
                for line in handle:
                    merged.write(line)
                    lines += 1
    if cleanup:
        for part in parts:
            os.remove(part)
    return lines
