"""Trace ingestion & replay: drive the simulations from cluster traces.

The paper grounds its priority mixes in the Google cluster trace; this
package closes the loop by replaying trace files — Google/Alibaba-style
cluster tables or TPC-H-style stage-DAG traces — into the fleet and DAG
simulations at million-job scale:

* :mod:`repro.traces.schema` — typed :class:`TraceJob`/:class:`TraceStage`/
  :class:`TraceTask` records plus length/resource bucketing;
* :mod:`repro.traces.formats` — the on-disk formats (``cluster-csv``,
  ``cluster-jsonl``, ``dag-jsonl``), streaming parsers/writers, and
  order-preserving parallel ingestion;
* :mod:`repro.traces.synth` — a deterministic trace synthesizer built on the
  existing workload generators (``repro synth-trace``);
* :mod:`repro.traces.replay` — the replay engine feeding trace arrivals into
  :class:`~repro.fleet.simulation.FleetSimulation` /
  :class:`~repro.dag.simulation.DagSimulation` as a constant-memory streaming
  iterator with time-compression and arrival-rate scaling knobs.
"""

from repro.traces.formats import (
    CLUSTER_CSV,
    CLUSTER_JSONL,
    DAG_JSONL,
    DEFAULT_WAVE_WIDTH,
    TRACE_FORMATS,
    TraceMeta,
    iter_trace,
    read_trace_meta,
    write_trace,
)
from repro.traces.replay import ReplaySource, job_from_trace, dag_job_from_trace
from repro.traces.schema import (
    TraceFormatError,
    TraceHistogram,
    TraceJob,
    TraceStage,
    TraceTask,
    classify_resources,
    classify_time,
)
from repro.traces.synth import (
    iter_synthetic_dag_trace,
    iter_synthetic_trace,
    synthesize_trace,
)

__all__ = [
    "CLUSTER_CSV",
    "CLUSTER_JSONL",
    "DAG_JSONL",
    "DEFAULT_WAVE_WIDTH",
    "TRACE_FORMATS",
    "TraceFormatError",
    "TraceHistogram",
    "TraceJob",
    "TraceMeta",
    "TraceStage",
    "TraceTask",
    "ReplaySource",
    "classify_resources",
    "classify_time",
    "dag_job_from_trace",
    "iter_synthetic_dag_trace",
    "iter_synthetic_trace",
    "iter_trace",
    "job_from_trace",
    "read_trace_meta",
    "synthesize_trace",
    "write_trace",
]
