"""Typed trace records: the in-memory schema every trace format parses into.

A trace is a sequence of :class:`TraceJob` records sorted by arrival time.
Each record carries exactly what the simulation layers need — arrival time,
priority class, dataset size, and per-stage task durations (plus DAG
adjacency for stage-DAG traces) — and nothing else, so a million-job trace
can stream through the replay engine one record at a time.

The bucketing helpers (:func:`classify_time`, :func:`classify_resources`,
:class:`TraceHistogram`) summarise a trace by job length and width the way
cluster-trace loaders bucket deferrable tasks by runtime and resource
demand; ``repro synth-trace`` prints the histogram so a synthesized trace
can be sanity-checked without replaying it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


class TraceFormatError(ValueError):
    """A trace file or record violates the trace-format contract."""


#: Job kinds: ``linear`` (a chain of map/reduce stages, replayed into the
#: fleet layer) and ``dag`` (stage-dependency jobs, replayed into the DAG
#: layer).
TRACE_KINDS = ("linear", "dag")

#: Job-length buckets over total task-seconds.  Cluster-trace loaders bucket
#: deferrable tasks by runtime hours; our simulated jobs live on a
#: seconds-to-minutes scale, so the edges are scaled accordingly.
TIME_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("0-30s", 30.0),
    ("30-120s", 120.0),
    ("2-10m", 600.0),
    ("10-60m", 3600.0),
    ("1h+", float("inf")),
)

#: Width buckets over the widest stage (slots the job can use at once),
#: mirroring the power-of-two resource buckets of deferrable-task loaders.
RESOURCE_BUCKETS: Tuple[Tuple[str, int], ...] = (
    ("1", 1),
    ("2", 2),
    ("3-4", 4),
    ("5-8", 8),
    ("9-16", 16),
    ("17-32", 32),
    ("33-64", 64),
    ("64+", 2**63),
)


def classify_time(task_seconds: float) -> str:
    """Length bucket for a job's total task-seconds."""
    if task_seconds < 0:
        raise ValueError("task_seconds must be non-negative")
    for label, upper in TIME_BUCKETS:
        if task_seconds <= upper:
            return label
    return TIME_BUCKETS[-1][0]


def classify_resources(width: int) -> str:
    """Resource bucket for a job's widest stage (parallel tasks)."""
    if width < 1:
        raise ValueError("width must be at least 1")
    for label, upper in RESOURCE_BUCKETS:
        if width <= upper:
            return label
    return RESOURCE_BUCKETS[-1][0]


@dataclass
class TraceTask:
    """One task of a trace record (flattened view of a stage)."""

    stage: int
    kind: str  # "map" | "reduce"
    duration: float


@dataclass
class TraceStage:
    """One stage of a trace record.

    ``map_durations``/``reduce_durations`` are base-frequency task durations
    in seconds; ``parents`` lists the stage indices this stage depends on
    (always empty for ``linear`` jobs, whose stages run in index order).
    """

    index: int
    map_durations: Tuple[float, ...]
    reduce_durations: Tuple[float, ...] = ()
    shuffle_time: float = 0.0
    droppable: bool = True
    parents: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.map_durations = tuple(float(t) for t in self.map_durations)
        self.reduce_durations = tuple(float(t) for t in self.reduce_durations)
        self.parents = tuple(int(p) for p in self.parents)
        if not self.map_durations:
            raise TraceFormatError(f"stage {self.index} has no map tasks")
        if any(t <= 0 for t in self.map_durations):
            raise TraceFormatError(f"stage {self.index} has a non-positive map duration")
        if any(t <= 0 for t in self.reduce_durations):
            raise TraceFormatError(f"stage {self.index} has a non-positive reduce duration")
        if self.shuffle_time < 0:
            raise TraceFormatError(f"stage {self.index} has a negative shuffle time")
        if self.index in self.parents:
            raise TraceFormatError(f"stage {self.index} depends on itself")
        if len(set(self.parents)) != len(self.parents):
            raise TraceFormatError(f"stage {self.index} lists a duplicate parent")

    @property
    def num_tasks(self) -> int:
        return len(self.map_durations) + len(self.reduce_durations)

    @property
    def width(self) -> int:
        """Widest wave of this stage (map and reduce waves never overlap)."""
        return max(len(self.map_durations), len(self.reduce_durations))

    def total_work(self) -> float:
        return float(sum(self.map_durations) + sum(self.reduce_durations))

    def tasks(self) -> Iterator[TraceTask]:
        for duration in self.map_durations:
            yield TraceTask(stage=self.index, kind="map", duration=duration)
        for duration in self.reduce_durations:
            yield TraceTask(stage=self.index, kind="reduce", duration=duration)


@dataclass
class TraceJob:
    """One job record of a trace, sorted by ``arrival_time`` within a file.

    Stages are stored in index order ``0..n-1``; for ``dag`` jobs the
    ``parents`` edges encode the adjacency (validated for referential
    integrity here, for acyclicity by
    :class:`~repro.dag.graph.StageDAG` at replay time).
    """

    job_id: int
    arrival_time: float
    priority: int
    size_mb: float
    stages: Tuple[TraceStage, ...]
    kind: str = "linear"

    def __post_init__(self) -> None:
        self.stages = tuple(self.stages)
        if self.kind not in TRACE_KINDS:
            raise TraceFormatError(
                f"job {self.job_id}: unknown kind {self.kind!r}; expected one of {TRACE_KINDS}"
            )
        if self.arrival_time < 0:
            raise TraceFormatError(f"job {self.job_id}: negative arrival time")
        if self.priority < 0:
            raise TraceFormatError(f"job {self.job_id}: negative priority")
        if self.size_mb <= 0:
            raise TraceFormatError(f"job {self.job_id}: size_mb must be positive")
        if not self.stages:
            raise TraceFormatError(f"job {self.job_id}: a job needs at least one stage")
        indices = tuple(stage.index for stage in self.stages)
        if indices != tuple(range(len(self.stages))):
            raise TraceFormatError(
                f"job {self.job_id}: stage indices must be 0..{len(self.stages) - 1} in order"
            )
        if self.kind == "linear":
            if any(stage.parents for stage in self.stages):
                raise TraceFormatError(
                    f"job {self.job_id}: linear jobs must not carry DAG edges"
                )
        else:
            for stage in self.stages:
                for parent in stage.parents:
                    if not 0 <= parent < len(self.stages):
                        raise TraceFormatError(
                            f"job {self.job_id}: stage {stage.index} depends on "
                            f"unknown stage {parent}"
                        )

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(stage.num_tasks for stage in self.stages)

    @property
    def max_width(self) -> int:
        return max(stage.width for stage in self.stages)

    def total_work(self) -> float:
        """Total slot-seconds of task work across all stages."""
        return sum(stage.total_work() for stage in self.stages)

    def tasks(self) -> Iterator[TraceTask]:
        for stage in self.stages:
            yield from stage.tasks()

    def time_bucket(self) -> str:
        return classify_time(self.total_work())

    def resource_bucket(self) -> str:
        return classify_resources(self.max_width)


class TraceHistogram:
    """Streaming per-bucket summary of a trace (constant memory).

    Accumulates per-priority job counts plus length/resource bucket counts
    while records stream past, so a million-job trace can be summarised
    without retaining a single record.
    """

    def __init__(self) -> None:
        self.jobs = 0
        self.horizon = 0.0
        self.total_work = 0.0
        self.by_priority: Dict[int, int] = {}
        self.by_time_bucket: Dict[str, int] = {}
        self.by_resource_bucket: Dict[str, int] = {}

    def add(self, job: TraceJob) -> None:
        self.jobs += 1
        if job.arrival_time > self.horizon:
            self.horizon = job.arrival_time
        self.total_work += job.total_work()
        self.by_priority[job.priority] = self.by_priority.get(job.priority, 0) + 1
        time_bucket = job.time_bucket()
        self.by_time_bucket[time_bucket] = self.by_time_bucket.get(time_bucket, 0) + 1
        resource_bucket = job.resource_bucket()
        self.by_resource_bucket[resource_bucket] = (
            self.by_resource_bucket.get(resource_bucket, 0) + 1
        )

    def format_table(self) -> str:
        """A small human-readable summary (``repro synth-trace`` output)."""
        lines = [
            f"jobs: {self.jobs}",
            f"horizon: {self.horizon:.1f} s",
            f"total work: {self.total_work:.0f} slot-s",
        ]
        if self.by_priority:
            parts = ", ".join(
                f"p{priority}: {count}" for priority, count in sorted(self.by_priority.items())
            )
            lines.append(f"per priority: {parts}")
        for title, counts, order in (
            ("length", self.by_time_bucket, [label for label, _ in TIME_BUCKETS]),
            ("width", self.by_resource_bucket, [label for label, _ in RESOURCE_BUCKETS]),
        ):
            if counts:
                parts = ", ".join(
                    f"{label}: {counts[label]}" for label in order if label in counts
                )
                lines.append(f"{title} buckets: {parts}")
        return "\n".join(lines)
