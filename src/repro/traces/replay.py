"""The replay engine: trace records → simulation jobs, as a streaming source.

:class:`ReplaySource` is the bridge between a trace file and the simulation
layers: it validates the file header eagerly (fail fast, before any
simulation state exists), then lazily converts each
:class:`~repro.traces.schema.TraceJob` into an engine
:class:`~repro.engine.job.Job` (fleet replay) or
:class:`~repro.dag.graph.DagJob` (DAG replay) as the simulation pulls
arrivals — constant memory end to end.

Two knobs turn one trace into a load sweep:

``time_scale``
    Time compression: divides arrival times *and* task durations, replaying
    the same workload faster without changing the offered load.

``rate_scale``
    Arrival-rate scaling: divides only the arrival times, packing the same
    jobs more densely — ``rate_scale=1.25`` offers 25 % more load.

Replay profiles (setup times, permissible accuracy loss) come from the trace
header's per-class metadata when present — synthesized traces always carry
it — and fall back to conservative defaults (no approximation allowed)
otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.dag.graph import DagJob, DagStage, StageDAG
from repro.engine.job import Job, StageSpec
from repro.engine.profiles import JobClassProfile
from repro.traces.formats import (
    CLUSTER_FORMATS,
    DAG_JSONL,
    TraceMeta,
    iter_trace,
    read_trace_meta,
)
from repro.traces.schema import TraceFormatError, TraceJob

#: Replay modes and the trace formats each accepts.
REPLAY_MODES = ("fleet", "dag")


def replay_profile(
    priority: int,
    info: Optional[Dict[str, float]] = None,
    time_scale: float = 1.0,
) -> JobClassProfile:
    """A job-class profile for replayed jobs of one priority.

    Only the fields the engine consults at run time matter here — setup
    times, the permissible accuracy loss, and the descriptive size — because
    task durations come from the trace itself, never from the profile's
    sampling models.
    """
    info = info or {}
    return JobClassProfile(
        priority=priority,
        name=f"replay-p{priority}",
        mean_size_mb=float(info.get("mean_size_mb", 473.0)),
        setup_time_full=float(info.get("setup_time_full", 12.0)) / time_scale,
        setup_time_min=float(info.get("setup_time_min", 6.0)) / time_scale,
        max_accuracy_loss=float(info.get("max_accuracy_loss", 0.0)),
    )


def job_from_trace(
    record: TraceJob,
    profile: JobClassProfile,
    time_scale: float = 1.0,
    rate_scale: float = 1.0,
) -> Job:
    """Convert a linear trace record into an engine job (scaled)."""
    if record.kind != "linear":
        raise TraceFormatError(
            f"job {record.job_id}: DAG records replay into the DAG layer "
            f"(repro dag --replay)"
        )
    arrival = record.arrival_time / (time_scale * rate_scale)
    stages = [
        StageSpec(
            index=stage.index,
            map_task_times=[t / time_scale for t in stage.map_durations],
            reduce_task_times=[t / time_scale for t in stage.reduce_durations],
            shuffle_time=stage.shuffle_time / time_scale,
            droppable=stage.droppable,
        )
        for stage in record.stages
    ]
    return Job(
        job_id=record.job_id,
        priority=record.priority,
        arrival_time=arrival,
        size_mb=record.size_mb,
        stages=stages,
        profile=profile,
        label=profile.name,
    )


def dag_job_from_trace(
    record: TraceJob,
    profile: JobClassProfile,
    time_scale: float = 1.0,
    rate_scale: float = 1.0,
) -> DagJob:
    """Convert a DAG trace record into a :class:`DagJob` (scaled, validated)."""
    if record.kind != "dag":
        raise TraceFormatError(
            f"job {record.job_id}: linear records replay into the fleet layer "
            f"(repro fleet --replay)"
        )
    arrival = record.arrival_time / (time_scale * rate_scale)
    stages = [
        DagStage(
            index=stage.index,
            map_task_times=[t / time_scale for t in stage.map_durations],
            reduce_task_times=[t / time_scale for t in stage.reduce_durations],
            shuffle_time=stage.shuffle_time / time_scale,
            droppable=stage.droppable,
            parents=stage.parents,
            name=f"replay-{stage.index}",
        )
        for stage in record.stages
    ]
    try:
        dag = StageDAG(stages)
    except ValueError as err:
        raise TraceFormatError(f"job {record.job_id}: {err}") from None
    return DagJob(
        job_id=record.job_id,
        priority=record.priority,
        arrival_time=arrival,
        size_mb=record.size_mb,
        dag=dag,
        profile=profile,
        label=profile.name,
    )


class ReplaySource:
    """A streaming job source over a trace file.

    Iterating yields engine jobs in arrival order.  The header is read (and
    the format checked against ``mode``) at construction time, so malformed
    or mismatched files fail before any simulation is built.  ``jobs > 1``
    parallelises the record *parsing* (order-preserving, byte-identical to
    serial — see :func:`repro.traces.formats.iter_trace`); the conversion and
    the simulation itself are unchanged.
    """

    def __init__(
        self,
        path: str,
        mode: str = "fleet",
        fmt: Optional[str] = None,
        jobs: int = 1,
        time_scale: float = 1.0,
        rate_scale: float = 1.0,
    ) -> None:
        if mode not in REPLAY_MODES:
            raise ValueError(f"mode must be one of {REPLAY_MODES}")
        if time_scale <= 0 or rate_scale <= 0:
            raise ValueError("time_scale and rate_scale must be positive")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.path = path
        self.mode = mode
        self.jobs = jobs
        self.time_scale = float(time_scale)
        self.rate_scale = float(rate_scale)
        self.meta: TraceMeta = read_trace_meta(path, fmt)
        if mode == "fleet" and self.meta.format not in CLUSTER_FORMATS:
            raise TraceFormatError(
                f"{path}: a {self.meta.format} trace replays into the DAG layer — "
                f"use 'repro dag --replay'"
            )
        if mode == "dag" and self.meta.format != DAG_JSONL:
            raise TraceFormatError(
                f"{path}: a {self.meta.format} trace replays into the fleet layer — "
                f"use 'repro fleet --replay'"
            )
        self._profiles: Dict[int, JobClassProfile] = {}
        #: Populated while the simulation drains the iterator.
        self.jobs_ingested = 0
        self.horizon = 0.0

    # ---------------------------------------------------------------- helpers
    def profile(self, priority: int) -> JobClassProfile:
        cached = self._profiles.get(priority)
        if cached is None:
            cached = self._profiles[priority] = replay_profile(
                priority, self.meta.classes.get(priority), self.time_scale
            )
        return cached

    def class_shares(self) -> Dict[int, float]:
        """Per-priority traffic shares from the header (empty if undeclared)."""
        return self.meta.class_shares()

    @property
    def expected_jobs(self) -> Optional[int]:
        return self.meta.jobs

    # --------------------------------------------------------------- iterate
    def __iter__(self) -> Iterator:
        convert = job_from_trace if self.mode == "fleet" else dag_job_from_trace
        time_scale, rate_scale = self.time_scale, self.rate_scale
        for record in iter_trace(self.path, fmt=self.meta.format, jobs=self.jobs):
            job = convert(record, self.profile(record.priority), time_scale, rate_scale)
            self.jobs_ingested += 1
            self.horizon = job.arrival_time
            yield job
