"""Deterministic trace synthesis from the existing workload generators.

``repro synth-trace`` emits valid sample traces without external downloads:
the per-class Poisson arrival chains and job factories of
:mod:`repro.workloads` are driven *lazily* — one arrival draw and one job
sample per emitted record, merged across classes by a small heap — so a
million-job trace streams straight to disk in constant memory.

Because every random stream is named per priority class
(``arrivals/priority{p}``, ``size/priority{p}``, ``tasks/priority{p}``, …),
interleaving classes by arrival time consumes each class's streams in
exactly the per-class order the batch generators use: synthesis is
deterministic in ``(scenario, num_jobs, seed)`` alone.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Dict, Iterator

from repro.engine.job import JobFactory
from repro.simulation.random_streams import RandomStreams
from repro.traces.formats import (
    CLUSTER_CSV,
    CLUSTER_JSONL,
    DAG_JSONL,
    DEFAULT_WAVE_WIDTH,
    TRACE_FORMATS,
    TraceMeta,
    write_trace,
)
from repro.traces.schema import TraceFormatError, TraceJob, TraceStage
from repro.workloads.dag import DagJobFactory
from repro.workloads.jobs import allocate_class_counts


def trace_job_from_job(job) -> TraceJob:
    """Convert an engine :class:`~repro.engine.job.Job` to a trace record."""
    stages = tuple(
        TraceStage(
            index=stage.index,
            map_durations=tuple(stage.map_task_times),
            reduce_durations=tuple(stage.reduce_task_times),
            shuffle_time=stage.shuffle_time,
            droppable=stage.droppable,
        )
        for stage in job.stages
    )
    return TraceJob(
        job_id=job.job_id,
        arrival_time=job.arrival_time,
        priority=job.priority,
        size_mb=job.size_mb,
        stages=stages,
        kind="linear",
    )


def trace_job_from_dag_job(job) -> TraceJob:
    """Convert a :class:`~repro.dag.graph.DagJob` to a trace record."""
    stages = tuple(
        TraceStage(
            index=stage.index,
            map_durations=tuple(stage.map_task_times),
            reduce_durations=tuple(stage.reduce_task_times),
            shuffle_time=stage.shuffle_time,
            droppable=stage.droppable,
            parents=stage.parents,
        )
        for stage in sorted(job.dag.stages, key=lambda s: s.index)
    )
    return TraceJob(
        job_id=job.job_id,
        arrival_time=job.arrival_time,
        priority=job.priority,
        size_mb=job.size_mb,
        stages=stages,
        kind="dag",
    )


def uniformize_trace_job(job: TraceJob) -> TraceJob:
    """Collapse each stage to a uniform task profile (``cluster-csv`` shape).

    The cluster-table CSV format stores one duration per task kind, the way
    Google/Alibaba job tables publish per-job task counts and mean runtimes;
    this replaces every stage's durations with their arithmetic mean.
    """
    stages = tuple(
        TraceStage(
            index=stage.index,
            map_durations=(sum(stage.map_durations) / len(stage.map_durations),)
            * len(stage.map_durations),
            reduce_durations=(
                (sum(stage.reduce_durations) / len(stage.reduce_durations),)
                * len(stage.reduce_durations)
                if stage.reduce_durations
                else ()
            ),
            shuffle_time=stage.shuffle_time,
            droppable=stage.droppable,
            parents=stage.parents,
        )
        for stage in job.stages
    )
    return replace(job, stages=stages)


def _merged_arrivals(scenario, num_jobs: int, streams: RandomStreams, namespace: str = ""):
    """Lazily merge per-class Poisson arrival chains by arrival time.

    Yields ``(arrival_time, priority)`` in non-decreasing time order, drawing
    one exponential gap from ``{namespace}arrivals/priority{p}`` per emitted
    arrival — the same per-class draw sequence as the batch generators, with
    O(num_classes) state.
    """
    rates = scenario.arrival_rates
    counts = allocate_class_counts(rates, num_jobs)
    rngs = {
        priority: streams.stream(f"{namespace}arrivals/priority{priority}")
        for priority in counts
    }
    heap = []
    for priority, count in counts.items():
        if count <= 0:
            continue
        rate = rates[priority]
        first = rngs[priority].exponential(1.0 / rate)
        heap.append((first, priority, count - 1))
    heapq.heapify(heap)
    while heap:
        arrival, priority, remaining = heapq.heappop(heap)
        yield arrival, priority
        if remaining > 0:
            gap = rngs[priority].exponential(1.0 / rates[priority])
            heapq.heappush(heap, (arrival + gap, priority, remaining - 1))


def iter_synthetic_trace(
    scenario, num_jobs: int, seed: int = 0, uniform_tasks: bool = False
) -> Iterator[TraceJob]:
    """Stream ``num_jobs`` linear trace records for a (fleet) scenario.

    ``scenario`` is anything exposing ``profiles`` and ``arrival_rates``
    (:class:`~repro.workloads.scenarios.Scenario` or
    :class:`~repro.workloads.scenarios.FleetScenario`).  Records arrive in
    non-decreasing time order with job ids in arrival order.
    """
    streams = RandomStreams(seed)
    factory = JobFactory(streams)
    profiles = scenario.profiles
    for arrival, priority in _merged_arrivals(scenario, num_jobs, streams):
        job = factory.create_job(profiles[priority], arrival_time=arrival)
        record = trace_job_from_job(job)
        yield uniformize_trace_job(record) if uniform_tasks else record


def iter_synthetic_dag_trace(scenario, num_jobs: int, seed: int = 0) -> Iterator[TraceJob]:
    """Stream ``num_jobs`` DAG trace records for a
    :class:`~repro.workloads.scenarios.DagScenario`."""
    streams = RandomStreams(seed)
    factory = DagJobFactory(streams)
    profiles = scenario.profiles
    topologies = scenario.topologies
    topology_params = getattr(scenario, "topology_params", {}) or {}
    for arrival, priority in _merged_arrivals(
        scenario, num_jobs, streams, namespace="dag/"
    ):
        params = dict(topology_params.get(priority, {}))
        job = factory.create_job(
            profiles[priority], topologies[priority], arrival_time=arrival, **params
        )
        yield trace_job_from_dag_job(job)


def compact_profiles(scenario, tasks_per_job: int):
    """Rebuild a scenario with smaller jobs (fewer tasks) at the same load.

    For million-job synthesis: shrinking ``partitions`` cuts the events per
    job, and re-instantiating the scenario recalibrates the arrival rates so
    the target utilisation is preserved.
    """
    if tasks_per_job < 1:
        raise ValueError("tasks_per_job must be at least 1")
    profiles = {
        priority: replace(
            profile,
            partitions=tasks_per_job,
            reduce_tasks=max(1, min(profile.reduce_tasks, tasks_per_job // 4)),
        )
        for priority, profile in scenario.profiles.items()
    }
    return type(scenario)(
        **{
            **{
                field: getattr(scenario, field)
                for field in ("name", "description", "class_ratio", "target_utilisation", "num_jobs", "cluster")
            },
            **(
                {
                    "topologies": scenario.topologies,
                    "topology_params": scenario.topology_params,
                }
                if hasattr(scenario, "topologies")
                else {}
            ),
            "profiles": profiles,
        }
    )


def scenario_meta(
    fmt: str,
    scenario,
    num_jobs: int,
    seed: int,
    wave_width: int = DEFAULT_WAVE_WIDTH,
) -> TraceMeta:
    """Trace metadata for a synthesized trace (class shares + replay hints)."""
    counts = allocate_class_counts(scenario.arrival_rates, num_jobs)
    classes: Dict[int, Dict[str, float]] = {}
    for priority, count in counts.items():
        profile = scenario.profiles[priority]
        classes[priority] = {
            "share": count / num_jobs,
            "mean_size_mb": profile.mean_size_mb,
            "setup_time_full": profile.setup_time_full,
            "setup_time_min": profile.setup_time_min,
            "max_accuracy_loss": profile.max_accuracy_loss,
        }
    return TraceMeta(
        format=fmt,
        jobs=num_jobs,
        classes=classes,
        wave_width=wave_width,
        generator=f"repro synth-trace scenario={scenario.name} seed={seed}",
    )


def synthesize_trace(
    path: str,
    scenario,
    num_jobs: int,
    seed: int = 0,
    fmt: str = CLUSTER_JSONL,
    wave_width: int = DEFAULT_WAVE_WIDTH,
    histogram=None,
) -> TraceMeta:
    """Synthesize and write one trace file; returns its metadata.

    ``fmt`` selects the record source: the cluster formats stream linear jobs
    from the scenario's job factory (``cluster-csv`` with uniform per-stage
    task profiles), ``dag-jsonl`` requires a DAG scenario.  Pass a
    :class:`~repro.traces.schema.TraceHistogram` to accumulate bucket counts
    while writing.
    """
    if fmt not in TRACE_FORMATS:
        raise TraceFormatError(
            f"unknown trace format {fmt!r}; expected one of {', '.join(TRACE_FORMATS)}"
        )
    if num_jobs < 1:
        raise ValueError("num_jobs must be at least 1")
    if fmt == DAG_JSONL:
        if not hasattr(scenario, "topologies"):
            raise TraceFormatError(
                f"{fmt} needs a DAG scenario (use a cluster format for linear scenarios)"
            )
        records: Iterator[TraceJob] = iter_synthetic_dag_trace(scenario, num_jobs, seed)
    else:
        if hasattr(scenario, "topologies"):
            raise TraceFormatError(
                f"{fmt} stores linear jobs; use {DAG_JSONL} for DAG scenarios"
            )
        records = iter_synthetic_trace(
            scenario, num_jobs, seed, uniform_tasks=(fmt == CLUSTER_CSV)
        )
    meta = scenario_meta(fmt, scenario, num_jobs, seed, wave_width)
    if histogram is not None:
        def observed(source: Iterator[TraceJob]) -> Iterator[TraceJob]:
            for record in source:
                histogram.add(record)
                yield record

        records = observed(records)
    write_trace(path, records, meta)
    return meta
