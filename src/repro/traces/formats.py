"""On-disk trace formats: parsing, writing, and parallel ingestion.

Three formats are supported, all line-oriented so they stream:

``cluster-csv``
    A Google/Alibaba-style cluster job table: one CSV row per job with a
    uniform task profile (``job_id, arrival_time, priority, size_mb,
    num_tasks, task_time, num_reduce_tasks, reduce_time, shuffle_time``).
    An optional first line ``# repro-trace {json}`` carries trace metadata;
    files without it (external adapters) are accepted with a minimal header.

``cluster-jsonl``
    One JSON object per job with full per-stage task durations::

        {"id": 0, "t": 1.5, "p": 2, "mb": 473.0,
         "stages": [{"m": [2.1, ...], "r": [4.0, ...], "s": 3.0}]}

``dag-jsonl``
    A TPC-H-style stage-DAG trace: per job an ``n×n`` 0/1 adjacency matrix
    (``adj[i][j] = 1`` iff stage *i* depends on stage *j*) plus per-stage
    first-wave/rest-wave task durations (``fw`` holds the first
    ``wave_width`` durations, ``rw`` the rest — the split used by
    TPC-H DAG loaders; short external stage records are cycled to fill
    ``n`` tasks)::

        {"id": 0, "t": 1.5, "p": 2, "mb": 400.0,
         "adj": [[0, 0], [1, 0]],
         "stages": [{"n": 20, "fw": [...], "rw": [...], "r": [...],
                     "s": 2.0, "d": true}]}

Both JSONL formats require a first-line header
``{"repro_trace": {"format": ..., "version": 1, "jobs": N, ...}}``.

:func:`iter_trace` streams :class:`~repro.traces.schema.TraceJob` records in
file order; with ``jobs > 1`` the *parsing* fans out over a process pool in
fixed-size line chunks whose results are consumed strictly in submission
order, so parallel ingestion is byte-identical to serial.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.traces.schema import TraceFormatError, TraceJob, TraceStage

CLUSTER_CSV = "cluster-csv"
CLUSTER_JSONL = "cluster-jsonl"
DAG_JSONL = "dag-jsonl"

#: All supported trace formats (``repro list`` prints these).
TRACE_FORMATS = (CLUSTER_CSV, CLUSTER_JSONL, DAG_JSONL)

#: Formats replayable into the fleet (linear jobs) vs the DAG layer.
CLUSTER_FORMATS = (CLUSTER_CSV, CLUSTER_JSONL)

#: Default first-wave width for ``dag-jsonl`` (tasks per ``fw`` list).
DEFAULT_WAVE_WIDTH = 20

CSV_COLUMNS = (
    "job_id",
    "arrival_time",
    "priority",
    "size_mb",
    "num_tasks",
    "task_time",
    "num_reduce_tasks",
    "reduce_time",
    "shuffle_time",
)
CSV_META_PREFIX = "# repro-trace "
JSONL_META_KEY = "repro_trace"

#: Lines per chunk handed to one parser worker under ``jobs > 1``.
CHUNK_LINES = 2048


@dataclass
class TraceMeta:
    """Trace-file metadata (the header line).

    ``classes`` maps each priority to descriptive floats — at minimum its
    traffic ``share`` (used to seat the priority-partitioned dispatcher
    without scanning the file), plus optional replay-profile hints
    (``setup_time_full``, ``setup_time_min``, ``mean_size_mb``,
    ``max_accuracy_loss``, ``shuffle_time``).
    """

    format: str
    version: int = 1
    jobs: Optional[int] = None
    classes: Dict[int, Dict[str, float]] = field(default_factory=dict)
    wave_width: int = DEFAULT_WAVE_WIDTH
    generator: str = ""

    def __post_init__(self) -> None:
        if self.format not in TRACE_FORMATS:
            raise TraceFormatError(
                f"unknown trace format {self.format!r}; expected one of {', '.join(TRACE_FORMATS)}"
            )
        if self.wave_width < 1:
            raise TraceFormatError("wave_width must be at least 1")

    def class_shares(self) -> Dict[int, float]:
        """Per-priority traffic shares, if the header declares them."""
        return {
            priority: float(info["share"])
            for priority, info in self.classes.items()
            if "share" in info
        }

    def to_json(self) -> Dict:
        payload: Dict = {"format": self.format, "version": self.version}
        if self.jobs is not None:
            payload["jobs"] = self.jobs
        if self.format == DAG_JSONL:
            payload["wave"] = self.wave_width
        if self.classes:
            payload["classes"] = {
                str(priority): dict(info) for priority, info in sorted(self.classes.items())
            }
        if self.generator:
            payload["generator"] = self.generator
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "TraceMeta":
        if not isinstance(payload, dict) or "format" not in payload:
            raise TraceFormatError("trace header must be an object with a 'format' key")
        classes: Dict[int, Dict[str, float]] = {}
        for key, info in (payload.get("classes") or {}).items():
            classes[int(key)] = {str(k): float(v) for k, v in info.items()}
        jobs = payload.get("jobs")
        return cls(
            format=str(payload["format"]),
            version=int(payload.get("version", 1)),
            jobs=None if jobs is None else int(jobs),
            classes=classes,
            wave_width=int(payload.get("wave", DEFAULT_WAVE_WIDTH)),
            generator=str(payload.get("generator", "")),
        )


# ---------------------------------------------------------------------------
# Per-line parsing (module-level so process-pool workers can pickle it)
# ---------------------------------------------------------------------------
def parse_trace_line(
    fmt: str, wave_width: int, lineno: int, line: str
) -> Optional[TraceJob]:
    """Parse one body line into a :class:`TraceJob` (``None`` for blanks)."""
    text = line.strip()
    if not text:
        return None
    try:
        if fmt == CLUSTER_CSV:
            return _parse_csv_row(text)
        if fmt == CLUSTER_JSONL:
            return _parse_cluster_object(json.loads(text))
        if fmt == DAG_JSONL:
            return _parse_dag_object(json.loads(text), wave_width)
    except TraceFormatError as err:
        raise TraceFormatError(f"line {lineno}: {err}") from None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
        raise TraceFormatError(f"line {lineno}: malformed {fmt} record: {err}") from None
    raise TraceFormatError(f"unknown trace format {fmt!r}")


def _parse_csv_row(text: str) -> TraceJob:
    fields = text.split(",")
    if len(fields) != len(CSV_COLUMNS):
        raise TraceFormatError(
            f"expected {len(CSV_COLUMNS)} comma-separated fields, got {len(fields)}"
        )
    job_id = int(fields[0])
    arrival = float(fields[1])
    priority = int(fields[2])
    size_mb = float(fields[3])
    num_tasks = int(fields[4])
    task_time = float(fields[5])
    num_reduce = int(fields[6])
    reduce_time = float(fields[7])
    shuffle_time = float(fields[8])
    if num_tasks < 1:
        raise TraceFormatError(f"job {job_id}: num_tasks must be at least 1")
    if num_reduce < 0:
        raise TraceFormatError(f"job {job_id}: num_reduce_tasks must be non-negative")
    stage = TraceStage(
        index=0,
        map_durations=(task_time,) * num_tasks,
        reduce_durations=(reduce_time,) * num_reduce,
        shuffle_time=shuffle_time,
    )
    return TraceJob(
        job_id=job_id,
        arrival_time=arrival,
        priority=priority,
        size_mb=size_mb,
        stages=(stage,),
        kind="linear",
    )


def _parse_cluster_object(obj: Dict) -> TraceJob:
    stages = tuple(
        TraceStage(
            index=index,
            map_durations=tuple(float(t) for t in raw["m"]),
            reduce_durations=tuple(float(t) for t in raw.get("r", ())),
            shuffle_time=float(raw.get("s", 0.0)),
            droppable=bool(raw.get("d", True)),
        )
        for index, raw in enumerate(obj["stages"])
    )
    return TraceJob(
        job_id=int(obj["id"]),
        arrival_time=float(obj["t"]),
        priority=int(obj["p"]),
        size_mb=float(obj["mb"]),
        stages=stages,
        kind="linear",
    )


def _parse_dag_object(obj: Dict, wave_width: int) -> TraceJob:
    raw_stages = obj["stages"]
    adjacency = obj["adj"]
    n = len(raw_stages)
    if len(adjacency) != n or any(len(row) != n for row in adjacency):
        raise TraceFormatError(
            f"job {obj.get('id')}: adjacency matrix must be {n}x{n} to match the stages"
        )
    stages: List[TraceStage] = []
    for index, raw in enumerate(raw_stages):
        num_tasks = int(raw["n"])
        if num_tasks < 1:
            raise TraceFormatError(f"stage {index}: task count must be at least 1")
        durations = [float(t) for t in raw.get("fw", ())]
        durations += [float(t) for t in raw.get("rw", ())]
        if not durations:
            raise TraceFormatError(f"stage {index}: no task durations given")
        if len(durations) > num_tasks:
            raise TraceFormatError(
                f"stage {index}: {len(durations)} durations exceed the task count {num_tasks}"
            )
        if len(durations) < num_tasks:
            # Short external stage records: cycle the recorded durations.
            durations = [durations[i % len(durations)] for i in range(num_tasks)]
        row = adjacency[index]
        if any(cell not in (0, 1) for cell in row):
            raise TraceFormatError(f"stage {index}: adjacency entries must be 0 or 1")
        parents = tuple(j for j, cell in enumerate(row) if cell)
        stages.append(
            TraceStage(
                index=index,
                map_durations=tuple(durations),
                reduce_durations=tuple(float(t) for t in raw.get("r", ())),
                shuffle_time=float(raw.get("s", 0.0)),
                droppable=bool(raw.get("d", True)),
                parents=parents,
            )
        )
    return TraceJob(
        job_id=int(obj["id"]),
        arrival_time=float(obj["t"]),
        priority=int(obj["p"]),
        size_mb=float(obj["mb"]),
        stages=tuple(stages),
        kind="dag",
    )


def _parse_chunk(payload: Tuple[str, int, int, List[str]]) -> List[Tuple[int, TraceJob]]:
    """Worker entry point: parse one chunk of body lines."""
    fmt, wave_width, start_lineno, lines = payload
    records: List[Tuple[int, TraceJob]] = []
    for offset, line in enumerate(lines):
        job = parse_trace_line(fmt, wave_width, start_lineno + offset, line)
        if job is not None:
            records.append((start_lineno + offset, job))
    return records


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------
def format_trace_line(fmt: str, wave_width: int, job: TraceJob) -> str:
    """Serialise one :class:`TraceJob` as a body line (lossless round-trip)."""
    if fmt == CLUSTER_CSV:
        return _format_csv_row(job)
    if fmt == CLUSTER_JSONL:
        if job.kind != "linear":
            raise TraceFormatError(f"job {job.job_id}: {fmt} stores linear jobs only")
        return json.dumps(_cluster_object(job), separators=(",", ":"))
    if fmt == DAG_JSONL:
        if job.kind != "dag":
            raise TraceFormatError(f"job {job.job_id}: {fmt} stores DAG jobs only")
        return json.dumps(_dag_object(job, wave_width), separators=(",", ":"))
    raise TraceFormatError(f"unknown trace format {fmt!r}")


def _format_csv_row(job: TraceJob) -> str:
    if job.kind != "linear" or len(job.stages) != 1:
        raise TraceFormatError(
            f"job {job.job_id}: {CLUSTER_CSV} stores single-stage linear jobs only "
            f"(use {CLUSTER_JSONL} for multi-stage jobs)"
        )
    stage = job.stages[0]
    maps = set(stage.map_durations)
    reduces = set(stage.reduce_durations)
    if len(maps) > 1 or len(reduces) > 1:
        raise TraceFormatError(
            f"job {job.job_id}: {CLUSTER_CSV} stores uniform task profiles only "
            f"(use {CLUSTER_JSONL} for per-task durations)"
        )
    task_time = stage.map_durations[0]
    reduce_time = next(iter(reduces), 0.0)
    values = (
        str(job.job_id),
        repr(float(job.arrival_time)),
        str(job.priority),
        repr(float(job.size_mb)),
        str(len(stage.map_durations)),
        repr(float(task_time)),
        str(len(stage.reduce_durations)),
        repr(float(reduce_time)),
        repr(float(stage.shuffle_time)),
    )
    return ",".join(values)


def _cluster_object(job: TraceJob) -> Dict:
    stages = []
    for stage in job.stages:
        raw: Dict = {"m": list(stage.map_durations)}
        if stage.reduce_durations:
            raw["r"] = list(stage.reduce_durations)
        if stage.shuffle_time:
            raw["s"] = stage.shuffle_time
        if not stage.droppable:
            raw["d"] = False
        stages.append(raw)
    return {
        "id": job.job_id,
        "t": job.arrival_time,
        "p": job.priority,
        "mb": job.size_mb,
        "stages": stages,
    }


def _dag_object(job: TraceJob, wave_width: int) -> Dict:
    n = len(job.stages)
    adjacency = []
    stages = []
    for stage in job.stages:
        row = [0] * n
        for parent in stage.parents:
            row[parent] = 1
        adjacency.append(row)
        raw: Dict = {
            "n": len(stage.map_durations),
            "fw": list(stage.map_durations[:wave_width]),
        }
        rest = list(stage.map_durations[wave_width:])
        if rest:
            raw["rw"] = rest
        if stage.reduce_durations:
            raw["r"] = list(stage.reduce_durations)
        if stage.shuffle_time:
            raw["s"] = stage.shuffle_time
        if not stage.droppable:
            raw["d"] = False
        stages.append(raw)
    return {
        "id": job.job_id,
        "t": job.arrival_time,
        "p": job.priority,
        "mb": job.size_mb,
        "adj": adjacency,
        "stages": stages,
    }


def write_trace(
    path: str,
    records: Iterable[TraceJob],
    meta: TraceMeta,
) -> int:
    """Stream ``records`` to ``path`` in ``meta.format``; returns the count.

    The header line is written first, then one line per record, so the whole
    pipeline (synthesize → write) runs in constant memory.  If ``meta.jobs``
    is set it must match the number of records actually written.
    """
    fmt = meta.format
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if fmt == CLUSTER_CSV:
            handle.write(CSV_META_PREFIX + json.dumps(meta.to_json(), separators=(",", ":")) + "\n")
            handle.write(",".join(CSV_COLUMNS) + "\n")
        else:
            handle.write(
                json.dumps({JSONL_META_KEY: meta.to_json()}, separators=(",", ":")) + "\n"
            )
        for job in records:
            handle.write(format_trace_line(fmt, meta.wave_width, job) + "\n")
            count += 1
    if meta.jobs is not None and count != meta.jobs:
        raise TraceFormatError(
            f"{path}: header declares {meta.jobs} jobs but {count} records were written"
        )
    return count


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------
def _read_header(handle: TextIO, path: str, fmt: Optional[str]) -> Tuple[TraceMeta, int]:
    """Consume the header line(s); returns (meta, number of lines consumed)."""
    first = handle.readline()
    if not first:
        raise TraceFormatError(f"{path}: the trace file is empty")
    text = first.strip()
    consumed = 1

    if text.startswith(CSV_META_PREFIX):
        meta = TraceMeta.from_json(_load_header_json(path, text[len(CSV_META_PREFIX):]))
        _check_declared_format(path, meta, fmt, expected=CLUSTER_CSV)
        _expect_csv_columns(path, handle.readline(), lineno=2)
        return meta, consumed + 1

    if text.startswith("{"):
        payload = _load_header_json(path, text)
        if JSONL_META_KEY not in payload:
            raise TraceFormatError(
                f"{path}: first line must be a trace header "
                f'({{"{JSONL_META_KEY}": {{"format": ...}}}}); found a bare JSON object'
            )
        meta = TraceMeta.from_json(payload[JSONL_META_KEY])
        if meta.format == CLUSTER_CSV:
            raise TraceFormatError(
                f"{path}: header declares {CLUSTER_CSV} but the file is JSONL"
            )
        _check_declared_format(path, meta, fmt)
        return meta, consumed

    if text.startswith(CSV_COLUMNS[0] + ","):
        # Headerless CSV (external adapter output): minimal metadata.
        _expect_csv_columns(path, first, lineno=1)
        if fmt is not None and fmt != CLUSTER_CSV:
            raise TraceFormatError(f"{path}: expected a {fmt} trace but found {CLUSTER_CSV}")
        return TraceMeta(format=CLUSTER_CSV), consumed

    raise TraceFormatError(
        f"{path}: unrecognised trace file (expected one of {', '.join(TRACE_FORMATS)}; "
        f"see the README 'Trace replay' section for the format specs)"
    )


def _load_header_json(path: str, text: str) -> Dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise TraceFormatError(f"{path}: malformed trace header: {err}") from None
    if not isinstance(payload, dict):
        raise TraceFormatError(f"{path}: trace header must be a JSON object")
    return payload


def _check_declared_format(
    path: str, meta: TraceMeta, fmt: Optional[str], expected: Optional[str] = None
) -> None:
    if expected is not None and meta.format != expected:
        raise TraceFormatError(
            f"{path}: header declares {meta.format} but the file layout is {expected}"
        )
    if fmt is not None and meta.format != fmt:
        raise TraceFormatError(f"{path}: expected a {fmt} trace but found {meta.format}")


def _expect_csv_columns(path: str, line: str, lineno: int) -> None:
    expected = ",".join(CSV_COLUMNS)
    if line.strip() != expected:
        raise TraceFormatError(
            f"{path}: line {lineno}: expected the CSV column header '{expected}'"
        )


def read_trace_meta(path: str, fmt: Optional[str] = None) -> TraceMeta:
    """Read (and validate) just the trace header — the fail-fast entry point."""
    if not os.path.exists(path):
        raise TraceFormatError(f"{path}: no such trace file")
    with open(path, "r", encoding="utf-8") as handle:
        meta, _ = _read_header(handle, path, fmt)
    return meta


def iter_trace(
    path: str,
    fmt: Optional[str] = None,
    jobs: int = 1,
    chunk_lines: int = CHUNK_LINES,
) -> Iterator[TraceJob]:
    """Stream the records of a trace file in order (constant memory).

    ``jobs > 1`` parses fixed-size line chunks on a process pool while the
    main process consumes results strictly in submission order — the yielded
    sequence is byte-identical to a serial parse.  Arrival times must be
    non-decreasing and the record count must match the header's ``jobs``
    declaration; violations raise :class:`TraceFormatError` with the
    offending line number.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if not os.path.exists(path):
        raise TraceFormatError(f"{path}: no such trace file")
    with open(path, "r", encoding="utf-8") as handle:
        meta, consumed = _read_header(handle, path, fmt)
        if jobs == 1:
            producer = _iter_serial(handle, meta, consumed)
        else:
            producer = _iter_parallel(handle, meta, consumed, jobs, chunk_lines)
        count = 0
        last_arrival = float("-inf")
        try:
            for lineno, job in producer:
                if job.arrival_time < last_arrival:
                    raise TraceFormatError(
                        f"{path}: line {lineno}: arrivals out of order "
                        f"(job {job.job_id} at {job.arrival_time} after {last_arrival})"
                    )
                last_arrival = job.arrival_time
                count += 1
                yield job
        except TraceFormatError as err:
            message = str(err)
            raise TraceFormatError(
                message if message.startswith(path) else f"{path}: {message}"
            ) from None
    if meta.jobs is not None and count != meta.jobs:
        raise TraceFormatError(
            f"{path}: header declares {meta.jobs} jobs but the file contains {count}"
        )


def _iter_serial(
    handle: TextIO, meta: TraceMeta, consumed: int
) -> Iterator[Tuple[int, TraceJob]]:
    fmt, wave_width = meta.format, meta.wave_width
    for lineno, line in enumerate(handle, start=consumed + 1):
        job = parse_trace_line(fmt, wave_width, lineno, line)
        if job is not None:
            yield lineno, job


def _iter_parallel(
    handle: TextIO,
    meta: TraceMeta,
    consumed: int,
    jobs: int,
    chunk_lines: int,
) -> Iterator[Tuple[int, TraceJob]]:
    """Chunked parallel parse, results consumed in submission order."""
    from collections import deque

    fmt, wave_width = meta.format, meta.wave_width
    max_in_flight = jobs + 2

    def chunks() -> Iterator[Tuple[str, int, int, List[str]]]:
        start = consumed + 1
        while True:
            lines = []
            for line in handle:
                lines.append(line)
                if len(lines) >= chunk_lines:
                    break
            if not lines:
                return
            yield (fmt, wave_width, start, lines)
            start += len(lines)

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending = deque()
        chunk_iter = chunks()
        for payload in chunk_iter:
            pending.append((payload[2], pool.submit(_parse_chunk, payload)))
            if len(pending) >= max_in_flight:
                break
        while pending:
            _, future = pending.popleft()
            yield from future.result()
            for payload in chunk_iter:
                pending.append((payload[2], pool.submit(_parse_chunk, payload)))
                break
