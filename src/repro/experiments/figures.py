"""Per-figure reproduction entry points.

Every function regenerates the data series of one figure of the paper and
returns it as a dictionary with a ``rows`` list (one dict per plotted point or
bar) plus metadata.  The benchmark harness under ``benchmarks/`` calls these
functions and prints their rows; EXPERIMENTS.md records how the measured
series compare to the paper's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.config import SprintConfig
from repro.core.deflator import TaskDeflator
from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import PolicyComparison, measure_processing_time, run_policies
from repro.models.accuracy import AccuracyModel
from repro.models.wave_level import WaveLevelModel
from repro.workloads.scenarios import (
    HIGH,
    LOW,
    MEDIUM,
    Scenario,
    equal_job_sizes_scenario,
    low_load_scenario,
    more_high_priority_scenario,
    reference_two_priority_scenario,
    three_priority_scenario,
    triangle_count_scenario,
    validation_datasets_scenario,
)
from repro.workloads.text import CorpusSpec, synthetic_corpus
from repro.mapreduce.wordcount import wordcount_accuracy_curve

#: Extra power drawn while sprinting (270 W − 180 W), used to convert the
#: paper's 22 kJ budget into sprint-seconds.
SPRINT_EXTRA_WATTS = 90.0
#: The paper's limited sprinting energy budget.
LIMITED_SPRINT_BUDGET_JOULES = 22_000.0
#: The paper's sprint timeout under the limited budget.
LIMITED_SPRINT_TIMEOUT_S = 65.0


# ---------------------------------------------------------------------------
# Fig. 4 — processing-time model validation
# ---------------------------------------------------------------------------
def figure4_processing_time_validation(
    drop_ratios: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    num_jobs: int = 25,
    seed: int = 0,
) -> Dict[str, object]:
    """Model-predicted vs observed mean job processing time per drop ratio."""
    scenario = validation_datasets_scenario()
    slots = scenario.cluster.slots
    rows: List[Dict[str, float]] = []
    for priority in scenario.priorities:
        profile = scenario.profiles[priority]
        for theta in drop_ratios:
            model = WaveLevelModel.from_profile(profile, slots, map_drop_ratio=theta)
            predicted = model.mean_processing_time()
            observed = measure_processing_time(
                profile, slots, drop_ratio=theta, num_jobs=num_jobs, seed=seed
            )
            rows.append(
                {
                    "dataset": profile.name,
                    "priority": priority,
                    "drop_ratio": theta,
                    "model_s": predicted,
                    "observed_s": observed,
                    "error_pct": 100.0 * abs(predicted - observed) / observed,
                }
            )
    mean_error = sum(r["error_pct"] for r in rows) / len(rows)
    return {"figure": "4", "rows": rows, "mean_error_pct": mean_error}


# ---------------------------------------------------------------------------
# Fig. 5 — response-time model validation
# ---------------------------------------------------------------------------
def figure5_response_time_validation(
    drop_ratios: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    num_jobs: int = 300,
    seed: int = 0,
) -> Dict[str, object]:
    """Model-predicted vs simulated mean response time vs the low-class drop ratio."""
    scenario = validation_datasets_scenario(num_jobs=num_jobs)
    deflator = TaskDeflator(
        profiles=scenario.profiles,
        arrival_rates=scenario.arrival_rates,
        slots=scenario.cluster.slots,
        model="wave",
    )
    rows: List[Dict[str, float]] = []
    for theta in drop_ratios:
        assignment = {HIGH: 0.0, LOW: theta}
        predicted = deflator.predict_response_times(assignment)
        policy = SchedulingPolicy.differential_approximation(assignment)
        comparison = run_policies(scenario, [policy], seed=seed, num_jobs=num_jobs)
        observed = comparison.result(policy.name)
        for priority in scenario.priorities:
            rows.append(
                {
                    "priority": priority,
                    "drop_ratio": theta,
                    "model_s": predicted[priority],
                    "observed_s": observed.mean_response_time(priority),
                }
            )
    errors = [
        100.0 * abs(r["model_s"] - r["observed_s"]) / r["observed_s"]
        for r in rows
        if r["observed_s"] > 0
    ]
    return {
        "figure": "5",
        "rows": rows,
        "mean_error_pct": sum(errors) / len(errors) if errors else float("nan"),
    }


# ---------------------------------------------------------------------------
# Fig. 6 — accuracy loss vs drop ratio
# ---------------------------------------------------------------------------
#: Corpus used for the Fig. 6 reproduction: heterogeneous topics (half the
#: words are topic-specific) and a long-tailed vocabulary, which together
#: yield accuracy-loss magnitudes close to the paper's published points.
FIGURE6_CORPUS = CorpusSpec(
    num_documents=150,
    words_per_document=80,
    vocabulary_size=4000,
    num_topics=16,
    topic_vocabulary_size=200,
    topic_word_fraction=0.5,
    zipf_exponent=1.2,
)


def figure6_accuracy_loss(
    drop_ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    corpus_spec: Optional[CorpusSpec] = None,
    num_partitions: int = 50,
    repetitions: int = 3,
    top_n: int = 300,
    seed: int = 0,
) -> Dict[str, object]:
    """Measured MAPE of the word-count analysis vs map-task drop ratio."""
    documents = synthetic_corpus(corpus_spec or FIGURE6_CORPUS, seed=seed)
    measured = wordcount_accuracy_curve(
        documents,
        drop_ratios,
        num_partitions=num_partitions,
        repetitions=repetitions,
        top_n=top_n,
        seed=seed,
    )
    fitted = AccuracyModel.from_points([(t, e / 100.0) for t, e in measured if t > 0])
    paper = AccuracyModel.paper_default()
    rows = [
        {
            "drop_ratio": theta,
            "measured_mape_pct": error,
            "fitted_mape_pct": fitted.error_percent(theta),
            "paper_mape_pct": paper.error_percent(theta),
        }
        for theta, error in measured
    ]
    return {
        "figure": "6",
        "rows": rows,
        "fitted_coefficient": fitted.coefficient,
        "fitted_exponent": fitted.exponent,
    }


# ---------------------------------------------------------------------------
# Fig. 7 — two-priority reference setup
# ---------------------------------------------------------------------------
def two_priority_policies(drop_ratios: Sequence[float] = (0.1, 0.2)) -> List[SchedulingPolicy]:
    """P, NP and the DA variants evaluated in Fig. 7 / Fig. 8."""
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
    ]
    for theta in drop_ratios:
        policies.append(
            SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: theta})
        )
    return policies


def figure7_two_priority_reference(
    num_jobs: int = 400, seed: int = 0, scenario: Optional[Scenario] = None
) -> PolicyComparison:
    """Fig. 7: P (absolute), NP / DA(0,10) / DA(0,20) relative to P."""
    scenario = scenario or reference_two_priority_scenario(num_jobs)
    return run_policies(scenario, two_priority_policies(), baseline="P", seed=seed)


# ---------------------------------------------------------------------------
# Fig. 8 — sensitivity analysis
# ---------------------------------------------------------------------------
def figure8_sensitivity(
    variant: str, num_jobs: int = 400, seed: int = 0
) -> PolicyComparison:
    """Fig. 8(a/b/c): equal sizes, more high-priority, or 50 % load."""
    scenarios = {
        "equal_sizes": equal_job_sizes_scenario,
        "more_high_priority": more_high_priority_scenario,
        "low_load": low_load_scenario,
    }
    if variant not in scenarios:
        raise ValueError(f"variant must be one of {sorted(scenarios)}, got {variant!r}")
    scenario = scenarios[variant](num_jobs)
    return run_policies(scenario, two_priority_policies(), baseline="P", seed=seed)


# ---------------------------------------------------------------------------
# Fig. 9 — three-priority system
# ---------------------------------------------------------------------------
def figure9_three_priority(num_jobs: int = 500, seed: int = 0) -> PolicyComparison:
    """Fig. 9: P, NP, DA(0,10,20) and DA(0,20,40) on the three-priority mix."""
    scenario = three_priority_scenario(num_jobs)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
        SchedulingPolicy.differential_approximation(
            {HIGH: 0.0, MEDIUM: 0.1, LOW: 0.2}, name="DA(0/10/20)"
        ),
        SchedulingPolicy.differential_approximation(
            {HIGH: 0.0, MEDIUM: 0.2, LOW: 0.4}, name="DA(0/20/40)"
        ),
    ]
    return run_policies(scenario, policies, baseline="P", seed=seed)


# ---------------------------------------------------------------------------
# Fig. 10 — triangle count with per-stage drop ratios
# ---------------------------------------------------------------------------
def figure10_triangle_count(
    stage_drop_ratios: Sequence[float] = (0.01, 0.02, 0.05, 0.10, 0.20),
    num_jobs: int = 300,
    seed: int = 0,
) -> PolicyComparison:
    """Fig. 10: P, NP and DA(0,θ) with per-stage drop ratios on graph jobs."""
    scenario = triangle_count_scenario(num_jobs)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.non_preemptive_priority(),
    ]
    for theta in stage_drop_ratios:
        policies.append(
            SchedulingPolicy.differential_approximation(
                {HIGH: 0.0, LOW: theta}, name=f"DA(0/{round(100 * theta):g})"
            )
        )
    return run_policies(scenario, policies, baseline="P", seed=seed)


# ---------------------------------------------------------------------------
# Fig. 11 — full DiAS (approximation + sprinting) and energy
# ---------------------------------------------------------------------------
def limited_sprint_config() -> SprintConfig:
    """The paper's limited budget: 22 kJ, 65 s timeout, 6 sprint-min/hour."""
    return SprintConfig.from_energy_budget(
        LIMITED_SPRINT_BUDGET_JOULES,
        SPRINT_EXTRA_WATTS,
        sprint_priorities={HIGH},
        timeout=LIMITED_SPRINT_TIMEOUT_S,
        replenish_seconds_per_hour=360.0,
    )


def unlimited_sprint_config() -> SprintConfig:
    """The paper's unlimited budget: sprint high-priority jobs start to finish."""
    return SprintConfig.unlimited_sprinting(sprint_priorities={HIGH}, timeout=0.0)


def dias_policies(sprint: SprintConfig, drop_ratios: Sequence[float] = (0.1, 0.2)) -> List[SchedulingPolicy]:
    """P baseline plus the DiAS(0,θ) variants for one sprint configuration."""
    policies = [SchedulingPolicy.preemptive_priority()]
    for theta in drop_ratios:
        policies.append(
            SchedulingPolicy.dias({HIGH: 0.0, LOW: theta}, sprint=sprint)
        )
    return policies


def figure11_dias_sprinting(
    budget: str = "limited", num_jobs: int = 300, seed: int = 0
) -> PolicyComparison:
    """Fig. 11(a/b): latency of P vs DiAS(0,10)/DiAS(0,20) under one budget.

    The returned comparison also carries the energy totals used by Fig. 11c.
    """
    if budget not in ("limited", "unlimited"):
        raise ValueError("budget must be 'limited' or 'unlimited'")
    sprint = limited_sprint_config() if budget == "limited" else unlimited_sprint_config()
    scenario = triangle_count_scenario(num_jobs)
    return run_policies(scenario, dias_policies(sprint), baseline="P", seed=seed)


def figure11_energy_comparison(num_jobs: int = 300, seed: int = 0) -> Dict[str, object]:
    """Fig. 11c: energy of DiAS variants relative to P, both budgets.

    Two relative differences are reported: on the *total* energy (including
    the idle power the cluster draws between jobs, which dilutes the effect)
    and on the *active* energy (busy + sprint), which is the quantity closest
    to the paper's "energy consumed processing the workload".
    """
    rows: List[Dict[str, float]] = []
    for budget in ("limited", "unlimited"):
        comparison = figure11_dias_sprinting(budget=budget, num_jobs=num_jobs, seed=seed)
        baseline = comparison.baseline
        for name, result in comparison.results.items():
            rows.append(
                {
                    "budget": budget,
                    "policy": name,
                    "energy_kj": result.total_energy_kilojoules,
                    "active_energy_kj": result.active_energy_kilojoules,
                    "diff_pct": 100.0
                    * (result.total_energy_kilojoules - baseline.total_energy_kilojoules)
                    / baseline.total_energy_kilojoules,
                    "active_diff_pct": 100.0
                    * (result.active_energy_kilojoules - baseline.active_energy_kilojoules)
                    / baseline.active_energy_kilojoules,
                }
            )
    return {"figure": "11c", "rows": rows}
