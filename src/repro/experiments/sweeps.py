"""Parameter sweeps over drop ratios, loads and priority mixes.

The paper fixes a handful of operating points; a downstream user typically
wants the whole curve — e.g. "how does the DA(0,θ) latency/accuracy trade-off
evolve as θ grows?" or "at which load does non-preemptive scheduling start to
hurt the high class?".  These helpers run such sweeps on a common methodology
(fresh trace per point, same seed across policies within a point) and return
flat row dictionaries ready for :func:`repro.experiments.reporting.format_rows`.

Every sweep point is an independent simulation, so each helper accepts
``jobs``: points fan out across a process pool via
:func:`repro.experiments.parallel.parallel_map` and rows are assembled in
sweep order, making the parallel output bitwise-identical to the serial one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import run_policies
from repro.experiments.parallel import parallel_map
from repro.models.accuracy import AccuracyModel
from repro.telemetry import merge_parts, part_path
from repro.workloads.scenarios import Scenario


def _drop_ratio_point(payload) -> Dict[str, float]:
    """One θ point of :func:`drop_ratio_sweep` (module-level: picklable)."""
    (scenario, theta, target, accuracy, num_jobs, seed,
     telemetry_part, telemetry_interval) = payload
    policies = [SchedulingPolicy.preemptive_priority()]
    if theta > 0:
        policy = SchedulingPolicy.differential_approximation(
            {p: (theta if p == target else 0.0) for p in scenario.priorities}
        )
    else:
        policy = SchedulingPolicy.non_preemptive_priority()
    policies.append(policy)
    comparison = run_policies(scenario, policies, baseline="P", seed=seed,
                              num_jobs=num_jobs, accuracy_model=accuracy,
                              telemetry_base=telemetry_part,
                              telemetry_interval=telemetry_interval)
    result = comparison.result(policy.name)
    return {
        "drop_ratio": float(theta),
        "policy": policy.name,
        "low_mean_s": result.mean_response_time(scenario.lowest_priority),
        "low_diff_pct": comparison.relative_difference(
            policy.name, scenario.lowest_priority, "mean"
        ),
        "low_tail_diff_pct": comparison.relative_difference(
            policy.name, scenario.lowest_priority, "tail"
        ),
        "high_diff_pct": comparison.relative_difference(
            policy.name, scenario.highest_priority, "mean"
        ),
        "accuracy_loss_pct": 100.0 * accuracy.error(min(theta, 1.0)),
    }


def drop_ratio_sweep(
    scenario: Scenario,
    drop_ratios: Sequence[float],
    priority: Optional[int] = None,
    num_jobs: Optional[int] = None,
    seed: int = 0,
    accuracy_model: Optional[AccuracyModel] = None,
    jobs: int = 1,
    telemetry_base: Optional[str] = None,
    telemetry_interval: Optional[float] = None,
) -> List[Dict[str, float]]:
    """Sweep the low-priority drop ratio and report the latency/accuracy trade-off.

    For every θ the sweep runs P (baseline) and DA with θ applied to
    ``priority`` (default: the scenario's lowest class), on a common trace per
    sweep point.  ``jobs`` runs sweep points on that many worker processes.
    ``telemetry_base`` streams every point's telemetry to a per-point part
    file; parts are merged in sweep order so the JSONL output is identical
    whether points ran serially or fanned across workers.
    """
    target = priority if priority is not None else scenario.lowest_priority
    accuracy = accuracy_model or AccuracyModel.paper_default()
    parts = [
        part_path(telemetry_base, f"theta{index}") if telemetry_base else None
        for index in range(len(drop_ratios))
    ]
    payloads = [
        (scenario, theta, target, accuracy, num_jobs, seed,
         parts[index], telemetry_interval)
        for index, theta in enumerate(drop_ratios)
    ]
    rows = parallel_map(_drop_ratio_point, payloads, jobs=jobs)
    if telemetry_base:
        merge_parts(telemetry_base, [p for p in parts if p is not None])
    return rows


def _load_point(payload) -> List[Dict[str, float]]:
    """One utilisation point of :func:`load_sweep` (module-level: picklable)."""
    scenario, utilisation, policies, num_jobs, seed = payload
    point = scenario.with_utilisation(utilisation)
    comparison = run_policies(point, policies, baseline=policies[0].name,
                              seed=seed, num_jobs=num_jobs)
    rows: List[Dict[str, float]] = []
    for policy in policies:
        result = comparison.result(policy.name)
        rows.append(
            {
                "utilisation": float(utilisation),
                "policy": policy.name,
                "high_mean_s": result.mean_response_time(point.highest_priority),
                "low_mean_s": result.mean_response_time(point.lowest_priority),
                "low_diff_pct": comparison.relative_difference(
                    policy.name, point.lowest_priority, "mean"
                ),
                "resource_waste_pct": 100.0 * result.resource_waste,
                "energy_kj": result.total_energy_kilojoules,
            }
        )
    return rows


def load_sweep(
    scenario: Scenario,
    utilisations: Sequence[float],
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    num_jobs: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Sweep the target utilisation and compare policies at every load."""
    if policies is None:
        policies = [
            SchedulingPolicy.preemptive_priority(),
            SchedulingPolicy.non_preemptive_priority(),
            SchedulingPolicy.differential_approximation(
                {p: (0.2 if p == scenario.lowest_priority else 0.0)
                 for p in scenario.priorities}
            ),
        ]
    policies = list(policies)
    payloads = [
        (scenario, utilisation, policies, num_jobs, seed)
        for utilisation in utilisations
    ]
    rows: List[Dict[str, float]] = []
    for point_rows in parallel_map(_load_point, payloads, jobs=jobs):
        rows.extend(point_rows)
    return rows


def _priority_mix_point(payload) -> Dict[str, float]:
    """One mix point of :func:`priority_mix_sweep` (module-level: picklable)."""
    scenario, fraction, drop_ratio, num_jobs, seed = payload
    mix = {
        scenario.highest_priority: fraction,
        scenario.lowest_priority: 1.0 - fraction,
    }
    point = Scenario(
        name=f"{scenario.name}-high{fraction:.0%}",
        description=scenario.description,
        profiles={p: scenario.profiles[p] for p in mix},
        class_ratio=mix,
        target_utilisation=scenario.target_utilisation,
        num_jobs=scenario.num_jobs,
        cluster=scenario.cluster,
    )
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation(
            {p: (drop_ratio if p == point.lowest_priority else 0.0)
             for p in point.priorities}
        ),
    ]
    comparison = run_policies(point, policies, baseline="P", seed=seed,
                              num_jobs=num_jobs)
    da_name = policies[1].name
    return {
        "high_fraction": float(fraction),
        "low_diff_pct": comparison.relative_difference(
            da_name, point.lowest_priority, "mean"
        ),
        "low_tail_diff_pct": comparison.relative_difference(
            da_name, point.lowest_priority, "tail"
        ),
        "high_diff_pct": comparison.relative_difference(
            da_name, point.highest_priority, "mean"
        ),
        "resource_waste_pct": 100.0 * comparison.result("P").resource_waste,
    }


def priority_mix_sweep(
    scenario: Scenario,
    high_fractions: Sequence[float],
    drop_ratio: float = 0.2,
    num_jobs: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Sweep the fraction of high-priority arrivals (the Fig. 8b axis)."""
    for fraction in high_fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError("high_fractions must be strictly between 0 and 1")
    payloads = [
        (scenario, fraction, drop_ratio, num_jobs, seed)
        for fraction in high_fractions
    ]
    return parallel_map(_priority_mix_point, payloads, jobs=jobs)
