"""Run-one-experiment harness.

The evaluation compares several scheduling policies on the *same* workload
(Fig. 7–11 report relative differences against the preemptive baseline).  The
harness generates one job trace per scenario and runs every policy on it with
an independent cluster instance, then exposes per-class means/tails, relative
differences, resource waste and energy in one comparable structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.dias import DiASSimulation, SimulationResult
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster
from repro.engine.execution import JobExecution, build_phases
from repro.engine.job import JobFactory
from repro.engine.profiles import JobClassProfile
from repro.models.accuracy import AccuracyModel
from repro.simulation.des import Simulator
from repro.simulation.metrics import MetricsCollector
from repro.simulation.random_streams import RandomStreams
from repro.telemetry import JsonLinesSink, TelemetryHub, merge_parts, part_path
from repro.workloads.scenarios import Scenario


@dataclass
class PolicyComparison:
    """Results of several policies run on one scenario's common trace."""

    scenario_name: str
    baseline_name: str
    results: Dict[str, SimulationResult]
    priorities: List[int]

    @property
    def baseline(self) -> SimulationResult:
        return self.results[self.baseline_name]

    def result(self, policy_name: str) -> SimulationResult:
        return self.results[policy_name]

    def policy_names(self) -> List[str]:
        return list(self.results)

    def relative_difference(
        self, policy_name: str, priority: int, metric: str = "mean"
    ) -> float:
        """Relative latency difference (percent) of a policy vs the baseline."""
        return self.results[policy_name].relative_difference(
            self.baseline, priority, metric
        )

    def to_rows(self) -> List[Dict[str, float]]:
        """One row per (policy, priority) with the figures' reported quantities."""
        rows: List[Dict[str, float]] = []
        for name, result in self.results.items():
            for priority in self.priorities:
                rows.append(
                    {
                        "policy": name,
                        "priority": priority,
                        "mean_response_s": result.mean_response_time(priority),
                        "tail_response_s": result.tail_response_time(priority),
                        "mean_queueing_s": result.mean_queueing_time(priority),
                        "mean_execution_s": result.mean_execution_time(priority),
                        "diff_mean_pct": self.relative_difference(name, priority, "mean"),
                        "diff_tail_pct": self.relative_difference(name, priority, "tail"),
                        "accuracy_loss_pct": 100.0 * result.mean_accuracy_loss(priority),
                        "resource_waste_pct": 100.0 * result.resource_waste,
                        "energy_kj": result.total_energy_kilojoules,
                        "evictions": float(result.evictions),
                    }
                )
        return rows


def _run_single_policy(payload) -> SimulationResult:
    """Run one policy on a shared trace (module-level so it can cross processes).

    Each policy run builds its own fresh :class:`Cluster` from the scenario's
    immutable config/DVFS/power specs and is seeded identically to the serial
    path, so running policies in parallel preserves common random numbers and
    produces bitwise-identical metrics.  When ``telemetry_part`` is set the
    run's telemetry stream is written to that JSONL part file — each policy
    gets its own part, so the files never collide across worker processes.
    """
    (policy, trace, config, dvfs, power_model, accuracy_model, seed,
     quantiles, telemetry_part, telemetry_interval, telemetry_trace,
     faults) = payload
    cluster = Cluster(config=config, dvfs=dvfs, power_model=power_model)
    metrics = (
        MetricsCollector(streaming=True, quantiles=quantiles)
        if quantiles is not None
        else None
    )
    hub = TelemetryHub(sample_interval=telemetry_interval, tracing=telemetry_trace)
    if telemetry_part is not None:
        hub.add_sink(JsonLinesSink(telemetry_part))
    simulation = DiASSimulation(
        policy=policy,
        jobs=trace,
        cluster=cluster,
        accuracy_model=accuracy_model,
        seed=seed,
        metrics=metrics,
        telemetry=hub,
        faults=faults,
    )
    try:
        return simulation.run()
    finally:
        hub.close()


def run_policies(
    scenario: Scenario,
    policies: Sequence[SchedulingPolicy],
    baseline: Optional[str] = None,
    seed: int = 0,
    num_jobs: Optional[int] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    jobs: int = 1,
    quantiles: Optional[Sequence[float]] = None,
    telemetry_base: Optional[str] = None,
    telemetry_interval: Optional[float] = None,
    telemetry_trace: bool = False,
    faults=None,
) -> PolicyComparison:
    """Run every policy on one common trace generated from ``scenario``.

    ``jobs`` fans the (independent) per-policy runs across worker processes;
    results are keyed back by policy in input order, so the comparison is
    bitwise-identical to a serial run.  ``quantiles`` switches every run to a
    streaming :class:`~repro.simulation.metrics.MetricsCollector` tracking the
    extra response-time quantiles.  ``telemetry_base`` streams each run's
    telemetry to a per-policy part file and merges the parts (in policy input
    order) into one JSONL file at that path.  ``telemetry_trace`` additionally
    turns span tracing on in every worker hub, so the merged stream carries
    each policy's full span tree (byte-identical for any ``jobs`` fan-out).
    ``faults`` (a spec string or :class:`~repro.faults.spec.FaultSpec`)
    injects the same deterministic fault schedule into every policy's run —
    fault draws live on their own streams, so CRN across policies holds.
    """
    from repro.experiments.parallel import parallel_map
    from repro.faults.spec import parse_fault_spec

    if not policies:
        raise ValueError("at least one policy is required")
    faults = parse_fault_spec(faults)
    quantiles = tuple(quantiles) if quantiles is not None else None
    trace = scenario.generate_trace(seed=seed, num_jobs=num_jobs)
    parts = [
        part_path(telemetry_base, f"pol{index}") if telemetry_base else None
        for index in range(len(policies))
    ]
    payloads = [
        (
            policy,
            trace,
            scenario.cluster.config,
            scenario.cluster.dvfs,
            scenario.cluster.power_model,
            accuracy_model,
            seed,
            quantiles,
            parts[index],
            telemetry_interval,
            telemetry_trace,
            faults,
        )
        for index, policy in enumerate(policies)
    ]
    outcomes = parallel_map(_run_single_policy, payloads, jobs=jobs)
    if telemetry_base:
        merge_parts(telemetry_base, [p for p in parts if p is not None])
    results: Dict[str, SimulationResult] = {
        policy.name: outcome for policy, outcome in zip(policies, outcomes)
    }
    baseline_name = baseline if baseline is not None else policies[0].name
    if baseline_name not in results:
        raise ValueError(f"baseline policy {baseline_name!r} was not among the policies run")
    return PolicyComparison(
        scenario_name=scenario.name,
        baseline_name=baseline_name,
        results=results,
        priorities=scenario.priorities,
    )


def measure_processing_time(
    profile: JobClassProfile,
    slots: int,
    drop_ratio: float,
    num_jobs: int = 30,
    seed: int = 0,
) -> float:
    """Observed mean job processing time at a drop ratio (no queueing).

    Used by the Fig. 4 validation: jobs are sampled from the profile and
    executed in isolation on the engine simulator with the requested fraction
    of map tasks dropped; the mean wall-clock execution time is returned.
    """
    streams = RandomStreams(seed)
    factory = JobFactory(streams)
    cluster = Cluster()
    if cluster.slots != slots:
        # Build a cluster with the requested number of slots (workers of 2 cores).
        from repro.engine.cluster import ClusterConfig

        workers = max(1, slots // 2)
        cluster = Cluster(ClusterConfig(workers=workers, cores_per_worker=max(1, slots // workers)))
    durations: List[float] = []
    for _ in range(num_jobs):
        job = factory.create_job(profile, arrival_time=0.0)
        phases = build_phases(job, map_drop_ratio=drop_ratio)
        sim = Simulator()
        holder: Dict[str, float] = {}

        def _done(execution: JobExecution) -> None:
            holder["elapsed"] = execution.elapsed

        execution = JobExecution(sim, cluster, job, phases, on_complete=_done)
        execution.start()
        sim.run()
        durations.append(holder["elapsed"])
    return sum(durations) / len(durations)
