"""Plain-text rendering of experiment results.

The benchmark harness prints these tables so that running
``pytest benchmarks/ --benchmark-only`` reproduces, in text form, the same
rows/series the paper's figures and tables report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.harness import PolicyComparison


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def format_rows(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    )
    return "\n".join([header, separator, body])


def format_comparison(comparison: PolicyComparison, title: str = "") -> str:
    """Render a :class:`PolicyComparison` the way the paper's bar charts read.

    The baseline policy is shown with absolute latencies; every other policy
    is shown as a relative difference to it, per priority class, for both the
    mean and the 95th-percentile latency, together with resource waste and
    energy.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        f"scenario={comparison.scenario_name}  baseline={comparison.baseline_name}"
    )
    rows = comparison.to_rows()
    columns = [
        "policy",
        "priority",
        "mean_response_s",
        "tail_response_s",
        "diff_mean_pct",
        "diff_tail_pct",
        "accuracy_loss_pct",
        "resource_waste_pct",
        "energy_kj",
    ]
    lines.append(format_rows(rows, columns))
    return "\n".join(lines)


def format_figure(result: Mapping[str, object], title: str = "") -> str:
    """Render a figure-function result (dict with a ``rows`` list)."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    rows = result.get("rows", [])
    lines.append(format_rows(rows))
    extras = {k: v for k, v in result.items() if k not in ("rows",)}
    if extras:
        lines.append("")
        lines.append("  ".join(f"{k}={_format_value(v)}" for k, v in extras.items() if not hasattr(v, "to_rows")))
    return "\n".join(lines)
