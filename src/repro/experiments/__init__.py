"""Experiment harness: per-figure and per-table reproduction entry points.

* :mod:`repro.experiments.harness` — run a set of policies over one scenario
  on a common job trace and collect comparable results.
* :mod:`repro.experiments.figures` — one function per figure of the paper
  (Fig. 4–11), each returning the data series the figure plots.
* :mod:`repro.experiments.tables` — Table 2 (queueing/execution decomposition).
* :mod:`repro.experiments.reporting` — plain-text rendering of results in the
  same rows/series the paper reports.
* :mod:`repro.experiments.parallel` — process-pool fan-out of replications,
  sweep points and policy runs with bitwise serial/parallel equivalence.
"""

from repro.experiments.harness import PolicyComparison, measure_processing_time, run_policies
from repro.experiments.figures import (
    figure4_processing_time_validation,
    figure5_response_time_validation,
    figure6_accuracy_loss,
    figure7_two_priority_reference,
    figure8_sensitivity,
    figure9_three_priority,
    figure10_triangle_count,
    figure11_dias_sprinting,
)
from repro.experiments.parallel import (
    DagExperiment,
    FleetExperiment,
    ParallelRunner,
    PolicyComparisonExperiment,
    parallel_map,
)
from repro.experiments.sweeps import drop_ratio_sweep, load_sweep, priority_mix_sweep
from repro.experiments.tables import table2_latency_decomposition
from repro.experiments.reporting import format_comparison, format_figure, format_rows

__all__ = [
    "DagExperiment",
    "FleetExperiment",
    "ParallelRunner",
    "PolicyComparisonExperiment",
    "parallel_map",
    "drop_ratio_sweep",
    "load_sweep",
    "priority_mix_sweep",
    "format_figure",
    "PolicyComparison",
    "measure_processing_time",
    "run_policies",
    "figure4_processing_time_validation",
    "figure5_response_time_validation",
    "figure6_accuracy_loss",
    "figure7_two_priority_reference",
    "figure8_sensitivity",
    "figure9_three_priority",
    "figure10_triangle_count",
    "figure11_dias_sprinting",
    "table2_latency_decomposition",
    "format_comparison",
    "format_rows",
]
