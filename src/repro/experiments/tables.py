"""Per-table reproduction entry points (Table 2)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.policies import SchedulingPolicy
from repro.experiments.figures import limited_sprint_config
from repro.experiments.harness import PolicyComparison, run_policies
from repro.workloads.scenarios import HIGH, LOW, triangle_count_scenario


def table2_latency_decomposition(
    num_jobs: int = 300, seed: int = 0
) -> Dict[str, object]:
    """Table 2: mean queueing and execution times under sprinted policies.

    Compares NPS (sprinted non-preemptive, no approximation), DiAS(0,10) and
    DiAS(0,20) under the limited sprinting budget, reporting the mean queueing
    and execution times of the high- and low-priority classes.
    """
    sprint = limited_sprint_config()
    scenario = triangle_count_scenario(num_jobs)
    policies = [
        SchedulingPolicy.sprinted_non_preemptive(sprint),
        SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.1}, sprint=sprint),
        SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.2}, sprint=sprint),
    ]
    comparison = run_policies(scenario, policies, baseline="NPS", seed=seed)
    rows: List[Dict[str, float]] = []
    for name in comparison.policy_names():
        result = comparison.result(name)
        for priority, label in ((HIGH, "High"), (LOW, "Low")):
            rows.append(
                {
                    "policy": name,
                    "class": label,
                    "mean_queueing_s": result.mean_queueing_time(priority),
                    "mean_execution_s": result.mean_execution_time(priority),
                }
            )
    return {"table": "2", "rows": rows, "comparison": comparison}
