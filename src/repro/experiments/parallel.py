"""Parallel experiment execution engine.

Replications, sweep points and policy runs are *embarrassingly parallel*:
each unit of work is a pure function of its inputs (scenario, policy, seed),
with all randomness rooted in the seed via
:class:`~repro.simulation.random_streams.RandomStreams`.  This module fans
such units across a :class:`concurrent.futures.ProcessPoolExecutor` while
guaranteeing **bitwise-identical results to serial execution**:

* seeds are partitioned deterministically up front
  (:func:`~repro.simulation.replication.replication_seed`), never drawn from
  shared state, so common random numbers (CRN) are preserved;
* results are folded back in submission order, regardless of which worker
  finishes first;
* ``jobs=1`` short-circuits to an in-process loop over the *same* work
  function, so the serial path and the parallel path cannot drift apart.

Work functions must be picklable (module-level callables or instances of
module-level classes); closures raise a descriptive error rather than an
opaque pickling traceback.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.simulation.replication import ReplicatedMetric, ReplicationRunner
from repro.telemetry import (
    JsonLinesSink,
    TelemetryHub,
    merge_parts,
    seed_part_path,
)


def validate_jobs(jobs: int) -> int:
    """Validate a worker-process count; raises ``ValueError`` below 1."""
    if jobs is None or int(jobs) != jobs or jobs < 1:
        raise ValueError(
            f"jobs must be an integer >= 1 (the number of worker processes), got {jobs!r}"
        )
    return int(jobs)


def parallel_map(
    fn: Callable[[Any], Any], items: Iterable[Any], jobs: int = 1
) -> List[Any]:
    """Map ``fn`` over ``items`` on ``jobs`` processes, preserving order.

    With ``jobs=1`` (or fewer than two items) this is a plain in-process
    loop, so serial callers run the exact same code path as parallel ones.
    Results are returned in input order; the output is therefore independent
    of worker scheduling.
    """
    validate_jobs(jobs)
    work = list(items)
    if jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        pickle.dumps(fn)
    except Exception as error:
        raise ValueError(
            "the work function must be picklable to fan out across processes "
            "(use a module-level function or class instance, not a closure): "
            f"{error}"
        ) from error
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        futures = [pool.submit(fn, item) for item in work]
        return [future.result() for future in futures]


class ParallelRunner:
    """Fans independent experiment units across a process pool.

    A thin, reusable handle around :func:`parallel_map` with a fixed worker
    count — convenient when one component runs several fan-outs at the same
    parallelism.  The CLI and the ``jobs=`` parameters of
    :class:`ReplicationRunner`, :func:`repro.experiments.harness.run_policies`
    and the sweep helpers call :func:`parallel_map` directly; both routes
    share the same validation and ordering guarantees.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = validate_jobs(jobs)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return parallel_map(fn, items, jobs=self.jobs)

    def run_replications(
        self,
        experiment: Callable[[int], Dict[str, float]],
        replications: int,
        base_seed: int = 0,
    ) -> Dict[str, ReplicatedMetric]:
        """Run a seed->metrics experiment ``replications`` times in parallel."""
        runner = ReplicationRunner(experiment)
        return runner.run(replications, base_seed=base_seed, jobs=self.jobs)


# --------------------------------------------------------------------------
# Picklable experiment adapters (module-level classes so instances can cross
# the process boundary; lazy imports avoid import cycles with the layers that
# call back into this module).
# --------------------------------------------------------------------------
def _seed_hub(
    telemetry_base: Optional[str],
    telemetry_interval: Optional[float],
    seed: int,
) -> TelemetryHub:
    """Hub writing one replication's stream to its per-seed part file.

    Replication seeds are unique (:func:`replication_seed`), so concurrent
    worker processes never write the same part; the driver later merges the
    parts in submission order, keeping the merged JSONL bitwise-identical
    between serial and parallel runs.  Without a base path the hub stays
    disabled — the zero-cost probe path.
    """
    hub = TelemetryHub(sample_interval=telemetry_interval)
    if telemetry_base:
        hub.add_sink(JsonLinesSink(seed_part_path(telemetry_base, seed)))
    return hub


def merge_replication_parts(
    telemetry_base: Optional[str], base_seed: int, replications: int
) -> None:
    """Merge per-replication telemetry parts into ``telemetry_base``.

    Parts are concatenated in replication order (the submission order of the
    work units), so the merged file is independent of worker scheduling.
    """
    from repro.simulation.replication import replication_seed

    if not telemetry_base:
        return
    parts = [
        seed_part_path(telemetry_base, replication_seed(base_seed, index))
        for index in range(replications)
    ]
    merge_parts(telemetry_base, parts)


class PolicyComparisonExperiment:
    """Seed -> flat metrics of a multi-policy comparison on one scenario.

    Produces, per policy and priority, the mean/tail response times plus the
    fleet-level waste/energy — the quantities the paper's bar charts report —
    keyed ``"<policy>/p<priority>/<metric>"``.
    """

    def __init__(
        self,
        scenario,
        policies: Sequence,
        baseline: Optional[str] = None,
        num_jobs: Optional[int] = None,
        accuracy_model=None,
        telemetry_base: Optional[str] = None,
        telemetry_interval: Optional[float] = None,
        faults=None,
    ) -> None:
        self.scenario = scenario
        self.policies = list(policies)
        self.baseline = baseline
        self.num_jobs = num_jobs
        self.accuracy_model = accuracy_model
        self.telemetry_base = telemetry_base
        self.telemetry_interval = telemetry_interval
        self.faults = faults

    def __call__(self, seed: int) -> Dict[str, float]:
        from repro.experiments.harness import run_policies

        comparison = run_policies(
            self.scenario,
            self.policies,
            baseline=self.baseline,
            seed=seed,
            num_jobs=self.num_jobs,
            accuracy_model=self.accuracy_model,
            telemetry_base=(
                seed_part_path(self.telemetry_base, seed)
                if self.telemetry_base
                else None
            ),
            telemetry_interval=self.telemetry_interval,
            faults=self.faults,
        )
        metrics: Dict[str, float] = {}
        for name, result in comparison.results.items():
            for priority in comparison.priorities:
                prefix = f"{name}/p{priority}"
                metrics[f"{prefix}/mean_response_s"] = result.mean_response_time(priority)
                metrics[f"{prefix}/p95_response_s"] = result.tail_response_time(priority)
            metrics[f"{name}/resource_waste_pct"] = 100.0 * result.resource_waste
            metrics[f"{name}/energy_kj"] = result.total_energy_kilojoules
        return metrics


class FleetExperiment:
    """Seed -> headline fleet metrics for one fleet scenario/router/policy."""

    def __init__(
        self,
        scenario,
        policy,
        dispatcher: str = "round_robin",
        power_of_d: Optional[int] = None,
        sprint_budget: str = "per-cluster",
        telemetry_base: Optional[str] = None,
        telemetry_interval: Optional[float] = None,
        faults=None,
        decision_hook=None,
    ) -> None:
        self.scenario = scenario
        self.policy = policy
        self.dispatcher = dispatcher
        self.power_of_d = power_of_d
        self.sprint_budget = sprint_budget
        self.telemetry_base = telemetry_base
        self.telemetry_interval = telemetry_interval
        self.faults = faults
        # Must be picklable for jobs > 1 (e.g. an AgentDecisionHook around a
        # stateless or frozen agent).
        self.decision_hook = decision_hook

    def __call__(self, seed: int) -> Dict[str, float]:
        from repro.fleet.simulation import FleetSimulation

        trace = self.scenario.generate_trace(seed=seed)
        hub = _seed_hub(self.telemetry_base, self.telemetry_interval, seed)
        simulation = FleetSimulation(
            policy=self.policy,
            jobs=trace,
            clusters=self.scenario.make_clusters(),
            dispatcher=self.dispatcher,
            power_of_d=self.power_of_d,
            seed=seed,
            sprint_budget=self.sprint_budget,
            telemetry=hub,
            faults=self.faults,
            decision_hook=self.decision_hook,
        )
        try:
            result = simulation.run()
            metrics = dict(result.summary())
            for name, value in sorted(result.fault_counts.items()):
                metrics[f"faults/{name}"] = float(value)
            if simulation._quarantine:
                metrics["faults/quarantine_redirects"] = float(
                    simulation.quarantine_redirects
                )
            return metrics
        finally:
            hub.close()


class DagExperiment:
    """Seed -> headline DAG metrics for one DAG scenario/scheduler/policy."""

    def __init__(
        self,
        scenario,
        policy,
        scheduler: str = "fifo",
        slack_biased: bool = False,
        telemetry_base: Optional[str] = None,
        telemetry_interval: Optional[float] = None,
        faults=None,
        decision_hook=None,
    ) -> None:
        self.scenario = scenario
        self.policy = policy
        self.scheduler = scheduler
        self.slack_biased = slack_biased
        self.telemetry_base = telemetry_base
        self.telemetry_interval = telemetry_interval
        self.faults = faults
        # Must be picklable for jobs > 1.
        self.decision_hook = decision_hook

    def __call__(self, seed: int) -> Dict[str, float]:
        from repro.dag.simulation import DagSimulation
        from repro.engine.cluster import Cluster

        # Build a fresh cluster per replication from the scenario's immutable
        # specs: Cluster carries run state (sprinting mode), and sharing one
        # instance across in-process replications would let run N leak state
        # into run N+1 — breaking bitwise serial/parallel equivalence.
        source = self.scenario.cluster
        cluster = Cluster(
            config=source.config, dvfs=source.dvfs, power_model=source.power_model
        )
        trace = self.scenario.generate_trace(seed=seed)
        hub = _seed_hub(self.telemetry_base, self.telemetry_interval, seed)
        simulation = DagSimulation(
            policy=self.policy,
            jobs=trace,
            scheduler=self.scheduler,
            cluster=cluster,
            seed=seed,
            slack_biased=self.slack_biased,
            telemetry=hub,
            faults=self.faults,
            decision_hook=self.decision_hook,
        )
        result = simulation.run()
        hub.close()
        return {
            "completed_jobs": float(result.completed_jobs),
            "mean_makespan_s": result.mean_makespan(),
            "mean_cp_stretch": result.mean_critical_path_stretch(),
            "mean_response_s": result.mean_response_time(),
            "p95_response_s": result.tail_response_time(),
            "resource_waste_pct": 100.0 * result.resource_waste,
            "energy_kj": result.total_energy_kilojoules,
        }


class RowSweepExperiment:
    """Seed -> row list of one sweep function (picklable wrapper for sweeps).

    ``telemetry_base`` (for sweeps that accept it) redirects every
    replication's telemetry to its per-seed part file; merge the parts
    afterwards with :func:`merge_replication_parts`.
    """

    def __init__(
        self,
        sweep: Callable[..., List[Dict[str, float]]],
        kwargs: Mapping[str, Any],
        telemetry_base: Optional[str] = None,
        telemetry_interval: Optional[float] = None,
    ) -> None:
        self.sweep = sweep
        self.kwargs = dict(kwargs)
        self.telemetry_base = telemetry_base
        self.telemetry_interval = telemetry_interval

    def __call__(self, seed: int) -> List[Dict[str, float]]:
        kwargs = dict(self.kwargs)
        if self.telemetry_base:
            kwargs["telemetry_base"] = seed_part_path(self.telemetry_base, seed)
            kwargs["telemetry_interval"] = self.telemetry_interval
        return self.sweep(seed=seed, **kwargs)


def replicate_rows(
    row_experiment: Callable[[int], List[Dict[str, float]]],
    replications: int,
    base_seed: int = 0,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Replicate a row-producing experiment and average numeric columns.

    Runs ``row_experiment`` once per :func:`replication_seed`, aligns the
    returned row lists positionally (every replication must produce the same
    row shape), averages numeric fields across replications, and annotates
    each row with the replication count.  Non-numeric fields are taken from
    the first replication.
    """
    from repro.simulation.replication import replication_seed

    if replications <= 0:
        raise ValueError("replications must be positive")
    seeds = [replication_seed(base_seed, index) for index in range(replications)]
    per_seed_rows = parallel_map(row_experiment, seeds, jobs=jobs)
    first = per_seed_rows[0]
    if any(len(rows) != len(first) for rows in per_seed_rows[1:]):
        raise ValueError("every replication must produce the same number of rows")
    averaged: List[Dict[str, float]] = []
    for row_index, template in enumerate(first):
        row: Dict[str, float] = {}
        for key, value in template.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                row[key] = value
                continue
            row[key] = sum(
                rows[row_index][key] for rows in per_seed_rows
            ) / replications
        row["replications"] = float(replications)
        averaged.append(row)
    return averaged


def interval_rows(
    metrics: Mapping[str, ReplicatedMetric], confidence: float = 0.95
) -> List[Dict[str, float]]:
    """Render replicated metrics as mean +/- half-width rows for reporting."""
    rows: List[Dict[str, float]] = []
    for name, metric in metrics.items():
        interval = metric.interval(confidence)
        rows.append(
            {
                "metric": name,
                "mean": interval.mean,
                "half_width": interval.half_width,
                "lower": interval.lower,
                "upper": interval.upper,
                "replications": float(interval.replications),
            }
        )
    return rows
