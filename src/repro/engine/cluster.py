"""Cluster model: computing slots plus DVFS state.

The paper's testbed is one Spark master and ten workers with two cores each,
giving 20 computing slots; DiAS changes the CPU frequency of all cluster
nodes at once when sprinting (§4, "our current approach sprints all available
cores at the same time").  The :class:`Cluster` therefore exposes a single
cluster-wide speed factor derived from the :class:`~repro.engine.dvfs.DVFSModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.dvfs import DVFSModel, FrequencyLevel
from repro.engine.energy import PowerModel


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the cluster."""

    workers: int = 10
    cores_per_worker: int = 2
    memory_per_worker_gb: float = 4.0

    def __post_init__(self) -> None:
        if self.workers <= 0 or self.cores_per_worker <= 0:
            raise ValueError("workers and cores_per_worker must be positive")
        if self.memory_per_worker_gb <= 0:
            raise ValueError("memory_per_worker_gb must be positive")

    @property
    def slots(self) -> int:
        """Total computing slots ``C`` (cores across workers)."""
        return self.workers * self.cores_per_worker

    @property
    def total_memory_gb(self) -> float:
        return self.workers * self.memory_per_worker_gb


class Cluster:
    """Mutable cluster state: current frequency level and derived speed."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        dvfs: Optional[DVFSModel] = None,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.dvfs = dvfs or DVFSModel()
        self.power_model = power_model or PowerModel()
        self._sprinting = False

    @property
    def slots(self) -> int:
        return self.config.slots

    @property
    def sprinting(self) -> bool:
        """Whether the cluster is currently running at the sprint frequency."""
        return self._sprinting

    @property
    def frequency(self) -> FrequencyLevel:
        return self.dvfs.sprint if self._sprinting else self.dvfs.base

    @property
    def speed(self) -> float:
        """Current execution-rate multiplier relative to the base frequency."""
        return self.dvfs.speedup(self.frequency)

    def set_sprinting(self, sprinting: bool) -> bool:
        """Set the sprint state; returns ``True`` if the state changed."""
        sprinting = bool(sprinting)
        changed = sprinting != self._sprinting
        self._sprinting = sprinting
        return changed

    def power_mode(self, busy: bool) -> str:
        """Operating mode for the energy meter given engine business."""
        if not busy:
            return "idle"
        return "sprint" if self._sprinting else "busy"
