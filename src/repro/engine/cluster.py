"""Cluster model: computing slots plus DVFS state.

The paper's testbed is one Spark master and ten workers with two cores each,
giving 20 computing slots; DiAS changes the CPU frequency of all cluster
nodes at once when sprinting (§4, "our current approach sprints all available
cores at the same time").  The :class:`Cluster` therefore exposes a single
cluster-wide speed factor derived from the :class:`~repro.engine.dvfs.DVFSModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.engine.dvfs import DVFSModel, FrequencyLevel
from repro.engine.energy import PowerModel


class ClusterCapacityError(RuntimeError):
    """The cluster has no available workers and no repair on the horizon.

    Raised instead of letting a fully-crashed cluster hang the simulation
    (nothing would ever be dispatched again) or divide by zero in
    capacity-derived quantities.
    """


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the cluster."""

    workers: int = 10
    cores_per_worker: int = 2
    memory_per_worker_gb: float = 4.0

    def __post_init__(self) -> None:
        if self.workers <= 0 or self.cores_per_worker <= 0:
            raise ValueError("workers and cores_per_worker must be positive")
        if self.memory_per_worker_gb <= 0:
            raise ValueError("memory_per_worker_gb must be positive")

    @property
    def slots(self) -> int:
        """Total computing slots ``C`` (cores across workers)."""
        return self.workers * self.cores_per_worker

    @property
    def total_memory_gb(self) -> float:
        return self.workers * self.memory_per_worker_gb


class Cluster:
    """Mutable cluster state: current frequency level and derived speed."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        dvfs: Optional[DVFSModel] = None,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.dvfs = dvfs or DVFSModel()
        self.power_model = power_model or PowerModel()
        self._sprinting = False
        # Workers currently down due to an injected crash (empty without
        # fault injection, keeping the no-faults paths branch-predictable).
        self._failed_workers: set = set()

    @property
    def slots(self) -> int:
        return self.config.slots

    # ------------------------------------------------------------- failures
    @property
    def failed_workers(self) -> FrozenSet[int]:
        return frozenset(self._failed_workers)

    @property
    def available_workers(self) -> int:
        """Workers currently up."""
        return self.config.workers - len(self._failed_workers)

    @property
    def available_slots(self) -> int:
        """Computing slots on workers currently up."""
        return self.available_workers * self.config.cores_per_worker

    def worker_of_slot(self, slot: int) -> int:
        """Worker hosting computing slot ``slot``."""
        return slot // self.config.cores_per_worker

    def worker_slots(self, worker: int) -> range:
        """Computing slots hosted by ``worker``."""
        cores = self.config.cores_per_worker
        return range(worker * cores, (worker + 1) * cores)

    def free_slot_ids(self) -> List[int]:
        """Slot ids on available workers (all slots when nothing failed)."""
        if not self._failed_workers:
            return list(range(self.config.slots))
        cores = self.config.cores_per_worker
        failed = self._failed_workers
        return [s for s in range(self.config.slots) if s // cores not in failed]

    def fail_worker(self, worker: int, repair_scheduled: bool = False) -> None:
        """Take ``worker`` down (an injected crash).

        Raises :class:`ClusterCapacityError` when the crash leaves zero
        available workers and ``repair_scheduled`` is false — with no repair
        pending the simulation could never dispatch again.
        """
        if not 0 <= worker < self.config.workers:
            raise ValueError(
                f"worker index {worker} out of range for {self.config.workers} workers"
            )
        if worker in self._failed_workers:
            raise ValueError(f"worker {worker} is already failed")
        if not repair_scheduled and self.available_workers == 1:
            # Refuse before mutating: the crash would leave the cluster dead.
            raise ClusterCapacityError(
                f"crash of worker {worker} leaves zero available workers "
                f"(of {self.config.workers}) with no repair scheduled; "
                "the workload can never finish"
            )
        self._failed_workers.add(worker)

    def repair_worker(self, worker: int) -> None:
        """Bring a failed ``worker`` back up."""
        if worker not in self._failed_workers:
            raise ValueError(f"worker {worker} is not failed")
        self._failed_workers.discard(worker)

    @property
    def sprinting(self) -> bool:
        """Whether the cluster is currently running at the sprint frequency."""
        return self._sprinting

    @property
    def frequency(self) -> FrequencyLevel:
        return self.dvfs.sprint if self._sprinting else self.dvfs.base

    @property
    def speed(self) -> float:
        """Current execution-rate multiplier relative to the base frequency."""
        return self.dvfs.speedup(self.frequency)

    def set_sprinting(self, sprinting: bool) -> bool:
        """Set the sprint state; returns ``True`` if the state changed."""
        sprinting = bool(sprinting)
        changed = sprinting != self._sprinting
        self._sprinting = sprinting
        return changed

    def power_mode(self, busy: bool) -> str:
        """Operating mode for the energy meter given engine business."""
        if not busy:
            return "idle"
        return "sprint" if self._sprinting else "busy"
