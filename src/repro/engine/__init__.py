"""Spark-like processing-engine substrate.

The paper evaluates DiAS on a Spark v2.1 cluster (one master, ten workers with
two cores each, HDFS storage).  This subpackage models that substrate:

* :mod:`repro.engine.hdfs` — a block store that splits datasets into blocks and
  RDD partitions (and therefore map tasks).
* :mod:`repro.engine.profiles` — per-priority-class job profiles (size, task
  time, overhead, shuffle) plus task-duration distributions.
* :mod:`repro.engine.job` — stage/job descriptions and the job factory that
  samples concrete jobs from a profile.
* :mod:`repro.engine.cluster` — the cluster (computing slots + DVFS state).
* :mod:`repro.engine.dvfs` — the frequency/speedup model for sprinting.
* :mod:`repro.engine.energy` — the power model and energy meter.
* :mod:`repro.engine.execution` — wave-based execution of a job on the cluster
  slots inside the discrete-event simulator, with mid-flight speed changes and
  eviction support.
"""

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.dvfs import DVFSModel, FrequencyLevel
from repro.engine.energy import EnergyMeter, PowerModel
from repro.engine.execution import JobExecution
from repro.engine.hdfs import BlockStore, Dataset
from repro.engine.job import Job, JobFactory, StageSpec
from repro.engine.profiles import JobClassProfile, TaskTimeModel

__all__ = [
    "Cluster",
    "ClusterConfig",
    "DVFSModel",
    "FrequencyLevel",
    "EnergyMeter",
    "PowerModel",
    "JobExecution",
    "BlockStore",
    "Dataset",
    "Job",
    "JobFactory",
    "StageSpec",
    "JobClassProfile",
    "TaskTimeModel",
]
