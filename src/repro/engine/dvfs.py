"""DVFS (dynamic voltage and frequency scaling) model used for sprinting.

The paper sprints by raising the CPU clock from 800 MHz to 2.4 GHz via
``cpupower`` and reports that sprinting reduces the execution time of
high-priority jobs by *up to 60 %* while raising server power from 180 W to
270 W (×1.5).

A pure frequency ratio would predict a 3× speedup; the observed ≤60 % latency
reduction (≈2.5×) reflects that only part of a Spark task is CPU-bound (the
rest is I/O, shuffle and framework overhead).  We therefore model the
execution time of a task at frequency ``f`` as::

    t(f) = t_base * (beta * f_base / f + (1 - beta))

where ``beta`` is the CPU-bound fraction of the work.  With ``beta = 0.9`` and
the paper's frequencies this yields a 2.5× speedup, i.e. a 60 % reduction,
matching the reported ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrequencyLevel:
    """A named CPU frequency operating point."""

    name: str
    frequency_mhz: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz!r}")


#: The operating points used in the paper's testbed.
BASE_FREQUENCY = FrequencyLevel("base", 800.0)
SPRINT_FREQUENCY = FrequencyLevel("sprint", 2400.0)


@dataclass(frozen=True)
class DVFSModel:
    """Maps a frequency change to an execution-time speedup.

    Parameters
    ----------
    base:
        The sustained (non-sprinted) frequency level.
    sprint:
        The boosted frequency level used while sprinting.
    cpu_bound_fraction:
        Fraction ``beta`` of task work that scales with frequency.
    """

    base: FrequencyLevel = BASE_FREQUENCY
    sprint: FrequencyLevel = SPRINT_FREQUENCY
    cpu_bound_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_bound_fraction <= 1.0:
            raise ValueError(
                f"cpu_bound_fraction must be in [0, 1], got {self.cpu_bound_fraction!r}"
            )
        if self.sprint.frequency_mhz < self.base.frequency_mhz:
            raise ValueError("sprint frequency must be at least the base frequency")

    def time_scale(self, frequency: FrequencyLevel) -> float:
        """Multiplier applied to base-frequency task durations at ``frequency``."""
        beta = self.cpu_bound_fraction
        ratio = self.base.frequency_mhz / frequency.frequency_mhz
        return beta * ratio + (1.0 - beta)

    def speedup(self, frequency: FrequencyLevel) -> float:
        """Execution-rate multiplier relative to the base frequency (≥ 1)."""
        return 1.0 / self.time_scale(frequency)

    @property
    def sprint_speedup(self) -> float:
        """Speedup obtained while sprinting."""
        return self.speedup(self.sprint)

    @property
    def sprint_time_reduction(self) -> float:
        """Fractional execution-time reduction while sprinting (paper: ≤ 0.6)."""
        return 1.0 - self.time_scale(self.sprint)
