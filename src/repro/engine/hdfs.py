"""A minimal HDFS-like block store.

Spark jobs in the paper read their input from HDFS; the number of input blocks
(or the configured partition count) determines the number of map tasks and
therefore the job parallelism.  The block store here captures exactly that
relationship: datasets have a size in megabytes, are split into fixed-size
blocks, and expose a partition count used to size the map stage.

The paper splits each text dataset into 50 RDD partitions regardless of size
(§5.1), so :class:`Dataset` supports both block-derived and explicitly
configured partition counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Dataset:
    """A named dataset stored in the block store."""

    name: str
    size_mb: float
    partitions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(f"dataset size must be positive, got {self.size_mb!r}")
        if self.partitions is not None and self.partitions <= 0:
            raise ValueError(f"partition count must be positive, got {self.partitions!r}")


class BlockStore:
    """Tracks datasets, their blocks and replica placement.

    Parameters
    ----------
    block_size_mb:
        HDFS block size; default 128 MB as in stock HDFS 2.8.
    replication:
        Replication factor (the paper deploys three datanodes).
    datanodes:
        Number of datanodes storing blocks.
    """

    def __init__(
        self,
        block_size_mb: float = 128.0,
        replication: int = 3,
        datanodes: int = 3,
    ) -> None:
        if block_size_mb <= 0:
            raise ValueError("block size must be positive")
        if replication <= 0 or datanodes <= 0:
            raise ValueError("replication and datanodes must be positive")
        if replication > datanodes:
            raise ValueError("replication factor cannot exceed the number of datanodes")
        self.block_size_mb = float(block_size_mb)
        self.replication = int(replication)
        self.datanodes = int(datanodes)
        self._datasets: Dict[str, Dataset] = {}

    # ---------------------------------------------------------------- store
    def add_dataset(self, dataset: Dataset) -> Dataset:
        """Register a dataset; re-registering the same name overwrites it."""
        self._datasets[dataset.name] = dataset
        return dataset

    def create_dataset(
        self, name: str, size_mb: float, partitions: Optional[int] = None
    ) -> Dataset:
        """Create and register a dataset in one call."""
        return self.add_dataset(Dataset(name=name, size_mb=size_mb, partitions=partitions))

    def get(self, name: str) -> Dataset:
        if name not in self._datasets:
            raise KeyError(f"unknown dataset {name!r}")
        return self._datasets[name]

    def datasets(self) -> List[Dataset]:
        return list(self._datasets.values())

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    # ------------------------------------------------------------- geometry
    def num_blocks(self, name: str) -> int:
        """Number of HDFS blocks the dataset occupies."""
        dataset = self.get(name)
        return max(1, math.ceil(dataset.size_mb / self.block_size_mb))

    def num_partitions(self, name: str) -> int:
        """RDD partitions (map tasks) for the dataset.

        Uses the explicitly configured partition count when present (the paper
        uses 50 partitions per text dataset), otherwise one partition per block.
        """
        dataset = self.get(name)
        if dataset.partitions is not None:
            return dataset.partitions
        return self.num_blocks(name)

    def stored_mb(self) -> float:
        """Total storage footprint including replication."""
        return sum(d.size_mb for d in self._datasets.values()) * self.replication

    def block_placement(self, name: str) -> List[List[int]]:
        """Round-robin placement of each block's replicas on datanodes.

        Returns one list of datanode indices per block.  Placement is
        deterministic so tests and simulations are reproducible.
        """
        blocks = self.num_blocks(name)
        placement: List[List[int]] = []
        for block_index in range(blocks):
            replicas = [
                (block_index + offset) % self.datanodes for offset in range(self.replication)
            ]
            placement.append(replicas)
        return placement
