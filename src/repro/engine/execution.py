"""Wave-based execution of a job on the cluster inside the simulator.

A job executes as a sequence of *phases*: the setup (overhead) stage, then for
each map/reduce stage pair the map tasks, the shuffle, and the reduce tasks.
Task phases run their tasks on the cluster's ``C`` computing slots, which
naturally produces the wave behaviour the paper's Section 4.2 models
(``⌈tasks/slots⌉`` waves when task times are similar).

The execution object supports the two dynamic operations DiAS needs:

* :meth:`JobExecution.set_speed` — a cluster-wide DVFS change (sprint start or
  stop) rescales the completion times of all in-flight tasks.
* :meth:`JobExecution.evict` — preemptive eviction cancels all in-flight work;
  the wall-clock time burned by the attempt is returned so the simulator can
  account resource waste (the job restarts from scratch later, as in the
  paper's SIGKILL-based prototype).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.cluster import Cluster
from repro.engine.job import Job, effective_task_count
from repro.simulation.des import Event, Simulator
from repro.telemetry.hub import NULL_HUB, TelemetryHub


@dataclass
class ExecutionPhase:
    """One phase of a job's execution timeline."""

    name: str
    stage_index: int
    durations: List[float]
    parallel: bool = True

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.durations):
            raise ValueError("phase durations must be non-negative")

    @property
    def total_work(self) -> float:
        return float(sum(self.durations))


def build_phases(
    job: Job,
    map_drop_ratio: float = 0.0,
    reduce_drop_ratio: float = 0.0,
    kept_map_indices: Optional[Dict[int, Sequence[int]]] = None,
    kept_reduce_indices: Optional[Dict[int, Sequence[int]]] = None,
) -> List[ExecutionPhase]:
    """Build the execution phases of ``job`` under the given drop ratios.

    If explicit kept-task indices are provided (from the dropper), they take
    precedence; otherwise the first ``⌈n(1 − θ)⌉`` tasks of each droppable
    stage are kept.  Non-droppable stages always keep all their tasks.
    """
    phases: List[ExecutionPhase] = [
        ExecutionPhase(
            name="setup",
            stage_index=-1,
            durations=[job.setup_time(map_drop_ratio)],
            parallel=False,
        )
    ]
    for stage in job.stages:
        stage_map_drop = map_drop_ratio if stage.droppable else 0.0
        stage_reduce_drop = reduce_drop_ratio if stage.droppable else 0.0
        if kept_map_indices is not None and stage.index in kept_map_indices:
            map_durations = [stage.map_task_times[i] for i in kept_map_indices[stage.index]]
        else:
            keep = effective_task_count(stage.num_map_tasks, stage_map_drop)
            map_durations = list(stage.map_task_times[:keep])
        if kept_reduce_indices is not None and stage.index in kept_reduce_indices:
            reduce_durations = [
                stage.reduce_task_times[i] for i in kept_reduce_indices[stage.index]
            ]
        else:
            keep = effective_task_count(stage.num_reduce_tasks, stage_reduce_drop)
            reduce_durations = list(stage.reduce_task_times[:keep])
        if map_durations:
            phases.append(
                ExecutionPhase("map", stage.index, map_durations, parallel=True)
            )
        if stage.shuffle_time > 0 and reduce_durations:
            phases.append(
                ExecutionPhase(
                    "shuffle", stage.index, [stage.shuffle_time], parallel=False
                )
            )
        if reduce_durations:
            phases.append(
                ExecutionPhase("reduce", stage.index, reduce_durations, parallel=True)
            )
    return phases


@dataclass
class _ActiveTask:
    """Book-keeping for one in-flight task on one slot.

    ``scheduled_at`` is reset on every DVFS reschedule (it anchors the
    remaining-work computation); ``started_at`` keeps the task's original
    dispatch time across speed changes for span tracing, and ``span_id`` is
    the task's pre-allocated trace span (0 when tracing is off).

    The remaining fields only carry information under fault injection:
    ``base`` is the task's nominal duration (before straggler slowdown, the
    amount re-queued if the hosting worker crashes), ``attempt`` counts
    executions of this task on this slot, ``will_fail`` marks a transient
    failure drawn at dispatch time, ``spec_event`` is the pending
    speculation-check event of a straggling task, and ``copy_of`` /
    ``copy_slot`` link a speculative copy to its straggling primary.
    """

    slot: int
    event: Event
    speed: float
    scheduled_at: float
    started_at: float = 0.0
    span_id: int = 0
    base: float = 0.0
    attempt: int = 1
    will_fail: bool = False
    spec_event: Optional[Event] = None
    copy_of: int = -1
    copy_slot: int = -1


class JobExecution:
    """Executes one job's phases on the cluster within the simulator."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        job: Job,
        phases: Sequence[ExecutionPhase],
        on_complete: Callable[["JobExecution"], None],
        telemetry: TelemetryHub = NULL_HUB,
        telemetry_src: str = "",
        trace_parent: int = 0,
        faults=None,
        on_give_up: Optional[Callable[["JobExecution"], None]] = None,
    ) -> None:
        if not phases:
            raise ValueError("a job execution needs at least one phase")
        self.sim = sim
        self.cluster = cluster
        self.job = job
        self.phases = list(phases)
        self.on_complete = on_complete
        self.telemetry = telemetry
        self.telemetry_src = telemetry_src
        #: Optional :class:`~repro.faults.injector.FaultInjector`; ``None``
        #: keeps every per-task code path on the historical fast branch.
        self._faults = faults
        #: Called when a task exhausts its transient-failure retries; the
        #: controller escalates to a job-level re-execution.
        self._on_give_up = on_give_up
        #: slot -> (backoff Event, nominal duration, next attempt) for tasks
        #: waiting out a retry backoff (fault injection only).
        self._retries: Dict[int, tuple] = {}
        #: Span id of the enclosing attempt span when tracing (0 otherwise);
        #: wave spans attach to it, task spans to their wave span.
        self.trace_parent = trace_parent
        self._phase_span: Optional[tuple] = None

        self._phase_index = -1
        self._pending: List[float] = []
        self._active: Dict[int, _ActiveTask] = {}
        self._free_slots: List[int] = []

        self.started = False
        self.completed = False
        self.evicted = False
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None

        self._speed = 1.0
        self._speed_since: Optional[float] = None
        self.sprinted_time = 0.0

    # --------------------------------------------------------------- queries
    @property
    def running(self) -> bool:
        return self.started and not self.completed and not self.evicted

    @property
    def elapsed(self) -> float:
        """Wall time of this attempt so far (or total, once completed)."""
        if self.start_time is None:
            return 0.0
        end = self.completion_time if self.completion_time is not None else self.sim.now
        return end - self.start_time

    @property
    def current_phase(self) -> Optional[ExecutionPhase]:
        if 0 <= self._phase_index < len(self.phases):
            return self.phases[self._phase_index]
        return None

    @property
    def speed(self) -> float:
        return self._speed

    # ---------------------------------------------------------------- control
    def start(self, speed: Optional[float] = None) -> None:
        """Begin executing the job at the current simulation time."""
        if self.started:
            raise RuntimeError("job execution already started")
        self.started = True
        self.start_time = self.sim.now
        self._speed = float(speed) if speed is not None else self.cluster.speed
        self._speed_since = self.sim.now
        self._free_slots = (
            list(range(self.cluster.slots))
            if self._faults is None
            else self.cluster.free_slot_ids()
        )
        self._advance_phase()

    def set_speed(self, speed: float) -> None:
        """Apply a cluster-wide speed change (DVFS) to all in-flight tasks."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if not self.running:
            self._speed = float(speed)
            self._speed_since = self.sim.now
            return
        now = self.sim.now
        self._accumulate_sprint(now)
        old_speed = self._speed
        self._speed = float(speed)
        self._speed_since = now
        if old_speed == speed:
            return
        for slot, active in list(self._active.items()):
            remaining_wall = max(0.0, active.event.time - now)
            remaining_work = remaining_wall * active.speed
            active.event.cancel()
            # Mutate in place so fault bookkeeping (attempt, pending
            # speculation check, copy links) survives DVFS transitions.
            active.event = self.sim.schedule(
                remaining_work / speed, self._make_task_callback(slot), priority=1
            )
            active.speed = speed
            active.scheduled_at = now

    def evict(self) -> float:
        """Cancel all in-flight work; returns the wasted wall time of the attempt."""
        if not self.running:
            raise RuntimeError("cannot evict a job execution that is not running")
        now = self.sim.now
        self._accumulate_sprint(now)
        if self.telemetry.tracing:
            for active in self._active.values():
                if active.span_id:
                    self._emit_task_span(active, outcome="evicted")
            if self._phase_span is not None:
                self._close_phase_span(outcome="evicted")
        for active in self._active.values():
            active.event.cancel()
            if active.spec_event is not None:
                active.spec_event.cancel()
        self._active.clear()
        self._pending.clear()
        if self._retries:
            for event, _base, _attempt in self._retries.values():
                event.cancel()
            self._retries.clear()
        self.evicted = True
        return now - (self.start_time if self.start_time is not None else now)

    # -------------------------------------------------------------- internals
    def _accumulate_sprint(self, now: float) -> None:
        if self._speed_since is not None and self._speed > 1.0:
            self.sprinted_time += now - self._speed_since
        self._speed_since = now

    def _close_phase_span(self, outcome: str = "completed") -> None:
        span_id, started = self._phase_span  # type: ignore[misc]
        self._phase_span = None
        phase = self.phases[self._phase_index]
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=span_id,
            parent_id=self.trace_parent,
            name=phase.name,
            cat="wave",
            start=started,
            job_id=self.job.job_id,
            stage=phase.stage_index,
            tasks=len(phase.durations),
            outcome=outcome,
        )

    def _emit_fault_span(self, name: str, slot: int) -> None:
        """Instant fault annotation attached to the current attempt span."""
        now = self.sim.now
        self.telemetry.emit(
            "span",
            now,
            src=self.telemetry_src,
            span_id=self.telemetry.new_span_id(),
            parent_id=self.trace_parent,
            name=name,
            cat="fault",
            start=now,
            job_id=self.job.job_id,
            slot=slot,
        )

    def _emit_task_span(self, active: _ActiveTask, outcome: str = "completed") -> None:
        phase = self.current_phase
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=active.span_id,
            parent_id=self._phase_span[0] if self._phase_span else self.trace_parent,
            name="task",
            cat="task",
            start=active.started_at,
            job_id=self.job.job_id,
            slot=active.slot,
            stage=phase.stage_index if phase is not None else -1,
            outcome=outcome,
        )

    def _advance_phase(self) -> None:
        if self._phase_span is not None:
            self._close_phase_span()
        self._phase_index += 1
        if self._phase_index >= len(self.phases):
            self._finish()
            return
        phase = self.phases[self._phase_index]
        if not phase.durations:
            self._advance_phase()
            return
        if self.telemetry.tracing:
            self._phase_span = (self.telemetry.new_span_id(), self.sim.now)
        self._pending = list(phase.durations)
        self._free_slots = (
            list(range(self.cluster.slots))
            if self._faults is None
            else self.cluster.free_slot_ids()
        )
        slots_to_fill = len(self._free_slots) if phase.parallel else 1
        for _ in range(min(slots_to_fill, len(self._pending))):
            self._dispatch_next_task()

    def _dispatch_next_task(self) -> None:
        if not self._pending or not self._free_slots:
            return
        slot = self._free_slots.pop()
        duration = self._pending.pop(0)
        if self._faults is not None:
            self._start_task(slot, duration, attempt=1)
            return
        now = self.sim.now
        event = self.sim.schedule(
            duration / self._speed, self._make_task_callback(slot), priority=1
        )
        self._active[slot] = _ActiveTask(
            slot=slot,
            event=event,
            speed=self._speed,
            scheduled_at=now,
            started_at=now,
            span_id=self.telemetry.new_span_id() if self.telemetry.tracing else 0,
        )

    # ------------------------------------------------------ fault machinery
    def _start_task(self, slot: int, base: float, attempt: int) -> None:
        """Dispatch one task under fault injection (slowdown/failure draws)."""
        faults = self._faults
        now = self.sim.now
        slowdown = faults.draw_slowdown()
        will_fail = faults.draw_task_failure()
        event = self.sim.schedule(
            base * slowdown / self._speed, self._make_task_callback(slot), priority=1
        )
        active = _ActiveTask(
            slot=slot,
            event=event,
            speed=self._speed,
            scheduled_at=now,
            started_at=now,
            span_id=self.telemetry.new_span_id() if self.telemetry.tracing else 0,
            base=base,
            attempt=attempt,
            will_fail=will_fail,
        )
        self._active[slot] = active
        if slowdown > 1.0:
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.straggler",
                    now,
                    src=self.telemetry_src,
                    job_id=self.job.job_id,
                    slot=slot,
                    slowdown=slowdown,
                )
            factor = faults.speculation_factor
            if factor > 0.0:
                # The speculation check fires once the task has overrun
                # ``factor`` times its nominal duration; the check deadline
                # is fixed at dispatch speed (DVFS changes don't move it).
                active.spec_event = self.sim.schedule(
                    base * factor / self._speed,
                    self._make_speculation_callback(slot),
                    priority=3,
                )

    def _make_speculation_callback(self, slot: int) -> Callable[[Simulator], None]:
        def _callback(_sim: Simulator) -> None:
            self._maybe_speculate(slot)

        return _callback

    def _maybe_speculate(self, slot: int) -> None:
        """Launch a backup copy of a still-straggling task if a slot is free."""
        if not self.running:
            return
        active = self._active.get(slot)
        if active is None:
            return
        active.spec_event = None
        if active.copy_slot >= 0 or active.copy_of >= 0 or not self._free_slots:
            return
        copy_slot = self._free_slots.pop()
        now = self.sim.now
        event = self.sim.schedule(
            active.base / self._speed, self._make_task_callback(copy_slot), priority=1
        )
        self._active[copy_slot] = _ActiveTask(
            slot=copy_slot,
            event=event,
            speed=self._speed,
            scheduled_at=now,
            started_at=now,
            span_id=self.telemetry.new_span_id() if self.telemetry.tracing else 0,
            base=active.base,
            attempt=active.attempt,
            copy_of=slot,
        )
        active.copy_slot = copy_slot
        self._faults.note_speculation()
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.speculate",
                now,
                src=self.telemetry_src,
                job_id=self.job.job_id,
                slot=slot,
                copy_slot=copy_slot,
            )
        if self.telemetry.tracing:
            self._emit_fault_span("speculate", slot=slot)

    def _make_task_callback(self, slot: int) -> Callable[[Simulator], None]:
        def _callback(_sim: Simulator) -> None:
            self._on_task_done(slot)

        return _callback

    def _on_task_done(self, slot: int) -> None:
        if not self.running:
            return
        active = self._active.pop(slot, None)
        if self._faults is not None:
            if active is not None:
                self._on_task_done_faults(active)
            return
        if active is not None and active.span_id:
            self._emit_task_span(active)
        self._free_slots.append(slot)
        phase = self.current_phase
        if self._pending and (phase is None or phase.parallel or not self._active):
            self._dispatch_next_task()
            return
        if not self._pending and not self._active:
            self._advance_phase()

    def _on_task_done_faults(self, active: _ActiveTask) -> None:
        """Completion handling under fault injection: retries and copies."""
        faults = self._faults
        slot = active.slot
        if active.spec_event is not None:
            active.spec_event.cancel()
            active.spec_event = None
        if active.will_fail:
            faults.note_task_failure()
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.task_fail",
                    self.sim.now,
                    src=self.telemetry_src,
                    job_id=self.job.job_id,
                    slot=slot,
                    attempt=active.attempt,
                )
            if active.span_id:
                self._emit_task_span(active, outcome="failed")
            if active.copy_slot >= 0 and active.copy_slot in self._active:
                # The failed primary had a live speculative copy: the copy
                # takes over ownership of the task, the primary just retires.
                self._active[active.copy_slot].copy_of = -1
                self._release_slot(slot)
                return
            if active.attempt <= faults.max_retries:
                delay = faults.retry_delay(active.attempt)
                faults.note_retry()
                if self.telemetry.enabled:
                    self.telemetry.emit(
                        "fault.retry",
                        self.sim.now,
                        src=self.telemetry_src,
                        job_id=self.job.job_id,
                        slot=slot,
                        attempt=active.attempt,
                        delay=delay,
                    )
                if self.telemetry.tracing:
                    self._emit_fault_span("retry", slot=slot)
                # The slot sits out the backoff: not free, not active.
                event = self.sim.schedule(
                    delay, self._make_retry_callback(slot), priority=1
                )
                self._retries[slot] = (event, active.base, active.attempt + 1)
                return
            # Retries exhausted: escalate to a job-level re-execution if the
            # controller gave us a hook, else re-queue as a fresh task.
            if self._on_give_up is not None:
                self._on_give_up(self)
                return
            self._pending.append(active.base)
            self._release_slot(slot)
            return
        # Success.  First finisher of a primary/copy pair wins; the loser is
        # cancelled through the kernel's existing cancellation path.
        if active.copy_of >= 0:
            primary = self._active.pop(active.copy_of, None)
            if primary is not None:
                primary.event.cancel()
                if primary.spec_event is not None:
                    primary.spec_event.cancel()
                if primary.span_id:
                    self._emit_task_span(primary, outcome="cancelled")
                self._free_slots.append(primary.slot)
        elif active.copy_slot >= 0:
            copy = self._active.pop(active.copy_slot, None)
            if copy is not None:
                copy.event.cancel()
                if copy.span_id:
                    self._emit_task_span(copy, outcome="cancelled")
                self._free_slots.append(copy.slot)
        if active.span_id:
            self._emit_task_span(active)
        self._release_slot(slot)

    def _make_retry_callback(self, slot: int) -> Callable[[Simulator], None]:
        def _callback(_sim: Simulator) -> None:
            if not self.running:
                return
            entry = self._retries.pop(slot, None)
            if entry is None:
                return
            _event, base, attempt = entry
            self._start_task(slot, base, attempt)

        return _callback

    def _release_slot(self, slot: int) -> None:
        """Free ``slot`` and continue the wave (fault-injection path)."""
        self._free_slots.append(slot)
        phase = self.current_phase
        if self._pending and (
            phase is None or phase.parallel or not (self._active or self._retries)
        ):
            self._dispatch_next_task()
            return
        if not self._pending and not self._active and not self._retries:
            self._advance_phase()

    def _dispatch_pending(self) -> None:
        """Fill free slots with pending tasks (crash/repair continuation)."""
        phase = self.current_phase
        while self._pending and self._free_slots:
            if (
                phase is not None
                and not phase.parallel
                and (self._active or self._retries)
            ):
                return
            self._dispatch_next_task()
        if not self._pending and not self._active and not self._retries:
            self._advance_phase()

    def on_worker_crash(self, worker: int) -> None:
        """Re-queue in-flight work lost to a worker crash (wave re-execution).

        Tasks running (or backing off) on the crashed worker's slots return
        to the pending queue at their nominal duration — the work done so far
        is lost — and the slots leave the free pool until the repair.  A
        straggler/copy pair degrades gracefully: the surviving side keeps
        running and takes ownership.
        """
        if not self.running:
            return
        if self.telemetry.tracing:
            self._emit_fault_span("crash", slot=-1)
        for slot in self.cluster.worker_slots(worker):
            active = self._active.pop(slot, None)
            if active is not None:
                active.event.cancel()
                if active.spec_event is not None:
                    active.spec_event.cancel()
                if active.span_id:
                    self._emit_task_span(active, outcome="crashed")
                if active.copy_of >= 0:
                    partner = self._active.get(active.copy_of)
                    if partner is not None:
                        partner.copy_slot = -1
                elif active.copy_slot >= 0 and active.copy_slot in self._active:
                    self._active[active.copy_slot].copy_of = -1
                else:
                    self._pending.append(active.base)
            entry = self._retries.pop(slot, None)
            if entry is not None:
                entry[0].cancel()
                self._pending.append(entry[1])
            try:
                self._free_slots.remove(slot)
            except ValueError:
                pass
        self._dispatch_pending()

    def on_worker_repair(self, worker: int) -> None:
        """Return a repaired worker's slots to the free pool and continue."""
        if not self.running:
            return
        for slot in self.cluster.worker_slots(worker):
            if (
                slot not in self._active
                and slot not in self._retries
                and slot not in self._free_slots
            ):
                self._free_slots.append(slot)
        self._dispatch_pending()

    def _finish(self) -> None:
        now = self.sim.now
        self._accumulate_sprint(now)
        self.completed = True
        self.completion_time = now
        self.on_complete(self)
