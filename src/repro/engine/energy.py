"""Cluster power model and energy meter.

The paper reports per-server power of 180 W during normal execution and 270 W
while sprinting (×1.5).  Energy is the time integral of power over the run;
Fig. 11c compares total energy of DiAS variants against the preemptive
baseline.  The meter accumulates energy over intervals of constant operating
mode (``idle``, ``busy``, ``sprint``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.metrics import EnergyAccount


@dataclass(frozen=True)
class PowerModel:
    """Cluster-level power draw per operating mode (watts).

    ``active_servers`` scales the per-server figures to the whole cluster; the
    defaults describe one server-equivalent so results stay directly
    comparable to the paper's per-server numbers.
    """

    idle_watts: float = 90.0
    busy_watts: float = 180.0
    sprint_watts: float = 270.0
    active_servers: int = 1

    def __post_init__(self) -> None:
        if min(self.idle_watts, self.busy_watts, self.sprint_watts) < 0:
            raise ValueError("power figures must be non-negative")
        if self.active_servers <= 0:
            raise ValueError("active_servers must be positive")
        if self.sprint_watts < self.busy_watts:
            raise ValueError("sprint power must be at least busy power")

    def power(self, mode: str) -> float:
        """Cluster power draw (watts) in ``mode``."""
        per_server = {
            "idle": self.idle_watts,
            "busy": self.busy_watts,
            "sprint": self.sprint_watts,
        }
        if mode not in per_server:
            raise ValueError(f"unknown power mode {mode!r}")
        return per_server[mode] * self.active_servers


class EnergyMeter:
    """Integrates cluster power over time, split by operating mode.

    The meter is driven by the controller: every time the operating mode
    changes (job starts, sprint begins/ends, job completes), the controller
    calls :meth:`set_mode` with the current simulation time.  The meter
    charges the elapsed interval to the previous mode.
    """

    def __init__(self, power_model: PowerModel, start_time: float = 0.0) -> None:
        self.power_model = power_model
        self.account = EnergyAccount()
        self._mode = "idle"
        self._last_time = float(start_time)

    @property
    def mode(self) -> str:
        """Current operating mode."""
        return self._mode

    def set_mode(self, mode: str, now: float) -> None:
        """Switch to ``mode`` at simulated time ``now``."""
        self.advance(now)
        if mode not in ("idle", "busy", "sprint"):
            raise ValueError(f"unknown power mode {mode!r}")
        self._mode = mode

    def advance(self, now: float) -> None:
        """Charge the interval since the last update to the current mode."""
        if now < self._last_time:
            raise ValueError(
                f"energy meter cannot move backwards in time ({now!r} < {self._last_time!r})"
            )
        duration = now - self._last_time
        if duration > 0:
            joules = duration * self.power_model.power(self._mode)
            self.account.add(self._mode, joules)
        self._last_time = now

    def snapshot(self, now: float) -> dict:
        """Read the meter as of ``now`` *without* advancing it.

        Telemetry samplers must not call :meth:`advance`: splitting an
        interval at a sample instant changes the floating-point summation
        order and therefore the final energy totals, breaking the guarantee
        that sampled runs equal unsampled ones bit for bit.  This projects the
        in-flight interval onto the current mode without mutating any state.
        """
        return {
            "energy_joules": self.projected_joules(now),
            "power_mode": self._mode,
        }

    def projected_joules(self, now: float) -> float:
        """Total joules as of ``now`` without advancing the meter.

        The scalar core of :meth:`snapshot`, exposed separately so per-tick
        telemetry samplers can fill their event dict directly instead of
        paying an intermediate dict + update per sample.
        """
        pending = max(0.0, now - self._last_time) * self.power_model.power(self._mode)
        return self.account.total_joules + pending

    @property
    def total_joules(self) -> float:
        return self.account.total_joules

    @property
    def total_kilojoules(self) -> float:
        return self.account.total_kilojoules
