"""Job and stage descriptions plus the job factory.

A :class:`Job` is a concrete, fully sampled unit of work: its dataset size,
its per-task base-frequency durations for each stage, and its setup/shuffle
costs.  Jobs are produced by a :class:`JobFactory` from a
:class:`~repro.engine.profiles.JobClassProfile`, with all randomness drawn
from named :class:`~repro.simulation.random_streams.RandomStreams` so that
different scheduling policies can be compared on *identical* job sequences
(common random numbers), which is how the paper's relative-difference plots
are computed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.profiles import JobClassProfile
from repro.simulation.random_streams import RandomStreams


@dataclass
class StageSpec:
    """One map/reduce stage pair of a job.

    ``map_task_times`` and ``reduce_task_times`` hold base-frequency durations
    of every task *before* any dropping; the drop plan selects which of them
    are actually executed.  ``droppable`` marks stages eligible for task
    dropping (the GraphX triangle-count Result stage, for example, is not).
    """

    index: int
    map_task_times: List[float]
    reduce_task_times: List[float]
    shuffle_time: float
    droppable: bool = True

    def __post_init__(self) -> None:
        if any(t <= 0 for t in self.map_task_times):
            raise ValueError("map task durations must be positive")
        if any(t <= 0 for t in self.reduce_task_times):
            raise ValueError("reduce task durations must be positive")
        if self.shuffle_time < 0:
            raise ValueError("shuffle time must be non-negative")

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_task_times)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_task_times)

    def total_work(self) -> float:
        """Total slot-seconds of task work in this stage (no dropping)."""
        return float(sum(self.map_task_times) + sum(self.reduce_task_times))


@dataclass
class Job:
    """A concrete job instance submitted to the scheduler."""

    job_id: int
    priority: int
    arrival_time: float
    size_mb: float
    stages: List[StageSpec]
    profile: JobClassProfile
    label: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a job needs at least one stage")
        if self.size_mb <= 0:
            raise ValueError("job size must be positive")

    @property
    def num_map_tasks(self) -> int:
        return sum(stage.num_map_tasks for stage in self.stages)

    @property
    def num_reduce_tasks(self) -> int:
        return sum(stage.num_reduce_tasks for stage in self.stages)

    def setup_time(self, drop_ratio: float = 0.0) -> float:
        """Setup/overhead time of this job under ``drop_ratio``."""
        return self.profile.setup_time(drop_ratio)

    def total_work(self) -> float:
        """Total slot-seconds of task work (no dropping, base frequency)."""
        return sum(stage.total_work() for stage in self.stages)

    def ideal_service_time(self, slots: int, drop_ratio: float = 0.0) -> float:
        """Wave-approximation service time of *this* job instance.

        Unlike :meth:`JobClassProfile.mean_service_time` this uses the job's
        actual sampled task durations.
        """
        if slots <= 0:
            raise ValueError("slots must be positive")
        total = self.setup_time(drop_ratio)
        for stage in self.stages:
            kept_maps = effective_task_count(stage.num_map_tasks, drop_ratio if stage.droppable else 0.0)
            map_times = sorted(stage.map_task_times, reverse=True)[:kept_maps]
            total += _wave_time(map_times, slots)
            total += stage.shuffle_time
            total += _wave_time(stage.reduce_task_times, slots)
        return total


def effective_task_count(task_count: int, drop_ratio: float) -> int:
    """Number of tasks kept after dropping: ``⌈n(1 − θ)⌉`` (§3.3, §4.1)."""
    if task_count < 0:
        raise ValueError("task count must be non-negative")
    if not 0.0 <= drop_ratio <= 1.0:
        raise ValueError("drop ratio must be in [0, 1]")
    if task_count == 0:
        return 0
    return max(0, math.ceil(task_count * (1.0 - drop_ratio)))


def wave_time(durations: Sequence[float], slots: int) -> float:
    """Makespan of ``durations`` scheduled greedily (LPT) on ``slots`` slots."""
    if not durations:
        return 0.0
    finish = [0.0] * min(slots, len(durations))
    for duration in sorted(durations, reverse=True):
        idx = finish.index(min(finish))
        finish[idx] += duration
    return max(finish)


#: Backwards-compatible private alias (the DAG analytics use the public name).
_wave_time = wave_time


class JobFactory:
    """Samples concrete :class:`Job` instances from class profiles."""

    def __init__(self, streams: RandomStreams) -> None:
        self._streams = streams
        self._ids = itertools.count()

    def next_job_id(self) -> int:
        return next(self._ids)

    def sample_size_mb(self, profile: JobClassProfile) -> float:
        """Draw a dataset size (lognormal with the profile's mean and CV)."""
        rng = self._streams.stream(f"size/priority{profile.priority}")
        if profile.size_cv <= 0:
            return profile.mean_size_mb
        sigma2 = math.log(1.0 + profile.size_cv**2)
        mu = math.log(profile.mean_size_mb) - sigma2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=math.sqrt(sigma2)))

    def create_job(
        self,
        profile: JobClassProfile,
        arrival_time: float,
        size_mb: Optional[float] = None,
        label: str = "",
    ) -> Job:
        """Create one job: sample size, then per-stage task durations."""
        size = self.sample_size_mb(profile) if size_mb is None else float(size_mb)
        task_rng = self._streams.stream(f"tasks/priority{profile.priority}")
        straggler_rng = self._streams.stream(f"stragglers/priority{profile.priority}")
        map_model = profile.map_time_model(size)
        reduce_model = profile.reduce_time_model()
        stages: List[StageSpec] = []
        for stage_index in range(profile.num_stages):
            map_times = self._inject_stragglers(
                map_model.sample(task_rng, profile.partitions), profile, straggler_rng
            )
            reduce_times = self._inject_stragglers(
                reduce_model.sample(task_rng, profile.reduce_tasks), profile, straggler_rng
            )
            stages.append(
                StageSpec(
                    index=stage_index,
                    map_task_times=[float(t) for t in map_times],
                    reduce_task_times=[float(t) for t in reduce_times],
                    shuffle_time=profile.shuffle_time,
                )
            )
        return Job(
            job_id=self.next_job_id(),
            priority=profile.priority,
            arrival_time=float(arrival_time),
            size_mb=size,
            stages=stages,
            profile=profile,
            label=label or profile.name,
        )

    @staticmethod
    def _inject_stragglers(
        durations: np.ndarray, profile: JobClassProfile, rng: np.random.Generator
    ) -> np.ndarray:
        """Slow down a random subset of tasks (failure/slow-node injection)."""
        if profile.straggler_probability <= 0 or durations.size == 0:
            return durations
        mask = rng.uniform(size=durations.size) < profile.straggler_probability
        if not mask.any():
            return durations
        inflated = durations.copy()
        inflated[mask] = inflated[mask] * profile.straggler_slowdown
        return inflated
