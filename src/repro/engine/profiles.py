"""Per-priority-class job profiles and task-duration distributions.

A *profile* captures the workload characteristics of one priority class as the
paper describes them: mean dataset size (e.g. 1117 MB for low priority and
473 MB for high priority in the reference setup), number of RDD partitions
(50 for text jobs), mean map/reduce task times, and the setup (overhead) and
shuffle stage costs.  The overhead is modelled as size-dependent, matching the
paper's observation (§4.3) that overhead depends on data size and is linearly
interpolated between the no-drop and 90 %-drop operating points.

Task durations are drawn from a gamma distribution parameterised by mean and
squared coefficient of variation (SCV); tasks in a Spark stage have "fairly
similar execution times" (§4.2), so the default SCV is small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class TaskTimeModel:
    """Gamma-distributed task durations with a given mean and SCV."""

    mean: float
    scv: float = 0.05

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean task time must be positive, got {self.mean!r}")
        if self.scv < 0:
            raise ValueError(f"SCV must be non-negative, got {self.scv!r}")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` task durations."""
        if n < 0:
            raise ValueError("cannot sample a negative number of durations")
        if n == 0:
            return np.empty(0)
        if self.scv == 0:
            return np.full(n, self.mean)
        shape = 1.0 / self.scv
        scale = self.mean * self.scv
        return rng.gamma(shape, scale, size=n)

    def scaled(self, factor: float) -> "TaskTimeModel":
        """A model with the mean scaled by ``factor`` (same SCV)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return TaskTimeModel(mean=self.mean * factor, scv=self.scv)

    @property
    def variance(self) -> float:
        return self.scv * self.mean**2

    @property
    def second_moment(self) -> float:
        return self.variance + self.mean**2


@dataclass(frozen=True)
class JobClassProfile:
    """Workload profile of one priority class.

    Attributes
    ----------
    priority:
        Priority level; higher values have precedence (paper convention).
    name:
        Human-readable label, e.g. ``"high"`` / ``"low"``.
    mean_size_mb:
        Mean input dataset size.
    size_cv:
        Coefficient of variation of the dataset size (lognormal sizes).
    partitions:
        RDD partitions per job → map tasks per job.
    reduce_tasks:
        Reduce tasks per job.
    map_time_per_100mb:
        Mean map-task duration for a 100 MB-per-partition share of data.  The
        actual mean map-task time of a job scales linearly with its per-task
        data share.
    reduce_time:
        Mean reduce-task duration (seconds).
    setup_time_full:
        Mean setup/overhead duration when no task is dropped.
    setup_time_min:
        Mean setup/overhead at the maximum 90 % drop ratio (the paper profiles
        these two points and linearly interpolates in between).
    shuffle_time:
        Mean shuffle-stage duration.
    task_scv:
        SCV of task durations within a stage.
    num_stages:
        Number of (map, reduce) stage pairs; >1 models multi-stage pipelines
        such as triangle count.
    max_accuracy_loss:
        The relative-error tolerance of this class (0 for the highest
        priority).  Used by the deflator to bound drop ratios.
    straggler_probability:
        Probability that an individual task is a straggler (failure/slow-node
        injection; 0 disables it).
    straggler_slowdown:
        Multiplicative slowdown applied to straggler tasks.
    """

    priority: int
    name: str = ""
    mean_size_mb: float = 473.0
    size_cv: float = 0.25
    partitions: int = 50
    reduce_tasks: int = 10
    map_time_per_100mb: float = 18.0
    reduce_time: float = 4.0
    setup_time_full: float = 12.0
    setup_time_min: float = 6.0
    shuffle_time: float = 3.0
    task_scv: float = 0.05
    num_stages: int = 1
    max_accuracy_loss: float = 0.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError("priority must be non-negative")
        if self.mean_size_mb <= 0:
            raise ValueError("mean_size_mb must be positive")
        if self.partitions <= 0 or self.reduce_tasks < 0:
            raise ValueError("partitions must be positive and reduce_tasks non-negative")
        if self.num_stages <= 0:
            raise ValueError("num_stages must be positive")
        if not 0.0 <= self.max_accuracy_loss <= 1.0:
            raise ValueError("max_accuracy_loss must be in [0, 1]")
        if self.setup_time_min > self.setup_time_full:
            raise ValueError("setup_time_min cannot exceed setup_time_full")
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be at least 1")

    # ------------------------------------------------------------- accessors
    def mean_map_task_time(self, size_mb: Optional[float] = None) -> float:
        """Mean map-task duration for a job of ``size_mb`` (default: class mean)."""
        size = self.mean_size_mb if size_mb is None else size_mb
        per_task_mb = size / self.partitions
        return self.map_time_per_100mb * per_task_mb / 100.0

    def map_time_model(self, size_mb: Optional[float] = None) -> TaskTimeModel:
        return TaskTimeModel(mean=self.mean_map_task_time(size_mb), scv=self.task_scv)

    def reduce_time_model(self) -> TaskTimeModel:
        return TaskTimeModel(mean=self.reduce_time, scv=self.task_scv)

    def setup_time(self, drop_ratio: float = 0.0) -> float:
        """Mean setup/overhead time under ``drop_ratio``.

        Linear interpolation between the profiled no-drop and 90 %-drop
        operating points, exactly as §4.3 describes.
        """
        if not 0.0 <= drop_ratio <= 0.9:
            raise ValueError("drop_ratio must be within [0, 0.9]")
        frac = drop_ratio / 0.9
        return self.setup_time_full * (1.0 - frac) + self.setup_time_min * frac

    def with_size(self, mean_size_mb: float) -> "JobClassProfile":
        """Copy of this profile with a different mean dataset size."""
        return replace(self, mean_size_mb=mean_size_mb)

    def with_priority(self, priority: int, name: Optional[str] = None) -> "JobClassProfile":
        """Copy of this profile re-labelled with a different priority."""
        return replace(self, priority=priority, name=name if name is not None else self.name)

    # ------------------------------------------------------------ aggregates
    def mean_sequential_work(self, drop_ratio: float = 0.0) -> float:
        """Mean total task work (seconds of slot time) for an average job."""
        effective_maps = math.ceil(self.partitions * (1.0 - drop_ratio))
        map_work = effective_maps * self.mean_map_task_time()
        reduce_work = self.reduce_tasks * self.reduce_time
        return self.num_stages * (map_work + reduce_work)

    def mean_service_time(self, slots: int, drop_ratio: float = 0.0) -> float:
        """First-order mean job service time on ``slots`` computing slots.

        Uses the wave approximation: ``⌈tasks/slots⌉`` waves of the mean task
        time per stage, plus setup and shuffle.  The detailed stochastic models
        in :mod:`repro.models` refine this estimate; this method is the cheap
        closed-form used for load calibration.
        """
        if slots <= 0:
            raise ValueError("slots must be positive")
        effective_maps = max(1, math.ceil(self.partitions * (1.0 - drop_ratio)))
        map_waves = math.ceil(effective_maps / slots)
        reduce_waves = math.ceil(self.reduce_tasks / slots) if self.reduce_tasks else 0
        per_stage = (
            map_waves * self.mean_map_task_time()
            + self.shuffle_time
            + reduce_waves * self.reduce_time
        )
        return self.setup_time(drop_ratio) + self.num_stages * per_stage
