"""Multi-cluster DiAS simulation on one shared DES kernel.

A :class:`FleetSimulation` embeds ``N`` independent
:class:`~repro.core.dias.DiASSimulation` controllers — each with its own
cluster, priority buffers, dropper, sprinter and energy meter — in a single
:class:`~repro.simulation.des.Simulator`.  Arriving jobs are routed to one
cluster by a pluggable :class:`~repro.fleet.dispatcher.Dispatcher`, and the
sprint budget can either stay per-cluster or be pooled fleet-wide through a
:class:`~repro.fleet.budget.SharedSprintBudget`.

Because every controller draws its randomness from the same
:class:`~repro.simulation.random_streams.RandomStreams` root under a
``fleet/cluster<i>/`` namespace, a fleet run is fully deterministic for a
given seed, independent of the routing policy being compared.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.dias import DiASSimulation, DropRatioDecision
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster
from repro.engine.job import Job
from repro.faults.spec import FaultSpec, parse_fault_spec
from repro.fleet.budget import SharedSprintBudget, build_budget_arbiter
from repro.fleet.dispatcher import Dispatcher, make_dispatcher
from repro.fleet.result import FleetResult
from repro.models.accuracy import AccuracyModel
from repro.simulation.decisions import ROUTE, DecisionHook, DecisionPoint
from repro.simulation.des import Simulator
from repro.simulation.metrics import MetricsCollector
from repro.simulation.random_streams import RandomStreams
from repro.telemetry import NULL_HUB, PeriodicSampler, TelemetryHub, kernel_sample_source


class FleetSimulation:
    """Runs one scheduling policy on a fleet of clusters behind a dispatcher.

    Parameters
    ----------
    policy:
        The DiAS scheduling policy every cluster runs.
    jobs:
        The fleet-wide job trace (arrival-time ordered or not; it is sorted).
    job_source:
        Alternative to ``jobs``: a lazy, arrival-ordered iterable (e.g. a
        :class:`~repro.traces.replay.ReplaySource`) pulled one job at a time
        as the simulation advances — the whole trace is never materialised.
        Mutually exclusive with ``jobs`` and with checkpointing; pair it with
        ``streaming_metrics=True`` for constant-memory million-job replays.
    streaming_metrics:
        Collect metrics online (:class:`MetricsCollector` with
        ``streaming=True``, per cluster and fleet-wide) instead of retaining
        per-job records.
    traffic_shares:
        Per-priority traffic shares for dispatcher construction when the
        trace cannot be pre-scanned (streaming sources); typically the trace
        header's class shares.
    num_clusters:
        Fleet size; ignored when explicit ``clusters`` are given.
    dispatcher:
        A :class:`Dispatcher` instance or a router name understood by
        :func:`~repro.fleet.dispatcher.make_dispatcher` (``random``,
        ``round_robin``, ``jsq``, ``least_work_left``,
        ``priority_partitioned``).
    power_of_d:
        Optional JSQ(d) sample size when ``dispatcher`` is the name ``jsq``.
    clusters:
        Optional explicit cluster substrates, one per fleet member.
    sprint_budget:
        ``per-cluster`` (default), ``shared`` or ``none`` — see
        :func:`~repro.fleet.budget.build_budget_arbiter`.
    shared_budget_seconds:
        Optional override of the shared pool size (``sprint_budget="shared"``).
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        jobs: Sequence[Job],
        num_clusters: int = 2,
        dispatcher: Union[Dispatcher, str] = "round_robin",
        power_of_d: Optional[int] = None,
        clusters: Optional[Sequence[Cluster]] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        streams: Optional[RandomStreams] = None,
        seed: int = 0,
        sprint_budget: str = "per-cluster",
        shared_budget_seconds: Optional[float] = None,
        drop_ratio_provider: Optional[
            Callable[[Job, float, MetricsCollector], DropRatioDecision]
        ] = None,
        telemetry: TelemetryHub = NULL_HUB,
        faults: Union[str, FaultSpec, None] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        job_source: Optional[Iterable[Job]] = None,
        streaming_metrics: bool = False,
        traffic_shares: Optional[Dict[int, float]] = None,
        decision_hook: Optional[DecisionHook] = None,
    ) -> None:
        if job_source is not None:
            if jobs:
                raise ValueError("pass either jobs or job_source, not both")
            if checkpoint_every is not None or checkpoint_path is not None:
                raise ValueError(
                    "checkpointing needs the full trace up front; it is not "
                    "supported with a streaming job_source"
                )
        elif not jobs:
            raise ValueError("the fleet job trace must not be empty")
        if (checkpoint_every is None) != (checkpoint_path is None):
            raise ValueError(
                "checkpoint_every and checkpoint_path must be given together"
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive simulated seconds, got {checkpoint_every!r}"
            )
        if clusters is not None:
            clusters = list(clusters)
            num_clusters = len(clusters)
        if num_clusters < 1:
            raise ValueError("a fleet needs at least one cluster")

        self.policy = policy
        self.jobs = sorted(jobs, key=lambda j: j.arrival_time)
        self.job_source = job_source
        self._source_iter: Optional[Iterator[Job]] = None
        self._source_done = job_source is None
        self.streams = streams or RandomStreams(seed)
        #: Optional external agent consulted at every routing decision;
        #: ``None`` keeps the built-in dispatcher path untouched.  Not
        #: embedded in checkpoint configs (hooks are attached per process).
        self._decision_hook = decision_hook
        self.telemetry = telemetry
        self.sim = Simulator(telemetry=telemetry)
        self.budget_mode = sprint_budget
        self.fault_spec = parse_fault_spec(faults)
        # Graceful degradation only matters when servers actually crash.
        self._quarantine = (
            self.fault_spec is not None and self.fault_spec.crash is not None
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        #: Optional run configuration embedded in every snapshot so a fresh
        #: process can rebuild an identical simulation from the file alone.
        self.checkpoint_config: Optional[dict] = None
        self._next_checkpoint_at: Optional[float] = checkpoint_every
        self._checkpoint_armed = False
        #: Jobs handed to a controller so far (drives the quiescence check).
        self._routed = 0
        #: Set by checkpoint restore: the snapshot's simulated time.
        self._resume_time: Optional[float] = None
        self.quarantine_redirects = 0

        if isinstance(dispatcher, str):
            # Traffic shares drive the balanced priority partition: classes
            # with more jobs in the trace receive more clusters.  A streaming
            # source cannot be pre-scanned, so its shares come from the trace
            # header via ``traffic_shares``.
            traffic: dict = {}
            if self.job_source is not None:
                traffic = {
                    int(p): float(s) for p, s in (traffic_shares or {}).items()
                }
            else:
                for job in self.jobs:
                    traffic[job.priority] = traffic.get(job.priority, 0) + 1
            dispatcher = make_dispatcher(
                dispatcher,
                rng=self.streams.stream("fleet/dispatcher"),
                power_of_d=power_of_d,
                priorities=sorted(traffic, reverse=True),
                priority_weights={p: float(c) for p, c in traffic.items()},
                num_clusters=num_clusters,
            )
        self.dispatcher = dispatcher

        #: Fleet-wide online collector fed by every controller as jobs finish
        #: (``None`` in batch mode, where FleetResult re-aggregates records).
        self.shared_metrics: Optional[MetricsCollector] = (
            MetricsCollector(streaming=True) if streaming_metrics else None
        )
        self.controllers: List[DiASSimulation] = []
        for index in range(num_clusters):
            cluster = clusters[index] if clusters is not None else Cluster()
            self.controllers.append(
                DiASSimulation(
                    policy=policy,
                    jobs=(),
                    cluster=cluster,
                    accuracy_model=accuracy_model,
                    streams=self.streams,
                    simulator=self.sim,
                    stream_namespace=f"fleet/cluster{index}/",
                    drop_ratio_provider=drop_ratio_provider,
                    telemetry=telemetry,
                    metrics=MetricsCollector(streaming=True) if streaming_metrics else None,
                    faults=self.fault_spec,
                )
            )
        if self.shared_metrics is not None:
            for controller in self.controllers:
                controller.on_job_record = self.shared_metrics.record_job

        sprinters = [c.sprinter for c in self.controllers if c.sprinter is not None]
        self.budget_pool: Optional[SharedSprintBudget] = build_budget_arbiter(
            sprint_budget, self.sim, sprinters, shared_budget_seconds
        )
        if self.budget_pool is not None:
            self.budget_pool.telemetry = telemetry

        self.dispatch_counts = [0] * num_clusters
        self._ran = False

    # -------------------------------------------------------------- topology
    @property
    def num_clusters(self) -> int:
        return len(self.controllers)

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> FleetResult:
        """Route and process the whole trace; aggregate per-cluster results."""
        if self._ran:
            raise RuntimeError("a FleetSimulation can only be run once")
        self._ran = True
        cutoff = self._resume_time
        if self.job_source is not None:
            self._start_streaming()
        else:
            for job in self.jobs:
                if cutoff is not None and job.arrival_time <= cutoff:
                    continue
                self.sim.schedule_at(
                    job.arrival_time, self._make_routing_callback(job), priority=0
                )
        if cutoff is None:
            # A restore already re-scheduled the pending crash/repair
            # transitions; a fresh run starts every injector here.
            for controller in self.controllers:
                if controller.faults is not None:
                    controller.faults.start()
        completion_hooks: List[Callable[[], None]] = []
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                "run_start",
                self.sim.now,
                src="fleet",
                run="fleet",
                policy=self.policy.name,
                dispatcher=self.dispatcher.name,
                clusters=self.num_clusters,
                budget=self.budget_mode,
            )
            if telemetry.sample_interval is not None:
                sources = [
                    (c.telemetry_src, c.telemetry_sample) for c in self.controllers
                ]
                sources.append(("fleet", self._telemetry_sample))
                sources.append(("kernel", kernel_sample_source(self.sim)))
                sampler = PeriodicSampler(
                    self.sim,
                    telemetry,
                    telemetry.sample_interval,
                    sources=sources,
                    should_continue=lambda: not self._drained(),
                )
                sampler.start()

                # Cancel the trailing tick at end-of-workload so sampling
                # never advances the clock past the unsampled run's end.
                def _stop_when_drained() -> None:
                    if self._drained():
                        sampler.stop()

                completion_hooks.append(_stop_when_drained)
        if self.fault_spec is not None and self.fault_spec.crash is not None:
            # Cancel every injector's open-ended crash/repair renewal process
            # once the fleet workload has drained, so the heap can empty.
            def _stop_injectors_when_drained() -> None:
                if self._drained():
                    for controller in self.controllers:
                        controller.faults.stop()

            completion_hooks.append(_stop_injectors_when_drained)
        if self.checkpoint_every is not None:
            completion_hooks.append(self._maybe_checkpoint)
        if completion_hooks:
            if len(completion_hooks) == 1:
                hook = completion_hooks[0]
            else:
                def hook() -> None:
                    for one in completion_hooks:
                        one()

            for controller in self.controllers:
                controller.on_job_complete = hook
        if cutoff is not None and self._completed_jobs() >= len(self.jobs):
            # Resumed from a snapshot taken after the workload drained: no
            # completion event will ever fire the drain hooks, so stop the
            # injectors here or the crash/repair renewal process keeps the
            # event heap non-empty forever.
            for controller in self.controllers:
                if controller.faults is not None:
                    controller.faults.stop()
        self.sim.run(until=until)
        if telemetry.enabled:
            telemetry.emit(
                "run_end",
                self.sim.now,
                src="fleet",
                completed=self._completed_jobs(),
                duration=self.sim.now,
            )
        results = [controller.finalize() for controller in self.controllers]
        if self.shared_metrics is not None:
            self.shared_metrics.set_observation_time(self.sim.now)
        return FleetResult(
            policy_name=self.policy.name,
            dispatcher_name=self.dispatcher.name,
            cluster_results=results,
            duration=self.sim.now,
            dispatch_counts=list(self.dispatch_counts),
            budget_mode=self.budget_mode,
            shared_metrics=self.shared_metrics,
        )

    # ------------------------------------------------------------- telemetry
    def _completed_jobs(self) -> int:
        return sum(c.completed_jobs for c in self.controllers)

    def _drained(self) -> bool:
        """End-of-workload: every known job has been routed and completed."""
        if self.job_source is not None:
            return self._source_done and self._completed_jobs() >= self._routed
        return self._completed_jobs() >= len(self.jobs)

    def fault_counters(self) -> dict:
        """Fleet-wide fault/recovery counters summed over all injectors."""
        totals: dict = {}
        for controller in self.controllers:
            if controller.faults is None:
                continue
            for name, value in controller.faults.counters.items():
                totals[name] = totals.get(name, 0) + value
        if self._quarantine:
            totals["quarantine_redirects"] = self.quarantine_redirects
        return totals

    # ------------------------------------------------------------ checkpoint
    def _quiescent(self) -> bool:
        """True when no job is buffered, running, or routed-but-unfinished.

        The routed-vs-arrived comparison also rejects the edge where an
        arrival event at exactly the current timestamp is still in the heap:
        it would count as arrived but not yet as routed.
        """
        if self._completed_jobs() != self._routed:
            return False
        arrived = 0
        now = self.sim.now
        for job in self.jobs:  # arrival-sorted
            if job.arrival_time > now:
                break
            arrived += 1
        return arrived == self._routed

    def _maybe_checkpoint(self) -> None:
        """Arm a snapshot at the first quiescent point past each mark.

        The write itself is deferred to a zero-delay priority-4 event: this
        completion hook runs *inside* the completing controller's event,
        before the controller has settled (its energy meter only flips to
        idle after the hook returns), so snapshotting here would capture
        mid-event state and break bitwise resume.  The deferred event is
        observation-only — it mutates no simulation state — so checkpointed
        runs stay bitwise-identical to unchecked ones.
        """
        now = self.sim.now
        if self._next_checkpoint_at is None or now < self._next_checkpoint_at:
            return
        if self._checkpoint_armed or not self._quiescent():
            return
        self._checkpoint_armed = True
        self.sim.schedule(0.0, self._write_checkpoint, priority=4)

    def _write_checkpoint(self, _sim: Simulator) -> None:
        self._checkpoint_armed = False
        now = self.sim.now
        if self._next_checkpoint_at is None or now < self._next_checkpoint_at:
            return
        if not self._quiescent():
            # A same-timestamp event broke quiescence between the hook and
            # this snapshot; the next qualifying completion re-arms it.
            return
        from repro.faults.checkpoint import fleet_state, save_checkpoint

        save_checkpoint(
            self.checkpoint_path, fleet_state(self, config=self.checkpoint_config)
        )
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.checkpoint",
                now,
                src="fleet",
                path=self.checkpoint_path,
                completed=self._completed_jobs(),
            )
        self._next_checkpoint_at = now + self.checkpoint_every

    def restore(self, payload: dict) -> None:
        """Restore a checkpoint produced by an identically-configured run.

        Must be called before :meth:`run`; the subsequent run replays only
        the remainder of the trace and produces metrics bitwise-identical to
        an uninterrupted run.
        """
        if self.job_source is not None:
            raise ValueError(
                "checkpoint restore is not supported with a streaming job_source"
            )
        from repro.faults.checkpoint import restore_fleet

        restore_fleet(self, payload)

    def _telemetry_sample(self) -> dict:
        """Fleet-level aggregates complementing the per-cluster samples."""
        return {
            "queue_depth": float(sum(c.queue_length for c in self.controllers)),
            "work_left": sum(c.work_left() for c in self.controllers),
            "completed_jobs": float(self._completed_jobs()),
            "utilisation": (
                sum(1.0 for c in self.controllers if c._running is not None)
                / self.num_clusters
            ),
        }

    # ---------------------------------------------------------------- events
    def _make_routing_callback(self, job: Job):
        def _callback(_sim: Simulator) -> None:
            self._route(job)

        return _callback

    # ------------------------------------------------------------- streaming
    def _start_streaming(self) -> None:
        """Prime the chained-arrival pump from the streaming job source."""
        self._source_iter = iter(self.job_source)
        first = next(self._source_iter, None)
        if first is None:
            raise ValueError("the streaming job source yielded no jobs")
        self._schedule_streamed(first)

    def _schedule_streamed(self, job: Job) -> None:
        self.sim.schedule_at(
            job.arrival_time, self._make_streamed_callback(job), priority=0
        )

    def _make_streamed_callback(self, job: Job):
        def _callback(_sim: Simulator) -> None:
            # Pull and schedule the successor BEFORE routing this job: at
            # equal timestamps the heap sequence then matches the batch
            # path, which pre-schedules all arrivals in trace order.
            successor = next(self._source_iter, None)
            if successor is None:
                self._source_done = True
            else:
                self._schedule_streamed(successor)
            self._route(job)

        return _callback

    def _quarantine_redirect(self, chosen: int) -> int:
        """Graceful degradation: route around impaired/probationary clusters.

        The dispatcher's choice stands when its cluster is healthy (so fault
        injection perturbs neither the dispatcher's draw sequence nor its
        load queries); otherwise the job goes to the next eligible cluster in
        index order.  If every cluster is quarantined the original choice
        stands — queueing on a down cluster beats dropping the job.
        """
        now = self.sim.now
        for offset in range(self.num_clusters):
            candidate = (chosen + offset) % self.num_clusters
            injector = self.controllers[candidate].faults
            if injector is None or injector.eligible(now):
                return candidate
        return chosen

    def _route(self, job: Job) -> None:
        hook = self._decision_hook
        if hook is None:
            index = self.dispatcher.select(job, self.controllers)
        else:
            index = hook(
                DecisionPoint(ROUTE, self.sim.now, self.controllers, job, self)
            )
        if not 0 <= index < self.num_clusters:
            chooser = (
                "decision hook"
                if hook is not None
                else f"dispatcher {self.dispatcher.name!r}"
            )
            raise ValueError(
                f"{chooser} returned invalid cluster "
                f"index {index} for a fleet of {self.num_clusters}"
            )
        if self._quarantine:
            redirected = self._quarantine_redirect(index)
            if redirected != index:
                self.quarantine_redirects += 1
                if self.telemetry.enabled:
                    self.telemetry.emit(
                        "fault.quarantine",
                        self.sim.now,
                        src="fleet",
                        job_id=job.job_id,
                        cluster=index,
                        redirected=redirected,
                    )
                index = redirected
        self._routed += 1
        self.dispatch_counts[index] += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_routed",
                self.sim.now,
                src="fleet",
                job_id=job.job_id,
                priority=job.priority,
                cluster=index,
            )
        if self.telemetry.tracing:
            # Routing annotation: an instant with no parent span (the job's
            # root span opens inside the receiving controller right after),
            # linked to the job tree by job_id at trace-assembly time.
            now = self.sim.now
            self.telemetry.emit(
                "span",
                now,
                src="fleet",
                span_id=self.telemetry.new_span_id(),
                parent_id=0,
                name="route",
                cat="route",
                start=now,
                job_id=job.job_id,
                cluster=index,
            )
        self.controllers[index].submit(job)


def replicate_fleet(
    scenario,
    policy: SchedulingPolicy,
    replications: int,
    dispatcher: Union[Dispatcher, str] = "round_robin",
    power_of_d: Optional[int] = None,
    sprint_budget: str = "per-cluster",
    base_seed: int = 0,
    jobs: int = 1,
    telemetry_base: Optional[str] = None,
    telemetry_interval: Optional[float] = None,
    faults: Union[str, FaultSpec, None] = None,
    decision_hook: Optional[DecisionHook] = None,
):
    """Replicate one fleet configuration over independent seeds.

    Each replication regenerates the scenario trace from its
    :func:`~repro.simulation.replication.replication_seed` and runs a fresh
    :class:`FleetSimulation`, collecting the headline fleet metrics
    (:meth:`~repro.fleet.result.FleetResult.summary`).  ``jobs`` fans the
    replications across worker processes with metrics bitwise-identical to a
    serial run.  ``telemetry_base`` writes each replication's telemetry to a
    per-seed part file and merges the parts, in replication order, into one
    JSONL file at that path.  Returns ``{metric_name: ReplicatedMetric}``.
    """
    from repro.experiments.parallel import FleetExperiment, merge_replication_parts
    from repro.simulation.replication import ReplicationRunner

    experiment = FleetExperiment(
        scenario=scenario,
        policy=policy,
        dispatcher=dispatcher,
        power_of_d=power_of_d,
        sprint_budget=sprint_budget,
        telemetry_base=telemetry_base,
        telemetry_interval=telemetry_interval,
        faults=parse_fault_spec(faults),
        decision_hook=decision_hook,
    )
    metrics = ReplicationRunner(experiment).run(
        replications, base_seed=base_seed, jobs=jobs
    )
    merge_replication_parts(telemetry_base, base_seed, replications)
    return metrics


def run_fleet(
    policy: SchedulingPolicy,
    jobs: Sequence[Job],
    num_clusters: int,
    dispatcher: Union[Dispatcher, str] = "round_robin",
    seed: int = 0,
    **kwargs,
) -> FleetResult:
    """Convenience wrapper: build a :class:`FleetSimulation` and run it."""
    simulation = FleetSimulation(
        policy=policy,
        jobs=jobs,
        num_clusters=num_clusters,
        dispatcher=dispatcher,
        seed=seed,
        **kwargs,
    )
    return simulation.run()
