"""Multi-cluster DiAS simulation on one shared DES kernel.

A :class:`FleetSimulation` embeds ``N`` independent
:class:`~repro.core.dias.DiASSimulation` controllers — each with its own
cluster, priority buffers, dropper, sprinter and energy meter — in a single
:class:`~repro.simulation.des.Simulator`.  Arriving jobs are routed to one
cluster by a pluggable :class:`~repro.fleet.dispatcher.Dispatcher`, and the
sprint budget can either stay per-cluster or be pooled fleet-wide through a
:class:`~repro.fleet.budget.SharedSprintBudget`.

Because every controller draws its randomness from the same
:class:`~repro.simulation.random_streams.RandomStreams` root under a
``fleet/cluster<i>/`` namespace, a fleet run is fully deterministic for a
given seed, independent of the routing policy being compared.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.core.dias import DiASSimulation, DropRatioDecision
from repro.core.policies import SchedulingPolicy
from repro.engine.cluster import Cluster
from repro.engine.job import Job
from repro.fleet.budget import SharedSprintBudget, build_budget_arbiter
from repro.fleet.dispatcher import Dispatcher, make_dispatcher
from repro.fleet.result import FleetResult
from repro.models.accuracy import AccuracyModel
from repro.simulation.des import Simulator
from repro.simulation.metrics import MetricsCollector
from repro.simulation.random_streams import RandomStreams


class FleetSimulation:
    """Runs one scheduling policy on a fleet of clusters behind a dispatcher.

    Parameters
    ----------
    policy:
        The DiAS scheduling policy every cluster runs.
    jobs:
        The fleet-wide job trace (arrival-time ordered or not; it is sorted).
    num_clusters:
        Fleet size; ignored when explicit ``clusters`` are given.
    dispatcher:
        A :class:`Dispatcher` instance or a router name understood by
        :func:`~repro.fleet.dispatcher.make_dispatcher` (``random``,
        ``round_robin``, ``jsq``, ``least_work_left``,
        ``priority_partitioned``).
    power_of_d:
        Optional JSQ(d) sample size when ``dispatcher`` is the name ``jsq``.
    clusters:
        Optional explicit cluster substrates, one per fleet member.
    sprint_budget:
        ``per-cluster`` (default), ``shared`` or ``none`` — see
        :func:`~repro.fleet.budget.build_budget_arbiter`.
    shared_budget_seconds:
        Optional override of the shared pool size (``sprint_budget="shared"``).
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        jobs: Sequence[Job],
        num_clusters: int = 2,
        dispatcher: Union[Dispatcher, str] = "round_robin",
        power_of_d: Optional[int] = None,
        clusters: Optional[Sequence[Cluster]] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        streams: Optional[RandomStreams] = None,
        seed: int = 0,
        sprint_budget: str = "per-cluster",
        shared_budget_seconds: Optional[float] = None,
        drop_ratio_provider: Optional[
            Callable[[Job, float, MetricsCollector], DropRatioDecision]
        ] = None,
    ) -> None:
        if not jobs:
            raise ValueError("the fleet job trace must not be empty")
        if clusters is not None:
            clusters = list(clusters)
            num_clusters = len(clusters)
        if num_clusters < 1:
            raise ValueError("a fleet needs at least one cluster")

        self.policy = policy
        self.jobs = sorted(jobs, key=lambda j: j.arrival_time)
        self.streams = streams or RandomStreams(seed)
        self.sim = Simulator()
        self.budget_mode = sprint_budget

        if isinstance(dispatcher, str):
            # Traffic shares drive the balanced priority partition: classes
            # with more jobs in the trace receive more clusters.
            traffic: dict = {}
            for job in self.jobs:
                traffic[job.priority] = traffic.get(job.priority, 0) + 1
            dispatcher = make_dispatcher(
                dispatcher,
                rng=self.streams.stream("fleet/dispatcher"),
                power_of_d=power_of_d,
                priorities=sorted(traffic, reverse=True),
                priority_weights={p: float(c) for p, c in traffic.items()},
                num_clusters=num_clusters,
            )
        self.dispatcher = dispatcher

        self.controllers: List[DiASSimulation] = []
        for index in range(num_clusters):
            cluster = clusters[index] if clusters is not None else Cluster()
            self.controllers.append(
                DiASSimulation(
                    policy=policy,
                    jobs=(),
                    cluster=cluster,
                    accuracy_model=accuracy_model,
                    streams=self.streams,
                    simulator=self.sim,
                    stream_namespace=f"fleet/cluster{index}/",
                    drop_ratio_provider=drop_ratio_provider,
                )
            )

        sprinters = [c.sprinter for c in self.controllers if c.sprinter is not None]
        self.budget_pool: Optional[SharedSprintBudget] = build_budget_arbiter(
            sprint_budget, self.sim, sprinters, shared_budget_seconds
        )

        self.dispatch_counts = [0] * num_clusters
        self._ran = False

    # -------------------------------------------------------------- topology
    @property
    def num_clusters(self) -> int:
        return len(self.controllers)

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> FleetResult:
        """Route and process the whole trace; aggregate per-cluster results."""
        if self._ran:
            raise RuntimeError("a FleetSimulation can only be run once")
        self._ran = True
        for job in self.jobs:
            self.sim.schedule_at(
                job.arrival_time, self._make_routing_callback(job), priority=0
            )
        self.sim.run(until=until)
        results = [controller.finalize() for controller in self.controllers]
        return FleetResult(
            policy_name=self.policy.name,
            dispatcher_name=self.dispatcher.name,
            cluster_results=results,
            duration=self.sim.now,
            dispatch_counts=list(self.dispatch_counts),
            budget_mode=self.budget_mode,
        )

    # ---------------------------------------------------------------- events
    def _make_routing_callback(self, job: Job):
        def _callback(_sim: Simulator) -> None:
            self._route(job)

        return _callback

    def _route(self, job: Job) -> None:
        index = self.dispatcher.select(job, self.controllers)
        if not 0 <= index < self.num_clusters:
            raise ValueError(
                f"dispatcher {self.dispatcher.name!r} returned invalid cluster "
                f"index {index} for a fleet of {self.num_clusters}"
            )
        self.dispatch_counts[index] += 1
        self.controllers[index].submit(job)


def replicate_fleet(
    scenario,
    policy: SchedulingPolicy,
    replications: int,
    dispatcher: Union[Dispatcher, str] = "round_robin",
    power_of_d: Optional[int] = None,
    sprint_budget: str = "per-cluster",
    base_seed: int = 0,
    jobs: int = 1,
):
    """Replicate one fleet configuration over independent seeds.

    Each replication regenerates the scenario trace from its
    :func:`~repro.simulation.replication.replication_seed` and runs a fresh
    :class:`FleetSimulation`, collecting the headline fleet metrics
    (:meth:`~repro.fleet.result.FleetResult.summary`).  ``jobs`` fans the
    replications across worker processes with metrics bitwise-identical to a
    serial run.  Returns ``{metric_name: ReplicatedMetric}``.
    """
    from repro.experiments.parallel import FleetExperiment
    from repro.simulation.replication import ReplicationRunner

    experiment = FleetExperiment(
        scenario=scenario,
        policy=policy,
        dispatcher=dispatcher,
        power_of_d=power_of_d,
        sprint_budget=sprint_budget,
    )
    return ReplicationRunner(experiment).run(replications, base_seed=base_seed, jobs=jobs)


def run_fleet(
    policy: SchedulingPolicy,
    jobs: Sequence[Job],
    num_clusters: int,
    dispatcher: Union[Dispatcher, str] = "round_robin",
    seed: int = 0,
    **kwargs,
) -> FleetResult:
    """Convenience wrapper: build a :class:`FleetSimulation` and run it."""
    simulation = FleetSimulation(
        policy=policy,
        jobs=jobs,
        num_clusters=num_clusters,
        dispatcher=dispatcher,
        seed=seed,
        **kwargs,
    )
    return simulation.run()
