"""Pluggable job-routing policies for a fleet of DiAS clusters.

A production deployment of differentiated approximation does not run one big
cluster; it runs many independent clusters behind a *dispatcher* that routes
each arriving job to one of them (the scalable-middleware building-block
pattern).  A :class:`Dispatcher` sees the arriving job and the live state of
every cluster controller (queue length, estimated work left) and returns the
index of the cluster that should serve the job.

Implemented policies
--------------------
* :class:`RandomDispatcher` — uniform random cluster choice.
* :class:`RoundRobinDispatcher` — cyclic assignment.
* :class:`JoinShortestQueueDispatcher` — route to the cluster with the fewest
  jobs in the system; optional *power-of-d* sampling probes only ``d``
  random clusters (the classic JSQ(d) trade-off between dispatcher state and
  queueing performance).
* :class:`LeastWorkLeftDispatcher` — route on estimated remaining
  slot-seconds instead of job counts, which is robust to heterogeneous job
  sizes (a single huge job counts as one queue entry but many work-seconds).
* :class:`PriorityPartitionedDispatcher` — pin each priority class to a
  subset of the clusters (e.g. an isolated high-priority sub-fleet) and
  balance within the subset by queue length.

Ties are broken uniformly at random when the dispatcher has an rng (the
default when built through :class:`~repro.fleet.simulation.FleetSimulation`)
and by lowest cluster index otherwise; either way routing is deterministic
given the same seed and arrival sequence.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Sequence

import numpy as np


class ClusterLoadView(Protocol):
    """What a dispatcher may observe about one cluster controller."""

    @property
    def queue_length(self) -> int:
        """Jobs currently buffered or in execution on this cluster."""

    def work_left(self) -> float:
        """Estimated slot-seconds of service remaining on this cluster."""


class Dispatcher:
    """Base class: route each arriving job to one cluster index."""

    name = "dispatcher"

    def select(self, job, clusters: Sequence[ClusterLoadView]) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class RandomDispatcher(Dispatcher):
    """Uniform random routing (the stateless baseline)."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def select(self, job, clusters: Sequence[ClusterLoadView]) -> int:
        return int(self._rng.integers(len(clusters)))


class RoundRobinDispatcher(Dispatcher):
    """Cyclic assignment; balances counts but is blind to job sizes."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, job, clusters: Sequence[ClusterLoadView]) -> int:
        index = self._next % len(clusters)
        self._next = index + 1
        return index


def _shortest_queue(
    clusters: Sequence[ClusterLoadView],
    candidates: Sequence[int],
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Candidate with the fewest jobs in system.

    Ties are broken uniformly at random when an ``rng`` is given (the classic
    JSQ formulation, still deterministic for a fixed seed) and by lowest index
    otherwise.
    """
    shortest = min(clusters[i].queue_length for i in candidates)
    tied = [i for i in candidates if clusters[i].queue_length == shortest]
    if len(tied) == 1 or rng is None:
        return tied[0]
    return tied[int(rng.integers(len(tied)))]


class JoinShortestQueueDispatcher(Dispatcher):
    """JSQ, optionally with power-of-d sampling (``JSQ(d)``).

    With ``sample_size=None`` every cluster is probed (plain JSQ); with
    ``sample_size=d`` only ``d`` distinct random clusters are probed, which
    models a dispatcher that cannot afford full fleet state per decision.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        sample_size: Optional[int] = None,
    ) -> None:
        if sample_size is not None:
            if sample_size < 1:
                raise ValueError("sample_size must be at least 1")
            if rng is None:
                raise ValueError("power-of-d sampling needs an rng")
        self._rng = rng
        self.sample_size = sample_size
        self.name = "jsq" if sample_size is None else f"jsq({sample_size})"

    def select(self, job, clusters: Sequence[ClusterLoadView]) -> int:
        if self.sample_size is None or self.sample_size >= len(clusters):
            candidates: Sequence[int] = range(len(clusters))
        else:
            sampled = self._rng.choice(
                len(clusters), size=self.sample_size, replace=False
            )
            candidates = sorted(int(i) for i in sampled)
        return _shortest_queue(clusters, candidates, rng=self._rng)


class LeastWorkLeftDispatcher(Dispatcher):
    """Route to the cluster with the least estimated remaining work."""

    name = "least_work_left"

    def select(self, job, clusters: Sequence[ClusterLoadView]) -> int:
        return min(range(len(clusters)), key=lambda i: (clusters[i].work_left(), i))


class PriorityPartitionedDispatcher(Dispatcher):
    """Pin each priority class to a subset of clusters, JSQ within the subset.

    ``assignments`` maps a priority to the cluster indices allowed to serve
    it; priorities missing from the mapping may use every cluster.  Use
    :meth:`balanced` to split a fleet among priority classes proportionally
    to their traffic shares.
    """

    name = "priority_partitioned"

    def __init__(
        self,
        assignments: Mapping[int, Sequence[int]],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._rng = rng
        if not assignments:
            raise ValueError("assignments must map at least one priority")
        self.assignments: Dict[int, List[int]] = {}
        for priority, indices in assignments.items():
            cleaned = sorted({int(i) for i in indices})
            if not cleaned:
                raise ValueError(f"priority {priority} has an empty cluster subset")
            if any(i < 0 for i in cleaned):
                raise ValueError(f"priority {priority} has a negative cluster index")
            self.assignments[int(priority)] = cleaned

    @classmethod
    def balanced(
        cls,
        priorities: Sequence[int],
        num_clusters: int,
        weights: Optional[Mapping[int, float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "PriorityPartitionedDispatcher":
        """Split ``num_clusters`` contiguously among ``priorities``.

        Higher priorities are assigned first (from cluster 0 upwards), each
        class receiving a share of clusters proportional to its ``weights``
        entry (equal shares by default) and at least one cluster.
        """
        ordered = sorted(set(priorities), reverse=True)
        if not ordered:
            raise ValueError("at least one priority is required")
        if num_clusters < len(ordered):
            raise ValueError(
                f"need at least {len(ordered)} clusters to partition "
                f"{len(ordered)} priorities, got {num_clusters}"
            )
        shares = {p: float(weights.get(p, 1.0)) if weights else 1.0 for p in ordered}
        total = sum(shares.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        # Largest-remainder apportionment with a one-cluster floor per class.
        ideal = {p: num_clusters * shares[p] / total for p in ordered}
        counts = {p: max(1, int(ideal[p])) for p in ordered}
        leftover = num_clusters - sum(counts.values())
        by_deficit = sorted(ordered, key=lambda p: ideal[p] - counts[p], reverse=True)
        for priority in by_deficit:
            if leftover <= 0:
                break
            counts[priority] += 1
            leftover -= 1
        while leftover < 0:
            # The one-cluster floors over-allocated; shrink the class with the
            # largest surplus that still has more than one cluster.
            donor = max(
                (p for p in ordered if counts[p] > 1),
                key=lambda p: counts[p] - ideal[p],
            )
            counts[donor] -= 1
            leftover += 1
        assignments: Dict[int, List[int]] = {}
        start = 0
        for priority in ordered:
            assignments[priority] = list(range(start, start + counts[priority]))
            start += counts[priority]
        return cls(assignments, rng=rng)

    def select(self, job, clusters: Sequence[ClusterLoadView]) -> int:
        allowed = self.assignments.get(job.priority)
        if allowed is None:
            candidates: Sequence[int] = range(len(clusters))
        else:
            candidates = [i for i in allowed if i < len(clusters)]
            if not candidates:
                raise ValueError(
                    f"no valid cluster for priority {job.priority} in a fleet "
                    f"of {len(clusters)}"
                )
        return _shortest_queue(clusters, candidates, rng=self._rng)


#: Router names accepted by :func:`make_dispatcher` (and the CLI).
ROUTERS = ("random", "round_robin", "jsq", "least_work_left", "priority_partitioned")


def make_dispatcher(
    name: str,
    rng: Optional[np.random.Generator] = None,
    power_of_d: Optional[int] = None,
    priorities: Optional[Sequence[int]] = None,
    priority_weights: Optional[Mapping[int, float]] = None,
    num_clusters: Optional[int] = None,
    assignments: Optional[Mapping[int, Sequence[int]]] = None,
) -> Dispatcher:
    """Build a dispatcher by name.

    ``jsq`` honours ``power_of_d``; ``priority_partitioned`` uses explicit
    ``assignments`` when given, otherwise a balanced partition built from
    ``priorities`` (optionally weighted by traffic share) and ``num_clusters``.
    """
    key = name.strip().lower().replace("-", "_")
    if key == "random":
        if rng is None:
            raise ValueError("the random dispatcher needs an rng")
        return RandomDispatcher(rng)
    if key == "round_robin":
        return RoundRobinDispatcher()
    if key == "jsq":
        return JoinShortestQueueDispatcher(rng=rng, sample_size=power_of_d)
    if key == "least_work_left":
        return LeastWorkLeftDispatcher()
    if key == "priority_partitioned":
        if assignments is not None:
            return PriorityPartitionedDispatcher(assignments, rng=rng)
        if priorities is None or num_clusters is None:
            raise ValueError(
                "priority_partitioned needs explicit assignments or "
                "(priorities, num_clusters)"
            )
        return PriorityPartitionedDispatcher.balanced(
            priorities, num_clusters, weights=priority_weights, rng=rng
        )
    raise ValueError(f"unknown router {name!r}; expected one of {', '.join(ROUTERS)}")
