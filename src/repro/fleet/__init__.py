"""Fleet layer: multi-cluster DiAS simulation with pluggable dispatchers.

This package scales the paper's single-cluster prototype to a fleet of
independent DiAS-controlled clusters sharing one discrete-event kernel:

* :mod:`repro.fleet.dispatcher` — routing policies (random, round-robin,
  JSQ with optional power-of-d sampling, least-work-left, and
  priority-partitioned sub-fleets).
* :mod:`repro.fleet.budget` — fleet-wide sprint-budget arbitration
  (per-cluster, shared pool, or disabled).
* :mod:`repro.fleet.simulation` — :class:`FleetSimulation`, the driver that
  embeds one :class:`~repro.core.dias.DiASSimulation` per cluster.
* :mod:`repro.fleet.result` — :class:`FleetResult`, fleet-level latency,
  energy, waste and load-imbalance aggregation.
"""

from repro.fleet.budget import BUDGET_MODES, SharedSprintBudget, build_budget_arbiter
from repro.fleet.dispatcher import (
    ROUTERS,
    Dispatcher,
    JoinShortestQueueDispatcher,
    LeastWorkLeftDispatcher,
    PriorityPartitionedDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    make_dispatcher,
)
from repro.fleet.result import FleetResult
from repro.fleet.simulation import FleetSimulation, replicate_fleet, run_fleet

__all__ = [
    "BUDGET_MODES",
    "SharedSprintBudget",
    "build_budget_arbiter",
    "ROUTERS",
    "Dispatcher",
    "JoinShortestQueueDispatcher",
    "LeastWorkLeftDispatcher",
    "PriorityPartitionedDispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "make_dispatcher",
    "FleetResult",
    "FleetSimulation",
    "replicate_fleet",
    "run_fleet",
]
