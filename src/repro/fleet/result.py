"""Fleet-level aggregation of per-cluster simulation results.

A :class:`FleetResult` combines the per-cluster
:class:`~repro.core.dias.SimulationResult` objects of one
:class:`~repro.fleet.simulation.FleetSimulation` run into the quantities a
fleet operator cares about: fleet-wide mean/tail latency per priority class,
total energy, aggregate resource waste, and *load-imbalance* measures that
expose how well the dispatcher spread the work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dias import SimulationResult
from repro.simulation.metrics import ClassMetrics, JobRecord, MetricsCollector


@dataclass
class FleetResult:
    """Everything measured during one fleet run under one routing policy."""

    policy_name: str
    dispatcher_name: str
    cluster_results: List[SimulationResult]
    duration: float
    dispatch_counts: List[int]
    budget_mode: str = "per-cluster"
    #: Pre-aggregated fleet-wide collector (streaming replays tee every
    #: record into one ``MetricsCollector(streaming=True)`` as jobs finish,
    #: so no per-record re-aggregation pass is possible or needed here).
    shared_metrics: Optional[MetricsCollector] = None
    _combined: MetricsCollector = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.cluster_results:
            raise ValueError("a fleet result needs at least one cluster result")
        if len(self.dispatch_counts) != len(self.cluster_results):
            raise ValueError("dispatch_counts must have one entry per cluster")
        if self.shared_metrics is not None:
            self._combined = self.shared_metrics
            return
        combined = MetricsCollector()
        for result in self.cluster_results:
            for record in result.metrics.records:
                combined.record_job(record)
        combined.set_observation_time(self.duration)
        self._combined = combined

    # ------------------------------------------------------------- topology
    @property
    def num_clusters(self) -> int:
        return len(self.cluster_results)

    @property
    def completed_jobs(self) -> int:
        return sum(r.completed_jobs for r in self.cluster_results)

    @property
    def evictions(self) -> int:
        return sum(r.evictions for r in self.cluster_results)

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Fault/recovery counters summed over clusters (empty = no faults)."""
        totals: Dict[str, int] = {}
        for result in self.cluster_results:
            for name, value in result.fault_counts.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    # ------------------------------------------------------------- latency
    def priorities(self) -> List[int]:
        return self._combined.priorities()

    def class_metrics(self, priority: int) -> ClassMetrics:
        return self._combined.class_metrics(priority)

    def records(self) -> List[JobRecord]:
        return self._combined.records

    def mean_response_time(self, priority: Optional[int] = None) -> float:
        return self._combined.mean_response_time(priority)

    def tail_response_time(self, priority: Optional[int] = None, q: float = 95.0) -> float:
        return self._combined.tail_response_time(priority, q)

    def mean_accuracy_loss(self, priority: int) -> float:
        return self.class_metrics(priority).accuracy_loss_mean

    # ------------------------------------------------------- energy & waste
    @property
    def total_energy_joules(self) -> float:
        return sum(r.total_energy_joules for r in self.cluster_results)

    @property
    def total_energy_kilojoules(self) -> float:
        return self.total_energy_joules / 1000.0

    @property
    def sprinted_seconds(self) -> float:
        return sum(r.sprinted_seconds for r in self.cluster_results)

    @property
    def resource_waste(self) -> float:
        """Fleet-wide wasted machine time over total processing time."""
        return self._combined.resource_waste_fraction()

    # ------------------------------------------------------- load imbalance
    def utilisation_per_cluster(self) -> List[float]:
        return [r.utilisation for r in self.cluster_results]

    def jobs_per_cluster(self) -> List[int]:
        return [r.completed_jobs for r in self.cluster_results]

    @property
    def mean_utilisation(self) -> float:
        values = self.utilisation_per_cluster()
        return sum(values) / len(values)

    @property
    def load_imbalance(self) -> float:
        """Peak-to-mean ratio of per-cluster utilisation (1.0 = balanced).

        The classic imbalance factor: how much hotter the hottest cluster
        runs than the fleet average.  Random routing typically shows a
        clearly larger value than JSQ/least-work-left on the same trace.
        """
        values = self.utilisation_per_cluster()
        mean = sum(values) / len(values)
        if mean <= 0:
            return 1.0
        return max(values) / mean

    @property
    def utilisation_cv(self) -> float:
        """Coefficient of variation of per-cluster utilisation."""
        values = self.utilisation_per_cluster()
        mean = sum(values) / len(values)
        if mean <= 0:
            return 0.0
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return math.sqrt(variance) / mean

    @property
    def dispatch_imbalance(self) -> float:
        """Peak-to-mean ratio of routed-job counts per cluster."""
        total = sum(self.dispatch_counts)
        if total <= 0:
            return 1.0
        mean = total / len(self.dispatch_counts)
        return max(self.dispatch_counts) / mean

    # --------------------------------------------------------------- export
    def cluster_rows(self) -> List[Dict[str, float]]:
        """One row per cluster: routing counts, utilisation, energy."""
        rows: List[Dict[str, float]] = []
        for index, result in enumerate(self.cluster_results):
            rows.append(
                {
                    "cluster": index,
                    "routed_jobs": float(self.dispatch_counts[index]),
                    "completed_jobs": float(result.completed_jobs),
                    "utilisation": result.utilisation,
                    "mean_response_s": result.mean_response_time(),
                    "energy_kj": result.total_energy_kilojoules,
                    "evictions": float(result.evictions),
                }
            )
        return rows

    def class_rows(self) -> List[Dict[str, float]]:
        """One row per priority class with fleet-level latency figures."""
        rows: List[Dict[str, float]] = []
        for priority in sorted(self.priorities(), reverse=True):
            metrics = self.class_metrics(priority)
            rows.append(
                {
                    "priority": priority,
                    "jobs": float(metrics.job_count),
                    "mean_response_s": metrics.response_time.mean,
                    "p95_response_s": metrics.response_time.p95,
                    "mean_queueing_s": metrics.queueing_time.mean,
                    "accuracy_loss_pct": 100.0 * metrics.accuracy_loss_mean,
                }
            )
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline fleet metrics in one flat mapping."""
        return {
            "clusters": float(self.num_clusters),
            "completed_jobs": float(self.completed_jobs),
            "duration_s": self.duration,
            "mean_response_s": self.mean_response_time(),
            "p95_response_s": self.tail_response_time(),
            "mean_utilisation": self.mean_utilisation,
            "load_imbalance": self.load_imbalance,
            "utilisation_cv": self.utilisation_cv,
            "resource_waste_pct": 100.0 * self.resource_waste,
            "energy_kj": self.total_energy_kilojoules,
            "sprinted_s": self.sprinted_seconds,
            "evictions": float(self.evictions),
        }
