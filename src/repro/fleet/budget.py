"""Fleet-wide sprint-budget arbitration.

A single DiAS cluster meters its own sprint budget inside its
:class:`~repro.core.sprinter.Sprinter`.  A fleet can instead share one
facility-level budget (think a datacenter power cap): every sprinting cluster
drains the common pool at one sprint-second per second, the pool replenishes
at a fixed rate, and when it runs dry *all* sprinting clusters are throttled
back to the base frequency at once.

:class:`SharedSprintBudget` implements the
:class:`~repro.core.sprinter.SprintBudgetPool` protocol the sprinter
delegates to, and :func:`build_budget_arbiter` maps a fleet budget mode
(``per-cluster`` / ``shared`` / ``none``) onto the controllers' sprinters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.sprinter import Sprinter
from repro.simulation.des import Event, Simulator
from repro.telemetry.hub import NULL_HUB

#: Budget modes understood by :func:`build_budget_arbiter`.
BUDGET_MODES = ("per-cluster", "shared", "none")


class SharedSprintBudget:
    """One sprint-second pool drained concurrently by several sprinters.

    The pool evolves as ``d/dt budget = replenish_rate − active_sprinters``,
    clamped to ``[0, cap]``.  Whenever the active set changes the pool
    reschedules a single *exhaust* event at the projected dry-out time; when
    it fires, every active sprinter is force-stopped (simultaneous fleet-wide
    throttling, the defining difference from per-cluster budgets).
    """

    def __init__(
        self,
        sim: Simulator,
        budget_seconds: Optional[float],
        replenish_seconds_per_hour: float = 0.0,
        max_budget_seconds: Optional[float] = None,
    ) -> None:
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError("budget_seconds must be non-negative")
        if replenish_seconds_per_hour < 0:
            raise ValueError("replenish_seconds_per_hour must be non-negative")
        self.sim = sim
        self._budget = budget_seconds  # None = unlimited
        self._replenish_rate = replenish_seconds_per_hour / 3600.0
        self._cap = max_budget_seconds if max_budget_seconds is not None else budget_seconds
        self._updated_at = sim.now
        self._active: List[Sprinter] = []
        self._exhaust_event: Optional[Event] = None
        self.exhaustions = 0
        # Assigned by the embedding fleet after build_budget_arbiter().
        self.telemetry = NULL_HUB

    # -------------------------------------------------------------- queries
    @property
    def unlimited(self) -> bool:
        return self._budget is None

    @property
    def active_sprinters(self) -> int:
        return len(self._active)

    def available(self) -> Optional[float]:
        """Sprint-seconds left in the pool (``None`` = unlimited)."""
        self._update()
        return self._budget

    # ------------------------------------------------------ sprinter events
    def on_sprint_start(self, sprinter: Sprinter) -> None:
        self._update()
        if sprinter not in self._active:
            self._active.append(sprinter)
        self._reschedule_exhaust()

    def on_sprint_end(self, sprinter: Sprinter) -> None:
        self._update()
        if sprinter in self._active:
            self._active.remove(sprinter)
        self._reschedule_exhaust()

    # ------------------------------------------------------------ internals
    def _update(self) -> None:
        now = self.sim.now
        elapsed = now - self._updated_at
        self._updated_at = now
        if self._budget is None or elapsed <= 0:
            return
        rate = self._replenish_rate - len(self._active)
        self._budget += rate * elapsed
        if self._cap is not None:
            self._budget = min(self._budget, self._cap)
        self._budget = max(self._budget, 0.0)

    def _reschedule_exhaust(self) -> None:
        if self._exhaust_event is not None:
            self._exhaust_event.cancel()
            self._exhaust_event = None
        if self._budget is None or not self._active:
            return
        net_drain = len(self._active) - self._replenish_rate
        if net_drain <= 0:
            return
        self._exhaust_event = self.sim.schedule(
            self._budget / net_drain, self._on_exhausted, priority=2
        )

    def _on_exhausted(self, _sim: Simulator) -> None:
        self._exhaust_event = None
        self._update()
        self.exhaustions += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "budget_exhausted",
                self.sim.now,
                src="budget",
                active_sprinters=len(self._active),
                exhaustions=self.exhaustions,
            )
        # force_stop() re-enters on_sprint_end, which shrinks the active set
        # and (with nobody left) leaves no exhaust event scheduled.
        for sprinter in list(self._active):
            sprinter.force_stop()


def build_budget_arbiter(
    mode: str,
    sim: Simulator,
    sprinters: Sequence[Sprinter],
    shared_budget_seconds: Optional[float] = None,
) -> Optional[SharedSprintBudget]:
    """Apply a fleet budget ``mode`` to the clusters' sprinters.

    * ``per-cluster`` — each sprinter keeps its own policy-level budget
      (nothing to do, returns ``None``).
    * ``shared`` — one :class:`SharedSprintBudget` is attached to every
      sprinter.  Its size defaults to the sum of the per-cluster budgets
      (same total sprint capacity, but fungible across clusters), as does its
      replenishment rate; ``shared_budget_seconds`` overrides the size.
    * ``none`` — sprinting budgets are zeroed out by attaching an empty,
      non-replenishing shared pool (useful as an ablation).
    """
    key = mode.strip().lower().replace("_", "-")
    if key not in BUDGET_MODES:
        raise ValueError(
            f"unknown budget mode {mode!r}; expected one of {', '.join(BUDGET_MODES)}"
        )
    if key == "per-cluster" or not sprinters:
        return None
    if key == "none":
        pool = SharedSprintBudget(sim, budget_seconds=0.0)
    else:
        budgets = [s.config.budget_seconds for s in sprinters]
        if shared_budget_seconds is not None:
            total: Optional[float] = shared_budget_seconds
        elif any(b is None for b in budgets):
            total = None  # any unlimited member makes the pool unlimited
        else:
            total = sum(budgets)
        replenish = sum(s.config.replenish_seconds_per_hour for s in sprinters)
        caps = [s.config.budget_cap() for s in sprinters]
        cap = None if any(c is None for c in caps) else sum(caps)
        pool = SharedSprintBudget(
            sim,
            budget_seconds=total,
            replenish_seconds_per_hour=replenish,
            max_budget_seconds=cap,
        )
    for sprinter in sprinters:
        sprinter.budget_pool = pool
    return pool
