"""A miniature RDD abstraction with DiAS-style task dropping.

The runtime executes jobs as Spark does at a high level: an RDD is a list of
partitions; *narrow* transformations (map, flatMap, filter, mapPartitions)
compose per-partition functions without moving data; *wide* transformations
(reduceByKey, groupByKey) introduce a stage boundary — every partition of the
parent stage is computed as one task, the intermediate key-value pairs are
hash-partitioned, and the next stage starts.

DiAS modifies Spark's ``findMissingPartitions()`` to return only
``⌈n(1 − θ)⌉`` of a stage's ``n`` partitions (§3.3).  The
:class:`LocalRuntime` applies exactly that rule at every stage boundary and at
the final action, and keeps per-stage statistics (executed vs dropped tasks)
so experiments can report the achieved drop ratios.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dropper import find_missing_partitions


@dataclass
class StageStats:
    """Execution statistics of one stage run by the runtime."""

    stage_id: int
    total_tasks: int
    executed_tasks: int
    dropped_tasks: int
    description: str = ""

    @property
    def drop_ratio(self) -> float:
        if self.total_tasks == 0:
            return 0.0
        return self.dropped_tasks / self.total_tasks


class LocalRuntime:
    """Executes RDD lineages locally, dropping tasks per the configured ratio."""

    def __init__(
        self,
        drop_ratio: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= drop_ratio < 1.0:
            raise ValueError("drop_ratio must be in [0, 1)")
        self.drop_ratio = drop_ratio
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._stage_counter = itertools.count()
        self.stages: List[StageStats] = []

    # ------------------------------------------------------------- creation
    def parallelize(self, data: Sequence[Any], num_partitions: int) -> "RDD":
        """Split ``data`` into ``num_partitions`` roughly equal partitions."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        items = list(data)
        partitions: List[List[Any]] = [[] for _ in range(num_partitions)]
        for index, item in enumerate(items):
            partitions[index % num_partitions].append(item)
        return RDD(self, _SourceNode(partitions))

    def from_partitions(self, partitions: Sequence[Sequence[Any]]) -> "RDD":
        """Build an RDD directly from pre-existing partitions."""
        return RDD(self, _SourceNode([list(p) for p in partitions]))

    # ------------------------------------------------------------ scheduling
    def select_partitions(self, num_partitions: int) -> List[int]:
        """The DiAS ``findMissingPartitions`` rule: keep ``⌈n(1 − θ)⌉`` tasks."""
        keep = find_missing_partitions(num_partitions, self.drop_ratio)
        if keep >= num_partitions:
            return list(range(num_partitions))
        chosen = self._rng.choice(num_partitions, size=keep, replace=False)
        return sorted(int(i) for i in chosen)

    def record_stage(self, total: int, executed: int, description: str = "") -> StageStats:
        stats = StageStats(
            stage_id=next(self._stage_counter),
            total_tasks=total,
            executed_tasks=executed,
            dropped_tasks=total - executed,
            description=description,
        )
        self.stages.append(stats)
        return stats

    @property
    def total_tasks_executed(self) -> int:
        return sum(s.executed_tasks for s in self.stages)

    @property
    def total_tasks_dropped(self) -> int:
        return sum(s.dropped_tasks for s in self.stages)

    @property
    def effective_drop_ratio(self) -> float:
        """Overall fraction of tasks dropped across all stages run so far."""
        total = self.total_tasks_executed + self.total_tasks_dropped
        if total == 0:
            return 0.0
        return self.total_tasks_dropped / total


# --------------------------------------------------------------------------
# Lineage nodes
# --------------------------------------------------------------------------
class _Node:
    """A node of the lineage DAG; subclasses know how to compute partitions."""

    def num_partitions(self) -> int:
        raise NotImplementedError

    def compute_partition(self, index: int) -> List[Any]:
        raise NotImplementedError


class _SourceNode(_Node):
    def __init__(self, partitions: List[List[Any]]) -> None:
        self._partitions = partitions

    def num_partitions(self) -> int:
        return len(self._partitions)

    def compute_partition(self, index: int) -> List[Any]:
        return list(self._partitions[index])


class _NarrowNode(_Node):
    """A narrow transformation: per-partition function over the parent."""

    def __init__(self, parent: _Node, fn: Callable[[List[Any]], List[Any]]) -> None:
        self._parent = parent
        self._fn = fn

    def num_partitions(self) -> int:
        return self._parent.num_partitions()

    def compute_partition(self, index: int) -> List[Any]:
        return self._fn(self._parent.compute_partition(index))


class _ShuffledNode(_Node):
    """A wide transformation: parent stage is materialised, keys repartitioned.

    The parent stage is executed through the runtime so the DiAS task-drop
    rule applies; results are cached so downstream partitions do not recompute
    the shuffle.
    """

    def __init__(
        self,
        runtime: LocalRuntime,
        parent: _Node,
        reducer: Optional[Callable[[Any, Any], Any]],
        num_partitions: int,
        description: str,
    ) -> None:
        self._runtime = runtime
        self._parent = parent
        self._reducer = reducer
        self._num_partitions = num_partitions
        self._description = description
        self._materialised: Optional[List[List[Any]]] = None

    def num_partitions(self) -> int:
        return self._num_partitions

    def _materialise(self) -> List[List[Any]]:
        if self._materialised is not None:
            return self._materialised
        total = self._parent.num_partitions()
        selected = self._runtime.select_partitions(total)
        self._runtime.record_stage(total, len(selected), self._description)
        buckets: List[Dict[Any, Any]] = [dict() for _ in range(self._num_partitions)]
        for index in selected:
            for item in self._parent.compute_partition(index):
                if not isinstance(item, tuple) or len(item) != 2:
                    raise TypeError(
                        "wide transformations need (key, value) pairs, got "
                        f"{type(item).__name__}"
                    )
                key, value = item
                bucket = buckets[hash(key) % self._num_partitions]
                if self._reducer is None:
                    bucket.setdefault(key, []).append(value)
                elif key in bucket:
                    bucket[key] = self._reducer(bucket[key], value)
                else:
                    bucket[key] = value
        self._materialised = [list(bucket.items()) for bucket in buckets]
        return self._materialised

    def compute_partition(self, index: int) -> List[Any]:
        return list(self._materialise()[index])


# --------------------------------------------------------------------------
# Public RDD API
# --------------------------------------------------------------------------
class RDD:
    """A resilient-distributed-dataset handle bound to a :class:`LocalRuntime`."""

    def __init__(self, runtime: LocalRuntime, node: _Node) -> None:
        self._runtime = runtime
        self._node = node

    # ------------------------------------------------------------ structure
    def get_num_partitions(self) -> int:
        return self._node.num_partitions()

    @property
    def runtime(self) -> LocalRuntime:
        return self._runtime

    # --------------------------------------------------- narrow transformations
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return RDD(self._runtime, _NarrowNode(self._node, lambda part: [fn(x) for x in part]))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        def _apply(part: List[Any]) -> List[Any]:
            out: List[Any] = []
            for item in part:
                out.extend(fn(item))
            return out

        return RDD(self._runtime, _NarrowNode(self._node, _apply))

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return RDD(
            self._runtime,
            _NarrowNode(self._node, lambda part: [x for x in part if predicate(x)]),
        )

    def map_partitions(self, fn: Callable[[List[Any]], Iterable[Any]]) -> "RDD":
        return RDD(self._runtime, _NarrowNode(self._node, lambda part: list(fn(part))))

    # ----------------------------------------------------- wide transformations
    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: Optional[int] = None
    ) -> "RDD":
        partitions = num_partitions or self.get_num_partitions()
        return RDD(
            self._runtime,
            _ShuffledNode(self._runtime, self._node, fn, partitions, "reduceByKey"),
        )

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        partitions = num_partitions or self.get_num_partitions()
        return RDD(
            self._runtime,
            _ShuffledNode(self._runtime, self._node, None, partitions, "groupByKey"),
        )

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner join of two key-value RDDs."""
        tagged_self = self.map(lambda kv: (kv[0], ("left", kv[1])))
        tagged_other = other.map(lambda kv: (kv[0], ("right", kv[1])))
        unioned = self._runtime.from_partitions(
            [tagged_self._collect_raw(), tagged_other._collect_raw()]
        )
        grouped = unioned.group_by_key(num_partitions or self.get_num_partitions())

        def _emit(kv: Tuple[Any, List[Tuple[str, Any]]]) -> Iterable[Tuple[Any, Tuple[Any, Any]]]:
            key, values = kv
            lefts = [v for tag, v in values if tag == "left"]
            rights = [v for tag, v in values if tag == "right"]
            for lv in lefts:
                for rv in rights:
                    yield (key, (lv, rv))

        return grouped.flat_map(_emit)

    # ---------------------------------------------------------------- actions
    def _collect_raw(self) -> List[Any]:
        """Collect without applying the drop rule (internal plumbing)."""
        out: List[Any] = []
        for index in range(self.get_num_partitions()):
            out.extend(self._node.compute_partition(index))
        return out

    def collect(self, apply_drop: bool = True, description: str = "collect") -> List[Any]:
        """Run the final stage and return its results.

        ``apply_drop=True`` applies the DiAS rule to the final stage as well;
        shuffle stages upstream always apply it (they go through the runtime).
        """
        total = self.get_num_partitions()
        if apply_drop:
            selected = self._runtime.select_partitions(total)
        else:
            selected = list(range(total))
        self._runtime.record_stage(total, len(selected), description)
        out: List[Any] = []
        for index in selected:
            out.extend(self._node.compute_partition(index))
        return out

    def count(self, apply_drop: bool = True) -> int:
        return len(self.collect(apply_drop=apply_drop, description="count"))

    def reduce(self, fn: Callable[[Any, Any], Any], apply_drop: bool = True) -> Any:
        values = self.collect(apply_drop=apply_drop, description="reduce")
        if not values:
            raise ValueError("cannot reduce an empty RDD")
        acc = values[0]
        for value in values[1:]:
            acc = fn(acc, value)
        return acc

    def collect_as_map(self, apply_drop: bool = True) -> Dict[Any, Any]:
        return dict(self.collect(apply_drop=apply_drop, description="collectAsMap"))
