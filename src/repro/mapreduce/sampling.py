"""Sampling-theory helpers used by the approximate analyses.

Dropping map tasks is statistically equivalent to processing a uniform random
sample of the input partitions (the choice is uniform in
:class:`repro.core.dropper.TaskDropper` and :class:`repro.mapreduce.rdd.LocalRuntime`).
Counts computed on the sample can therefore be scaled back to population
estimates with a Horvitz–Thompson-style correction, and a normal-approximation
error bound can be attached — the same reasoning ApproxHadoop applies to task
dropping.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple


def horvitz_thompson_scale(sample_total: float, kept_fraction: float) -> float:
    """Scale a sample total back to a population estimate.

    With every unit kept independently-at-random with probability
    ``kept_fraction``, the unbiased estimator of the population total is the
    sample total divided by that probability.
    """
    if not 0.0 < kept_fraction <= 1.0:
        raise ValueError("kept_fraction must be in (0, 1]")
    return sample_total / kept_fraction


def relative_error(estimate: float, truth: float) -> float:
    """Absolute relative error ``|estimate − truth| / truth`` (0 when truth is 0)."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def mean_absolute_percentage_error(
    estimates: Mapping[str, float], truths: Mapping[str, float], keys: Sequence[str]
) -> float:
    """MAPE (in percent) over the given keys, the Fig. 6 accuracy metric.

    Keys absent from ``estimates`` contribute a 100 % error (the value was
    lost entirely to dropping), matching the most pessimistic reading.
    """
    if not keys:
        raise ValueError("need at least one key to evaluate")
    total = 0.0
    for key in keys:
        truth = truths.get(key, 0.0)
        estimate = estimates.get(key, 0.0)
        if truth == 0:
            continue
        total += min(1.0, relative_error(estimate, truth))
    return 100.0 * total / len(keys)


def sample_total_confidence_interval(
    sample_values: Sequence[float], kept_fraction: float, z: float = 1.96
) -> Tuple[float, float, float]:
    """Estimate of a population total with a normal-approximation half-width.

    Returns ``(estimate, lower, upper)``.  The variance estimate treats the
    sample as a simple random sample of partition subtotals, with finite
    population correction ``(1 − f)``.
    """
    if not sample_values:
        raise ValueError("sample_values must not be empty")
    if not 0.0 < kept_fraction <= 1.0:
        raise ValueError("kept_fraction must be in (0, 1]")
    n = len(sample_values)
    total_population = max(1, round(n / kept_fraction))
    sample_mean = sum(sample_values) / n
    estimate = sample_mean * total_population
    if n == 1 or kept_fraction == 1.0:
        return estimate, estimate, estimate
    variance = sum((v - sample_mean) ** 2 for v in sample_values) / (n - 1)
    half_width = z * total_population * math.sqrt(
        max(0.0, (1.0 - kept_fraction)) * variance / n
    )
    return estimate, estimate - half_width, estimate + half_width
