"""The graph-analysis workload: multi-stage MapReduce triangle counting.

The paper's graph jobs run GraphX's triangle count on the Google web graph;
the computation has three job types (edge RDD, vertex RDD, the count itself)
and the count consists of six ShuffleMap stages plus one Result stage, with
task dropping applied at every ShuffleMap stage (§5.1, §5.2.4).

Here the same node-iterator algorithm runs through the mini-MapReduce runtime
as a chain of shuffle stages:

1. canonicalise and deduplicate edges          (``reduceByKey``)
2. build adjacency lists                        (``groupByKey``)
3. emit wedges (open triads) per vertex         (narrow) and deduplicate
   candidate closing edges                      (``reduceByKey``)
4. join wedge candidates against the edge set   (``groupByKey``)
5. count closed wedges per vertex               (``reduceByKey``)
6. aggregate the global triangle count          (``reduceByKey``)

Every shuffle applies the DiAS drop rule, so a per-stage drop ratio compounds
across stages exactly as the paper describes; the final estimate is scaled by
the inverse kept fraction and compared against the exact count.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mapreduce.rdd import LocalRuntime
from repro.mapreduce.sampling import relative_error

Edge = Tuple[int, int]


def _canonical(edge: Edge) -> Optional[Edge]:
    u, v = edge
    if u == v:
        return None
    return (u, v) if u < v else (v, u)


def exact_triangle_count(edges: Sequence[Edge]) -> int:
    """Exact triangle count via adjacency-set intersection (reference result)."""
    adjacency: Dict[int, set] = {}
    canonical = set()
    for edge in edges:
        ce = _canonical(edge)
        if ce is None:
            continue
        canonical.add(ce)
    for u, v in canonical:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    count = 0
    for u, v in canonical:
        count += len(adjacency[u] & adjacency[v])
    return count // 3


def triangle_count_job(
    edges: Sequence[Edge],
    num_partitions: int = 20,
    stage_drop_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    scale_estimate: bool = True,
) -> Tuple[float, LocalRuntime]:
    """Run the multi-stage triangle count and return (estimate, runtime).

    ``stage_drop_ratio`` is applied independently at every shuffle stage, as
    in the paper's triangle-count experiment; the surviving partial count is
    scaled by the inverse of the product of the per-stage kept fractions (a
    triangle survives only if its data survives every stage).
    """
    runtime = LocalRuntime(drop_ratio=stage_drop_ratio, rng=rng)

    # Stage 1: canonical, deduplicated edge RDD.
    edge_rdd = (
        runtime.parallelize(list(edges), num_partitions)
        .map(_canonical)
        .filter(lambda e: e is not None)
        .map(lambda e: (e, 1))
        .reduce_by_key(lambda a, _b: a, num_partitions=num_partitions)
        .map(lambda kv: kv[0])
    )

    # Stage 2: adjacency lists (vertex RDD).
    adjacency_rdd = (
        edge_rdd.flat_map(lambda e: [(e[0], e[1]), (e[1], e[0])])
        .group_by_key(num_partitions=num_partitions)
    )

    # Stage 3: wedges — for every vertex, each neighbour pair is a candidate
    # closing edge; deduplicate identical candidates while keeping multiplicity.
    def _emit_wedges(kv: Tuple[int, List[int]]) -> Iterable[Tuple[Edge, int]]:
        _, neighbours = kv
        unique = sorted(set(neighbours))
        for i in range(len(unique)):
            for j in range(i + 1, len(unique)):
                yield ((unique[i], unique[j]), 1)

    wedge_rdd = adjacency_rdd.flat_map(_emit_wedges).reduce_by_key(
        lambda a, b: a + b, num_partitions=num_partitions
    )

    # Stage 4: join wedge candidates with the edge set.
    tagged_wedges = wedge_rdd.map(lambda kv: (kv[0], ("wedge", kv[1])))
    tagged_edges = edge_rdd.map(lambda e: (e, ("edge", 1)))
    joined = runtime.from_partitions(
        [
            tagged_wedges.collect(apply_drop=False, description="wedge-materialise"),
            tagged_edges.collect(apply_drop=False, description="edge-materialise"),
        ]
    ).group_by_key(num_partitions=num_partitions)

    # Stage 5: closed wedges are triangles (counted three times, once per vertex).
    def _closed(kv: Tuple[Edge, List[Tuple[str, int]]]) -> Iterable[Tuple[str, int]]:
        _, values = kv
        wedge_count = sum(v for tag, v in values if tag == "wedge")
        has_edge = any(tag == "edge" for tag, _ in values)
        if has_edge and wedge_count > 0:
            yield ("triangles", wedge_count)

    per_edge = joined.flat_map(_closed).reduce_by_key(
        lambda a, b: a + b, num_partitions=num_partitions
    )

    # Result stage: aggregate (never dropped, like GraphX's Result stage).
    totals = dict(per_edge.collect(apply_drop=False, description="result"))
    raw_count = totals.get("triangles", 0) / 3.0

    if scale_estimate and stage_drop_ratio > 0:
        shuffle_stages = [s for s in runtime.stages if s.total_tasks > 0 and s.description
                          in ("reduceByKey", "groupByKey")]
        kept_fraction = 1.0
        for stage in shuffle_stages:
            if stage.total_tasks > 0:
                kept_fraction *= stage.executed_tasks / stage.total_tasks
        if kept_fraction > 0:
            raw_count = raw_count / kept_fraction
    return raw_count, runtime


def triangle_count_error(
    edges: Sequence[Edge],
    stage_drop_ratio: float,
    num_partitions: int = 20,
    repetitions: int = 3,
    seed: int = 0,
) -> float:
    """Mean relative error (percent) of the approximate triangle count."""
    exact = exact_triangle_count(edges)
    if exact == 0:
        raise ValueError("the input graph contains no triangles")
    errors = []
    for rep in range(repetitions):
        rng = np.random.default_rng(seed * 7919 + rep)
        estimate, _ = triangle_count_job(
            edges,
            num_partitions=num_partitions,
            stage_drop_ratio=stage_drop_ratio,
            rng=rng,
        )
        errors.append(relative_error(estimate, exact))
    return 100.0 * sum(errors) / len(errors)


def triangle_count_accuracy_curve(
    edges: Sequence[Edge],
    stage_drop_ratios: Iterable[float],
    num_partitions: int = 20,
    repetitions: int = 3,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Measured (per-stage drop ratio, relative error %) points."""
    curve: List[Tuple[float, float]] = []
    for theta in stage_drop_ratios:
        if theta == 0:
            curve.append((0.0, 0.0))
            continue
        curve.append(
            (
                float(theta),
                triangle_count_error(
                    edges,
                    stage_drop_ratio=theta,
                    num_partitions=num_partitions,
                    repetitions=repetitions,
                    seed=seed,
                ),
            )
        )
    return curve
