"""A miniature MapReduce/Spark-style runtime with task dropping.

The paper's accuracy-loss numbers (Fig. 6) come from actually running the
analyses on real data with map tasks dropped.  This subpackage provides the
equivalent capability without Spark:

* :mod:`repro.mapreduce.rdd` — a small RDD abstraction (partitions, narrow
  transformations, shuffle-based wide transformations) executed by a
  :class:`~repro.mapreduce.rdd.LocalRuntime` whose stage scheduler implements
  the DiAS ``findMissingPartitions`` modification: a configurable fraction of
  each stage's partitions is dropped before execution.
* :mod:`repro.mapreduce.wordcount` — the text-analysis workload: per-topic
  word-frequency counting, plus the MAPE accuracy metric the paper reports.
* :mod:`repro.mapreduce.triangle_count` — the graph-analysis workload: a
  multi-stage MapReduce triangle count (GraphX-style), plus its relative
  error under per-stage dropping.
* :mod:`repro.mapreduce.sampling` — sampling-theory helpers (scaling
  estimators and error bounds) shared by the two workloads.
"""

from repro.mapreduce.rdd import RDD, LocalRuntime, StageStats
from repro.mapreduce.sampling import horvitz_thompson_scale, relative_error
from repro.mapreduce.triangle_count import (
    exact_triangle_count,
    triangle_count_error,
    triangle_count_job,
)
from repro.mapreduce.wordcount import (
    word_count_job,
    wordcount_mape,
    wordcount_accuracy_curve,
)

__all__ = [
    "RDD",
    "LocalRuntime",
    "StageStats",
    "horvitz_thompson_scale",
    "relative_error",
    "exact_triangle_count",
    "triangle_count_error",
    "triangle_count_job",
    "word_count_job",
    "wordcount_mape",
    "wordcount_accuracy_curve",
]
