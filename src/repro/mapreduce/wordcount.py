"""The text-analysis workload: word-frequency counting with task dropping.

The paper's text jobs parse StackExchange posts and count word frequencies per
topic; accuracy is the mean absolute percentage error of the estimated word
popularity under task dropping (Fig. 6).  Here the same computation runs on a
synthetic corpus through the mini-MapReduce runtime: documents are split into
RDD partitions (map tasks), tokenised and counted with a ``reduceByKey``
shuffle, with partitions dropped per the DiAS rule, and the surviving counts
scaled back by the kept fraction before comparing against the exact counts.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.mapreduce.rdd import LocalRuntime
from repro.mapreduce.sampling import (
    horvitz_thompson_scale,
    mean_absolute_percentage_error,
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+")


def tokenize(document: str) -> List[str]:
    """Lower-case alphanumeric tokenisation (the XML parsing analogue)."""
    return _TOKEN_PATTERN.findall(document.lower())


def word_count_job(
    documents: Sequence[str],
    num_partitions: int = 50,
    drop_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    scale_estimates: bool = True,
) -> Tuple[Dict[str, float], LocalRuntime]:
    """Run the word-count job and return (estimated counts, runtime).

    With ``drop_ratio > 0`` some map tasks are skipped; the surviving counts
    are scaled by the inverse of the *achieved* kept fraction so the estimate
    remains unbiased (``scale_estimates=False`` returns the raw counts).
    """
    runtime = LocalRuntime(drop_ratio=drop_ratio, rng=rng)
    rdd = (
        runtime.parallelize(documents, num_partitions)
        .flat_map(tokenize)
        .map(lambda word: (word, 1))
        .reduce_by_key(lambda a, b: a + b, num_partitions=num_partitions)
    )
    counts = dict(rdd.collect(apply_drop=False, description="collect"))
    if scale_estimates and drop_ratio > 0:
        executed = sum(s.executed_tasks for s in runtime.stages if s.description == "reduceByKey")
        total = sum(s.total_tasks for s in runtime.stages if s.description == "reduceByKey")
        kept_fraction = executed / total if total else 1.0
        if kept_fraction > 0:
            counts = {
                word: horvitz_thompson_scale(count, kept_fraction)
                for word, count in counts.items()
            }
    return counts, runtime


def exact_word_count(documents: Sequence[str], num_partitions: int = 50) -> Dict[str, float]:
    """Exact word counts (no dropping)."""
    counts, _ = word_count_job(documents, num_partitions=num_partitions, drop_ratio=0.0)
    return counts


def wordcount_mape(
    exact: Mapping[str, float],
    approximate: Mapping[str, float],
    top_n: int = 100,
) -> float:
    """MAPE (percent) of the approximate counts over the top-``n`` exact words.

    Evaluating on the most popular words mirrors the paper's "popularity of
    different words in different topics" target metric.
    """
    if not exact:
        raise ValueError("exact counts must not be empty")
    top_words = [w for w, _ in sorted(exact.items(), key=lambda kv: -kv[1])[:top_n]]
    return mean_absolute_percentage_error(approximate, exact, top_words)


def wordcount_accuracy_curve(
    documents: Sequence[str],
    drop_ratios: Iterable[float],
    num_partitions: int = 50,
    top_n: int = 100,
    repetitions: int = 3,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Measured (drop ratio, MAPE %) points — the data behind Fig. 6.

    Each drop ratio is evaluated ``repetitions`` times with different random
    task selections and the errors averaged.
    """
    exact = exact_word_count(documents, num_partitions=num_partitions)
    curve: List[Tuple[float, float]] = []
    for theta in drop_ratios:
        if theta == 0:
            curve.append((0.0, 0.0))
            continue
        errors = []
        for rep in range(repetitions):
            rng = np.random.default_rng(seed * 1000 + rep + int(theta * 100))
            approx, _ = word_count_job(
                documents,
                num_partitions=num_partitions,
                drop_ratio=theta,
                rng=rng,
            )
            errors.append(wordcount_mape(exact, approx, top_n=top_n))
        curve.append((float(theta), sum(errors) / len(errors)))
    return curve
