"""Command-line interface for the DiAS reproduction.

Usage (after ``pip install -e .``)::

    python -m repro list                       # list available experiments
    python -m repro figure 7                   # regenerate Figure 7
    python -m repro figure 8 --variant low_load
    python -m repro figure 11 --budget unlimited
    python -m repro table 2
    python -m repro compare --scenario reference --policies P NP "DA(0/20)"
    python -m repro compare --replications 8 --jobs 4   # CI table, 4 workers
    python -m repro sweep --scenario reference --ratios 0 0.1 0.2 0.4 --jobs 4
    python -m repro fleet --clusters 4 --router jsq --scenario three-priority
    python -m repro dag --scenario layered --scheduler critical_path_first
    python -m repro fleet --telemetry run.jsonl --telemetry-interval 1.0
    python -m repro inspect run.jsonl           # summaries + ASCII plots
    python -m repro fleet --trace out.json      # record per-job lifecycle spans
    python -m repro trace out.json --focus-job 7   # waterfall + attribution
    python -m repro fleet --faults "crash:mttf=2000;stragglers:p=0.05"
    python -m repro fleet --checkpoint run.ckpt --checkpoint-every 500
    python -m repro fleet --resume run.ckpt     # bitwise-identical continuation
    python -m repro chaos --faults "crash:mttf=1000" --levels 0 1 2
    python -m repro synth-trace --out t.jsonl --num-jobs 100000   # write a trace
    python -m repro synth-trace --out t.jsonl --mix google --mix-classes 3
    python -m repro fleet --replay t.jsonl      # stream the trace through a fleet
    python -m repro dag --replay dags.jsonl --scheduler critical_path_first

``--num-jobs`` controls the number of *simulated* jobs per trace; ``--jobs N``
fans independent work units (replications, sweep points, policy runs) across
``N`` worker processes with results bitwise-identical to a serial run;
``--replications R`` replicates the experiment over independent seeds and
reports Student-t confidence intervals.

Every command prints the same rows the corresponding paper artefact reports
and returns a non-zero exit code on invalid arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.policies import SchedulingPolicy
from repro.dag.schedulers import STAGE_SCHEDULERS
from repro.dag.simulation import DagSimulation
from repro.dag.simulation import replicate_dag
from repro.experiments import figures, tables
from repro.experiments.harness import run_policies
from repro.experiments.parallel import (
    PolicyComparisonExperiment,
    RowSweepExperiment,
    interval_rows,
    merge_replication_parts,
    replicate_rows,
)
from repro.experiments.reporting import format_comparison, format_figure, format_rows
from repro.experiments.sweeps import drop_ratio_sweep, load_sweep
from repro.engine.cluster import ClusterCapacityError
from repro.env import (
    AGENTS,
    ENV_IDS,
    Agent,
    BuiltinAgent,
    EnvSpec,
    SchedulerAgent,
    evaluate,
    load_agent,
    make_agent,
    save_agent,
    train,
)
from repro.env.learn import DAG_ENV_SCENARIOS, FLEET_ENV_SCENARIOS, summarise
from repro.faults import load_checkpoint, parse_fault_spec
from repro.faults.chaos import fleet_from_config, run_chaos
from repro.faults.spec import FAULT_KINDS
from repro.fleet.simulation import replicate_fleet
from repro.simulation.replication import ReplicationRunner
from repro.fleet.budget import BUDGET_MODES
from repro.fleet.dispatcher import ROUTERS
from repro.fleet.simulation import FleetSimulation
from repro.telemetry import JsonLinesSink, NULL_HUB, TelemetryHub
from repro.traces import (
    CLUSTER_JSONL,
    DAG_JSONL,
    DEFAULT_WAVE_WIDTH,
    TRACE_FORMATS,
    TraceHistogram,
    synthesize_trace,
)
from repro.traces.replay import ReplaySource
from repro.traces.synth import compact_profiles
from repro.workloads import scenarios as scenario_module
from repro.workloads.traces import google_mix_scenario
from repro.workloads.scenarios import (
    DagScenario,
    FleetScenario,
    HIGH,
    LOW,
    Scenario,
)

#: Named scenarios the CLI can build.
SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "reference": scenario_module.reference_two_priority_scenario,
    "equal-sizes": scenario_module.equal_job_sizes_scenario,
    "more-high-priority": scenario_module.more_high_priority_scenario,
    "low-load": scenario_module.low_load_scenario,
    "three-priority": scenario_module.three_priority_scenario,
    "triangle-count": scenario_module.triangle_count_scenario,
    "validation": scenario_module.validation_datasets_scenario,
}

#: Fleet scenarios the ``fleet`` subcommand can build.
FLEET_SCENARIOS: Dict[str, Callable[..., FleetScenario]] = {
    "two-priority": scenario_module.fleet_two_priority_scenario,
    "three-priority": scenario_module.fleet_three_priority_scenario,
}

#: DAG scenarios the ``dag`` subcommand can build.
DAG_SCENARIOS: Dict[str, Callable[..., DagScenario]] = {
    "layered": scenario_module.dag_layered_scenario,
    "fork-join": scenario_module.dag_fork_join_scenario,
    "triangle-count": scenario_module.dag_triangle_count_scenario,
}


def _check_choice(kind: str, value: str, valid: Sequence[str]) -> str:
    """Validate a CLI name against ``valid``; raise with the full choice list.

    The raised :class:`ValueError` is caught by :func:`main`, which prints the
    message and exits non-zero — no raw traceback for a typo'd router or
    stage-scheduler name.
    """
    if value in valid:
        return value
    raise ValueError(
        f"unknown {kind} {value!r}; valid choices: {', '.join(valid)}"
    )

#: Figures the CLI can regenerate (Fig. 8 and 11 take extra options).
FIGURES = ("4", "5", "6", "7", "8", "9", "10", "11")


def _positive_int(text: str) -> int:
    """argparse type for flags that must be an integer >= 1 (e.g. ``--jobs``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer >= 1, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` (worker processes) and ``--replications`` (independent seeds)."""
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for independent work units "
                             "(results are bitwise-identical to --jobs 1)")
    parser.add_argument("--replications", type=_positive_int, default=1, metavar="R",
                        help="replicate over R independent seeds and report "
                             "Student-t confidence intervals")


def _positive_float(text: str) -> float:
    """argparse type for flags that must be a float > 0 (e.g. ``--telemetry-interval``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number > 0, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """``--telemetry PATH`` (JSONL stream) and ``--telemetry-interval T``."""
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="stream run telemetry to a JSON-lines file "
                             "(inspect it with: repro inspect PATH)")
    parser.add_argument("--telemetry-interval", type=_positive_float, default=5.0,
                        metavar="T",
                        help="periodic-sample spacing in simulated seconds "
                             "(default: 5.0)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record per-job lifecycle spans and export them "
                             "as Chrome-trace/Perfetto JSON to PATH (render "
                             "with: repro trace PATH)")


def _add_replay_flags(parser: argparse.ArgumentParser, mode: str) -> None:
    """``--replay FILE`` plus its time/rate scaling knobs."""
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help=f"stream a trace file through the {mode} "
                             "simulation instead of a synthetic scenario "
                             "(formats: " + ", ".join(TRACE_FORMATS) + "; "
                             "write one with: repro synth-trace; --jobs N "
                             "parallelises the trace parsing with "
                             "byte-identical output)")
    parser.add_argument("--replay-time-scale", type=_positive_float, default=1.0,
                        metavar="S",
                        help="time compression: divide arrival times AND task "
                             "durations by S (same offered load, S x faster)")
    parser.add_argument("--replay-rate-scale", type=_positive_float, default=1.0,
                        metavar="S",
                        help="arrival-rate scaling: divide only arrival times "
                             "by S (S=1.25 offers 25%% more load)")


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """``--faults SPEC`` — deterministic fault injection for this run."""
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject faults, e.g. "
                             "'crash:mttf=2000,repair=60;stragglers:p=0.05,"
                             "slowdown=4;taskfail:p=0.01,retries=3' "
                             f"(kinds: {', '.join(FAULT_KINDS)})")


def _add_env_flags(parser: argparse.ArgumentParser) -> None:
    """Flags describing a decision environment (shared by ``learn``/``policy``)."""
    parser.add_argument("--env", required=True, choices=list(ENV_IDS),
                        help="decision environment: 'scheduling' picks the "
                             "next DAG stage, 'routing' picks the target "
                             "cluster")
    parser.add_argument("--scenario", default=None,
                        help="workload scenario (scheduling: "
                             + ", ".join(sorted(DAG_ENV_SCENARIOS))
                             + "; routing: "
                             + ", ".join(sorted(FLEET_ENV_SCENARIOS))
                             + "; mutually exclusive with --replay)")
    parser.add_argument("--policy", type=_parse_policy, default=None,
                        help="scheduling policy of the simulated cluster(s) "
                             "(default: DA with 20%% low-priority dropping)")
    parser.add_argument("--num-jobs", type=_positive_int, default=None,
                        metavar="N",
                        help="cap each episode at the first N jobs of the "
                             "trace")
    parser.add_argument("--clusters", type=_positive_int, default=None,
                        help="fleet size for --env routing "
                             "(default: the scenario's)")
    parser.add_argument("--scheduler", default="fifo",
                        help="stage scheduler driving the scheduling env's "
                             "'builtin' agent "
                             f"({', '.join(STAGE_SCHEDULERS)})")
    parser.add_argument("--router", default="round_robin",
                        help="dispatcher driving the routing env's 'builtin' "
                             f"agent ({', '.join(ROUTERS)})")
    parser.add_argument("--power-of-d", type=_positive_int, default=None,
                        help="probe only d random clusters per decision (jsq)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of the training/rollout episode "
                             "stream")
    _add_replay_flags(parser, "decision-env")


def _check_telemetry_path(path: Optional[str]) -> Optional[str]:
    """Fail fast — and with a clear message — on an unwritable telemetry path.

    The probe writers run deep inside (possibly worker-process) simulations;
    surfacing a bad path only after minutes of simulation would be hostile.
    The empty probe file created here is overwritten by the real stream.
    """
    if path is None:
        return None
    try:
        with open(path, "w", encoding="utf-8"):
            pass
    except OSError as error:
        raise ValueError(f"cannot write telemetry file {path!r}: {error}")
    return path


def _telemetry_kwargs(args: argparse.Namespace) -> dict:
    """Keyword arguments threading ``--telemetry`` into the experiment layers."""
    return {
        "telemetry_base": _check_telemetry_path(args.telemetry),
        "telemetry_interval": args.telemetry_interval,
    }


def _check_trace_flag(args: argparse.Namespace) -> Optional[str]:
    """Validate ``--trace``: writable path, single run only (no replications)."""
    trace = getattr(args, "trace", None)
    if trace is None:
        return None
    if getattr(args, "replications", 1) > 1:
        raise ValueError(
            "--trace needs a single run; it cannot be combined with "
            "--replications"
        )
    return _check_telemetry_path(trace)


def _single_run_hub(args: argparse.Namespace):
    """Hub for a single in-process run, plus the span-export bookkeeping.

    Returns ``(hub, events_path, events_are_temporary)``: the hub streams
    events to ``events_path`` (the ``--telemetry`` file, or a scratch file
    next to the ``--trace`` output when only tracing was requested — removed
    again after the Chrome-trace export).  With neither flag the disabled
    null hub is returned.
    """
    path = _check_telemetry_path(args.telemetry)
    trace = _check_trace_flag(args)
    if path is None and trace is None:
        return NULL_HUB, None, False
    events_path = path if path is not None else trace + ".events.jsonl"
    # Periodic sampling stays opt-in via --telemetry; a pure --trace run
    # records spans (and the other probe events) but no samples.
    interval = args.telemetry_interval if path is not None else None
    hub = TelemetryHub(sample_interval=interval, tracing=trace is not None)
    hub.add_sink(JsonLinesSink(events_path))
    return hub, events_path, path is None


def _export_trace(args: argparse.Namespace, events_path: Optional[str],
                  events_are_temporary: bool) -> Optional[str]:
    """Export the recorded spans to ``--trace`` as Chrome-trace JSON."""
    import os

    from repro.telemetry.tracing import read_spans, write_chrome_trace

    trace = getattr(args, "trace", None)
    if trace is None or events_path is None:
        return None
    spans = read_spans(events_path)
    count = write_chrome_trace(trace, spans)
    if events_are_temporary:
        os.remove(events_path)
    return (
        f"Trace: {count} spans -> {trace} "
        "(render: repro trace; load: ui.perfetto.dev or chrome://tracing)"
    )


def _parse_quantiles(text: str) -> tuple:
    """Parse ``--quantiles`` (comma-separated fractions strictly in (0, 1))."""
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated fractions like 0.5,0.9,0.999, got {text!r}"
        )
    if not values or any(not 0.0 < q < 1.0 for q in values):
        raise argparse.ArgumentTypeError(
            f"quantiles must be fractions strictly between 0 and 1, got {text!r}"
        )
    return values


def _parse_policy(name: str) -> SchedulingPolicy:
    """Parse a policy name like ``P``, ``NP``, ``DA(0/20)`` or ``DA(0/10/20)``."""
    cleaned = name.strip()
    if cleaned.upper() == "P":
        return SchedulingPolicy.preemptive_priority()
    if cleaned.upper() == "NP":
        return SchedulingPolicy.non_preemptive_priority()
    upper = cleaned.upper()
    if upper.startswith("DA(") and cleaned.endswith(")"):
        body = cleaned[cleaned.index("(") + 1 : -1]
        percents = [float(part) for part in body.split("/") if part != ""]
        ratios = [p / 100.0 for p in percents]
        priorities = list(range(len(ratios) - 1, -1, -1))
        return SchedulingPolicy.differential_approximation(dict(zip(priorities, ratios)))
    raise argparse.ArgumentTypeError(
        f"unknown policy {name!r}; expected P, NP or DA(<pct>/<pct>[/<pct>])"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DiAS (Middleware 2019) evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available figures, tables and scenarios")

    figure_parser = subparsers.add_parser("figure", help="regenerate one figure")
    figure_parser.add_argument("number", choices=FIGURES)
    figure_parser.add_argument("--num-jobs", type=int, default=None,
                               help="override the number of simulated jobs per run")
    figure_parser.add_argument("--seed", type=int, default=0)
    figure_parser.add_argument("--variant", default="equal_sizes",
                               choices=["equal_sizes", "more_high_priority", "low_load"],
                               help="Fig. 8 variant")
    figure_parser.add_argument("--budget", default="limited",
                               choices=["limited", "unlimited"], help="Fig. 11 budget")

    table_parser = subparsers.add_parser("table", help="regenerate one table")
    table_parser.add_argument("number", choices=["2"])
    table_parser.add_argument("--num-jobs", type=int, default=300)
    table_parser.add_argument("--seed", type=int, default=0)

    compare_parser = subparsers.add_parser("compare", help="compare policies on a scenario")
    compare_parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="reference")
    compare_parser.add_argument("--policies", nargs="+", default=["P", "NP", "DA(0/20)"])
    compare_parser.add_argument("--num-jobs", type=int, default=400,
                                help="simulated jobs per trace")
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument("--quantiles", type=_parse_quantiles, default=None,
                                metavar="Q,Q,...",
                                help="extra response-time quantiles tracked by "
                                     "streaming (P²) estimators, e.g. "
                                     "0.9,0.999 (single-run mode only)")
    _add_parallel_flags(compare_parser)
    _add_telemetry_flags(compare_parser)
    _add_fault_flags(compare_parser)

    sweep_parser = subparsers.add_parser("sweep", help="sweep the low-priority drop ratio")
    sweep_parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="reference")
    sweep_parser.add_argument("--ratios", nargs="+", type=float,
                              default=[0.0, 0.1, 0.2, 0.4])
    sweep_parser.add_argument("--num-jobs", type=int, default=300,
                              help="simulated jobs per trace")
    sweep_parser.add_argument("--seed", type=int, default=0)
    _add_parallel_flags(sweep_parser)
    _add_telemetry_flags(sweep_parser)

    load_parser = subparsers.add_parser("load-sweep", help="sweep the system load")
    load_parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="reference")
    load_parser.add_argument("--utilisations", nargs="+", type=float,
                             default=[0.5, 0.65, 0.8])
    load_parser.add_argument("--num-jobs", type=int, default=300,
                             help="simulated jobs per trace")
    load_parser.add_argument("--seed", type=int, default=0)
    _add_parallel_flags(load_parser)

    fleet_parser = subparsers.add_parser(
        "fleet", help="run a multi-cluster fleet behind a routing dispatcher"
    )
    fleet_parser.add_argument("--clusters", type=int, default=4,
                              help="number of DiAS clusters in the fleet")
    fleet_parser.add_argument("--router", default="jsq",
                              help="routing policy of the fleet dispatcher "
                                   f"({', '.join(ROUTERS)})")
    fleet_parser.add_argument("--power-of-d", type=int, default=None,
                              help="probe only d random clusters per decision (jsq)")
    fleet_parser.add_argument("--scenario", choices=sorted(FLEET_SCENARIOS),
                              default=None,
                              help="named fleet scenario (default: two-priority; "
                                   "mutually exclusive with --replay)")
    fleet_parser.add_argument("--policy", type=_parse_policy, default=None,
                              help="per-cluster scheduling policy "
                                   "(default: DA with 20%% low-priority dropping)")
    fleet_parser.add_argument("--num-jobs", type=int, default=None,
                              help="jobs per cluster (default: 200; fleet trace "
                                   "is clusters x num-jobs)")
    _add_replay_flags(fleet_parser, "fleet")
    fleet_parser.add_argument("--budget", choices=BUDGET_MODES, default="per-cluster",
                              help="sprint-budget arbitration across the fleet")
    fleet_parser.add_argument("--utilisation", type=_positive_float, default=None,
                              metavar="U",
                              help="rescale per-cluster offered load to U "
                                   "(default: the scenario's own, ~0.8; "
                                   "checkpoints need the quiescent points a "
                                   "lower load creates)")
    fleet_parser.add_argument("--seed", type=int, default=0)
    fleet_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                              help="snapshot the run to PATH at quiescent "
                                   "points (resume with --resume PATH)")
    fleet_parser.add_argument("--checkpoint-every", type=_positive_float,
                              default=None, metavar="T",
                              help="simulated seconds between checkpoint marks "
                                   "(default: 500 when --checkpoint is given)")
    fleet_parser.add_argument("--resume", default=None, metavar="PATH",
                              help="resume a run from a checkpoint file; the "
                                   "continuation is bitwise-identical to the "
                                   "uninterrupted run")
    fleet_parser.add_argument("--until", type=_positive_float, default=None,
                              metavar="T",
                              help="stop the simulation at simulated time T "
                                   "(with --checkpoint: a deterministic "
                                   "interruption to --resume from)")
    _add_parallel_flags(fleet_parser)
    _add_telemetry_flags(fleet_parser)
    _add_fault_flags(fleet_parser)

    chaos_parser = subparsers.add_parser(
        "chaos", help="fault-intensity ablation: the same fleet run at "
                      "scaled fault levels, with deltas vs the fault-free "
                      "baseline"
    )
    chaos_parser.add_argument("--scenario", choices=sorted(FLEET_SCENARIOS),
                              default="two-priority")
    chaos_parser.add_argument("--clusters", type=int, default=4,
                              help="number of DiAS clusters in the fleet")
    chaos_parser.add_argument("--router", default="round_robin",
                              help="routing policy of the fleet dispatcher "
                                   f"({', '.join(ROUTERS)})")
    chaos_parser.add_argument("--power-of-d", type=int, default=None,
                              help="probe only d random clusters per decision (jsq)")
    chaos_parser.add_argument("--policy", type=_parse_policy, default=None,
                              help="per-cluster scheduling policy "
                                   "(default: DA with 20%% low-priority dropping)")
    chaos_parser.add_argument("--num-jobs", type=int, default=100,
                              help="jobs per cluster (fleet trace is clusters x num-jobs)")
    chaos_parser.add_argument("--budget", choices=BUDGET_MODES, default="per-cluster",
                              help="sprint-budget arbitration across the fleet")
    chaos_parser.add_argument("--utilisation", type=_positive_float, default=None,
                              metavar="U",
                              help="rescale per-cluster offered load to U")
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument("--levels", nargs="+", type=float,
                              default=[0.0, 0.5, 1.0, 2.0],
                              help="fault-intensity multipliers applied to the "
                                   "base --faults spec (0 = fault-free baseline)")
    chaos_parser.add_argument("--faults", required=True, metavar="SPEC",
                              help="base fault spec scaled by each level, e.g. "
                                   "'crash:mttf=2000;stragglers:p=0.05' "
                                   f"(kinds: {', '.join(FAULT_KINDS)})")
    chaos_parser.add_argument("--trace", default=None, metavar="PATH",
                              help="record spans of the highest-level run and "
                                   "export Chrome-trace JSON to PATH")
    chaos_parser.add_argument("--telemetry", default=None, metavar="PATH",
                              help=argparse.SUPPRESS)
    chaos_parser.add_argument("--telemetry-interval", type=_positive_float,
                              default=5.0, help=argparse.SUPPRESS)

    dag_parser = subparsers.add_parser(
        "dag", help="run stage-DAG jobs under a pluggable stage scheduler"
    )
    dag_parser.add_argument("--scenario", choices=sorted(DAG_SCENARIOS),
                            default=None,
                            help="named DAG scenario (default: layered; "
                                 "mutually exclusive with --replay)")
    dag_parser.add_argument("--scheduler", default="critical_path_first",
                            help="stage scheduler "
                                 f"({', '.join(STAGE_SCHEDULERS)})")
    dag_parser.add_argument("--policy", type=_parse_policy, default=None,
                            help="scheduling policy "
                                 "(default: DA with 20%% low-priority dropping)")
    dag_parser.add_argument("--slack-biased", action="store_true",
                            help="bias task dropping toward off-critical-path "
                                 "stages using per-stage slack")
    dag_parser.add_argument("--num-jobs", type=int, default=None,
                            help="simulated DAG jobs per trace (default: 150)")
    dag_parser.add_argument("--seed", type=int, default=0)
    _add_replay_flags(dag_parser, "dag")
    _add_parallel_flags(dag_parser)
    _add_telemetry_flags(dag_parser)
    _add_fault_flags(dag_parser)

    learn_parser = subparsers.add_parser(
        "learn",
        help="train a contextual-bandit policy in a decision env and "
             "evaluate it against heuristic baselines under CRN",
    )
    _add_env_flags(learn_parser)
    learn_parser.add_argument("--agent", default="epsilon_greedy",
                              choices=["epsilon_greedy", "linucb"],
                              help="learned agent to train "
                                   "(default: epsilon_greedy)")
    learn_parser.add_argument("--episodes", type=_positive_int, default=20,
                              help="training episodes (default: 20)")
    learn_parser.add_argument("--eval-episodes", type=_positive_int, default=5,
                              help="CRN evaluation episodes per policy "
                                   "(default: 5)")
    learn_parser.add_argument("--eval-seed", type=int, default=1000,
                              help="base seed of the evaluation episode "
                                   "stream (disjoint from training; "
                                   "default: 1000)")
    learn_parser.add_argument("--epsilon", type=float, default=0.2,
                              help="epsilon-greedy exploration rate "
                                   "(default: 0.2)")
    learn_parser.add_argument("--learning-rate", type=float, default=0.05,
                              help="epsilon-greedy SGD step size "
                                   "(default: 0.05)")
    learn_parser.add_argument("--alpha", type=float, default=1.0,
                              help="LinUCB exploration bonus (default: 1.0)")
    learn_parser.add_argument("--baseline", action="append", default=None,
                              metavar="NAME",
                              help="heuristic baseline evaluated under the "
                                   "same seeds (stage scheduler for "
                                   "--env scheduling, router for --env "
                                   "routing; repeatable; defaults: "
                                   "fifo+critical_path_first / random+jsq)")
    learn_parser.add_argument("--save", default=None, metavar="PATH",
                              help="write the trained agent as JSON "
                                   "(replay it with: repro policy --load)")
    learn_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write training history + evaluation "
                                   "rows as machine-readable JSON")
    learn_parser.add_argument("--jobs", type=_positive_int, default=1,
                              metavar="N",
                              help="worker processes for evaluation episodes "
                                   "(byte-identical to --jobs 1)")

    policy_parser = subparsers.add_parser(
        "policy",
        help="roll a saved or scripted policy through a decision env",
    )
    _add_env_flags(policy_parser)
    source = policy_parser.add_mutually_exclusive_group()
    source.add_argument("--agent", default="builtin",
                        help="scripted agent: " + ", ".join(AGENTS)
                             + ", or scheduler:<"
                             + "|".join(STAGE_SCHEDULERS) + ">")
    source.add_argument("--load", default=None, metavar="PATH",
                        help="load an agent saved by: repro learn --save")
    policy_parser.add_argument("--episodes", type=_positive_int, default=5,
                               help="CRN rollout episodes (default: 5)")
    policy_parser.add_argument("--out", default=None, metavar="PATH",
                               help="write per-episode rows as JSON")
    policy_parser.add_argument("--jobs", type=_positive_int, default=1,
                               metavar="N",
                               help="worker processes for episodes "
                                    "(byte-identical to --jobs 1)")

    synth_parser = subparsers.add_parser(
        "synth-trace", help="synthesize a deterministic trace file to replay "
                            "with 'repro fleet/dag --replay'"
    )
    synth_parser.add_argument("--out", required=True, metavar="PATH",
                              help="trace file to write")
    synth_parser.add_argument("--format", default=CLUSTER_JSONL,
                              help="trace format "
                                   f"({', '.join(TRACE_FORMATS)}; default: "
                                   f"{CLUSTER_JSONL})")
    synth_parser.add_argument("--scenario", default=None,
                              help="workload scenario (cluster formats: "
                                   + ", ".join(sorted(SCENARIOS))
                                   + ", default reference; dag-jsonl: "
                                   + ", ".join(sorted(DAG_SCENARIOS))
                                   + ", default layered)")
    synth_parser.add_argument("--mix", default=None, choices=["google"],
                              help="use the Google 12-level priority mix "
                                   "collapsed onto --mix-classes dominant "
                                   "classes instead of --scenario")
    synth_parser.add_argument("--mix-classes", type=int, default=3,
                              choices=[2, 3],
                              help="dominant classes the Google mix collapses "
                                   "onto (default: 3)")
    synth_parser.add_argument("--clusters", type=_positive_int, default=None,
                              metavar="N",
                              help="scale arrival rates for a fleet of N "
                                   "clusters (cluster formats only)")
    synth_parser.add_argument("--tasks-per-job", type=_positive_int, default=None,
                              metavar="T",
                              help="shrink jobs to T map tasks (recalibrated "
                                   "load; keeps million-job traces cheap)")
    synth_parser.add_argument("--num-jobs", type=_positive_int, default=1000,
                              help="trace length in jobs (default: 1000)")
    synth_parser.add_argument("--wave-width", type=_positive_int,
                              default=DEFAULT_WAVE_WIDTH,
                              help="dag-jsonl first-wave width (default: "
                                   f"{DEFAULT_WAVE_WIDTH})")
    synth_parser.add_argument("--seed", type=int, default=0)

    trace_parser = subparsers.add_parser(
        "trace", help="render a span trace: waterfall, latency attribution, "
                      "observed-vs-predicted critical paths"
    )
    trace_parser.add_argument("path", help="Chrome-trace JSON written by --trace, "
                                           "or a span-carrying telemetry JSONL file")
    trace_parser.add_argument("--focus-job", type=int, default=None, metavar="ID",
                              help="render the waterfall for this job "
                                   "(default: the slowest traced job)")
    trace_parser.add_argument("--validate", action="store_true",
                              help="only validate the file as a Chrome-trace "
                                   "document, print no report")
    trace_parser.add_argument("--width", type=_positive_int, default=100,
                              help="waterfall width in character columns")

    inspect_parser = subparsers.add_parser(
        "inspect", help="summarise and plot a telemetry JSON-lines file"
    )
    inspect_parser.add_argument("path", help="telemetry JSONL file written by "
                                             "--telemetry")
    inspect_parser.add_argument("--validate", action="store_true",
                                help="only validate every line against the "
                                     "event schema, print no report")
    inspect_parser.add_argument("--width", type=_positive_int, default=60,
                                help="plot width in character columns")
    inspect_parser.add_argument("--height", type=_positive_int, default=10,
                                help="plot height in character rows")
    return parser


def _run_figure(args: argparse.Namespace) -> str:
    number = args.number
    jobs = args.num_jobs
    if number == "4":
        result = figures.figure4_processing_time_validation(
            num_jobs=jobs or 25, seed=args.seed
        )
        return format_figure(result, "Figure 4")
    if number == "5":
        result = figures.figure5_response_time_validation(
            num_jobs=jobs or 300, seed=args.seed
        )
        return format_figure(result, "Figure 5")
    if number == "6":
        result = figures.figure6_accuracy_loss(seed=args.seed)
        return format_figure(result, "Figure 6")
    if number == "7":
        comparison = figures.figure7_two_priority_reference(
            num_jobs=jobs or 400, seed=args.seed
        )
        return format_comparison(comparison, "Figure 7")
    if number == "8":
        comparison = figures.figure8_sensitivity(
            args.variant, num_jobs=jobs or 400, seed=args.seed
        )
        return format_comparison(comparison, f"Figure 8 ({args.variant})")
    if number == "9":
        comparison = figures.figure9_three_priority(num_jobs=jobs or 500, seed=args.seed)
        return format_comparison(comparison, "Figure 9")
    if number == "10":
        comparison = figures.figure10_triangle_count(num_jobs=jobs or 300, seed=args.seed)
        return format_comparison(comparison, "Figure 10")
    if number == "11":
        comparison = figures.figure11_dias_sprinting(
            budget=args.budget, num_jobs=jobs or 300, seed=args.seed
        )
        energy = figures.figure11_energy_comparison(num_jobs=jobs or 300, seed=args.seed)
        return "\n\n".join(
            [
                format_comparison(comparison, f"Figure 11 ({args.budget} sprinting)"),
                "Figure 11c — energy\n" + format_rows(energy["rows"]),
            ]
        )
    raise ValueError(f"unknown figure {number!r}")


def _run_list() -> str:
    lines = ["figures: " + ", ".join(FIGURES)]
    lines.append("tables: 2")
    lines.append("scenarios: " + ", ".join(sorted(SCENARIOS)))
    lines.append("fleet scenarios: " + ", ".join(sorted(FLEET_SCENARIOS)))
    lines.append("fleet routers: " + ", ".join(ROUTERS))
    lines.append("dag scenarios: " + ", ".join(sorted(DAG_SCENARIOS)))
    lines.append("dag stage schedulers: " + ", ".join(STAGE_SCHEDULERS))
    lines.append("policies: P, NP, DA(<pct>/<pct>[/<pct>]) e.g. DA(0/20)")
    lines.append("decision envs (learn, policy): " + ", ".join(ENV_IDS))
    lines.append("decision agents (policy --agent): " + ", ".join(AGENTS)
                 + ", scheduler:<stage scheduler>")
    lines.append("learnable agents (learn --agent): epsilon_greedy, linucb")
    lines.append("fault kinds (--faults): " + ", ".join(FAULT_KINDS)
                 + "  e.g. 'crash:mttf=2000,repair=60;stragglers:p=0.05'")
    lines.append("trace formats (synth-trace, --replay): " + ", ".join(TRACE_FORMATS)
                 + "  e.g. repro synth-trace --out t.jsonl; repro fleet --replay t.jsonl")
    return "\n".join(lines)


def _quantile_rows(comparison, quantiles: Sequence[float]) -> List[dict]:
    """Per-(policy, priority) rows of the extra streaming quantiles."""
    rows: List[dict] = []
    for name, result in comparison.results.items():
        for priority in comparison.priorities:
            row = {"policy": name, "priority": priority}
            for q in quantiles:
                row[f"p{100 * q:g}_response_s"] = result.tail_response_time(
                    priority, q=100.0 * q
                )
            rows.append(row)
    return rows


def _default_fleet_policy(scenario: FleetScenario) -> SchedulingPolicy:
    """DA with graduated dropping: 0% for the highest class up to 20% lowest."""
    priorities = scenario.priorities  # highest first
    if len(priorities) == 1:
        ratios = {priorities[0]: 0.0}
    else:
        step = 0.2 / (len(priorities) - 1)
        ratios = {p: round(i * step, 3) for i, p in enumerate(priorities)}
    return SchedulingPolicy.differential_approximation(ratios)


def _fleet_scenario(args: argparse.Namespace) -> FleetScenario:
    """Build the fleet scenario, applying the optional ``--utilisation``."""
    scenario = FLEET_SCENARIOS[args.scenario](
        num_clusters=args.clusters, num_jobs_per_cluster=args.num_jobs
    )
    utilisation = getattr(args, "utilisation", None)
    if utilisation is None:
        return scenario
    if utilisation >= 1.0:
        raise ValueError(
            f"--utilisation must be strictly below 1, got {utilisation!r}"
        )
    return FleetScenario(
        base=scenario.base.with_utilisation(utilisation),
        num_clusters=args.clusters,
        name=f"{scenario.name}-u{utilisation:g}",
        description=scenario.description,
    )


def _fleet_report(title: str, result, simulation: FleetSimulation) -> List[str]:
    """The standard single-run fleet report: latency, load, summary, faults."""
    summary_rows = [{"metric": key, "value": value} for key, value in result.summary().items()]
    lines = [
        title,
        "=" * len(title),
        "",
        "Per-class latency (fleet-wide)",
        format_rows(result.class_rows()),
        "",
        "Per-cluster load",
        format_rows(result.cluster_rows()),
        "",
        "Summary",
        format_rows(summary_rows),
    ]
    counters = simulation.fault_counters()
    if counters:
        lines += [
            "",
            "Faults & recovery",
            format_rows(
                [{"counter": name, "count": float(value)}
                 for name, value in counters.items()]
            ),
        ]
    return lines


def _resume_fleet(args: argparse.Namespace) -> str:
    """Continue an interrupted ``repro fleet`` run from its checkpoint file."""
    if args.replications > 1:
        raise ValueError(
            "--resume continues one interrupted run; it cannot be combined "
            "with --replications"
        )
    if args.trace is not None or args.telemetry is not None:
        raise ValueError(
            "--resume cannot record --trace/--telemetry: events from before "
            "the snapshot are not replayed, so the stream would be partial"
        )
    import pickle

    try:
        payload = load_checkpoint(args.resume)
    except (OSError, pickle.PickleError) as error:
        raise ValueError(f"cannot read checkpoint {args.resume!r}: {error}")
    config = payload.get("config")
    if config is None:
        raise ValueError(
            f"checkpoint {args.resume!r} carries no embedded run "
            "configuration; it was written through the API, not the CLI — "
            "rebuild the simulation in code and call restore()"
        )
    simulation = fleet_from_config(config)
    simulation.restore(payload)
    result = simulation.run()
    scenario_name = config.get("scenario_name", "fleet")
    title = (
        f"Fleet: {scenario_name}  router={result.dispatcher_name}  "
        f"policy={simulation.policy.name}  budget={config['sprint_budget']}  "
        f"(resumed from t={payload['time']:.1f}s)"
    )
    return "\n".join(_fleet_report(title, result, simulation))


def _replay_policy(shares: Dict[int, float]) -> SchedulingPolicy:
    """Default replay policy: graduated DA over the trace's declared classes.

    Headerless traces declare no classes; they fall back to 20 % dropping on
    priority 0 (unknown priorities drop nothing — ``map_drop_ratio`` defaults
    absent classes to 0.0).
    """
    priorities = sorted(shares, reverse=True)
    if not priorities:
        return SchedulingPolicy.differential_approximation({0: 0.2})
    if len(priorities) == 1:
        ratios = {priorities[0]: 0.0}
    else:
        step = 0.2 / (len(priorities) - 1)
        ratios = {p: round(i * step, 3) for i, p in enumerate(priorities)}
    return SchedulingPolicy.differential_approximation(ratios)


def _check_replay_conflicts(args: argparse.Namespace, flags: Sequence[tuple]) -> None:
    """Reject flags that contradict driving the run from a trace file."""
    for flag, value in flags:
        if value is not None:
            raise ValueError(
                f"--replay drives the run from the trace file; {flag} "
                "conflicts with it"
            )
    if args.replications > 1:
        raise ValueError(
            "--replay replays one recorded trace; it cannot be combined "
            "with --replications"
        )


def _run_fleet_replay(args: argparse.Namespace) -> str:
    """Stream a cluster trace file through the fleet (constant memory)."""
    _check_replay_conflicts(args, (
        ("--scenario", args.scenario),
        ("--num-jobs", args.num_jobs),
        ("--utilisation", args.utilisation),
        ("--checkpoint", args.checkpoint),
        ("--checkpoint-every", args.checkpoint_every),
        ("--resume", args.resume),
    ))
    _check_choice("router", args.router, list(ROUTERS))
    fault_spec = parse_fault_spec(args.faults)
    # The header is validated here — malformed or DAG-format files fail
    # before any simulation state exists.
    source = ReplaySource(
        args.replay,
        mode="fleet",
        jobs=args.jobs,
        time_scale=args.replay_time_scale,
        rate_scale=args.replay_rate_scale,
    )
    shares = source.class_shares()
    policy = args.policy if args.policy is not None else _replay_policy(shares)
    hub, events_path, events_are_temporary = _single_run_hub(args)
    simulation = FleetSimulation(
        policy=policy,
        jobs=(),
        num_clusters=args.clusters,
        dispatcher=args.router,
        power_of_d=args.power_of_d,
        seed=args.seed,
        sprint_budget=args.budget,
        telemetry=hub,
        faults=fault_spec,
        job_source=source,
        streaming_metrics=True,
        traffic_shares=shares,
    )
    result = simulation.run(until=args.until)
    hub.close()
    trace_note = _export_trace(args, events_path, events_are_temporary)
    title = (
        f"Fleet replay: {args.replay} ({source.meta.format}, "
        f"{source.jobs_ingested} jobs)  router={result.dispatcher_name}  "
        f"policy={policy.name}  budget={args.budget}"
    )
    lines = _fleet_report(title, result, simulation)
    if trace_note is not None:
        lines += ["", trace_note]
    return "\n".join(lines)


def _run_fleet(args: argparse.Namespace) -> str:
    if args.replay is not None:
        return _run_fleet_replay(args)
    if args.scenario is None:
        args.scenario = "two-priority"
    if args.num_jobs is None:
        args.num_jobs = 200
    if args.resume is not None:
        return _resume_fleet(args)
    _check_choice("router", args.router, list(ROUTERS))
    _check_trace_flag(args)
    # Validate the fault spec up front: a typo exits non-zero with the valid
    # kind/key choices before any simulation work starts.
    fault_spec = parse_fault_spec(args.faults)
    checkpoint_every = args.checkpoint_every
    if args.checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 500.0
    if args.checkpoint is None and args.checkpoint_every is not None:
        raise ValueError("--checkpoint-every needs --checkpoint PATH")
    scenario = _fleet_scenario(args)
    policy = args.policy if args.policy is not None else _default_fleet_policy(scenario)
    if args.replications > 1:
        if args.checkpoint is not None:
            raise ValueError(
                "--checkpoint needs a single run; it cannot be combined "
                "with --replications"
            )
        if args.until is not None:
            raise ValueError(
                "--until needs a single run; it cannot be combined "
                "with --replications"
            )
        metrics = replicate_fleet(
            scenario,
            policy,
            args.replications,
            dispatcher=args.router,
            power_of_d=args.power_of_d,
            sprint_budget=args.budget,
            base_seed=args.seed,
            jobs=args.jobs,
            faults=fault_spec,
            **_telemetry_kwargs(args),
        )
        title = (
            f"Fleet: {scenario.name}  router={args.router}  policy={policy.name}  "
            f"budget={args.budget}  replications={args.replications}"
        )
        return "\n".join(
            [title, "=" * len(title), "", "Replicated fleet metrics (95% CI)",
             format_rows(interval_rows(metrics))]
        )
    trace = scenario.generate_trace(seed=args.seed)
    hub, events_path, events_are_temporary = _single_run_hub(args)
    simulation = FleetSimulation(
        policy=policy,
        jobs=trace,
        clusters=scenario.make_clusters(),
        dispatcher=args.router,
        power_of_d=args.power_of_d,
        seed=args.seed,
        sprint_budget=args.budget,
        telemetry=hub,
        faults=fault_spec,
        checkpoint_every=checkpoint_every,
        checkpoint_path=args.checkpoint,
    )
    if args.checkpoint is not None:
        # Embedded in every snapshot so `repro fleet --resume PATH` can
        # rebuild the identical simulation from the file alone.
        simulation.checkpoint_config = {
            "scenario": scenario,
            "scenario_name": scenario.name,
            "policy": policy,
            "dispatcher": args.router,
            "power_of_d": args.power_of_d,
            "seed": args.seed,
            "sprint_budget": args.budget,
            "faults": fault_spec,
            "checkpoint_every": checkpoint_every,
            "checkpoint_path": args.checkpoint,
        }
    result = simulation.run(until=args.until)
    hub.close()
    trace_note = _export_trace(args, events_path, events_are_temporary)
    title = (
        f"Fleet: {scenario.name}  router={result.dispatcher_name}  "
        f"policy={policy.name}  budget={args.budget}"
    )
    lines = _fleet_report(title, result, simulation)
    if trace_note is not None:
        lines += ["", trace_note]
    return "\n".join(lines)


def _run_chaos(args: argparse.Namespace) -> str:
    """Fault-intensity ablation over one fleet configuration."""
    _check_choice("router", args.router, list(ROUTERS))
    spec = parse_fault_spec(args.faults)
    scenario = _fleet_scenario(args)
    policy = args.policy if args.policy is not None else _default_fleet_policy(scenario)
    hub, events_path, events_are_temporary = _single_run_hub(args)
    rows = run_chaos(
        scenario,
        policy,
        spec,
        levels=args.levels,
        dispatcher=args.router,
        power_of_d=args.power_of_d,
        sprint_budget=args.budget,
        seed=args.seed,
        telemetry=hub,
        telemetry_level=max(args.levels) if hub is not NULL_HUB else None,
    )
    hub.close()
    trace_note = _export_trace(args, events_path, events_are_temporary)
    title = (
        f"Chaos: {scenario.name}  router={args.router}  policy={policy.name}  "
        f"faults='{args.faults}'"
    )
    lines = [
        title,
        "=" * len(title),
        "",
        "Sensitivity to fault intensity (deltas vs level-0 baseline)",
        format_rows(rows),
    ]
    if trace_note is not None:
        lines += ["", trace_note]
    return "\n".join(lines)


def _dag_report(title: str, result, simulation: DagSimulation) -> List[str]:
    """The standard single-run DAG report: per-class latency, summary, faults."""
    class_rows = []
    for priority in sorted(result.priorities(), reverse=True):
        metrics = result.class_metrics(priority)
        class_rows.append(
            {
                "priority": priority,
                "jobs": float(metrics.job_count),
                "mean_response_s": metrics.response_time.mean,
                "p95_response_s": metrics.response_time.p95,
                "mean_makespan_s": result.mean_makespan(priority),
                "accuracy_loss_pct": 100.0 * metrics.accuracy_loss_mean,
            }
        )
    summary_rows = [
        {"metric": "completed_jobs", "value": float(result.completed_jobs)},
        {"metric": "mean_makespan_s", "value": result.mean_makespan()},
        {"metric": "mean_cp_stretch", "value": result.mean_critical_path_stretch()},
        {"metric": "mean_response_s", "value": result.mean_response_time()},
        {"metric": "p95_response_s", "value": result.tail_response_time()},
        {"metric": "utilisation", "value": result.utilisation},
        {"metric": "energy_kj", "value": result.total_energy_kilojoules},
    ]
    lines = [
        title,
        "=" * len(title),
        "",
        "Per-class latency",
        format_rows(class_rows),
        "",
        "Summary (cp_stretch = makespan over per-job lower bound)",
        format_rows(summary_rows),
    ]
    if simulation.faults is not None:
        lines += [
            "",
            "Faults & recovery",
            format_rows(
                [{"counter": name, "count": float(value)}
                 for name, value in simulation.faults.counters.items()]
            ),
        ]
    return lines


def _run_dag_replay(args: argparse.Namespace) -> str:
    """Stream a DAG trace file through the DAG simulation (constant memory)."""
    _check_replay_conflicts(args, (
        ("--scenario", args.scenario),
        ("--num-jobs", args.num_jobs),
    ))
    _check_choice("stage scheduler", args.scheduler, list(STAGE_SCHEDULERS))
    fault_spec = parse_fault_spec(args.faults)
    source = ReplaySource(
        args.replay,
        mode="dag",
        jobs=args.jobs,
        time_scale=args.replay_time_scale,
        rate_scale=args.replay_rate_scale,
    )
    policy = (
        args.policy
        if args.policy is not None
        else _replay_policy(source.class_shares())
    )
    hub, events_path, events_are_temporary = _single_run_hub(args)
    simulation = DagSimulation(
        policy=policy,
        scheduler=args.scheduler,
        seed=args.seed,
        slack_biased=args.slack_biased,
        telemetry=hub,
        faults=fault_spec,
        job_source=source,
        streaming_metrics=True,
    )
    result = simulation.run()
    hub.close()
    trace_note = _export_trace(args, events_path, events_are_temporary)
    title = (
        f"DAG replay: {args.replay} ({source.meta.format}, "
        f"{source.jobs_ingested} jobs)  scheduler={result.scheduler_name}  "
        f"policy={policy.name}  slack_biased={args.slack_biased}"
    )
    lines = _dag_report(title, result, simulation)
    if trace_note is not None:
        lines += ["", trace_note]
    return "\n".join(lines)


def _run_dag(args: argparse.Namespace) -> str:
    if args.replay is not None:
        return _run_dag_replay(args)
    if args.scenario is None:
        args.scenario = "layered"
    if args.num_jobs is None:
        args.num_jobs = 150
    _check_choice("stage scheduler", args.scheduler, list(STAGE_SCHEDULERS))
    _check_trace_flag(args)
    fault_spec = parse_fault_spec(args.faults)
    scenario = DAG_SCENARIOS[args.scenario](num_jobs=args.num_jobs)
    policy = (
        args.policy
        if args.policy is not None
        else SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})
    )
    if args.replications > 1:
        metrics = replicate_dag(
            scenario,
            policy,
            args.replications,
            scheduler=args.scheduler,
            slack_biased=args.slack_biased,
            base_seed=args.seed,
            jobs=args.jobs,
            faults=fault_spec,
            **_telemetry_kwargs(args),
        )
        title = (
            f"DAG: {scenario.name}  scheduler={args.scheduler}  policy={policy.name}  "
            f"slack_biased={args.slack_biased}  replications={args.replications}"
        )
        return "\n".join(
            [title, "=" * len(title), "", "Replicated DAG metrics (95% CI)",
             format_rows(interval_rows(metrics))]
        )
    trace = scenario.generate_trace(seed=args.seed)
    hub, events_path, events_are_temporary = _single_run_hub(args)
    simulation = DagSimulation(
        policy=policy,
        jobs=trace,
        scheduler=args.scheduler,
        cluster=scenario.cluster,
        seed=args.seed,
        slack_biased=args.slack_biased,
        telemetry=hub,
        faults=fault_spec,
    )
    result = simulation.run()
    hub.close()
    trace_note = _export_trace(args, events_path, events_are_temporary)
    title = (
        f"DAG: {scenario.name}  scheduler={result.scheduler_name}  "
        f"policy={policy.name}  slack_biased={args.slack_biased}"
    )
    lines = _dag_report(title, result, simulation)
    if trace_note is not None:
        lines += ["", trace_note]
    return "\n".join(lines)


def _env_spec(args: argparse.Namespace) -> EnvSpec:
    """Build the picklable environment recipe shared by ``learn``/``policy``."""
    scenario = args.scenario
    if scenario is None and args.replay is None:
        scenario = "layered" if args.env == "scheduling" else "two-priority"
    _check_choice("stage scheduler", args.scheduler, list(STAGE_SCHEDULERS))
    _check_choice("router", args.router, list(ROUTERS))
    policy = (
        args.policy
        if args.policy is not None
        else SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})
    )
    return EnvSpec(
        env=args.env,
        policy=policy,
        scenario=scenario,
        replay=args.replay,
        num_jobs=args.num_jobs,
        clusters=args.clusters,
        scheduler=args.scheduler,
        dispatcher=args.router,
        power_of_d=args.power_of_d,
        time_scale=args.replay_time_scale,
        rate_scale=args.replay_rate_scale,
    )


def _default_baselines(env: str) -> List[str]:
    """Heuristics a learned policy is compared against when --baseline is absent."""
    return (
        ["fifo", "critical_path_first"] if env == "scheduling"
        else ["random", "jsq"]
    )


def _baseline_rows(
    spec: EnvSpec, name: str, episodes: int, base_seed: int, jobs: int
) -> List[Dict[str, float]]:
    """CRN-evaluate one heuristic baseline: a named stage scheduler on the
    scheduling env, or the built-in dispatcher ``name`` on the routing env."""
    if spec.env == "scheduling":
        _check_choice("baseline stage scheduler", name, list(STAGE_SCHEDULERS))
        agent: Agent = SchedulerAgent(name)
    else:
        _check_choice("baseline router", name, list(ROUTERS))
        spec = spec.with_dispatcher(name)
        agent = BuiltinAgent()
    return evaluate(spec, agent, episodes=episodes, base_seed=base_seed,
                    jobs=jobs)


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run_learn(args: argparse.Namespace) -> str:
    spec = _env_spec(args)
    agent = make_agent(
        args.agent,
        seed=args.seed,
        epsilon=args.epsilon,
        learning_rate=args.learning_rate,
        alpha=args.alpha,
    )
    history = train(spec, agent, episodes=args.episodes, base_seed=args.seed)
    if args.save is not None:
        save_agent(agent, args.save)

    baselines = args.baseline or _default_baselines(spec.env)
    evaluations = {
        agent.name: evaluate(spec, agent, episodes=args.eval_episodes,
                             base_seed=args.eval_seed, jobs=args.jobs)
    }
    for name in baselines:
        evaluations.setdefault(
            f"baseline:{name}",
            _baseline_rows(spec, name, args.eval_episodes, args.eval_seed,
                           args.jobs),
        )

    key = spec.key_metric
    summary = [
        {"policy": name, **summarise(rows)}
        for name, rows in evaluations.items()
    ]
    best_heuristic = min(
        (row for row in summary if row["policy"] != agent.name),
        key=lambda row: row[key],
    )
    learned = next(row for row in summary if row["policy"] == agent.name)
    margin = best_heuristic[key] - learned[key]

    title = (
        f"learn: env={spec.env}  agent={agent.name}  "
        f"episodes={args.episodes}  eval={args.eval_episodes}x"
        f"@seed{args.eval_seed}"
    )
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"training reward: first={history[0]['reward']:.3f}  "
        f"last={history[-1]['reward']:.3f}"
    )
    lines += ["", "CRN evaluation (mean over episodes, lower "
                  f"{key} is better)", format_rows(summary)]
    verdict = (
        f"{agent.name} beats {best_heuristic['policy']} on {key} "
        f"by {margin:.3f}"
        if margin > 0
        else f"{agent.name} trails {best_heuristic['policy']} on {key} "
             f"by {-margin:.3f}"
    )
    lines += ["", verdict]
    if args.save is not None:
        lines.append(f"agent saved to {args.save}")
    if args.out is not None:
        _write_json(args.out, {
            "env": spec.env,
            "agent": agent.name,
            "key_metric": key,
            "train": {
                "episodes": args.episodes,
                "base_seed": args.seed,
                "history": history,
            },
            "eval": {
                "episodes": args.eval_episodes,
                "base_seed": args.eval_seed,
                "rows": evaluations,
                "summary": summary,
            },
        })
        lines.append(f"results written to {args.out}")
    return "\n".join(lines)


def _run_policy(args: argparse.Namespace) -> str:
    spec = _env_spec(args)
    if args.load is not None:
        agent = load_agent(args.load)
    else:
        agent = make_agent(args.agent, seed=args.seed)
    if spec.env == "routing" and agent.name.startswith("scheduler:"):
        raise ValueError(
            f"{agent.name} only handles stage decisions; use it with "
            "--env scheduling"
        )
    rows = evaluate(spec, agent, episodes=args.episodes, base_seed=args.seed,
                    jobs=args.jobs)
    summary = summarise(rows)
    title = f"policy: env={spec.env}  agent={agent.name}  episodes={args.episodes}"
    lines = [title, "=" * len(title), "", format_rows(rows), ""]
    lines.append(
        "mean: " + "  ".join(f"{k}={v:.3f}" for k, v in summary.items())
    )
    if args.out is not None:
        _write_json(args.out, {
            "env": spec.env,
            "agent": agent.name,
            "base_seed": args.seed,
            "rows": rows,
            "summary": summary,
        })
        lines.append(f"results written to {args.out}")
    return "\n".join(lines)


def _run_synth_trace(args: argparse.Namespace) -> str:
    """Synthesize a deterministic trace file and print its composition."""
    fmt = _check_choice("trace format", args.format, list(TRACE_FORMATS))
    if fmt == DAG_JSONL:
        if args.mix is not None:
            raise ValueError(
                "--mix synthesizes linear cluster traces; use a cluster "
                "format (or --scenario) for dag-jsonl"
            )
        if args.clusters is not None:
            raise ValueError("--clusters applies to cluster formats only")
        name = args.scenario or "layered"
        _check_choice("dag scenario", name, sorted(DAG_SCENARIOS))
        scenario = DAG_SCENARIOS[name]()
    elif args.mix is not None:
        if args.scenario is not None:
            raise ValueError("pass either --scenario or --mix, not both")
        scenario = google_mix_scenario(num_classes=args.mix_classes)
    else:
        name = args.scenario or "reference"
        _check_choice("scenario", name, sorted(SCENARIOS))
        scenario = SCENARIOS[name]()
    if args.tasks_per_job is not None:
        scenario = compact_profiles(scenario, args.tasks_per_job)
    if args.clusters is not None and args.clusters > 1:
        scenario = FleetScenario(base=scenario, num_clusters=args.clusters)
    histogram = TraceHistogram()
    meta = synthesize_trace(
        args.out,
        scenario,
        args.num_jobs,
        seed=args.seed,
        fmt=fmt,
        wave_width=args.wave_width,
        histogram=histogram,
    )
    title = (
        f"Synthesized {meta.jobs} jobs -> {args.out}  "
        f"(format={fmt}, scenario={scenario.name}, seed={args.seed})"
    )
    return "\n".join([title, "=" * len(title), "", histogram.format_table()])


def _run_trace(args: argparse.Namespace) -> str:
    """Validate or render a span trace written by ``--trace`` (or JSONL spans)."""
    from repro.telemetry.tracing import (
        load_spans,
        render_trace_report,
        validate_chrome_trace,
    )

    try:
        if args.validate:
            count = validate_chrome_trace(args.path)
            return (
                f"OK: {args.path} is a valid Chrome-trace document "
                f"({count} spans)"
            )
        spans = load_spans(args.path)
    except OSError as error:
        raise ValueError(f"cannot read trace file {args.path!r}: {error}")
    return render_trace_report(spans, width=args.width, focus_job=args.focus_job)


def _run_inspect(args: argparse.Namespace) -> str:
    """Validate and render a telemetry JSONL file written by ``--telemetry``."""
    from repro.telemetry.inspect import inspect_file

    try:
        return inspect_file(
            args.path,
            width=args.width,
            height=args.height,
            validate_only=args.validate,
        )
    except OSError as error:
        raise ValueError(f"cannot read telemetry file {args.path!r}: {error}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        if args.command == "list":
            output = _run_list()
        elif args.command == "figure":
            output = _run_figure(args)
        elif args.command == "table":
            result = tables.table2_latency_decomposition(num_jobs=args.num_jobs, seed=args.seed)
            output = "Table 2\n" + format_rows(result["rows"])
        elif args.command == "compare":
            scenario = SCENARIOS[args.scenario]()
            policies = [_parse_policy(name) for name in args.policies]
            compare_faults = parse_fault_spec(args.faults)
            if args.replications > 1:
                if args.quantiles is not None:
                    raise ValueError(
                        "--quantiles needs a single streaming run; it cannot "
                        "be combined with --replications"
                    )
                experiment = PolicyComparisonExperiment(
                    scenario, policies, baseline=policies[0].name,
                    num_jobs=args.num_jobs, faults=compare_faults,
                    **_telemetry_kwargs(args),
                )
                metrics = ReplicationRunner(experiment).run(
                    args.replications, base_seed=args.seed, jobs=args.jobs
                )
                merge_replication_parts(args.telemetry, args.seed, args.replications)
                output = (
                    f"Scenario {args.scenario} — {args.replications} replications (95% CI)\n"
                    + format_rows(interval_rows(metrics))
                )
            else:
                trace_path = _check_trace_flag(args)
                telemetry_kwargs = _telemetry_kwargs(args)
                events_path = None
                events_are_temporary = False
                if trace_path is not None:
                    telemetry_kwargs["telemetry_trace"] = True
                    if telemetry_kwargs["telemetry_base"] is None:
                        events_path = trace_path + ".events.jsonl"
                        events_are_temporary = True
                        telemetry_kwargs["telemetry_base"] = events_path
                        telemetry_kwargs["telemetry_interval"] = None
                    else:
                        events_path = telemetry_kwargs["telemetry_base"]
                comparison = run_policies(scenario, policies, baseline=policies[0].name,
                                          seed=args.seed, num_jobs=args.num_jobs,
                                          jobs=args.jobs, quantiles=args.quantiles,
                                          faults=compare_faults,
                                          **telemetry_kwargs)
                output = format_comparison(comparison, f"Scenario {args.scenario}")
                if args.quantiles is not None:
                    output += "\n\nStreaming response-time quantiles (P² estimates)\n"
                    output += format_rows(_quantile_rows(comparison, args.quantiles))
                trace_note = _export_trace(args, events_path, events_are_temporary)
                if trace_note is not None:
                    output += "\n\n" + trace_note
        elif args.command == "sweep":
            scenario = SCENARIOS[args.scenario]()
            if args.replications > 1:
                experiment = RowSweepExperiment(
                    drop_ratio_sweep,
                    {"scenario": scenario, "drop_ratios": args.ratios,
                     "num_jobs": args.num_jobs},
                    **_telemetry_kwargs(args),
                )
                rows = replicate_rows(experiment, args.replications,
                                      base_seed=args.seed, jobs=args.jobs)
                merge_replication_parts(args.telemetry, args.seed, args.replications)
            else:
                rows = drop_ratio_sweep(scenario, args.ratios, num_jobs=args.num_jobs,
                                        seed=args.seed, jobs=args.jobs,
                                        **_telemetry_kwargs(args))
            output = format_rows(rows)
        elif args.command == "load-sweep":
            scenario = SCENARIOS[args.scenario]()
            if args.replications > 1:
                experiment = RowSweepExperiment(
                    load_sweep,
                    {"scenario": scenario, "utilisations": args.utilisations,
                     "num_jobs": args.num_jobs},
                )
                rows = replicate_rows(experiment, args.replications,
                                      base_seed=args.seed, jobs=args.jobs)
            else:
                rows = load_sweep(scenario, args.utilisations, num_jobs=args.num_jobs,
                                  seed=args.seed, jobs=args.jobs)
            output = format_rows(rows)
        elif args.command == "fleet":
            output = _run_fleet(args)
        elif args.command == "chaos":
            output = _run_chaos(args)
        elif args.command == "dag":
            output = _run_dag(args)
        elif args.command == "learn":
            output = _run_learn(args)
        elif args.command == "policy":
            output = _run_policy(args)
        elif args.command == "synth-trace":
            output = _run_synth_trace(args)
        elif args.command == "trace":
            output = _run_trace(args)
        elif args.command == "inspect":
            output = _run_inspect(args)
        else:  # pragma: no cover - argparse prevents this
            parser.error(f"unknown command {args.command!r}")
            return 2
    except (ValueError, KeyError, ClusterCapacityError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
