"""Synthetic StackExchange-like text corpora.

The paper's text jobs analyse XML dumps of 164 StackExchange sites, each
dedicated to a different topic, and compute word popularity per topic.  The
accuracy of that analysis under task dropping depends on two statistical
properties that the synthetic corpus reproduces:

* word frequencies are heavy-tailed (Zipf-distributed), so popular words are
  estimated well from a sample while rare words are noisy;
* documents about the same topic share topic-specific vocabulary, so
  partitions are not perfectly homogeneous and dropping them introduces
  topic-dependent bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a synthetic corpus."""

    num_documents: int = 200
    words_per_document: int = 120
    vocabulary_size: int = 2000
    num_topics: int = 8
    zipf_exponent: float = 1.3
    topic_word_fraction: float = 0.3
    topic_vocabulary_size: int = 100

    def __post_init__(self) -> None:
        if self.num_documents <= 0 or self.words_per_document <= 0:
            raise ValueError("documents and words per document must be positive")
        if self.vocabulary_size <= 0 or self.topic_vocabulary_size <= 0:
            raise ValueError("vocabulary sizes must be positive")
        if self.num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if not 1.0 < self.zipf_exponent:
            raise ValueError("zipf_exponent must exceed 1")
        if not 0.0 <= self.topic_word_fraction <= 1.0:
            raise ValueError("topic_word_fraction must be in [0, 1]")


def _zipf_probabilities(size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def synthetic_corpus(
    spec: Optional[CorpusSpec] = None,
    seed: int = 0,
) -> List[str]:
    """Generate a synthetic corpus as a list of document strings.

    Each document mixes a global Zipf-distributed vocabulary with a smaller
    topic-specific vocabulary; documents cycle through topics so that RDD
    partitions (round-robin over documents) contain a mix of topics, as the
    real per-site dumps do.
    """
    spec = spec or CorpusSpec()
    rng = np.random.default_rng(seed)
    global_probs = _zipf_probabilities(spec.vocabulary_size, spec.zipf_exponent)
    topic_probs = _zipf_probabilities(spec.topic_vocabulary_size, spec.zipf_exponent)
    global_vocab = [f"word{i}" for i in range(spec.vocabulary_size)]

    documents: List[str] = []
    for doc_index in range(spec.num_documents):
        topic = doc_index % spec.num_topics
        topic_vocab = [f"topic{topic}term{i}" for i in range(spec.topic_vocabulary_size)]
        num_topic_words = int(round(spec.words_per_document * spec.topic_word_fraction))
        num_global_words = spec.words_per_document - num_topic_words
        words: List[str] = []
        if num_global_words > 0:
            picks = rng.choice(spec.vocabulary_size, size=num_global_words, p=global_probs)
            words.extend(global_vocab[int(i)] for i in picks)
        if num_topic_words > 0:
            picks = rng.choice(
                spec.topic_vocabulary_size, size=num_topic_words, p=topic_probs
            )
            words.extend(topic_vocab[int(i)] for i in picks)
        rng.shuffle(words)
        documents.append(" ".join(words))
    return documents


def corpus_size_mb(documents: Sequence[str]) -> float:
    """Approximate corpus size in megabytes (UTF-8 bytes)."""
    return sum(len(doc.encode("utf-8")) for doc in documents) / (1024.0 * 1024.0)
