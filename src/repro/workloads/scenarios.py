"""Canonical experimental scenarios of the paper's evaluation (§5).

A :class:`Scenario` bundles everything needed to regenerate one experiment:
the per-priority job profiles, the calibrated arrival rates, the cluster, and
the trace length.  The factory functions mirror the setups of §5:

* :func:`reference_two_priority_scenario` — the Fig. 7 reference setup
  (low:high arrivals 9:1, sizes 1117 MB vs 473 MB, 80 % load).
* :func:`equal_job_sizes_scenario` — Fig. 8a (both classes 473 MB).
* :func:`more_high_priority_scenario` — Fig. 8b (arrival ratio inverted, 1:9).
* :func:`low_load_scenario` — Fig. 8c (50 % load).
* :func:`three_priority_scenario` — Fig. 9 (high-medium-low rate ratio 1-4-5).
* :func:`triangle_count_scenario` — Fig. 10 / Fig. 11 / Table 2 (multi-stage
  graph jobs, high:low = 3:7, equal sizes).
* :func:`validation_datasets_scenario` — the §4.3 validation datasets
  (Fig. 4 / Fig. 5).
* :func:`sprinting_scenario` — the full-DiAS sprinting setup of §5.3.

Beyond the paper, :class:`FleetScenario` scales a single-cluster scenario to
``N`` clusters behind a dispatcher: per-class arrival rates are multiplied by
the fleet size so each member still sees the base scenario's load when
traffic is spread evenly.  :func:`fleet_two_priority_scenario` and
:func:`fleet_three_priority_scenario` are the canonical fleet setups used by
the routing benchmark and the ``repro fleet`` CLI command.

:class:`DagScenario` extends the workload model to stage-DAG jobs (the
``repro dag`` CLI command and the stage-scheduler benchmark):

* :func:`dag_layered_scenario` — random layered query-plan DAGs in two
  priority classes, the canonical setup for comparing stage schedulers;
* :func:`dag_fork_join_scenario` — SQL-style fork-join plans (source scan,
  parallel branch chains, non-droppable join sink);
* :func:`dag_triangle_count_scenario` — the GraphX triangle count as a DAG
  (six ShuffleMap stages plus a non-droppable Result stage); dropping the
  result stage reduces it to today's linear chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.job import Job
from repro.engine.profiles import JobClassProfile
from repro.simulation.random_streams import RandomStreams
from repro.workloads.arrivals import calibrate_arrival_rates
from repro.workloads.jobs import generate_job_trace

#: Priorities used throughout (higher value = higher priority).
LOW, MEDIUM, HIGH = 0, 1, 2

#: The paper's reference dataset sizes (§4.3, §5.2.1).
LOW_PRIORITY_SIZE_MB = 1117.0
HIGH_PRIORITY_SIZE_MB = 473.0


def default_cluster() -> Cluster:
    """The paper's cluster: ten workers with two cores each (20 slots)."""
    return Cluster(ClusterConfig(workers=10, cores_per_worker=2))


def text_profile(
    priority: int,
    name: str,
    mean_size_mb: float,
    max_accuracy_loss: float,
    partitions: int = 50,
) -> JobClassProfile:
    """A text-analysis job class (StackExchange word-popularity analysis)."""
    return JobClassProfile(
        priority=priority,
        name=name,
        mean_size_mb=mean_size_mb,
        size_cv=0.25,
        partitions=partitions,
        reduce_tasks=10,
        map_time_per_100mb=60.0,
        reduce_time=4.0,
        setup_time_full=12.0,
        setup_time_min=6.0,
        shuffle_time=3.0,
        task_scv=0.05,
        num_stages=1,
        max_accuracy_loss=max_accuracy_loss,
    )


def graph_profile(
    priority: int,
    name: str,
    mean_size_mb: float = 400.0,
    max_accuracy_loss: float = 0.15,
    num_stages: int = 6,
) -> JobClassProfile:
    """A graph-analysis job class (GraphX-style triangle count, §5.1).

    The triangle count is composed of six ShuffleMap stages and one Result
    stage; here each of the six stages is a (map, shuffle, reduce) round on 20
    partitions.
    """
    return JobClassProfile(
        priority=priority,
        name=name,
        mean_size_mb=mean_size_mb,
        size_cv=0.15,
        partitions=20,
        reduce_tasks=5,
        map_time_per_100mb=90.0,
        reduce_time=2.0,
        setup_time_full=15.0,
        setup_time_min=8.0,
        shuffle_time=2.0,
        task_scv=0.05,
        num_stages=num_stages,
        max_accuracy_loss=max_accuracy_loss,
    )


@dataclass
class Scenario:
    """A complete experimental configuration."""

    name: str
    description: str
    profiles: Dict[int, JobClassProfile]
    class_ratio: Dict[int, float]
    target_utilisation: float
    num_jobs: int = 400
    cluster: Cluster = field(default_factory=default_cluster)
    arrival_rates: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.arrival_rates:
            self.arrival_rates = calibrate_arrival_rates(
                self.profiles,
                self.class_ratio,
                slots=self.cluster.slots,
                target_utilisation=self.target_utilisation,
            )

    # --------------------------------------------------------------- helpers
    @property
    def priorities(self) -> List[int]:
        return sorted(self.profiles, reverse=True)

    @property
    def highest_priority(self) -> int:
        return self.priorities[0]

    @property
    def lowest_priority(self) -> int:
        return self.priorities[-1]

    def total_arrival_rate(self) -> float:
        return sum(self.arrival_rates.values())

    def generate_trace(self, seed: int = 0, num_jobs: Optional[int] = None) -> List[Job]:
        """Sample one job trace for this scenario."""
        return generate_job_trace(
            self.profiles,
            self.arrival_rates,
            num_jobs=num_jobs if num_jobs is not None else self.num_jobs,
            streams=RandomStreams(seed),
        )

    def with_utilisation(self, target_utilisation: float, name: Optional[str] = None) -> "Scenario":
        """Copy of this scenario re-calibrated for a different load."""
        return Scenario(
            name=name or f"{self.name}-util{target_utilisation:.0%}",
            description=self.description,
            profiles=dict(self.profiles),
            class_ratio=dict(self.class_ratio),
            target_utilisation=target_utilisation,
            num_jobs=self.num_jobs,
            cluster=self.cluster,
        )


# ---------------------------------------------------------------------------
# Two-priority text scenarios (Fig. 7 and Fig. 8)
# ---------------------------------------------------------------------------
def reference_two_priority_scenario(num_jobs: int = 400) -> Scenario:
    """Fig. 7: low:high = 9:1, sizes 1117/473 MB, 80 % load."""
    profiles = {
        HIGH: text_profile(HIGH, "high", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0),
        LOW: text_profile(LOW, "low", LOW_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
    }
    return Scenario(
        name="reference-two-priority",
        description="Reference setup: 9:1 low:high arrivals, 1117/473 MB, 80% load",
        profiles=profiles,
        class_ratio={LOW: 9.0, HIGH: 1.0},
        target_utilisation=0.8,
        num_jobs=num_jobs,
    )


def equal_job_sizes_scenario(num_jobs: int = 400) -> Scenario:
    """Fig. 8a: both classes use the 473 MB dataset profile."""
    profiles = {
        HIGH: text_profile(HIGH, "high", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0),
        LOW: text_profile(LOW, "low", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
    }
    return Scenario(
        name="equal-job-sizes",
        description="Sensitivity: equal job sizes for both priorities",
        profiles=profiles,
        class_ratio={LOW: 9.0, HIGH: 1.0},
        target_utilisation=0.8,
        num_jobs=num_jobs,
    )


def more_high_priority_scenario(num_jobs: int = 400) -> Scenario:
    """Fig. 8b: the arrival ratio is inverted (low:high = 1:9)."""
    profiles = {
        HIGH: text_profile(HIGH, "high", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0),
        LOW: text_profile(LOW, "low", LOW_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
    }
    return Scenario(
        name="more-high-priority",
        description="Sensitivity: 1:9 low:high arrival ratio",
        profiles=profiles,
        class_ratio={LOW: 1.0, HIGH: 9.0},
        target_utilisation=0.8,
        num_jobs=num_jobs,
    )


def low_load_scenario(num_jobs: int = 400) -> Scenario:
    """Fig. 8c: the reference setup at 50 % system load."""
    return reference_two_priority_scenario(num_jobs).with_utilisation(0.5, name="low-load")


# ---------------------------------------------------------------------------
# Three-priority scenario (Fig. 9)
# ---------------------------------------------------------------------------
def three_priority_scenario(num_jobs: int = 500) -> Scenario:
    """Fig. 9: high-medium-low arrival ratio 1-4-5 at roughly 80 % load."""
    profiles = {
        HIGH: text_profile(HIGH, "high", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0),
        MEDIUM: text_profile(MEDIUM, "medium", 800.0, max_accuracy_loss=0.15),
        LOW: text_profile(LOW, "low", LOW_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
    }
    return Scenario(
        name="three-priority",
        description="Three priorities, rate ratio high-medium-low 1-4-5, ~80% load",
        profiles=profiles,
        class_ratio={HIGH: 1.0, MEDIUM: 4.0, LOW: 5.0},
        target_utilisation=0.8,
        num_jobs=num_jobs,
    )


# ---------------------------------------------------------------------------
# Graph scenarios (Fig. 10, Fig. 11, Table 2)
# ---------------------------------------------------------------------------
def triangle_count_scenario(num_jobs: int = 300) -> Scenario:
    """Fig. 10 / Fig. 11 / Table 2: multi-stage graph jobs, high:low = 3:7."""
    profiles = {
        HIGH: graph_profile(HIGH, "high", max_accuracy_loss=0.0),
        LOW: graph_profile(LOW, "low", max_accuracy_loss=0.32),
    }
    return Scenario(
        name="triangle-count",
        description="Graph analytics (triangle count), equal sizes, 3:7 high:low, 80% load",
        profiles=profiles,
        class_ratio={HIGH: 3.0, LOW: 7.0},
        target_utilisation=0.8,
        num_jobs=num_jobs,
    )


def sprinting_scenario(num_jobs: int = 300) -> Scenario:
    """Alias of the triangle-count scenario — the §5.3 sprinting experiments use it."""
    scenario = triangle_count_scenario(num_jobs)
    return replace(scenario, name="dias-sprinting",
                   description="Full DiAS: approximation + sprinting on graph analytics")


# ---------------------------------------------------------------------------
# Fleet scenarios (multi-cluster deployments behind a dispatcher)
# ---------------------------------------------------------------------------
@dataclass
class FleetScenario:
    """A single-cluster scenario scaled out to a fleet of clusters.

    The fleet serves ``num_clusters`` times the base scenario's traffic: the
    per-class arrival rates are multiplied by the fleet size, so a perfectly
    balanced dispatcher reproduces the base load on every member.  Traces are
    generated fleet-wide (default ``base.num_jobs × num_clusters`` jobs) and
    routed at simulation time by the dispatcher under test.
    """

    base: Scenario
    num_clusters: int
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ValueError("a fleet needs at least one cluster")
        if not self.name:
            self.name = f"fleet-{self.base.name}-x{self.num_clusters}"
        if not self.description:
            self.description = (
                f"{self.num_clusters} clusters, each at the load of: "
                f"{self.base.description}"
            )

    # --------------------------------------------------------------- helpers
    @property
    def profiles(self) -> Dict[int, JobClassProfile]:
        return self.base.profiles

    @property
    def priorities(self) -> List[int]:
        return self.base.priorities

    @property
    def class_ratio(self) -> Dict[int, float]:
        return self.base.class_ratio

    @property
    def num_jobs(self) -> int:
        return self.base.num_jobs * self.num_clusters

    @property
    def arrival_rates(self) -> Dict[int, float]:
        """Fleet-wide arrival rates: the base rates times the fleet size."""
        return {
            priority: rate * self.num_clusters
            for priority, rate in self.base.arrival_rates.items()
        }

    def total_arrival_rate(self) -> float:
        return sum(self.arrival_rates.values())

    def generate_trace(self, seed: int = 0, num_jobs: Optional[int] = None) -> List[Job]:
        """Sample one fleet-wide job trace."""
        return generate_job_trace(
            self.profiles,
            self.arrival_rates,
            num_jobs=num_jobs if num_jobs is not None else self.num_jobs,
            streams=RandomStreams(seed),
        )

    def make_clusters(self) -> List[Cluster]:
        """Fresh cluster substrates, one per fleet member."""
        template = self.base.cluster
        return [
            Cluster(
                config=template.config,
                dvfs=template.dvfs,
                power_model=template.power_model,
            )
            for _ in range(self.num_clusters)
        ]


def fleet_two_priority_scenario(
    num_clusters: int = 4, num_jobs_per_cluster: int = 200
) -> FleetScenario:
    """The Fig. 7 reference workload served by a fleet of clusters."""
    return FleetScenario(
        base=reference_two_priority_scenario(num_jobs=num_jobs_per_cluster),
        num_clusters=num_clusters,
    )


def fleet_three_priority_scenario(
    num_clusters: int = 4, num_jobs_per_cluster: int = 200
) -> FleetScenario:
    """The Fig. 9 three-priority workload served by a fleet of clusters."""
    return FleetScenario(
        base=three_priority_scenario(num_jobs=num_jobs_per_cluster),
        num_clusters=num_clusters,
    )


# ---------------------------------------------------------------------------
# DAG scenarios (stage-dependency jobs; the `repro dag` command)
# ---------------------------------------------------------------------------
@dataclass
class DagScenario:
    """An experimental configuration over stage-DAG jobs.

    ``profiles`` double as calibration inputs: their ``num_stages`` and
    ``partitions`` fields should approximate the expected DAG shape (stage
    count and mean tasks per stage) so
    :func:`~repro.workloads.arrivals.calibrate_arrival_rates` targets the
    right sequential load.  ``topologies`` maps each priority to a topology
    family of :mod:`repro.workloads.dag`, with optional per-class
    ``topology_params``.
    """

    name: str
    description: str
    profiles: Dict[int, JobClassProfile]
    class_ratio: Dict[int, float]
    target_utilisation: float
    topologies: Dict[int, str]
    topology_params: Dict[int, Dict] = field(default_factory=dict)
    num_jobs: int = 200
    cluster: Cluster = field(default_factory=default_cluster)
    arrival_rates: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.topologies) != set(self.profiles):
            raise ValueError("topologies must cover exactly the profile priorities")
        if not self.arrival_rates:
            self.arrival_rates = calibrate_arrival_rates(
                self.profiles,
                self.class_ratio,
                slots=self.cluster.slots,
                target_utilisation=self.target_utilisation,
            )

    # --------------------------------------------------------------- helpers
    @property
    def priorities(self) -> List[int]:
        return sorted(self.profiles, reverse=True)

    def total_arrival_rate(self) -> float:
        return sum(self.arrival_rates.values())

    def generate_trace(self, seed: int = 0, num_jobs: Optional[int] = None):
        """Sample one DAG-job trace for this scenario.

        Trace generation is independent of the stage scheduler under test, so
        every scheduler sees an identical (common-random-numbers) sequence.
        """
        from repro.workloads.dag import generate_dag_trace

        return generate_dag_trace(
            self.profiles,
            self.arrival_rates,
            self.topologies,
            num_jobs=num_jobs if num_jobs is not None else self.num_jobs,
            streams=RandomStreams(seed),
            topology_params=self.topology_params,
        )


def dag_layered_scenario(num_jobs: int = 200) -> DagScenario:
    """Random layered query-plan DAGs, two priorities, ~80 % sequential load.

    Each job is a 4-layer DAG of 2–4 stages per layer with 4–24 map tasks per
    stage — wide enough that ready stages compete for the 20 slots, which is
    what separates the stage schedulers.
    """
    # Calibration view: ~12 stages of ~14 map tasks each.
    base = text_profile(HIGH, "high", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0)
    profiles = {
        HIGH: replace(base, num_stages=12, partitions=14, reduce_tasks=4),
        LOW: replace(
            text_profile(LOW, "low", LOW_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
            num_stages=12,
            partitions=14,
            reduce_tasks=4,
        ),
    }
    params = {"num_layers": 4, "min_width": 2, "max_width": 4, "min_tasks": 4, "max_tasks": 24}
    return DagScenario(
        name="dag-layered",
        description="Random layered stage DAGs (query plans), 9:1 low:high, ~80% load",
        profiles=profiles,
        class_ratio={LOW: 9.0, HIGH: 1.0},
        target_utilisation=0.8,
        topologies={HIGH: "layered", LOW: "layered"},
        topology_params={HIGH: dict(params), LOW: dict(params)},
        num_jobs=num_jobs,
    )


def dag_fork_join_scenario(num_jobs: int = 200) -> DagScenario:
    """Fork-join query plans: scan → 4 parallel branch chains → join sink."""
    base = text_profile(HIGH, "high", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0)
    profiles = {
        # 1 + 4×2 + 1 = 10 stages; branches carry partitions/branches tasks.
        HIGH: replace(base, num_stages=10, partitions=24, reduce_tasks=4),
        LOW: replace(
            text_profile(LOW, "low", LOW_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
            num_stages=10,
            partitions=24,
            reduce_tasks=4,
        ),
    }
    params = {"branches": 4, "branch_length": 2}
    return DagScenario(
        name="dag-fork-join",
        description="Fork-join query plans (scan, 4 branches, join), 9:1 low:high",
        profiles=profiles,
        class_ratio={LOW: 9.0, HIGH: 1.0},
        target_utilisation=0.8,
        topologies={HIGH: "fork_join", LOW: "fork_join"},
        topology_params={HIGH: dict(params), LOW: dict(params)},
        num_jobs=num_jobs,
    )


def dag_triangle_count_scenario(num_jobs: int = 200) -> DagScenario:
    """The GraphX triangle count as a stage DAG (chain + Result stage)."""
    profiles = {
        HIGH: graph_profile(HIGH, "high", max_accuracy_loss=0.0),
        LOW: graph_profile(LOW, "low", max_accuracy_loss=0.32),
    }
    return DagScenario(
        name="dag-triangle-count",
        description="Triangle-count DAGs (6 ShuffleMap stages + Result), 3:7 high:low",
        profiles=profiles,
        class_ratio={HIGH: 3.0, LOW: 7.0},
        target_utilisation=0.8,
        topologies={HIGH: "triangle_count", LOW: "triangle_count"},
        num_jobs=num_jobs,
    )


# ---------------------------------------------------------------------------
# Model-validation scenario (Fig. 4 / Fig. 5)
# ---------------------------------------------------------------------------
def validation_datasets_scenario(num_jobs: int = 400) -> Scenario:
    """§4.3 validation: two datasets processed by the two priority classes.

    The paper validates the processing-time model on two datasets (labelled
    126 and 147 in Fig. 4) and the response-time model on the reference
    setup's sizes at 80 % load; this scenario provides both class profiles.
    """
    profiles = {
        HIGH: text_profile(HIGH, "dataset-473MB", HIGH_PRIORITY_SIZE_MB, max_accuracy_loss=0.0),
        LOW: text_profile(LOW, "dataset-1117MB", LOW_PRIORITY_SIZE_MB, max_accuracy_loss=0.32),
    }
    return Scenario(
        name="model-validation",
        description="Model validation datasets (Fig. 4/5): 473 MB and 1117 MB classes",
        profiles=profiles,
        class_ratio={LOW: 9.0, HIGH: 1.0},
        target_utilisation=0.8,
        num_jobs=num_jobs,
    )
