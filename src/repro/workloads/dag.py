"""DAG workload generation: topologies, the DAG job factory, and traces.

Three topology families cover the workloads a stage-DAG engine unlocks:

* :func:`layered_topology` — random layered DAGs (each stage depends on one
  or two stages of the previous layer), the generic query-plan/ML-pipeline
  shape used by the stage-scheduler benchmark;
* :func:`fork_join_topology` — a source stage fans out to parallel branch
  chains that join in a sink stage (SQL fork-join plans);
* :func:`triangle_count_topology` — the GraphX-style triangle count: a chain
  of ShuffleMap stages plus a non-droppable Result stage.  With
  ``num_stages=n`` and no result stage this reduces to today's linear chain,
  so the DAG layer strictly generalises the existing engine;
* :func:`chain_topology` — the degenerate linear chain itself.

All randomness is drawn from named
:class:`~repro.simulation.random_streams.RandomStreams`, and — crucially for
common-random-numbers comparisons — trace generation never consults the stage
scheduler, so every scheduler under test sees a byte-identical job sequence.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dag.graph import DagJob, DagStage, StageDAG
from repro.engine.profiles import JobClassProfile
from repro.simulation.random_streams import RandomStreams
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.jobs import allocate_class_counts

#: Topology family names understood by :class:`DagJobFactory`.
TOPOLOGIES = ("layered", "fork_join", "triangle_count", "chain")

#: An edge list: one ``(stage_index, parent_indices)`` pair per stage.
TopologySpec = List[Tuple[int, Tuple[int, ...]]]


def chain_topology(length: int) -> TopologySpec:
    """A linear chain — the paper's existing stage model as a DAG."""
    if length < 1:
        raise ValueError("a chain needs at least one stage")
    return [(i, (i - 1,) if i > 0 else ()) for i in range(length)]


def fork_join_topology(branches: int, branch_length: int) -> TopologySpec:
    """Source → ``branches`` parallel chains of ``branch_length`` → join sink."""
    if branches < 1 or branch_length < 1:
        raise ValueError("branches and branch_length must be positive")
    spec: TopologySpec = [(0, ())]
    index = 1
    tails: List[int] = []
    for _ in range(branches):
        parent = 0
        for _ in range(branch_length):
            spec.append((index, (parent,)))
            parent = index
            index += 1
        tails.append(parent)
    spec.append((index, tuple(tails)))
    return spec


def layered_topology(
    rng: np.random.Generator,
    num_layers: int = 4,
    min_width: int = 2,
    max_width: int = 4,
    max_parents: int = 2,
) -> TopologySpec:
    """A random layered DAG: each stage depends on 1..``max_parents`` stages
    of the previous layer.

    Layer widths are drawn uniformly from ``[min_width, max_width]``; layer 0
    stages are sources.  The result is acyclic by construction (edges only
    point from earlier to later layers), which the property tests verify
    through :class:`~repro.dag.graph.StageDAG` validation.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be positive")
    if not 1 <= min_width <= max_width:
        raise ValueError("need 1 <= min_width <= max_width")
    if max_parents < 1:
        raise ValueError("max_parents must be positive")
    spec: TopologySpec = []
    previous: List[int] = []
    index = 0
    for layer in range(num_layers):
        width = int(rng.integers(min_width, max_width + 1))
        current: List[int] = []
        for _ in range(width):
            if previous:
                k = int(rng.integers(1, min(max_parents, len(previous)) + 1))
                chosen = rng.choice(len(previous), size=k, replace=False)
                parents = tuple(sorted(previous[int(i)] for i in chosen))
            else:
                parents = ()
            spec.append((index, parents))
            current.append(index)
            index += 1
        previous = current
    return spec


def triangle_count_topology(num_shuffle_stages: int = 6, result_stage: bool = True) -> TopologySpec:
    """The GraphX triangle count: a ShuffleMap chain plus a Result stage.

    With ``result_stage=False`` this is exactly :func:`chain_topology` — the
    linear special case the existing engine models.
    """
    spec = chain_topology(num_shuffle_stages)
    if result_stage:
        spec.append((num_shuffle_stages, (num_shuffle_stages - 1,)))
    return spec


class DagJobFactory:
    """Samples concrete :class:`~repro.dag.graph.DagJob` instances.

    Per-stage map/reduce task durations are drawn from the class profile's
    gamma task-time models, exactly like the linear
    :class:`~repro.engine.job.JobFactory`; the topology decides how stages
    depend on each other and how map tasks are spread across stages.
    """

    def __init__(self, streams: RandomStreams) -> None:
        self._streams = streams
        self._ids = itertools.count()

    def next_job_id(self) -> int:
        return next(self._ids)

    def sample_size_mb(self, profile: JobClassProfile) -> float:
        """Draw a dataset size (lognormal with the profile's mean and CV)."""
        rng = self._streams.stream(f"dag/size/priority{profile.priority}")
        if profile.size_cv <= 0:
            return profile.mean_size_mb
        sigma2 = math.log(1.0 + profile.size_cv**2)
        mu = math.log(profile.mean_size_mb) - sigma2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=math.sqrt(sigma2)))

    def create_job(
        self,
        profile: JobClassProfile,
        topology: str,
        arrival_time: float,
        size_mb: Optional[float] = None,
        label: str = "",
        **params,
    ) -> DagJob:
        """Create one DAG job of the given topology family."""
        key = topology.strip().lower().replace("-", "_")
        if key not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {topology!r}; expected one of {', '.join(TOPOLOGIES)}"
            )
        size = self.sample_size_mb(profile) if size_mb is None else float(size_mb)
        topo_rng = self._streams.stream(f"dag/topology/priority{profile.priority}")
        task_rng = self._streams.stream(f"dag/tasks/priority{profile.priority}")

        if key == "chain":
            spec = chain_topology(int(params.get("length", profile.num_stages)))
            task_counts = {i: profile.partitions for i, _ in spec}
            non_droppable: Sequence[int] = ()
        elif key == "triangle_count":
            shuffle_stages = int(params.get("num_shuffle_stages", profile.num_stages))
            with_result = bool(params.get("result_stage", True))
            spec = triangle_count_topology(shuffle_stages, result_stage=with_result)
            task_counts = {i: profile.partitions for i, _ in spec}
            non_droppable = (shuffle_stages,) if with_result else ()
            if with_result:
                # The Result stage aggregates: few, short tasks.
                task_counts[shuffle_stages] = max(1, profile.reduce_tasks)
        elif key == "fork_join":
            branches = int(params.get("branches", 4))
            branch_length = int(params.get("branch_length", 2))
            spec = fork_join_topology(branches, branch_length)
            per_branch = max(2, profile.partitions // branches)
            task_counts = {i: per_branch for i, _ in spec}
            # Source scans and sink join touch the whole dataset.
            task_counts[0] = profile.partitions
            task_counts[spec[-1][0]] = profile.partitions
            non_droppable = (spec[-1][0],)
        else:  # layered
            spec = layered_topology(
                topo_rng,
                num_layers=int(params.get("num_layers", 4)),
                min_width=int(params.get("min_width", 2)),
                max_width=int(params.get("max_width", 4)),
                max_parents=int(params.get("max_parents", 2)),
            )
            min_tasks = int(params.get("min_tasks", 4))
            max_tasks = int(params.get("max_tasks", profile.partitions))
            task_counts = {
                i: int(topo_rng.integers(min_tasks, max_tasks + 1)) for i, _ in spec
            }
            non_droppable = ()

        map_model = profile.map_time_model(size)
        reduce_model = profile.reduce_time_model()
        stages: List[DagStage] = []
        for index, parents in spec:
            num_maps = task_counts[index]
            num_reduces = profile.reduce_tasks
            stages.append(
                DagStage(
                    index=index,
                    map_task_times=[float(t) for t in map_model.sample(task_rng, num_maps)],
                    reduce_task_times=[
                        float(t) for t in reduce_model.sample(task_rng, num_reduces)
                    ],
                    shuffle_time=profile.shuffle_time,
                    droppable=index not in non_droppable,
                    parents=parents,
                    name=f"{key}-{index}",
                )
            )
        return DagJob(
            job_id=self.next_job_id(),
            priority=profile.priority,
            arrival_time=float(arrival_time),
            size_mb=size,
            dag=StageDAG(stages),
            profile=profile,
            label=label or f"{profile.name}-{key}",
        )


def generate_dag_trace(
    profiles: Mapping[int, JobClassProfile],
    arrival_rates: Mapping[int, float],
    topologies: Mapping[int, str],
    num_jobs: int,
    streams: Optional[RandomStreams] = None,
    seed: int = 0,
    topology_params: Optional[Mapping[int, Mapping]] = None,
) -> List[DagJob]:
    """Generate ``num_jobs`` DAG jobs across all classes, sorted by arrival.

    Mirrors :func:`~repro.workloads.jobs.generate_job_trace`: per-class counts
    proportional to arrival rates, an independent Poisson arrival stream per
    class, and per-class topology families from ``topologies``.
    """
    if set(profiles) != set(arrival_rates):
        raise ValueError("profiles and arrival_rates must cover the same priorities")
    missing = set(profiles) - set(topologies)
    if missing:
        raise ValueError(f"topologies missing for priorities {sorted(missing)}")
    streams = streams or RandomStreams(seed)
    factory = DagJobFactory(streams)
    topology_params = topology_params or {}
    counts = allocate_class_counts(arrival_rates, num_jobs)

    jobs: List[DagJob] = []
    for priority, count in counts.items():
        if count <= 0:
            continue
        rate = arrival_rates[priority]
        rng = streams.stream(f"dag/arrivals/priority{priority}")
        times = poisson_arrival_times(rate, count=count, rng=rng)
        params = dict(topology_params.get(priority, {}))
        for arrival in times:
            jobs.append(
                factory.create_job(
                    profiles[priority], topologies[priority], arrival_time=arrival, **params
                )
            )
    jobs.sort(key=lambda job: job.arrival_time)
    return jobs
