"""Job-trace generation from class profiles and arrival rates.

A *trace* is a list of fully sampled :class:`~repro.engine.job.Job` objects
with arrival times, suitable for feeding to
:class:`~repro.core.dias.DiASSimulation`.  All policies in one experiment run
on the *same* trace (common random numbers), which is how the paper reports
relative differences between P, NP, DA and DiAS.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.engine.job import Job, JobFactory
from repro.engine.profiles import JobClassProfile
from repro.simulation.random_streams import RandomStreams
from repro.workloads.arrivals import poisson_arrival_times


def allocate_class_counts(
    arrival_rates: Mapping[int, float], num_jobs: int
) -> Dict[int, int]:
    """Split ``num_jobs`` among priority classes proportionally to their rates.

    Every class with a positive rate receives at least one job; the lowest
    priority absorbs the remainder.  Shared by the linear and DAG trace
    generators so both allocate identically.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    total_rate = sum(rate for rate in arrival_rates.values() if rate > 0)
    if total_rate <= 0:
        raise ValueError("at least one class needs a positive arrival rate")
    counts: Dict[int, int] = {}
    remaining = num_jobs
    ordered = sorted(arrival_rates, reverse=True)
    for index, priority in enumerate(ordered):
        rate = arrival_rates[priority]
        if rate <= 0:
            counts[priority] = 0
            continue
        if index == len(ordered) - 1:
            counts[priority] = remaining
        else:
            share = max(1, round(num_jobs * rate / total_rate))
            share = min(share, remaining - (len(ordered) - index - 1))
            counts[priority] = max(1, share)
            remaining -= counts[priority]
    return counts


def generate_job_trace(
    profiles: Mapping[int, JobClassProfile],
    arrival_rates: Mapping[int, float],
    num_jobs: int,
    streams: Optional[RandomStreams] = None,
    seed: int = 0,
) -> List[Job]:
    """Generate ``num_jobs`` jobs across all classes, sorted by arrival time.

    The per-class job counts are proportional to the arrival rates (at least
    one job per class with a positive rate), each class gets its own Poisson
    arrival stream, and job sizes/task times are sampled from the class
    profile.
    """
    if set(profiles) != set(arrival_rates):
        raise ValueError("profiles and arrival_rates must cover the same priorities")
    streams = streams or RandomStreams(seed)
    factory = JobFactory(streams)

    jobs: List[Job] = []
    counts = allocate_class_counts(arrival_rates, num_jobs)

    for priority, count in counts.items():
        if count <= 0:
            continue
        rate = arrival_rates[priority]
        rng = streams.stream(f"arrivals/priority{priority}")
        times = poisson_arrival_times(rate, count=count, rng=rng)
        for arrival in times:
            jobs.append(factory.create_job(profiles[priority], arrival_time=arrival))
    jobs.sort(key=lambda job: job.arrival_time)
    return jobs


def trace_statistics(jobs: List[Job]) -> Dict[str, float]:
    """Summary statistics of a job trace (per-class counts, spans, sizes)."""
    if not jobs:
        raise ValueError("the trace is empty")
    per_priority: Dict[int, int] = {}
    for job in jobs:
        per_priority[job.priority] = per_priority.get(job.priority, 0) + 1
    horizon = max(job.arrival_time for job in jobs)
    return {
        "jobs": float(len(jobs)),
        "horizon": horizon,
        "mean_size_mb": sum(job.size_mb for job in jobs) / len(jobs),
        **{f"jobs_priority_{p}": float(c) for p, c in sorted(per_priority.items())},
    }
