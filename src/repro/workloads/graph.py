"""Synthetic web-graph-like graphs for the triangle-count experiments.

The paper uses the public Google web graph (875 713 nodes, 5 105 039 edges).
Triangle-count accuracy under partition dropping depends on the graph's skew
and clustering, so the synthetic substitute is a power-law graph with tunable
clustering (Holme–Kim preferential attachment), scaled down so the real
multi-stage MapReduce triangle count runs quickly in tests and benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

Edge = Tuple[int, int]


def synthetic_web_graph(
    num_nodes: int = 600,
    edges_per_node: int = 4,
    triangle_probability: float = 0.3,
    seed: int = 0,
) -> List[Edge]:
    """Generate a power-law graph with clustering; returns its edge list.

    The generator is Holme–Kim ``powerlaw_cluster_graph``: preferential
    attachment (heavy-tailed degrees, like a web graph) plus explicit triangle
    closure so the graph has a non-trivial triangle count to approximate.
    """
    if num_nodes <= edges_per_node:
        raise ValueError("num_nodes must exceed edges_per_node")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ValueError("triangle_probability must be in [0, 1]")
    graph = nx.powerlaw_cluster_graph(
        n=num_nodes, m=edges_per_node, p=triangle_probability, seed=seed
    )
    return [(int(u), int(v)) for u, v in graph.edges()]


def graph_statistics(edges: List[Edge]) -> dict:
    """Basic statistics of an edge list (nodes, edges, triangles, max degree)."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    triangle_total = sum(nx.triangles(graph).values()) // 3
    degrees = [d for _, d in graph.degree()]
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "triangles": triangle_total,
        "max_degree": max(degrees) if degrees else 0,
        "mean_degree": (sum(degrees) / len(degrees)) if degrees else 0.0,
    }


def edge_list_to_partitions(
    edges: List[Edge], num_partitions: int, seed: Optional[int] = None
) -> List[List[Edge]]:
    """Shuffle an edge list into partitions (HDFS block boundaries analogue)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    order = list(edges)
    if seed is not None:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)
    partitions: List[List[Edge]] = [[] for _ in range(num_partitions)]
    for index, edge in enumerate(order):
        partitions[index % num_partitions].append(edge)
    return partitions
