"""Arrival processes and load calibration.

Jobs arrive "following an exponentially-distributed inter-arrival time" and
the paper tunes the total arrival rate to hit a target system utilisation
(80 % in the reference setup, 50 % in the sensitivity study) given the class
mix — e.g. nine low-priority jobs for every high-priority one.  This module
provides exactly those two pieces: Poisson arrival-time generation per class
and the utilisation-based rate calibration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.engine.profiles import JobClassProfile


def poisson_arrival_times(
    rate: float,
    horizon: Optional[float] = None,
    count: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Arrival instants of a Poisson process.

    Provide either a time ``horizon`` (arrivals until that time) or a target
    ``count`` (exactly that many arrivals).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if (horizon is None) == (count is None):
        raise ValueError("provide exactly one of horizon or count")
    rng = rng if rng is not None else np.random.default_rng(0)
    times: List[float] = []
    t = 0.0
    if count is not None:
        for _ in range(count):
            t += rng.exponential(1.0 / rate)
            times.append(t)
        return times
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            return times
        times.append(t)


def calibrate_arrival_rates(
    profiles: Mapping[int, JobClassProfile],
    class_ratio: Mapping[int, float],
    slots: int,
    target_utilisation: float,
    drop_ratios: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Pick per-class arrival rates achieving a target utilisation.

    ``class_ratio`` gives the relative arrival frequency of each priority
    (e.g. ``{low: 9, high: 1}``); the utilisation constraint

        Σ_k λ_k · E[S_k] = target

    then determines the absolute rates.  Service times are estimated with the
    profiles' wave approximation at the given drop ratios (no drop by default,
    so a policy that drops tasks runs *below* the nominal utilisation — as in
    the paper, where the load is calibrated for the unapproximated system).
    """
    if set(profiles) != set(class_ratio):
        raise ValueError("profiles and class_ratio must cover the same priorities")
    if not 0.0 < target_utilisation < 1.0:
        raise ValueError("target_utilisation must be in (0, 1)")
    if any(weight < 0 for weight in class_ratio.values()):
        raise ValueError("class ratios must be non-negative")
    total_weight = sum(class_ratio.values())
    if total_weight <= 0:
        raise ValueError("class ratios must have positive total weight")
    drop_ratios = drop_ratios or {}

    weighted_service = 0.0
    for priority, profile in profiles.items():
        weight = class_ratio[priority] / total_weight
        service = profile.mean_service_time(slots, drop_ratios.get(priority, 0.0))
        weighted_service += weight * service
    total_rate = target_utilisation / weighted_service
    return {
        priority: total_rate * class_ratio[priority] / total_weight
        for priority in profiles
    }


def expected_utilisation(
    profiles: Mapping[int, JobClassProfile],
    arrival_rates: Mapping[int, float],
    slots: int,
    drop_ratios: Optional[Mapping[int, float]] = None,
) -> float:
    """Offered load implied by per-class arrival rates and profiles."""
    drop_ratios = drop_ratios or {}
    return sum(
        arrival_rates[priority]
        * profiles[priority].mean_service_time(slots, drop_ratios.get(priority, 0.0))
        for priority in profiles
    )
