"""Workload generation: synthetic datasets, job streams and paper scenarios.

* :mod:`repro.workloads.text` — synthetic StackExchange-like corpora (Zipf
  word distributions with per-topic skew) for the text-analysis accuracy
  experiments.
* :mod:`repro.workloads.graph` — synthetic power-law web-graph-like graphs for
  the triangle-count experiments.
* :mod:`repro.workloads.arrivals` — Poisson arrival streams and the load
  calibration that picks arrival rates for a target cluster utilisation.
* :mod:`repro.workloads.jobs` — job-trace generation from class profiles.
* :mod:`repro.workloads.dag` — stage-DAG topologies (layered, fork-join,
  triangle count) and DAG-job trace generation.
* :mod:`repro.workloads.scenarios` — the canonical experimental scenarios of
  §5 (reference setup, sensitivity variants, three priorities, triangle count,
  sprinting scenarios) plus the fleet and DAG scenario families.
"""

from repro.workloads.arrivals import calibrate_arrival_rates, poisson_arrival_times
from repro.workloads.dag import (
    DagJobFactory,
    TOPOLOGIES,
    chain_topology,
    fork_join_topology,
    generate_dag_trace,
    layered_topology,
    triangle_count_topology,
)
from repro.workloads.graph import synthetic_web_graph
from repro.workloads.jobs import generate_job_trace
from repro.workloads.scenarios import (
    DagScenario,
    FleetScenario,
    Scenario,
    dag_fork_join_scenario,
    dag_layered_scenario,
    dag_triangle_count_scenario,
    fleet_three_priority_scenario,
    fleet_two_priority_scenario,
    equal_job_sizes_scenario,
    low_load_scenario,
    more_high_priority_scenario,
    reference_two_priority_scenario,
    sprinting_scenario,
    three_priority_scenario,
    triangle_count_scenario,
    validation_datasets_scenario,
)
from repro.workloads.text import synthetic_corpus
from repro.workloads.traces import (
    dominant_classes,
    eviction_statistics,
    google_like_priority_mix,
    slowdown_ratio,
)

__all__ = [
    "dominant_classes",
    "eviction_statistics",
    "google_like_priority_mix",
    "slowdown_ratio",
    "calibrate_arrival_rates",
    "poisson_arrival_times",
    "DagJobFactory",
    "TOPOLOGIES",
    "chain_topology",
    "fork_join_topology",
    "generate_dag_trace",
    "layered_topology",
    "triangle_count_topology",
    "synthetic_web_graph",
    "generate_job_trace",
    "DagScenario",
    "FleetScenario",
    "dag_fork_join_scenario",
    "dag_layered_scenario",
    "dag_triangle_count_scenario",
    "fleet_three_priority_scenario",
    "fleet_two_priority_scenario",
    "Scenario",
    "equal_job_sizes_scenario",
    "low_load_scenario",
    "more_high_priority_scenario",
    "reference_two_priority_scenario",
    "sprinting_scenario",
    "three_priority_scenario",
    "triangle_count_scenario",
    "validation_datasets_scenario",
    "synthetic_corpus",
]
