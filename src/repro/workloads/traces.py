"""Google-cluster-trace-like priority mixes.

The paper motivates its two- and three-priority scenarios with the Google
cluster trace: the production scheduler distinguishes 12 priority levels, but
two to three classes account for ~89 % of all tasks (§5, [12]), and the lowest
priority suffers repeated evictions (§2.1).  This module provides a synthetic
stand-in for that trace:

* :class:`PriorityLevelSpec` / :func:`google_like_priority_mix` — a 12-level
  arrival mix whose mass is concentrated on a few dominant levels,
* :func:`dominant_classes` — collapse the 12 levels onto the 2–3 dominant
  classes the paper evaluates (the mapping the authors apply implicitly), and
* :func:`eviction_statistics` — per-priority eviction/waste summaries from a
  finished simulation, in the same terms as the §2.1 motivation (machine time
  wasted, slowdown of the lowest priority vs the rest), and
* :func:`google_mix_scenario` — the bridge into the trace subsystem: a
  :class:`~repro.workloads.scenarios.Scenario` whose class ratio *is* the
  collapsed Google mix, so ``repro synth-trace --mix google`` and the paper's
  2/3-class scenarios share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.core.dias import SimulationResult

#: Number of priority levels in the Google trace.
GOOGLE_PRIORITY_LEVELS = 12


@dataclass(frozen=True)
class PriorityLevelSpec:
    """One of the twelve trace priority levels."""

    level: int
    share: float

    def __post_init__(self) -> None:
        if not 0 <= self.level < GOOGLE_PRIORITY_LEVELS:
            raise ValueError(f"level must be in [0, {GOOGLE_PRIORITY_LEVELS}), got {self.level}")
        if self.share < 0:
            raise ValueError("share must be non-negative")


def google_like_priority_mix(dominant_levels: Sequence[int] = (0, 4, 9),
                             dominant_share: float = 0.89) -> List[PriorityLevelSpec]:
    """A 12-level mix with ~89 % of the mass on a few dominant levels.

    The dominant levels default to a low (free/gratis), a middle (batch) and a
    high (production) level, mirroring the published trace characterisations.
    The remaining mass is spread uniformly over the other levels.
    """
    if not dominant_levels:
        raise ValueError("at least one dominant level is required")
    if not 0.0 < dominant_share <= 1.0:
        raise ValueError("dominant_share must be in (0, 1]")
    dominant = sorted(set(int(level) for level in dominant_levels))
    for level in dominant:
        if not 0 <= level < GOOGLE_PRIORITY_LEVELS:
            raise ValueError(f"dominant level {level} out of range")
    other_levels = [l for l in range(GOOGLE_PRIORITY_LEVELS) if l not in dominant]
    per_dominant = dominant_share / len(dominant)
    per_other = (1.0 - dominant_share) / len(other_levels) if other_levels else 0.0
    mix = [PriorityLevelSpec(level=l, share=per_dominant) for l in dominant]
    mix += [PriorityLevelSpec(level=l, share=per_other) for l in other_levels]
    return sorted(mix, key=lambda spec: spec.level)


def dominant_classes(
    mix: Sequence[PriorityLevelSpec], num_classes: int = 3
) -> Dict[int, float]:
    """Collapse a 12-level mix onto the ``num_classes`` dominant classes.

    Returns a mapping from class index (0 = lowest priority, increasing) to
    the aggregated arrival share: every trace level is assigned to the nearest
    dominant level below-or-equal to it, so the whole mass is preserved.
    """
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    ordered = sorted(mix, key=lambda spec: -spec.share)
    anchors = sorted(spec.level for spec in ordered[:num_classes])
    if not anchors:
        raise ValueError("the mix is empty")
    shares: Dict[int, float] = {index: 0.0 for index in range(len(anchors))}
    for spec in mix:
        # Assign to the highest anchor that does not exceed the level, or the
        # lowest anchor if the level sits below every anchor.
        candidates = [i for i, anchor in enumerate(anchors) if anchor <= spec.level]
        index = candidates[-1] if candidates else 0
        shares[index] += spec.share
    total = sum(shares.values())
    return {index: share / total for index, share in shares.items()}


def google_mix_scenario(
    num_classes: int = 3,
    target_utilisation: float = 0.8,
    num_jobs: int = 400,
):
    """A scenario whose class ratio is the collapsed Google priority mix.

    Builds the 12-level :func:`google_like_priority_mix`, collapses it onto
    the ``num_classes`` (2 or 3) dominant classes with
    :func:`dominant_classes`, and instantiates the paper's text-analysis
    profiles with the collapsed shares as the arrival class ratio.  This is
    the :class:`~repro.traces.schema.TraceJob` source behind
    ``repro synth-trace --mix google`` — the synthesizer and the paper's
    2/3-class scenarios share this one code path.
    """
    from repro.workloads.scenarios import (
        HIGH_PRIORITY_SIZE_MB,
        LOW_PRIORITY_SIZE_MB,
        Scenario,
        text_profile,
    )

    if num_classes not in (2, 3):
        raise ValueError("the paper collapses the mix onto 2 or 3 classes")
    mix = google_like_priority_mix()
    shares = dominant_classes(mix, num_classes=num_classes)
    # Class index 0 is the lowest priority; grade sizes and permissible
    # accuracy loss from the paper's low/medium/high profiles.
    grading = {
        2: ((LOW_PRIORITY_SIZE_MB, 0.32), (HIGH_PRIORITY_SIZE_MB, 0.0)),
        3: ((LOW_PRIORITY_SIZE_MB, 0.32), (800.0, 0.15), (HIGH_PRIORITY_SIZE_MB, 0.0)),
    }[num_classes]
    names = {2: ("low", "high"), 3: ("low", "medium", "high")}[num_classes]
    profiles = {
        index: text_profile(index, names[index], size_mb, max_accuracy_loss=loss)
        for index, (size_mb, loss) in enumerate(grading)
    }
    return Scenario(
        name=f"google-mix-{num_classes}",
        description=(
            f"Google 12-level priority mix collapsed onto the {num_classes} "
            f"dominant classes"
        ),
        profiles=profiles,
        class_ratio=dict(shares),
        target_utilisation=target_utilisation,
        num_jobs=num_jobs,
    )


def eviction_statistics(result: SimulationResult) -> List[Dict[str, float]]:
    """Per-priority eviction and slowdown summary (the §2.1 motivation numbers).

    Works on batch *and* streaming (replayed) runs: with
    ``MetricsCollector(streaming=True)`` the per-record loops are replaced by
    the collector's online per-class aggregates.
    """
    if result.metrics.streaming:
        rows: List[Dict[str, float]] = []
        for priority in result.priorities():
            cm = result.metrics.class_metrics(priority)
            if cm.job_count == 0:
                continue
            useful = cm.execution_time.mean * cm.job_count
            wasted = cm.wasted_time
            rows.append(
                {
                    "priority": priority,
                    "jobs": float(cm.job_count),
                    "evictions": float(cm.evictions),
                    "evictions_per_job": cm.evictions / cm.job_count,
                    "wasted_machine_time_pct": 100.0 * wasted / (useful + wasted) if useful + wasted else 0.0,
                    "mean_slowdown": cm.mean_slowdown,
                }
            )
        return rows
    rows = []
    for priority in result.priorities():
        records = result.metrics.records_for_priority(priority)
        if not records:
            continue
        evictions = sum(r.evictions for r in records)
        wasted = sum(r.wasted_time for r in records)
        useful = sum(r.execution_time for r in records)
        slowdowns = [r.slowdown for r in records if r.execution_time > 0]
        rows.append(
            {
                "priority": priority,
                "jobs": float(len(records)),
                "evictions": float(evictions),
                "evictions_per_job": evictions / len(records),
                "wasted_machine_time_pct": 100.0 * wasted / (useful + wasted) if useful + wasted else 0.0,
                "mean_slowdown": sum(slowdowns) / len(slowdowns) if slowdowns else float("nan"),
            }
        )
    return rows


def slowdown_ratio(result: SimulationResult) -> float:
    """Slowdown of the lowest priority divided by the highest priority's.

    The trace studies report that priority-0 jobs suffer ≈3× the slowdown of
    priority-6 jobs under preemptive scheduling; this helper computes the same
    ratio for a simulated run.
    """
    rows = {row["priority"]: row for row in eviction_statistics(result)}
    if len(rows) < 2:
        raise ValueError("need at least two priority classes")
    lowest = rows[min(rows)]
    highest = rows[max(rows)]
    if highest["mean_slowdown"] == 0:
        return float("inf")
    return lowest["mean_slowdown"] / highest["mean_slowdown"]
