"""Sprinting configuration.

The sprinter is controlled by three quantities (§3.2, §5.1, §5.3):

* a per-priority **sprint timeout** ``T_k`` — how long a dispatched job runs at
  the base frequency before being boosted (65 s in the paper's *limited*
  scenario, 0 s in the *unlimited* one);
* a **sprinting budget** — the paper uses a 22 kJ energy budget for the limited
  scenario, which translates into a bounded amount of sprinted wall-clock time
  because sprinting draws a fixed extra power;
* a **replenishment rate** — e.g. six sprint-minutes per hour (§3.3).

Budgets are tracked internally in sprint-seconds; :meth:`SprintConfig.from_energy_budget`
converts an energy budget using the extra power drawn while sprinting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set


@dataclass(frozen=True)
class SprintConfig:
    """Configuration of the differential sprinting mechanism.

    Attributes
    ----------
    sprint_priorities:
        Priorities eligible for sprinting (the paper sprints the high class).
        ``None`` means every priority may sprint.
    timeouts:
        Per-priority sprint timeout ``T_k`` in seconds; priorities missing from
        the mapping use ``default_timeout``.
    default_timeout:
        Timeout applied to eligible priorities not listed in ``timeouts``.
    budget_seconds:
        Total sprinted wall-clock seconds available; ``None`` = unlimited.
    replenish_seconds_per_hour:
        Budget replenishment rate (e.g. 360 s of sprinting per hour).
    max_budget_seconds:
        Cap on the accumulated budget; defaults to the initial budget.
    """

    sprint_priorities: Optional[frozenset] = None
    timeouts: Mapping[int, float] = field(default_factory=dict)
    default_timeout: float = 0.0
    budget_seconds: Optional[float] = None
    replenish_seconds_per_hour: float = 0.0
    max_budget_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.default_timeout < 0:
            raise ValueError("default_timeout must be non-negative")
        if any(t < 0 for t in self.timeouts.values()):
            raise ValueError("timeouts must be non-negative")
        if self.budget_seconds is not None and self.budget_seconds < 0:
            raise ValueError("budget_seconds must be non-negative")
        if self.replenish_seconds_per_hour < 0:
            raise ValueError("replenish_seconds_per_hour must be non-negative")
        if self.max_budget_seconds is not None and self.max_budget_seconds < 0:
            raise ValueError("max_budget_seconds must be non-negative")

    # ------------------------------------------------------------- accessors
    def sprints(self, priority: int) -> bool:
        """Whether jobs of ``priority`` are eligible for sprinting."""
        if self.sprint_priorities is None:
            return True
        return priority in self.sprint_priorities

    def timeout_for(self, priority: int) -> float:
        """Sprint timeout ``T_k`` for ``priority``."""
        return float(self.timeouts.get(priority, self.default_timeout))

    @property
    def unlimited(self) -> bool:
        """Whether the sprinting budget is unlimited."""
        return self.budget_seconds is None

    @property
    def replenish_rate(self) -> float:
        """Replenishment in sprint-seconds per second of wall-clock time."""
        return self.replenish_seconds_per_hour / 3600.0

    def budget_cap(self) -> Optional[float]:
        """Maximum budget that replenishment may accumulate to."""
        if self.max_budget_seconds is not None:
            return self.max_budget_seconds
        return self.budget_seconds

    # ------------------------------------------------------------- factories
    @classmethod
    def disabled(cls) -> "SprintConfig":
        """No sprinting at all (zero budget, no eligible priorities)."""
        return cls(sprint_priorities=frozenset(), budget_seconds=0.0)

    @classmethod
    def unlimited_sprinting(
        cls, sprint_priorities: Optional[Set[int]] = None, timeout: float = 0.0
    ) -> "SprintConfig":
        """Sprint eligible jobs for their whole duration (paper's unlimited case)."""
        return cls(
            sprint_priorities=frozenset(sprint_priorities) if sprint_priorities is not None else None,
            default_timeout=timeout,
            budget_seconds=None,
        )

    @classmethod
    def limited_sprinting(
        cls,
        budget_seconds: float,
        sprint_priorities: Optional[Set[int]] = None,
        timeout: float = 65.0,
        replenish_seconds_per_hour: float = 360.0,
    ) -> "SprintConfig":
        """Budgeted sprinting after a timeout (paper's limited case: 65 s timeout)."""
        return cls(
            sprint_priorities=frozenset(sprint_priorities) if sprint_priorities is not None else None,
            default_timeout=timeout,
            budget_seconds=budget_seconds,
            replenish_seconds_per_hour=replenish_seconds_per_hour,
        )

    @classmethod
    def from_energy_budget(
        cls,
        budget_joules: float,
        sprint_extra_watts: float,
        sprint_priorities: Optional[Set[int]] = None,
        timeout: float = 65.0,
        replenish_seconds_per_hour: float = 360.0,
    ) -> "SprintConfig":
        """Convert an energy budget (e.g. the paper's 22 kJ) into sprint-seconds.

        Sprinting draws ``sprint_extra_watts`` more than normal execution
        (270 W − 180 W = 90 W in the paper's testbed), so a ``B`` joule budget
        buys ``B / sprint_extra_watts`` seconds of sprinting.
        """
        if budget_joules < 0:
            raise ValueError("budget_joules must be non-negative")
        if sprint_extra_watts <= 0:
            raise ValueError("sprint_extra_watts must be positive")
        return cls.limited_sprinting(
            budget_seconds=budget_joules / sprint_extra_watts,
            sprint_priorities=sprint_priorities,
            timeout=timeout,
            replenish_seconds_per_hour=replenish_seconds_per_hour,
        )
