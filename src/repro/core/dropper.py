"""Task dropping — the approximation mechanism (§3.1, §3.3).

Spark computes the partitions a stage still has to execute through
``findMissingPartitions()``; DiAS modifies that function to return only
``⌈n(1 − θ_k)⌉`` of the ``n`` partitions.  :func:`find_missing_partitions`
reproduces that computation, and :class:`TaskDropper` builds a full
:class:`DropPlan` for a job: which map/reduce tasks of which stages are kept,
and the resulting effective drop ratio used to estimate accuracy loss.

Dropped tasks are chosen uniformly at random (the paper: "we randomly choose
one map task and drop it before its execution"), which is what makes the
analysis an unbiased sample of the input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.job import Job, effective_task_count
from repro.models.accuracy import compose_stage_drop_ratios


def find_missing_partitions(num_partitions: int, drop_ratio: float) -> int:
    """Number of partitions Spark should still compute: ``⌈n(1 − θ)⌉``."""
    return effective_task_count(num_partitions, drop_ratio)


@dataclass
class DropPlan:
    """The concrete set of tasks kept for one job dispatch."""

    job_id: int
    map_drop_ratio: float
    reduce_drop_ratio: float
    kept_map_indices: Dict[int, List[int]]
    kept_reduce_indices: Dict[int, List[int]]
    dropped_map_tasks: int
    dropped_reduce_tasks: int
    total_map_tasks: int
    total_reduce_tasks: int
    effective_drop_ratio: float

    @property
    def kept_map_tasks(self) -> int:
        return self.total_map_tasks - self.dropped_map_tasks

    @property
    def kept_reduce_tasks(self) -> int:
        return self.total_reduce_tasks - self.dropped_reduce_tasks

    @property
    def drops_anything(self) -> bool:
        return self.dropped_map_tasks > 0 or self.dropped_reduce_tasks > 0


class TaskDropper:
    """Builds :class:`DropPlan` objects for dispatched jobs."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def plan(
        self,
        job: Job,
        map_drop_ratio: float,
        reduce_drop_ratio: float = 0.0,
    ) -> DropPlan:
        """Select which tasks of ``job`` to keep under the given drop ratios.

        The same per-stage ratio is applied to every droppable stage, as in
        the triangle-count experiments (§5.2.4); non-droppable stages always
        keep all tasks.  The effective (overall) drop ratio composes the
        per-stage ratios across the job's droppable stages.
        """
        uniform_map = {stage.index: map_drop_ratio for stage in job.stages}
        uniform_reduce = {stage.index: reduce_drop_ratio for stage in job.stages}
        return self.plan_stages(
            job,
            uniform_map,
            uniform_reduce,
            requested_map_ratio=map_drop_ratio,
            requested_reduce_ratio=reduce_drop_ratio,
        )

    def plan_stages(
        self,
        job: Job,
        stage_map_ratios: Mapping[int, float],
        stage_reduce_ratios: Optional[Mapping[int, float]] = None,
        requested_map_ratio: Optional[float] = None,
        requested_reduce_ratio: Optional[float] = None,
    ) -> DropPlan:
        """Select kept tasks under *per-stage* drop ratios.

        This is the DAG-aware entry point: stages of one job may drop at
        different ratios (e.g. slack-biased dropping keeps critical-path
        stages intact and drops more off the critical path).  Stages missing
        from the mappings, and non-droppable stages, keep all their tasks.
        Works on any job exposing ``job_id`` and a ``stages`` sequence —
        linear :class:`~repro.engine.job.Job` and DAG jobs alike.
        """
        stage_reduce_ratios = stage_reduce_ratios or {}
        for label, ratios in (("map", stage_map_ratios), ("reduce", stage_reduce_ratios)):
            for index, ratio in ratios.items():
                if not 0.0 <= ratio < 1.0:
                    raise ValueError(
                        f"{label} drop ratio for stage {index} must be in [0, 1), got {ratio!r}"
                    )

        kept_map: Dict[int, List[int]] = {}
        kept_reduce: Dict[int, List[int]] = {}
        dropped_map = 0
        dropped_reduce = 0
        total_map = 0
        total_reduce = 0
        applied_map_ratios: List[float] = []
        droppable_map_tasks = 0
        droppable_reduce_tasks = 0
        weighted_map = 0.0
        weighted_reduce = 0.0

        for stage in job.stages:
            total_map += stage.num_map_tasks
            total_reduce += stage.num_reduce_tasks
            if stage.droppable:
                stage_map_drop = float(stage_map_ratios.get(stage.index, 0.0))
                stage_reduce_drop = float(stage_reduce_ratios.get(stage.index, 0.0))
                applied_map_ratios.append(stage_map_drop)
                droppable_map_tasks += stage.num_map_tasks
                droppable_reduce_tasks += stage.num_reduce_tasks
                weighted_map += stage_map_drop * stage.num_map_tasks
                weighted_reduce += stage_reduce_drop * stage.num_reduce_tasks
            else:
                stage_map_drop = 0.0
                stage_reduce_drop = 0.0

            keep_maps = find_missing_partitions(stage.num_map_tasks, stage_map_drop)
            keep_reduces = find_missing_partitions(stage.num_reduce_tasks, stage_reduce_drop)
            kept_map[stage.index] = self._select(stage.num_map_tasks, keep_maps)
            kept_reduce[stage.index] = self._select(stage.num_reduce_tasks, keep_reduces)
            dropped_map += stage.num_map_tasks - keep_maps
            dropped_reduce += stage.num_reduce_tasks - keep_reduces

        if any(ratio > 0 for ratio in applied_map_ratios):
            effective = compose_stage_drop_ratios(applied_map_ratios)
        else:
            effective = 0.0
        if requested_map_ratio is None:
            requested_map_ratio = (
                weighted_map / droppable_map_tasks if droppable_map_tasks else 0.0
            )
        if requested_reduce_ratio is None:
            requested_reduce_ratio = (
                weighted_reduce / droppable_reduce_tasks if droppable_reduce_tasks else 0.0
            )
        return DropPlan(
            job_id=job.job_id,
            map_drop_ratio=requested_map_ratio,
            reduce_drop_ratio=requested_reduce_ratio,
            kept_map_indices=kept_map,
            kept_reduce_indices=kept_reduce,
            dropped_map_tasks=dropped_map,
            dropped_reduce_tasks=dropped_reduce,
            total_map_tasks=total_map,
            total_reduce_tasks=total_reduce,
            effective_drop_ratio=effective,
        )

    def _select(self, total: int, keep: int) -> List[int]:
        """Uniformly select ``keep`` of ``total`` task indices (sorted)."""
        if keep >= total:
            return list(range(total))
        if keep <= 0:
            return []
        chosen = self._rng.choice(total, size=keep, replace=False)
        return sorted(int(i) for i in chosen)
